//! Integration tests: the channel-establishment handshake running end to end
//! over the simulated switched Ethernet (source RT layer ↔ switch ↔
//! destination RT layer, every protocol frame actually crossing the wire).

use switched_rt_ethernet::core::{DpsKind, RtChannelSpec, RtNetwork};
use switched_rt_ethernet::types::{NodeId, Slots};

#[test]
fn establishes_channels_between_many_pairs() {
    let mut net = RtNetwork::builder()
        .star(8)
        .dps(DpsKind::Asymmetric)
        .build()
        .unwrap();
    let spec = RtChannelSpec::paper_default();
    let mut established = 0;
    for src in 0..4u32 {
        for dst in 4..8u32 {
            let tx = net
                .establish_channel(NodeId::new(src), NodeId::new(dst), spec)
                .unwrap();
            if tx.is_some() {
                established += 1;
            }
        }
    }
    assert_eq!(
        established, 16,
        "a lightly loaded network accepts all 16 channels"
    );
    assert_eq!(net.manager().channel_count(), 16);
    // Every destination registered its incoming channels.
    for dst in 4..8u32 {
        assert_eq!(
            net.layer(NodeId::new(dst)).unwrap().rx_channels().count(),
            4
        );
    }
    // Channel ids handed out over the wire are unique.
    let mut ids: Vec<u16> = net
        .manager()
        .channel_ids()
        .iter()
        .map(|c| c.get())
        .collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 16);
}

#[test]
fn switch_rejection_travels_back_to_the_source() {
    // SDPS + paper parameters: the 7th channel from one node must be
    // rejected by the switch and the source must see the rejection.
    let mut net = RtNetwork::builder()
        .star(10)
        .dps(DpsKind::Symmetric)
        .build()
        .unwrap();
    let spec = RtChannelSpec::paper_default();
    let mut results = Vec::new();
    for dst in 1..=8u32 {
        results.push(
            net.establish_channel(NodeId::new(0), NodeId::new(dst), spec)
                .unwrap(),
        );
    }
    let accepted = results.iter().filter(|r| r.is_some()).count();
    let rejected = results.iter().filter(|r| r.is_none()).count();
    assert_eq!(accepted, 6);
    assert_eq!(rejected, 2);
    // The source RT layer holds exactly the accepted channels and no
    // dangling outstanding requests.
    let layer = net.layer(NodeId::new(0)).unwrap();
    assert_eq!(layer.tx_channels().count(), 6);
    assert_eq!(layer.outstanding_requests(), 0);
}

#[test]
fn destination_rejection_rolls_back_reserved_capacity() {
    // Destinations that only accept one incoming channel force the switch
    // to roll back the second reservation, freeing the capacity for a third
    // request towards another destination.
    let mut net = RtNetwork::builder()
        .star(4)
        .dps(DpsKind::Symmetric)
        .max_incoming_channels(1)
        .build()
        .unwrap();
    let spec = RtChannelSpec::paper_default();

    assert!(net
        .establish_channel(NodeId::new(0), NodeId::new(1), spec)
        .unwrap()
        .is_some());
    // Second channel to the same destination: switch says yes, destination
    // says no.
    assert!(net
        .establish_channel(NodeId::new(2), NodeId::new(1), spec)
        .unwrap()
        .is_none());
    // The rolled-back reservation must not count against the system.
    assert_eq!(net.manager().channel_count(), 1);
    // And node 2 can still open a channel elsewhere.
    assert!(net
        .establish_channel(NodeId::new(2), NodeId::new(3), spec)
        .unwrap()
        .is_some());
}

#[test]
fn teardown_frees_capacity_end_to_end() {
    let mut net = RtNetwork::builder()
        .star(10)
        .dps(DpsKind::Symmetric)
        .build()
        .unwrap();
    let spec = RtChannelSpec::paper_default();
    let mut channels = Vec::new();
    for dst in 1..=6u32 {
        channels.push(
            net.establish_channel(NodeId::new(0), NodeId::new(dst), spec)
                .unwrap()
                .unwrap(),
        );
    }
    // Uplink full.
    assert!(net
        .establish_channel(NodeId::new(0), NodeId::new(7), spec)
        .unwrap()
        .is_none());
    // Tear one down over the wire; the freed capacity admits a new channel.
    net.teardown_channel(NodeId::new(0), channels[0].id)
        .unwrap();
    assert_eq!(net.manager().channel_count(), 5);
    assert!(net
        .establish_channel(NodeId::new(0), NodeId::new(7), spec)
        .unwrap()
        .is_some());
}

#[test]
fn invalid_specs_are_rejected_without_touching_the_network() {
    let mut net = RtNetwork::builder()
        .star(3)
        .dps(DpsKind::Asymmetric)
        .build()
        .unwrap();
    // Deadline shorter than 2C: invalid for a store-and-forward switch.
    let bad = RtChannelSpec {
        period: Slots::new(100),
        capacity: Slots::new(10),
        deadline: Slots::new(15),
    };
    assert!(net
        .establish_channel(NodeId::new(0), NodeId::new(1), bad)
        .is_err());
    assert_eq!(net.manager().channel_count(), 0);
}

#[test]
fn establishment_handshake_takes_bounded_wire_time() {
    // Each handshake is 4 control frames (request, forwarded request,
    // response, forwarded response), all minimum-size: it must complete in
    // well under a millisecond of simulated time on an idle network.
    let mut net = RtNetwork::builder()
        .star(3)
        .dps(DpsKind::Symmetric)
        .build()
        .unwrap();
    let spec = RtChannelSpec::paper_default();
    let before = net.now();
    net.establish_channel(NodeId::new(0), NodeId::new(1), spec)
        .unwrap()
        .unwrap();
    let elapsed = net.now().saturating_duration_since(before);
    assert!(
        elapsed.as_micros() < 1000,
        "handshake took {elapsed} of simulated time"
    );
}
