//! Randomized property harness for the fabric: random connected topologies
//! and random workloads, checked against invariants that must hold on
//! *every* fabric — not just the hand-picked scenarios of the unit tests.
//!
//! The invariants, each checked across a fixed seed matrix (seeds `0..32`,
//! via the in-repo deterministic PRNG, in the spirit of `rt-edf`'s
//! `testgen`):
//!
//! 1. **Frame conservation** — once the event queue drains, every injected
//!    frame is accounted for: `injected = delivered + dropped` (best-effort
//!    overflow, unroutable, failed-link and released-channel drops), with
//!    and without fault injection.
//! 2. **Scheduler equivalence** — the calendar queue and the binary heap
//!    produce byte-for-byte identical delivery sequences and statistics on
//!    the same random fabric + workload (+ fault script).
//! 3. **Admission soundness** — channels admitted by the per-link EDF
//!    analysis never miss a deadline on the wire, and every measured
//!    latency stays below the hop-aware Eq. 18.1 bound
//!    `d·slot + T_latency(h)`.
//! 4. **Arena hygiene** — with the pooled frame store, every buffer taken
//!    from the [`rt_frames::FrameArena`] is returned once the fabric
//!    drains: `arena_outstanding() == 0` after every scenario, faulted or
//!    not. Delivery frees; every drop path must free too. The pooled and
//!    owned stores must also be observationally identical.
//! 5. **Churn determinism** — the long-running admission churn process
//!    replays a byte-identical admission trace from the same seed, and the
//!    central and distributed control planes produce that same trace,
//!    including under a scripted trunk cut + repair.
//!
//! A failing seed reproduces exactly: every random choice derives from the
//! seed through `Xoshiro256`.

mod common;

use common::ControlHarness;
use switched_rt_ethernet::core::{ChannelManager, MultiHopDps, RtChannelSpec, RtNetwork};
use switched_rt_ethernet::netsim::{
    Delivery, FaultScript, FrameInjection, FrameStoreKind, SchedulerKind, ShardedSimulator,
    SimConfig, Simulator,
};
use switched_rt_ethernet::types::{
    ChannelId, ConnectionRequestId, Duration, KShortestRouter, MacAddr, ManagerPlacement,
    NextHopCache, NodeId, Router, ShardStrategy, ShortestPathRouter, SimTime, Slots,
    StructuralRouter, SwitchId, Topology, Xoshiro256,
};

/// The fixed seed matrix: every invariant below holds for all of these.
const SEEDS: u64 = 32;

/// Seed count for the adversarial mid-handshake fault invariant,
/// overridable via `RT_ADVERSARIAL_SEEDS` (CI soaks crank it up; quick
/// local runs dial it down).  Defaults to the fixed 32-seed matrix.
fn adversarial_seeds() -> u64 {
    std::env::var("RT_ADVERSARIAL_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SEEDS)
}

// --- generators -----------------------------------------------------------

/// A random *connected* topology: a random spanning tree over 2–5 switches,
/// up to two extra (redundant) trunks, and 1–3 nodes per switch.
fn random_topology(rng: &mut Xoshiro256) -> Topology {
    let switches = rng.range_inclusive(2, 5) as u32;
    let mut t = Topology::new();
    for s in 0..switches {
        t.add_switch(SwitchId::new(s));
    }
    // Spanning tree: each switch hangs off a random earlier one.
    for s in 1..switches {
        let parent = rng.below(u64::from(s)) as u32;
        t.add_trunk(SwitchId::new(s), SwitchId::new(parent))
            .expect("tree trunks are fresh");
    }
    // Redundant extras (duplicates and self-loops are simply skipped).
    for _ in 0..rng.below(3) {
        let a = rng.below(u64::from(switches)) as u32;
        let b = rng.below(u64::from(switches)) as u32;
        if a != b {
            let _ = t.add_trunk(SwitchId::new(a), SwitchId::new(b));
        }
    }
    let mut next_node = 0u32;
    for s in 0..switches {
        for _ in 0..rng.range_inclusive(1, 3) {
            t.attach_node(NodeId::new(next_node), SwitchId::new(s))
                .expect("fresh node");
            next_node += 1;
        }
    }
    t
}

fn be_frame(from: NodeId, to: NodeId, payload_len: usize) -> rt_frames::EthernetFrame {
    let udp = rt_frames::UdpHeader::new(1000, 2000, payload_len).unwrap();
    let ip = rt_frames::Ipv4Header::udp(
        switched_rt_ethernet::types::Ipv4Address::for_node(from),
        switched_rt_ethernet::types::Ipv4Address::for_node(to),
        8 + payload_len,
    )
    .unwrap();
    let mut bytes = ip.encode();
    bytes.extend_from_slice(&udp.encode());
    bytes.extend(std::iter::repeat_n(0x5au8, payload_len));
    rt_frames::EthernetFrame::new(
        MacAddr::for_node(to),
        MacAddr::for_node(from),
        switched_rt_ethernet::types::constants::ETHERTYPE_IPV4,
        bytes,
    )
    .unwrap()
}

fn rt_frame(
    from: NodeId,
    to: NodeId,
    channel: u16,
    deadline: SimTime,
    payload_len: usize,
) -> rt_frames::EthernetFrame {
    rt_frames::rt_data::RtDataFrame {
        eth_src: MacAddr::for_node(from),
        eth_dst: MacAddr::for_node(to),
        stamp: rt_frames::rt_data::DeadlineStamp::new(deadline.as_nanos(), ChannelId::new(channel))
            .unwrap(),
        src_port: 5000,
        dst_port: 5001,
        payload: vec![0u8; payload_len],
    }
    .into_ethernet()
    .unwrap()
}

/// A random mixed workload over the attached nodes: RT frames with random
/// channels/deadlines plus best-effort frames, at random times within ~2 ms.
fn random_workload(rng: &mut Xoshiro256, topology: &Topology) -> Vec<FrameInjection> {
    let nodes: Vec<NodeId> = topology.nodes().collect();
    let frames = rng.range_inclusive(40, 160);
    let mut batch = Vec::with_capacity(frames as usize);
    for _ in 0..frames {
        let src = nodes[rng.below(nodes.len() as u64) as usize];
        let mut dst = nodes[rng.below(nodes.len() as u64) as usize];
        if dst == src {
            dst = nodes[(nodes.iter().position(|&n| n == src).unwrap() + 1) % nodes.len()];
        }
        let at = SimTime::from_nanos(rng.below(2_000_000));
        let payload = rng.range_inclusive(50, 1400) as usize;
        let eth = if rng.chance(0.5) {
            let channel = rng.range_inclusive(1, 6) as u16;
            let deadline = at + Duration::from_nanos(rng.range_inclusive(50_000, 3_000_000));
            rt_frame(src, dst, channel, deadline, payload)
        } else {
            be_frame(src, dst, payload)
        };
        batch.push(FrameInjection { node: src, eth, at });
    }
    batch
}

/// A random fault script over the topology's trunks: one cut somewhere in
/// the workload window, sometimes followed by a repair — and sometimes a
/// whole-switch kill on top (with its own optional trunk splice-back).
fn random_faults(rng: &mut Xoshiro256, topology: &Topology) -> FaultScript {
    let trunks: Vec<(SwitchId, SwitchId)> = topology.trunks().collect();
    if trunks.is_empty() {
        return FaultScript::new();
    }
    let (a, b) = trunks[rng.below(trunks.len() as u64) as usize];
    let cut_at = SimTime::from_nanos(rng.range_inclusive(100_000, 1_500_000));
    let mut script = FaultScript::new().fail_at(cut_at, a, b);
    if rng.chance(0.5) {
        script = script.repair_at(cut_at + Duration::from_millis(1), a, b);
    }
    // Sometimes also kill a whole switch — one not touching the cut trunk,
    // so the script stays valid (cutting an already-dead trunk is a script
    // bug, not a fault) — and sometimes splice one of its trunks back
    // afterwards.
    if rng.chance(0.25) {
        let candidates: Vec<SwitchId> = topology.switches().filter(|&s| s != a && s != b).collect();
        if !candidates.is_empty() {
            let victim = candidates[rng.below(candidates.len() as u64) as usize];
            let kill_at = SimTime::from_nanos(rng.range_inclusive(100_000, 1_500_000));
            script = script.fail_switch_at(kill_at, victim);
            if rng.chance(0.5) {
                if let Some(neighbour) = topology.neighbours(victim).next() {
                    script =
                        script.repair_at(kill_at + Duration::from_millis(1), victim, neighbour);
                }
            }
        }
    }
    script
}

// --- invariant drivers ----------------------------------------------------

type Snapshot = Vec<(u64, NodeId, u64, Vec<u8>)>;

fn snapshot(deliveries: &[Delivery]) -> Snapshot {
    deliveries
        .iter()
        .map(|d| {
            (
                d.frame.get(),
                d.receiver,
                d.delivered_at.as_nanos(),
                d.eth.encode(),
            )
        })
        .collect()
}

/// Run one seed's workload (and optional fault script) on one scheduler and
/// frame store; assert conservation and arena hygiene; return the
/// observable outcome.
fn drive(
    seed: u64,
    scheduler: SchedulerKind,
    frame_store: FrameStoreKind,
    with_faults: bool,
) -> (Snapshot, String, u64) {
    let mut rng = Xoshiro256::new(seed);
    let topology = random_topology(&mut rng);
    let workload = random_workload(&mut rng, &topology);
    let faults = random_faults(&mut rng, &topology);
    let config = SimConfig {
        scheduler,
        frame_store,
        ..SimConfig::default()
    };
    let mut sim = Simulator::with_topology(config, topology).expect("generated fabric is valid");
    sim.inject_batch(workload).expect("workload is valid");
    if with_faults {
        sim.schedule_faults(&faults).expect("faults are in-window");
    }
    sim.run_to_idle();
    let stats = sim.stats();
    assert_eq!(
        sim.injected_count(),
        stats.total_delivered() + stats.total_dropped(),
        "seed {seed}: conservation violated ({} injected, {} delivered, {} dropped; {})",
        sim.injected_count(),
        stats.total_delivered(),
        stats.total_dropped(),
        stats.summary(),
    );
    assert_eq!(stats.clamped_events, 0, "seed {seed}: causality violated");
    // Invariant 4: once the fabric drains, every pooled buffer is back in
    // the free list — delivered frames free on decode, dropped frames free
    // at their drop site. A leak here means some drop path forgot
    // `discard_frame`.
    assert_eq!(
        sim.arena_outstanding(),
        0,
        "seed {seed}: {} arena buffers leaked after drain ({})",
        sim.arena_outstanding(),
        stats.summary(),
    );
    let processed = sim.events_processed();
    (
        snapshot(&sim.poll_deliveries()),
        sim.stats().summary(),
        processed,
    )
}

/// [`drive`] on the sharded simulator: identical generation, identical
/// invariant checks, `shards` worker threads under `strategy`.
fn drive_sharded(
    seed: u64,
    shards: usize,
    strategy: ShardStrategy,
    with_faults: bool,
) -> (Snapshot, String, u64) {
    let mut rng = Xoshiro256::new(seed);
    let topology = random_topology(&mut rng);
    let workload = random_workload(&mut rng, &topology);
    let faults = random_faults(&mut rng, &topology);
    let config = SimConfig {
        scheduler: SchedulerKind::Calendar,
        frame_store: FrameStoreKind::Arena,
        ..SimConfig::default()
    };
    let mut sim = ShardedSimulator::with_strategy(config, topology, shards, strategy)
        .expect("generated fabric is valid");
    sim.inject_batch(workload).expect("workload is valid");
    if with_faults {
        sim.schedule_faults(&faults).expect("faults are in-window");
    }
    sim.run_to_idle();
    let stats = sim.stats();
    assert_eq!(
        sim.injected_count(),
        stats.total_delivered() + stats.total_dropped(),
        "seed {seed} x{shards}: sharded conservation violated ({})",
        stats.summary(),
    );
    assert_eq!(
        stats.clamped_events, 0,
        "seed {seed} x{shards}: sharded causality violated"
    );
    assert_eq!(
        sim.arena_outstanding(),
        0,
        "seed {seed} x{shards}: sharded run leaked arena buffers ({})",
        stats.summary(),
    );
    let processed = sim.events_processed();
    (
        snapshot(&sim.poll_deliveries()),
        sim.stats().summary(),
        processed,
    )
}

// --- the properties -------------------------------------------------------

/// Invariants 1 + 2 + 4 on fault-free fabrics: conservation and arena
/// hygiene on every seed, heap/calendar byte-for-byte equivalence, and
/// pooled/owned frame-store equivalence.
#[test]
fn random_fabrics_conserve_frames_and_are_scheduler_invariant() {
    for seed in 0..SEEDS {
        let heap = drive(seed, SchedulerKind::Heap, FrameStoreKind::Arena, false);
        let calendar = drive(seed, SchedulerKind::Calendar, FrameStoreKind::Arena, false);
        assert_eq!(heap, calendar, "seed {seed}: schedulers diverge");
        let owned = drive(seed, SchedulerKind::Calendar, FrameStoreKind::Owned, false);
        assert_eq!(calendar, owned, "seed {seed}: frame stores diverge");
    }
}

/// Invariants 1 + 2 + 4 *under fault injection*: a scripted trunk cut (and
/// sometimes a repair) mid-workload must neither lose track of a frame (or
/// a pooled buffer) nor introduce any scheduler- or store-dependent
/// behaviour.
#[test]
fn random_fabrics_with_faults_conserve_frames_and_are_scheduler_invariant() {
    for seed in 0..SEEDS {
        let heap = drive(seed, SchedulerKind::Heap, FrameStoreKind::Arena, true);
        let calendar = drive(seed, SchedulerKind::Calendar, FrameStoreKind::Arena, true);
        assert_eq!(
            heap, calendar,
            "seed {seed}: schedulers diverge under faults"
        );
        let owned = drive(seed, SchedulerKind::Calendar, FrameStoreKind::Owned, true);
        assert_eq!(
            calendar, owned,
            "seed {seed}: frame stores diverge under faults"
        );
    }
}

/// Sharded-equivalence invariant: for shards ∈ {1, 2, 4} and both
/// partition strategies, the parallel run conserves frames, leaks no
/// arena buffer, and is **byte-for-byte identical** to the single-thread
/// `HeapScheduler` oracle — deliveries, stats summary and event count —
/// on every seed of the matrix, with and without random trunk cuts and
/// switch kills.  Seed count follows `RT_ADVERSARIAL_SEEDS` (the CI
/// standard job dials it down; soaks crank it up).
#[test]
fn sharded_runs_are_byte_identical_to_the_single_thread_oracle() {
    for with_faults in [false, true] {
        for seed in 0..adversarial_seeds() {
            let oracle = drive(
                seed,
                SchedulerKind::Heap,
                FrameStoreKind::Arena,
                with_faults,
            );
            for shards in [1usize, 2, 4] {
                for strategy in [ShardStrategy::BfsRegions, ShardStrategy::Striped] {
                    let sharded = drive_sharded(seed, shards, strategy, with_faults);
                    assert_eq!(
                        oracle,
                        sharded,
                        "seed {seed}: sharded x{shards} ({}) diverges from the oracle \
                         (faults={with_faults})",
                        strategy.name(),
                    );
                }
            }
        }
    }
}

/// Invariant 4: on fault-free random fabrics, the *distributed* control
/// plane (per-switch slack ledgers, two-phase reservation in control frames
/// that traverse the wire) admits the **identical** channel set as the
/// central [`FabricChannelManager`] oracle — same ids, same routes, same
/// per-link deadline splits, same rejections — and the admitted channels'
/// data frames deliver byte-for-byte identically.
#[test]
fn central_and_distributed_control_planes_are_equivalent_on_random_fabrics() {
    for seed in 0..SEEDS {
        let drive = |placement: ManagerPlacement| {
            let mut rng = Xoshiro256::new(0xd15c_0000 ^ seed);
            let topology = random_topology(&mut rng);
            let nodes: Vec<NodeId> = topology.nodes().collect();
            let mut net = RtNetwork::builder()
                .topology(topology)
                .router(KShortestRouter::new(3))
                .multihop_dps(if rng.chance(0.5) {
                    MultiHopDps::Asymmetric
                } else {
                    MultiHopDps::Symmetric
                })
                .manager_placement(placement)
                .build()
                .expect("generated fabric builds");
            // A random request sequence sized to provoke both admissions
            // and rejections (the trunks of the small fabrics saturate).
            let mut admitted = Vec::new();
            let mut verdicts = Vec::new();
            for _ in 0..10 {
                let src = nodes[rng.below(nodes.len() as u64) as usize];
                let mut dst = nodes[rng.below(nodes.len() as u64) as usize];
                if dst == src {
                    dst = nodes[(nodes.iter().position(|&n| n == src).unwrap() + 1) % nodes.len()];
                }
                let spec = RtChannelSpec::new(
                    Slots::new(rng.range_inclusive(60, 140)),
                    Slots::new(rng.range_inclusive(1, 3)),
                    Slots::new(rng.range_inclusive(30, 60)),
                )
                .expect("generated spec is valid");
                match net.establish_channel(src, dst, spec).unwrap() {
                    Some(tx) => {
                        let route = net
                            .manager()
                            .channel_route(tx.id)
                            .expect("admitted channel has a route");
                        verdicts.push(true);
                        admitted.push((src, tx.id, route.path.clone(), route.link_deadlines));
                    }
                    None => verdicts.push(false),
                }
            }
            // Periodic traffic on a fixed absolute timeline (identical in
            // both worlds, regardless of how long establishment took).
            let start = SimTime::from_millis(50);
            assert!(
                net.now() < start,
                "seed {seed}: establishment must finish before the data timeline"
            );
            for &(src, id, _, _) in &admitted {
                net.send_periodic(src, id, 5, 600, start).unwrap();
            }
            net.run_to_completion().unwrap();
            let stats = net.simulator().stats();
            assert_eq!(
                net.simulator().injected_count(),
                stats.total_delivered() + stats.total_dropped(),
                "seed {seed}: conservation violated under {placement:?} ({})",
                stats.summary()
            );
            assert!(
                stats.all_deadlines_met(),
                "seed {seed}: {placement:?} missed"
            );
            assert_eq!(
                net.simulator().arena_outstanding(),
                0,
                "seed {seed}: arena buffers leaked under {placement:?}"
            );
            let deliveries: Vec<_> = net
                .received_messages()
                .iter()
                .map(|m| {
                    (
                        m.receiver,
                        m.message.channel,
                        m.message.payload.clone(),
                        m.delivered_at.as_nanos(),
                    )
                })
                .collect();
            (verdicts, admitted, deliveries)
        };
        let central = drive(ManagerPlacement::Central);
        let distributed = drive(ManagerPlacement::Distributed);
        assert_eq!(
            central.0, distributed.0,
            "seed {seed}: accept/reject verdicts diverge"
        );
        // Ids are compared through the admission-order remapping (the
        // distributed manager allocates from per-switch blocks, the oracle
        // from a global sequencer); sources, routes and deadline splits
        // must agree exactly.
        assert_eq!(central.1.len(), distributed.1.len(), "seed {seed}");
        let mut remap = std::collections::BTreeMap::new();
        for (k, ((c_src, c_id, c_path, c_splits), (d_src, d_id, d_path, d_splits))) in
            central.1.iter().zip(distributed.1.iter()).enumerate()
        {
            assert_eq!(c_src, d_src, "seed {seed}: admission {k} sources diverge");
            assert_eq!(c_path, d_path, "seed {seed}: admission {k} routes diverge");
            assert_eq!(
                c_splits, d_splits,
                "seed {seed}: admission {k} deadline splits diverge"
            );
            assert_eq!(
                remap.insert(*d_id, *c_id),
                None,
                "seed {seed}: distributed id {d_id} double-admitted"
            );
        }
        // Deliveries match byte-for-byte once the distributed channel ids
        // are remapped onto the central ones.
        let remapped: Vec<_> = distributed
            .2
            .into_iter()
            .map(|(rx, ch, payload, at)| (rx, remap[&ch], payload, at))
            .collect();
        assert_eq!(
            central.2, remapped,
            "seed {seed}: data delivery diverges byte-for-byte under id remapping"
        );
    }
}

/// Invariant 5: the churn process (the long-running admission soak of
/// `rt-traffic`) is **deterministic and placement-invariant** on every
/// random fabric: the same seed replays a byte-identical admission trace,
/// and the central oracle and the distributed per-switch control plane
/// produce that *same* trace — same admits, same rejects, same channel
/// ids, same release order — arrival by arrival, including under a
/// scripted trunk cut + repair whenever the fabric has a redundant trunk.
#[test]
fn churn_is_deterministic_and_placement_invariant_on_random_fabrics() {
    use std::sync::Arc;
    use switched_rt_ethernet::core::{
        DistributedChannelManager, FabricChannelManager, MultiHopAdmission,
    };
    use switched_rt_ethernet::traffic::{ChurnConfig, ChurnProcess};

    /// Is the topology still connected with trunk `(a, b)` removed?  Only
    /// such trunks may be cut: the churn process treats an unroutable
    /// establishment as a hard error, not a rejection.
    fn connected_without(topology: &Topology, cut: (SwitchId, SwitchId)) -> bool {
        let switches: Vec<SwitchId> = topology.switches().collect();
        let mut reached = vec![switches[0]];
        let mut frontier = vec![switches[0]];
        while let Some(s) = frontier.pop() {
            for (a, b) in topology.trunks() {
                if (a, b) == cut || (b, a) == cut {
                    continue;
                }
                let next = if a == s {
                    b
                } else if b == s {
                    a
                } else {
                    continue;
                };
                if !reached.contains(&next) {
                    reached.push(next);
                    frontier.push(next);
                }
            }
        }
        reached.len() == switches.len()
    }

    for seed in 0..SEEDS {
        let mut rng = Xoshiro256::new(0xc4a8_0000 ^ seed);
        let topology = random_topology(&mut rng);
        let dps = if rng.chance(0.5) {
            MultiHopDps::Asymmetric
        } else {
            MultiHopDps::Symmetric
        };
        let mut config = ChurnConfig::new(seed)
            .windows(100, 400)
            .load(1.0, rng.range_inclusive(10, 60) as f64);
        // Cut (and later repair) a redundant trunk mid-run when the fabric
        // has one — fail-over and repair re-optimisation must be just as
        // deterministic as plain admission.
        if let Some((a, b)) = topology
            .trunks()
            .find(|&trunk| connected_without(&topology, trunk))
        {
            config = config.cut_at(150, a, b).repair_at(300, a, b);
        }
        let process = ChurnProcess::new(config, &topology).expect("generated config is valid");

        let central = |process: &ChurnProcess| {
            let mut manager = FabricChannelManager::new(MultiHopAdmission::with_router(
                topology.clone(),
                dps,
                Arc::new(KShortestRouter::new(3)),
            ));
            process.run(&mut manager).expect("churn run completes")
        };
        let first = central(&process);
        let second = central(&process);
        assert_eq!(
            first.trace, second.trace,
            "seed {seed}: same seed must replay a byte-identical trace"
        );
        assert_eq!(first.trace_hash, second.trace_hash, "seed {seed}");

        let mut manager = DistributedChannelManager::new(
            topology.clone(),
            dps,
            Arc::new(KShortestRouter::new(3)),
        );
        let distributed = process.run(&mut manager).expect("churn run completes");
        // Raw ids differ (per-switch id blocks), so placement parity is the
        // admission-order-normalized hash plus an explicit event remapping.
        assert_eq!(
            first.normalized_trace_hash, distributed.normalized_trace_hash,
            "seed {seed}: normalized admission traces diverge across placements"
        );
        assert_eq!(first.trace.len(), distributed.trace.len(), "seed {seed}");
        {
            use switched_rt_ethernet::traffic::ChurnEvent;
            let mut remap = std::collections::BTreeMap::new();
            for (ce, de) in first.trace.iter().zip(distributed.trace.iter()) {
                match (ce, de) {
                    (ChurnEvent::Admitted(a), ChurnEvent::Admitted(b)) => {
                        remap.insert(*a, *b);
                    }
                    (ChurnEvent::Released(a), ChurnEvent::Released(b)) => {
                        assert_eq!(
                            remap.get(a),
                            Some(b),
                            "seed {seed}: release order diverges across placements"
                        );
                    }
                    (x, y) => assert_eq!(x, y, "seed {seed}: event kinds diverge"),
                }
            }
        }
        assert!(
            first.attempts == 500 && first.admitted > 0,
            "seed {seed}: the run must admit something ({} attempts, {} admitted)",
            first.attempts,
            first.admitted
        );
    }
}

/// Tentpole invariant: **adversarial mid-handshake fault survival**.  On
/// every random fabric, random trunk cuts, switch kills and repairs are
/// injected *between* individual control-frame deliveries of the two-phase
/// reservation — inside the convergence window where per-switch topology
/// views disagree and link-state floods are still propagating.  Frames
/// addressed to killed switches are lost, stranded partial reservations
/// must expire through their leases.  After every seed settles:
///
/// * **zero slack leak** — on every link of the fabric, the reserved load
///   equals the sum over currently admitted channels crossing it, and the
///   manager's own quiescence audit (ledgers ↔ registry ↔ id blocks)
///   passes;
/// * **no double admission** — no channel id is ever handed to two
///   admissions.
#[test]
fn adversarial_mid_handshake_faults_never_leak_slack_or_double_admit() {
    use std::collections::{BTreeMap, BTreeSet};
    use std::sync::Arc;
    use switched_rt_ethernet::core::DistributedChannelManager;
    use switched_rt_ethernet::types::HopLink;

    let mut total_accepted = 0usize;
    let mut total_verdicts = 0usize;
    for seed in 0..adversarial_seeds() {
        let mut rng = Xoshiro256::new(0xad7e_0000 ^ seed);
        let topology = random_topology(&mut rng);
        let nodes: Vec<NodeId> = topology.nodes().collect();
        let mut mgr = DistributedChannelManager::new(
            topology.clone(),
            if rng.chance(0.5) {
                MultiHopDps::Asymmetric
            } else {
                MultiHopDps::Symmetric
            },
            Arc::new(KShortestRouter::new(3)),
        );
        let mut h = ControlHarness::new(&topology);
        let mut now = SimTime::from_millis(1);
        let mut alive: Vec<(SwitchId, SwitchId)> = topology.trunks().collect();
        let mut cut: Vec<(SwitchId, SwitchId)> = Vec::new();
        let mut dead: Vec<SwitchId> = Vec::new();

        for r in 0..8u8 {
            let src = nodes[rng.below(nodes.len() as u64) as usize];
            let mut dst = nodes[rng.below(nodes.len() as u64) as usize];
            if dst == src {
                dst = nodes[(nodes.iter().position(|&n| n == src).unwrap() + 1) % nodes.len()];
            }
            let src_switch = topology.switch_of(src).unwrap();
            if dead.contains(&src_switch) {
                // A node behind a killed access switch cannot even submit.
                continue;
            }
            let spec = RtChannelSpec::new(
                Slots::new(rng.range_inclusive(60, 140)),
                Slots::new(rng.range_inclusive(1, 3)),
                Slots::new(rng.range_inclusive(30, 60)),
            )
            .expect("generated spec is valid");
            h.submit(src, dst, spec, ConnectionRequestId::new(r));

            // Deliver the handshake frame by frame; one random fault fires
            // after a random number of deliveries — mid-probe, mid-reserve
            // or mid-confirm.
            let fault_step = rng.range_inclusive(1, 8);
            let accept = rng.chance(0.8);
            let mut steps = 0u64;
            loop {
                if h.awaiting_answer() > 0 {
                    h.answer(accept);
                }
                now = now.saturating_add(Duration::from_micros(10));
                if !h.step(&mut mgr, now).unwrap() {
                    if h.awaiting_answer() > 0 {
                        continue;
                    }
                    break;
                }
                steps += 1;
                if steps == fault_step {
                    match rng.below(3) {
                        0 if !alive.is_empty() => {
                            let k = rng.below(alive.len() as u64) as usize;
                            let (a, b) = alive.swap_remove(k);
                            mgr.handle_link_failure(a, b).unwrap();
                            h.flood(&mut mgr);
                            cut.push((a, b));
                        }
                        1 => {
                            let candidates: Vec<SwitchId> = topology
                                .switches()
                                .filter(|s| {
                                    !dead.contains(s)
                                        && alive.iter().any(|&(a, b)| a == *s || b == *s)
                                })
                                .collect();
                            if let Some(&s) =
                                candidates.get(rng.below(candidates.len().max(1) as u64) as usize)
                            {
                                mgr.handle_switch_failure(s).unwrap();
                                h.kill(s);
                                h.flood(&mut mgr);
                                dead.push(s);
                                alive.retain(|&(a, b)| a != s && b != s);
                            }
                        }
                        _ => {
                            if let Some(k) = (0..cut.len()).find(|&k| {
                                let (a, b) = cut[k];
                                !dead.contains(&a) && !dead.contains(&b)
                            }) {
                                let (a, b) = cut.remove(k);
                                mgr.handle_link_repair(a, b).unwrap();
                                h.flood(&mut mgr);
                                alive.push((a, b));
                            }
                        }
                    }
                }
            }
            // Half the time, let stranded leases expire before the next
            // arrival; the other half leaves them pending so the next
            // handshake races them.
            if rng.chance(0.5) {
                now = h.settle(&mut mgr, now).unwrap();
            }
        }
        now = h.settle(&mut mgr, now).unwrap();

        // Zero leak, externally: on every link of the fabric, the reserved
        // load equals the sum over admitted channels whose route crosses
        // it.  Stranded reservations, aborted handshakes and killed
        // coordinators must all have washed out.
        let mut expected: BTreeMap<HopLink, usize> = BTreeMap::new();
        for id in mgr.channel_ids() {
            let route = mgr
                .channel_route(id)
                .expect("registered channel has a route");
            for &link in &route.path {
                *expected.entry(link).or_default() += 1;
            }
        }
        for node in topology.nodes() {
            for link in [HopLink::Uplink(node), HopLink::Downlink(node)] {
                assert_eq!(
                    mgr.link_load(link),
                    expected.get(&link).copied().unwrap_or(0),
                    "seed {seed}: slack leak on {link}"
                );
            }
        }
        for (a, b) in topology.trunks() {
            for (from, to) in [(a, b), (b, a)] {
                let link = HopLink::Trunk { from, to };
                assert_eq!(
                    mgr.link_load(link),
                    expected.get(&link).copied().unwrap_or(0),
                    "seed {seed}: slack leak on {link}"
                );
            }
        }
        // Zero leak, internally: ledgers ↔ registry ↔ id blocks.
        mgr.audit_quiescent()
            .unwrap_or_else(|e| panic!("seed {seed}: quiescence audit failed: {e}"));

        // No double admission, ever.
        let accepted: Vec<ChannelId> = h.verdicts.iter().filter_map(|v| *v).collect();
        let unique: BTreeSet<ChannelId> = accepted.iter().copied().collect();
        assert_eq!(
            unique.len(),
            accepted.len(),
            "seed {seed}: a channel id was double-admitted"
        );
        total_accepted += accepted.len();
        total_verdicts += h.verdicts.len();
    }
    assert!(
        total_accepted > 0 && total_verdicts > total_accepted,
        "the adversarial matrix must admit and reject something \
         ({total_accepted} accepted / {total_verdicts} verdicts)"
    );
}

/// Invariant 3: on random fabrics, every channel the analysis admits keeps
/// its promise on the wire — zero deadline misses and every latency within
/// the hop-aware Eq. 18.1 bound.
#[test]
fn admitted_channels_never_miss_deadlines_on_random_fabrics() {
    for seed in 0..SEEDS {
        let mut rng = Xoshiro256::new(0x5eed_0000 ^ seed);
        let topology = random_topology(&mut rng);
        let nodes: Vec<NodeId> = topology.nodes().collect();
        let mut net = RtNetwork::builder()
            .topology(topology)
            .router(KShortestRouter::new(3))
            .multihop_dps(if rng.chance(0.5) {
                MultiHopDps::Asymmetric
            } else {
                MultiHopDps::Symmetric
            })
            .build()
            .expect("generated fabric builds");
        // A handful of random channel requests; rejections are fine (that
        // is admission doing its job), admitted ones must deliver.
        let mut admitted = Vec::new();
        for _ in 0..6 {
            let src = nodes[rng.below(nodes.len() as u64) as usize];
            let mut dst = nodes[rng.below(nodes.len() as u64) as usize];
            if dst == src {
                dst = nodes[(nodes.iter().position(|&n| n == src).unwrap() + 1) % nodes.len()];
            }
            let spec = RtChannelSpec::new(
                Slots::new(rng.range_inclusive(60, 140)),
                Slots::new(rng.range_inclusive(1, 3)),
                Slots::new(rng.range_inclusive(30, 60)),
            )
            .expect("generated spec is valid");
            if let Some(tx) = net.establish_channel(src, dst, spec).unwrap() {
                admitted.push((src, tx.id));
            }
        }
        let start = net.now() + Duration::from_millis(1);
        for &(src, id) in &admitted {
            net.send_periodic(src, id, 5, 600, start).unwrap();
        }
        net.run_to_completion().unwrap();
        let stats = net.simulator().stats();
        assert!(
            stats.all_deadlines_met(),
            "seed {seed}: {} admitted channels missed deadlines ({})",
            admitted.len(),
            stats.summary()
        );
        assert!(net.received_messages().iter().all(|m| !m.missed_deadline));
        for &(_, id) in &admitted {
            let bound = net.channel_deadline_bound(id).expect("admitted channel");
            if let Some(ch) = stats.channel(id) {
                assert!(
                    ch.max_latency <= bound,
                    "seed {seed}: channel {id} worst {} exceeds bound {bound}",
                    ch.max_latency
                );
            }
        }
        // Conservation holds for the full stack too (handshake frames
        // included), and the full stack leaks no pooled buffers either.
        assert_eq!(
            net.simulator().injected_count(),
            stats.total_delivered() + stats.total_dropped(),
            "seed {seed}: full-stack conservation violated ({})",
            stats.summary()
        );
        assert_eq!(
            net.simulator().arena_outstanding(),
            0,
            "seed {seed}: full-stack arena buffers leaked"
        );
    }
}

// --- structural routing and incremental rebuilds --------------------------

/// On every healthy regular fabric, the table-free [`StructuralRouter`]
/// must be indistinguishable from the tabled [`ShortestPathRouter`]: the
/// closed-form next hops reproduce the lex-min BFS table byte for byte.
#[test]
fn structural_router_matches_the_table_on_healthy_fabrics() {
    let fabrics: Vec<(String, Topology)> = vec![
        ("fat_tree(4)".into(), Topology::fat_tree(4).unwrap()),
        ("fat_tree(6)".into(), Topology::fat_tree(6).unwrap()),
        ("fat_tree(16)".into(), Topology::fat_tree(16).unwrap()),
        (
            "torus_nd[3,4]".into(),
            Topology::torus_nd(&[3, 4], 1).unwrap(),
        ),
        (
            "torus_nd[2,2,3]".into(),
            Topology::torus_nd(&[2, 2, 3], 1).unwrap(),
        ),
        (
            "torus_nd[4,4,4]".into(),
            Topology::torus_nd(&[4, 4, 4], 1).unwrap(),
        ),
    ];
    for (name, topology) in &fabrics {
        let router = StructuralRouter::new();
        let structural = router.next_hop_table(topology);
        let tabled = ShortestPathRouter::new().next_hop_table(topology);
        assert_eq!(
            *structural, *tabled,
            "{name}: structural next hops diverge from the lex-min table"
        );
        let stats = router.cache_stats();
        assert_eq!(
            stats.full_rebuilds, 0,
            "{name}: the structural router must never run a from-scratch build"
        );
        assert_eq!(
            stats.incremental_rebuilds, 0,
            "{name}: healthy structural tables need no rebuild at all"
        );
    }
}

/// Under a single trunk cut the structural detour overlay must still agree
/// with a from-scratch lex-min table of the degraded fabric — for *every*
/// trunk, so both the closed-form case (lex-min tree never crossed the
/// trunk) and the degraded-column case are exercised.
#[test]
fn structural_detours_match_the_degraded_table_for_every_cut() {
    for (name, healthy) in [
        ("fat_tree(4)", Topology::fat_tree(4).unwrap()),
        ("torus_nd[3,3]", Topology::torus_nd(&[3, 3], 1).unwrap()),
    ] {
        let trunks: Vec<(SwitchId, SwitchId)> = healthy.trunks().collect();
        for &(a, b) in &trunks {
            let mut degraded = healthy.clone();
            degraded.fail_trunk(a, b).unwrap();
            let structural = StructuralRouter::new().next_hop_table(&degraded);
            let scratch = ShortestPathRouter::new().next_hop_table(&degraded);
            assert_eq!(
                *structural, *scratch,
                "{name}: detour overlay diverges after cutting {a}-{b}"
            );
        }
    }
}

/// The incremental single-delta rebuild must be invisible: after any cut
/// (including disconnecting ones) and after the matching repair, the
/// cached table equals a from-scratch build — across the full random
/// fabric matrix, with the cache counters proving the cheap path ran.
#[test]
fn incremental_rebuilds_match_from_scratch_across_seeds() {
    let mut incremental_seen = 0u64;
    for seed in 0..SEEDS {
        let mut rng = Xoshiro256::new(0x10c4_e000 ^ seed);
        let topology = random_topology(&mut rng);
        let trunks: Vec<(SwitchId, SwitchId)> = topology.trunks().collect();
        let (a, b) = trunks[rng.below(trunks.len() as u64) as usize];

        // Healthy -> cut: the cache must take the single-delta path and
        // still match a from-scratch build of the degraded fabric.
        let cache = NextHopCache::new();
        let healthy_cached = cache.get(&topology);
        let mut degraded = topology.clone();
        degraded.fail_trunk(a, b).unwrap();
        let after_cut = cache.get(&degraded);
        assert_eq!(
            *after_cut,
            *NextHopCache::new().get(&degraded),
            "seed {seed}: incremental cut {a}-{b} diverges from scratch"
        );
        let stats = cache.stats();
        assert_eq!(stats.full_rebuilds, 1, "seed {seed}: cut fell back to full");
        incremental_seen += stats.incremental_rebuilds;

        // Cut -> repair, through a cache that never saw the healthy
        // fabric: the repair delta must reproduce the healthy table.
        let repair_cache = NextHopCache::new();
        repair_cache.get(&degraded);
        let mut repaired = degraded.clone();
        repaired.repair_trunk(a, b).unwrap();
        let after_repair = repair_cache.get(&repaired);
        assert_eq!(
            *after_repair, *healthy_cached,
            "seed {seed}: incremental repair {a}-{b} diverges from the healthy table"
        );
        let stats = repair_cache.stats();
        assert_eq!(
            stats.full_rebuilds, 1,
            "seed {seed}: repair fell back to full"
        );
        incremental_seen += stats.incremental_rebuilds;
    }
    assert_eq!(
        incremental_seen,
        2 * SEEDS,
        "every cut and every repair must take the incremental path"
    );
}
