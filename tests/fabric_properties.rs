//! Randomized property harness for the fabric: random connected topologies
//! and random workloads, checked against invariants that must hold on
//! *every* fabric — not just the hand-picked scenarios of the unit tests.
//!
//! The invariants, each checked across a fixed seed matrix (seeds `0..32`,
//! via the in-repo deterministic PRNG, in the spirit of `rt-edf`'s
//! `testgen`):
//!
//! 1. **Frame conservation** — once the event queue drains, every injected
//!    frame is accounted for: `injected = delivered + dropped` (best-effort
//!    overflow, unroutable, failed-link and released-channel drops), with
//!    and without fault injection.
//! 2. **Scheduler equivalence** — the calendar queue and the binary heap
//!    produce byte-for-byte identical delivery sequences and statistics on
//!    the same random fabric + workload (+ fault script).
//! 3. **Admission soundness** — channels admitted by the per-link EDF
//!    analysis never miss a deadline on the wire, and every measured
//!    latency stays below the hop-aware Eq. 18.1 bound
//!    `d·slot + T_latency(h)`.
//! 4. **Arena hygiene** — with the pooled frame store, every buffer taken
//!    from the [`rt_frames::FrameArena`] is returned once the fabric
//!    drains: `arena_outstanding() == 0` after every scenario, faulted or
//!    not. Delivery frees; every drop path must free too. The pooled and
//!    owned stores must also be observationally identical.
//! 5. **Churn determinism** — the long-running admission churn process
//!    replays a byte-identical admission trace from the same seed, and the
//!    central and distributed control planes produce that same trace,
//!    including under a scripted trunk cut + repair.
//!
//! A failing seed reproduces exactly: every random choice derives from the
//! seed through `Xoshiro256`.

use switched_rt_ethernet::core::{MultiHopDps, RtChannelSpec, RtNetwork};
use switched_rt_ethernet::netsim::{
    Delivery, FaultScript, FrameInjection, FrameStoreKind, SchedulerKind, SimConfig, Simulator,
};
use switched_rt_ethernet::types::{
    ChannelId, Duration, KShortestRouter, MacAddr, ManagerPlacement, NodeId, SimTime, Slots,
    SwitchId, Topology, Xoshiro256,
};

/// The fixed seed matrix: every invariant below holds for all of these.
const SEEDS: u64 = 32;

// --- generators -----------------------------------------------------------

/// A random *connected* topology: a random spanning tree over 2–5 switches,
/// up to two extra (redundant) trunks, and 1–3 nodes per switch.
fn random_topology(rng: &mut Xoshiro256) -> Topology {
    let switches = rng.range_inclusive(2, 5) as u32;
    let mut t = Topology::new();
    for s in 0..switches {
        t.add_switch(SwitchId::new(s));
    }
    // Spanning tree: each switch hangs off a random earlier one.
    for s in 1..switches {
        let parent = rng.below(u64::from(s)) as u32;
        t.add_trunk(SwitchId::new(s), SwitchId::new(parent))
            .expect("tree trunks are fresh");
    }
    // Redundant extras (duplicates and self-loops are simply skipped).
    for _ in 0..rng.below(3) {
        let a = rng.below(u64::from(switches)) as u32;
        let b = rng.below(u64::from(switches)) as u32;
        if a != b {
            let _ = t.add_trunk(SwitchId::new(a), SwitchId::new(b));
        }
    }
    let mut next_node = 0u32;
    for s in 0..switches {
        for _ in 0..rng.range_inclusive(1, 3) {
            t.attach_node(NodeId::new(next_node), SwitchId::new(s))
                .expect("fresh node");
            next_node += 1;
        }
    }
    t
}

fn be_frame(from: NodeId, to: NodeId, payload_len: usize) -> rt_frames::EthernetFrame {
    let udp = rt_frames::UdpHeader::new(1000, 2000, payload_len).unwrap();
    let ip = rt_frames::Ipv4Header::udp(
        switched_rt_ethernet::types::Ipv4Address::for_node(from),
        switched_rt_ethernet::types::Ipv4Address::for_node(to),
        8 + payload_len,
    )
    .unwrap();
    let mut bytes = ip.encode();
    bytes.extend_from_slice(&udp.encode());
    bytes.extend(std::iter::repeat_n(0x5au8, payload_len));
    rt_frames::EthernetFrame::new(
        MacAddr::for_node(to),
        MacAddr::for_node(from),
        switched_rt_ethernet::types::constants::ETHERTYPE_IPV4,
        bytes,
    )
    .unwrap()
}

fn rt_frame(
    from: NodeId,
    to: NodeId,
    channel: u16,
    deadline: SimTime,
    payload_len: usize,
) -> rt_frames::EthernetFrame {
    rt_frames::rt_data::RtDataFrame {
        eth_src: MacAddr::for_node(from),
        eth_dst: MacAddr::for_node(to),
        stamp: rt_frames::rt_data::DeadlineStamp::new(deadline.as_nanos(), ChannelId::new(channel))
            .unwrap(),
        src_port: 5000,
        dst_port: 5001,
        payload: vec![0u8; payload_len],
    }
    .into_ethernet()
    .unwrap()
}

/// A random mixed workload over the attached nodes: RT frames with random
/// channels/deadlines plus best-effort frames, at random times within ~2 ms.
fn random_workload(rng: &mut Xoshiro256, topology: &Topology) -> Vec<FrameInjection> {
    let nodes: Vec<NodeId> = topology.nodes().collect();
    let frames = rng.range_inclusive(40, 160);
    let mut batch = Vec::with_capacity(frames as usize);
    for _ in 0..frames {
        let src = nodes[rng.below(nodes.len() as u64) as usize];
        let mut dst = nodes[rng.below(nodes.len() as u64) as usize];
        if dst == src {
            dst = nodes[(nodes.iter().position(|&n| n == src).unwrap() + 1) % nodes.len()];
        }
        let at = SimTime::from_nanos(rng.below(2_000_000));
        let payload = rng.range_inclusive(50, 1400) as usize;
        let eth = if rng.chance(0.5) {
            let channel = rng.range_inclusive(1, 6) as u16;
            let deadline = at + Duration::from_nanos(rng.range_inclusive(50_000, 3_000_000));
            rt_frame(src, dst, channel, deadline, payload)
        } else {
            be_frame(src, dst, payload)
        };
        batch.push(FrameInjection { node: src, eth, at });
    }
    batch
}

/// A random fault script over the topology's trunks: one cut somewhere in
/// the workload window, sometimes followed by a repair.
fn random_faults(rng: &mut Xoshiro256, topology: &Topology) -> FaultScript {
    let trunks: Vec<(SwitchId, SwitchId)> = topology.trunks().collect();
    if trunks.is_empty() {
        return FaultScript::new();
    }
    let (a, b) = trunks[rng.below(trunks.len() as u64) as usize];
    let cut_at = SimTime::from_nanos(rng.range_inclusive(100_000, 1_500_000));
    let mut script = FaultScript::new().fail_at(cut_at, a, b);
    if rng.chance(0.5) {
        script = script.repair_at(cut_at + Duration::from_millis(1), a, b);
    }
    script
}

// --- invariant drivers ----------------------------------------------------

type Snapshot = Vec<(u64, NodeId, u64, Vec<u8>)>;

fn snapshot(deliveries: &[Delivery]) -> Snapshot {
    deliveries
        .iter()
        .map(|d| {
            (
                d.frame.get(),
                d.receiver,
                d.delivered_at.as_nanos(),
                d.eth.encode(),
            )
        })
        .collect()
}

/// Run one seed's workload (and optional fault script) on one scheduler and
/// frame store; assert conservation and arena hygiene; return the
/// observable outcome.
fn drive(
    seed: u64,
    scheduler: SchedulerKind,
    frame_store: FrameStoreKind,
    with_faults: bool,
) -> (Snapshot, String) {
    let mut rng = Xoshiro256::new(seed);
    let topology = random_topology(&mut rng);
    let workload = random_workload(&mut rng, &topology);
    let faults = random_faults(&mut rng, &topology);
    let config = SimConfig {
        scheduler,
        frame_store,
        ..SimConfig::default()
    };
    let mut sim = Simulator::with_topology(config, topology).expect("generated fabric is valid");
    sim.inject_batch(workload).expect("workload is valid");
    if with_faults {
        sim.schedule_faults(&faults).expect("faults are in-window");
    }
    sim.run_to_idle();
    let stats = sim.stats();
    assert_eq!(
        sim.injected_count(),
        stats.total_delivered() + stats.total_dropped(),
        "seed {seed}: conservation violated ({} injected, {} delivered, {} dropped; {})",
        sim.injected_count(),
        stats.total_delivered(),
        stats.total_dropped(),
        stats.summary(),
    );
    assert_eq!(stats.clamped_events, 0, "seed {seed}: causality violated");
    // Invariant 4: once the fabric drains, every pooled buffer is back in
    // the free list — delivered frames free on decode, dropped frames free
    // at their drop site. A leak here means some drop path forgot
    // `discard_frame`.
    assert_eq!(
        sim.arena_outstanding(),
        0,
        "seed {seed}: {} arena buffers leaked after drain ({})",
        sim.arena_outstanding(),
        stats.summary(),
    );
    (snapshot(&sim.poll_deliveries()), sim.stats().summary())
}

// --- the properties -------------------------------------------------------

/// Invariants 1 + 2 + 4 on fault-free fabrics: conservation and arena
/// hygiene on every seed, heap/calendar byte-for-byte equivalence, and
/// pooled/owned frame-store equivalence.
#[test]
fn random_fabrics_conserve_frames_and_are_scheduler_invariant() {
    for seed in 0..SEEDS {
        let heap = drive(seed, SchedulerKind::Heap, FrameStoreKind::Arena, false);
        let calendar = drive(seed, SchedulerKind::Calendar, FrameStoreKind::Arena, false);
        assert_eq!(heap, calendar, "seed {seed}: schedulers diverge");
        let owned = drive(seed, SchedulerKind::Calendar, FrameStoreKind::Owned, false);
        assert_eq!(calendar, owned, "seed {seed}: frame stores diverge");
    }
}

/// Invariants 1 + 2 + 4 *under fault injection*: a scripted trunk cut (and
/// sometimes a repair) mid-workload must neither lose track of a frame (or
/// a pooled buffer) nor introduce any scheduler- or store-dependent
/// behaviour.
#[test]
fn random_fabrics_with_faults_conserve_frames_and_are_scheduler_invariant() {
    for seed in 0..SEEDS {
        let heap = drive(seed, SchedulerKind::Heap, FrameStoreKind::Arena, true);
        let calendar = drive(seed, SchedulerKind::Calendar, FrameStoreKind::Arena, true);
        assert_eq!(
            heap, calendar,
            "seed {seed}: schedulers diverge under faults"
        );
        let owned = drive(seed, SchedulerKind::Calendar, FrameStoreKind::Owned, true);
        assert_eq!(
            calendar, owned,
            "seed {seed}: frame stores diverge under faults"
        );
    }
}

/// Invariant 4: on fault-free random fabrics, the *distributed* control
/// plane (per-switch slack ledgers, two-phase reservation in control frames
/// that traverse the wire) admits the **identical** channel set as the
/// central [`FabricChannelManager`] oracle — same ids, same routes, same
/// per-link deadline splits, same rejections — and the admitted channels'
/// data frames deliver byte-for-byte identically.
#[test]
fn central_and_distributed_control_planes_are_equivalent_on_random_fabrics() {
    for seed in 0..SEEDS {
        let drive = |placement: ManagerPlacement| {
            let mut rng = Xoshiro256::new(0xd15c_0000 ^ seed);
            let topology = random_topology(&mut rng);
            let nodes: Vec<NodeId> = topology.nodes().collect();
            let mut net = RtNetwork::builder()
                .topology(topology)
                .router(KShortestRouter::new(3))
                .multihop_dps(if rng.chance(0.5) {
                    MultiHopDps::Asymmetric
                } else {
                    MultiHopDps::Symmetric
                })
                .manager_placement(placement)
                .build()
                .expect("generated fabric builds");
            // A random request sequence sized to provoke both admissions
            // and rejections (the trunks of the small fabrics saturate).
            let mut admitted = Vec::new();
            let mut verdicts = Vec::new();
            for _ in 0..10 {
                let src = nodes[rng.below(nodes.len() as u64) as usize];
                let mut dst = nodes[rng.below(nodes.len() as u64) as usize];
                if dst == src {
                    dst = nodes[(nodes.iter().position(|&n| n == src).unwrap() + 1) % nodes.len()];
                }
                let spec = RtChannelSpec::new(
                    Slots::new(rng.range_inclusive(60, 140)),
                    Slots::new(rng.range_inclusive(1, 3)),
                    Slots::new(rng.range_inclusive(30, 60)),
                )
                .expect("generated spec is valid");
                match net.establish_channel(src, dst, spec).unwrap() {
                    Some(tx) => {
                        let route = net
                            .manager()
                            .channel_route(tx.id)
                            .expect("admitted channel has a route");
                        verdicts.push(true);
                        admitted.push((src, tx.id, route.path.clone(), route.link_deadlines));
                    }
                    None => verdicts.push(false),
                }
            }
            // Periodic traffic on a fixed absolute timeline (identical in
            // both worlds, regardless of how long establishment took).
            let start = SimTime::from_millis(50);
            assert!(
                net.now() < start,
                "seed {seed}: establishment must finish before the data timeline"
            );
            for &(src, id, _, _) in &admitted {
                net.send_periodic(src, id, 5, 600, start).unwrap();
            }
            net.run_to_completion().unwrap();
            let stats = net.simulator().stats();
            assert_eq!(
                net.simulator().injected_count(),
                stats.total_delivered() + stats.total_dropped(),
                "seed {seed}: conservation violated under {placement:?} ({})",
                stats.summary()
            );
            assert!(
                stats.all_deadlines_met(),
                "seed {seed}: {placement:?} missed"
            );
            assert_eq!(
                net.simulator().arena_outstanding(),
                0,
                "seed {seed}: arena buffers leaked under {placement:?}"
            );
            let deliveries: Vec<_> = net
                .received_messages()
                .iter()
                .map(|m| {
                    (
                        m.receiver,
                        m.message.channel,
                        m.message.payload.clone(),
                        m.delivered_at.as_nanos(),
                    )
                })
                .collect();
            (verdicts, admitted, deliveries)
        };
        let central = drive(ManagerPlacement::Central);
        let distributed = drive(ManagerPlacement::Distributed);
        assert_eq!(
            central.0, distributed.0,
            "seed {seed}: accept/reject verdicts diverge"
        );
        assert_eq!(
            central.1, distributed.1,
            "seed {seed}: admitted channel sets diverge (ids / routes / deadline splits)"
        );
        assert_eq!(
            central.2, distributed.2,
            "seed {seed}: data delivery diverges byte-for-byte"
        );
    }
}

/// Invariant 5: the churn process (the long-running admission soak of
/// `rt-traffic`) is **deterministic and placement-invariant** on every
/// random fabric: the same seed replays a byte-identical admission trace,
/// and the central oracle and the distributed per-switch control plane
/// produce that *same* trace — same admits, same rejects, same channel
/// ids, same release order — arrival by arrival, including under a
/// scripted trunk cut + repair whenever the fabric has a redundant trunk.
#[test]
fn churn_is_deterministic_and_placement_invariant_on_random_fabrics() {
    use std::sync::Arc;
    use switched_rt_ethernet::core::{
        DistributedChannelManager, FabricChannelManager, MultiHopAdmission,
    };
    use switched_rt_ethernet::traffic::{ChurnConfig, ChurnProcess};

    /// Is the topology still connected with trunk `(a, b)` removed?  Only
    /// such trunks may be cut: the churn process treats an unroutable
    /// establishment as a hard error, not a rejection.
    fn connected_without(topology: &Topology, cut: (SwitchId, SwitchId)) -> bool {
        let switches: Vec<SwitchId> = topology.switches().collect();
        let mut reached = vec![switches[0]];
        let mut frontier = vec![switches[0]];
        while let Some(s) = frontier.pop() {
            for (a, b) in topology.trunks() {
                if (a, b) == cut || (b, a) == cut {
                    continue;
                }
                let next = if a == s {
                    b
                } else if b == s {
                    a
                } else {
                    continue;
                };
                if !reached.contains(&next) {
                    reached.push(next);
                    frontier.push(next);
                }
            }
        }
        reached.len() == switches.len()
    }

    for seed in 0..SEEDS {
        let mut rng = Xoshiro256::new(0xc4a8_0000 ^ seed);
        let topology = random_topology(&mut rng);
        let dps = if rng.chance(0.5) {
            MultiHopDps::Asymmetric
        } else {
            MultiHopDps::Symmetric
        };
        let mut config = ChurnConfig::new(seed)
            .windows(100, 400)
            .load(1.0, rng.range_inclusive(10, 60) as f64);
        // Cut (and later repair) a redundant trunk mid-run when the fabric
        // has one — fail-over and repair re-optimisation must be just as
        // deterministic as plain admission.
        if let Some((a, b)) = topology
            .trunks()
            .find(|&trunk| connected_without(&topology, trunk))
        {
            config = config.cut_at(150, a, b).repair_at(300, a, b);
        }
        let process = ChurnProcess::new(config, &topology).expect("generated config is valid");

        let central = |process: &ChurnProcess| {
            let mut manager = FabricChannelManager::new(MultiHopAdmission::with_router(
                topology.clone(),
                dps,
                Arc::new(KShortestRouter::new(3)),
            ));
            process.run(&mut manager).expect("churn run completes")
        };
        let first = central(&process);
        let second = central(&process);
        assert_eq!(
            first.trace, second.trace,
            "seed {seed}: same seed must replay a byte-identical trace"
        );
        assert_eq!(first.trace_hash, second.trace_hash, "seed {seed}");

        let mut manager = DistributedChannelManager::new(
            topology.clone(),
            dps,
            Arc::new(KShortestRouter::new(3)),
        );
        let distributed = process.run(&mut manager).expect("churn run completes");
        assert_eq!(
            first.trace, distributed.trace,
            "seed {seed}: central and distributed admission traces diverge"
        );
        assert_eq!(
            first.trace_hash, distributed.trace_hash,
            "seed {seed}: trace hashes diverge"
        );
        assert!(
            first.attempts == 500 && first.admitted > 0,
            "seed {seed}: the run must admit something ({} attempts, {} admitted)",
            first.attempts,
            first.admitted
        );
    }
}

/// Invariant 3: on random fabrics, every channel the analysis admits keeps
/// its promise on the wire — zero deadline misses and every latency within
/// the hop-aware Eq. 18.1 bound.
#[test]
fn admitted_channels_never_miss_deadlines_on_random_fabrics() {
    for seed in 0..SEEDS {
        let mut rng = Xoshiro256::new(0x5eed_0000 ^ seed);
        let topology = random_topology(&mut rng);
        let nodes: Vec<NodeId> = topology.nodes().collect();
        let mut net = RtNetwork::builder()
            .topology(topology)
            .router(KShortestRouter::new(3))
            .multihop_dps(if rng.chance(0.5) {
                MultiHopDps::Asymmetric
            } else {
                MultiHopDps::Symmetric
            })
            .build()
            .expect("generated fabric builds");
        // A handful of random channel requests; rejections are fine (that
        // is admission doing its job), admitted ones must deliver.
        let mut admitted = Vec::new();
        for _ in 0..6 {
            let src = nodes[rng.below(nodes.len() as u64) as usize];
            let mut dst = nodes[rng.below(nodes.len() as u64) as usize];
            if dst == src {
                dst = nodes[(nodes.iter().position(|&n| n == src).unwrap() + 1) % nodes.len()];
            }
            let spec = RtChannelSpec::new(
                Slots::new(rng.range_inclusive(60, 140)),
                Slots::new(rng.range_inclusive(1, 3)),
                Slots::new(rng.range_inclusive(30, 60)),
            )
            .expect("generated spec is valid");
            if let Some(tx) = net.establish_channel(src, dst, spec).unwrap() {
                admitted.push((src, tx.id));
            }
        }
        let start = net.now() + Duration::from_millis(1);
        for &(src, id) in &admitted {
            net.send_periodic(src, id, 5, 600, start).unwrap();
        }
        net.run_to_completion().unwrap();
        let stats = net.simulator().stats();
        assert!(
            stats.all_deadlines_met(),
            "seed {seed}: {} admitted channels missed deadlines ({})",
            admitted.len(),
            stats.summary()
        );
        assert!(net.received_messages().iter().all(|m| !m.missed_deadline));
        for &(_, id) in &admitted {
            let bound = net.channel_deadline_bound(id).expect("admitted channel");
            if let Some(ch) = stats.channel(id) {
                assert!(
                    ch.max_latency <= bound,
                    "seed {seed}: channel {id} worst {} exceeds bound {bound}",
                    ch.max_latency
                );
            }
        }
        // Conservation holds for the full stack too (handshake frames
        // included), and the full stack leaks no pooled buffers either.
        assert_eq!(
            net.simulator().injected_count(),
            stats.total_delivered() + stats.total_dropped(),
            "seed {seed}: full-stack conservation violated ({})",
            stats.summary()
        );
        assert_eq!(
            net.simulator().arena_outstanding(),
            0,
            "seed {seed}: full-stack arena buffers leaked"
        );
    }
}
