//! Shared test harness: drive a [`ChannelManager`] through the real control
//! protocol one frame at a time, with full control over *when* each frame
//! lands — the instrument for injecting faults between handshake phases
//! and for advancing simulated time past reservation leases.
//!
//! The wire simulator always pumps a handshake to completion; this harness
//! deliberately does not.  Tests pop frames one by one, interleave trunk
//! cuts, switch kills, repairs and lease sweeps at exact points of the
//! two-phase reservation, and then settle the manager to quiescence.

// Each integration-test target compiles its own copy of this module and
// uses a different subset of the harness, so some methods are always
// "dead" in any single target.
#![allow(dead_code)]

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use switched_rt_ethernet::core::manager::SwitchAction;
use switched_rt_ethernet::core::protocol::ChannelRequest;
use switched_rt_ethernet::core::{ChannelManager, RtChannelSpec};
use switched_rt_ethernet::frames::rt_response::ResponseVerdict;
use switched_rt_ethernet::frames::{Frame, RequestFrame, ResponseFrame};
use switched_rt_ethernet::types::{
    ChannelId, ConnectionRequestId, MacAddr, NodeId, RtResult, SimTime, SwitchId, Topology,
};

/// One queued control-plane delivery: which switch receives the frame, and
/// who it came from.
pub type Pending = (SwitchId, NodeId, Frame);

/// Frame-at-a-time driver for a [`ChannelManager`].
pub struct ControlHarness {
    /// Node → access switch, for addressing destination responses.
    access: BTreeMap<NodeId, SwitchId>,
    /// Control frames awaiting delivery, in wire order.
    queue: VecDeque<Pending>,
    /// Forwarded requests the destination has not answered yet.
    forwarded: VecDeque<(NodeId, RequestFrame)>,
    /// Final verdicts, in arrival order: the admitted id, or `None`.
    pub verdicts: Vec<Option<ChannelId>>,
    /// Switches killed mid-run: frames addressed to them are discarded,
    /// exactly as the wire would lose them.
    dead: BTreeSet<SwitchId>,
}

impl ControlHarness {
    pub fn new(topology: &Topology) -> Self {
        let access = topology
            .nodes()
            .map(|n| (n, topology.switch_of(n).expect("attached node")))
            .collect();
        ControlHarness {
            access,
            queue: VecDeque::new(),
            forwarded: VecDeque::new(),
            verdicts: Vec::new(),
            dead: BTreeSet::new(),
        }
    }

    /// Queue a fresh channel request at the source's access switch.
    pub fn submit(
        &mut self,
        source: NodeId,
        destination: NodeId,
        spec: RtChannelSpec,
        request_id: ConnectionRequestId,
    ) {
        let at = self.access[&source];
        let frame = ChannelRequest {
            source,
            destination,
            spec,
            request_id,
        }
        .to_frame();
        self.queue.push_back((at, source, Frame::Request(frame)));
    }

    /// Frames still awaiting delivery.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Forwarded requests awaiting a destination verdict.
    pub fn awaiting_answer(&self) -> usize {
        self.forwarded.len()
    }

    /// Mark a switch dead: queued and future frames addressed to it are
    /// silently dropped (the wire loses them).
    pub fn kill(&mut self, switch: SwitchId) {
        self.dead.insert(switch);
        self.queue.retain(|(at, _, _)| *at != switch);
    }

    /// Deliver the oldest queued frame at `now`.  Returns `false` when the
    /// queue is empty.
    pub fn step<M: ChannelManager + ?Sized>(
        &mut self,
        manager: &mut M,
        now: SimTime,
    ) -> RtResult<bool> {
        let Some((at, from, frame)) = self.queue.pop_front() else {
            return Ok(false);
        };
        if self.dead.contains(&at) {
            return Ok(true);
        }
        let outcome = manager.handle_frame_at(at, from, &frame, now)?;
        self.absorb(outcome.emissions);
        Ok(true)
    }

    /// Deliver every queued frame (including follow-ups) at `now`.
    pub fn drain<M: ChannelManager + ?Sized>(
        &mut self,
        manager: &mut M,
        now: SimTime,
    ) -> RtResult<()> {
        while self.step(manager, now)? {}
        Ok(())
    }

    /// The destination answers the oldest forwarded request.  Returns
    /// `false` if none is pending.
    pub fn answer(&mut self, accept: bool) -> bool {
        let Some((to, frame)) = self.forwarded.pop_front() else {
            return false;
        };
        let response = ResponseFrame {
            rt_channel_id: frame.rt_channel_id,
            switch_mac: MacAddr::for_switch(),
            verdict: if accept {
                ResponseVerdict::Accepted
            } else {
                ResponseVerdict::Rejected
            },
            connection_request_id: frame.connection_request_id,
        };
        let at = self.access[&to];
        self.queue.push_back((at, to, Frame::Response(response)));
        true
    }

    /// Pull the link-state frames a fault origin queued (after a
    /// `handle_link_failure` / `handle_switch_failure` / `handle_link_repair`
    /// call) into the delivery queue.
    pub fn flood<M: ChannelManager + ?Sized>(&mut self, manager: &mut M) {
        let drained = manager.drain_control();
        self.absorb(drained);
    }

    /// Run one lease sweep at exactly `now`, absorb its emissions and
    /// deliver everything queued (the sweep's follow-ups *and* any frame
    /// that was already in flight — which therefore lands *after* the
    /// sweep).
    pub fn tick<M: ChannelManager + ?Sized>(
        &mut self,
        manager: &mut M,
        now: SimTime,
    ) -> RtResult<()> {
        let outcome = manager.on_tick(now)?;
        self.absorb(outcome.emissions);
        self.drain(manager, now)
    }

    /// Fire every pending manager timeout (lease sweeps) in order, draining
    /// the wire after each, until the manager is quiescent.  Returns the
    /// final simulated time.
    pub fn settle<M: ChannelManager + ?Sized>(
        &mut self,
        manager: &mut M,
        mut now: SimTime,
    ) -> RtResult<SimTime> {
        self.drain(manager, now)?;
        while let Some(deadline) = manager.next_timeout() {
            now = deadline.max(now);
            let outcome = manager.on_tick(now)?;
            self.absorb(outcome.emissions);
            self.drain(manager, now)?;
        }
        Ok(now)
    }

    fn absorb(&mut self, emissions: Vec<(SwitchId, SwitchAction)>) {
        for (_, action) in emissions {
            match action {
                SwitchAction::ForwardRequest { to, frame } => {
                    self.forwarded.push_back((to, frame));
                }
                SwitchAction::SendResponse { frame, .. } => {
                    self.verdicts.push(match frame.verdict {
                        ResponseVerdict::Accepted => frame.rt_channel_id,
                        ResponseVerdict::Rejected => None,
                    });
                }
                SwitchAction::SendControl { to, frame } => {
                    if !self.dead.contains(&to) {
                        self.queue
                            .push_back((to, NodeId::SWITCH, Frame::Reservation(frame)));
                    }
                }
            }
        }
    }
}
