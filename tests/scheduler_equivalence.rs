//! Scheduler equivalence: the calendar queue must be *indistinguishable*
//! from the binary-heap reference on the wire.
//!
//! Determinism is the simulator's foundational contract — experiments are
//! reproducible because identical inputs give identical event sequences.
//! The calendar queue buys its throughput with a completely different
//! internal organisation (buckets, overflow list, resizes), so this suite
//! pins the contract: for every fabric shape the repo ships (star, line,
//! ring, leaf-spine) and for mixed RT + best-effort + control workloads,
//! both schedulers must produce byte-for-byte identical delivery sequences
//! — same frames, same receivers, same ports, same nanosecond timestamps,
//! in the same order — and identical statistics.

use switched_rt_ethernet::core::{MultiHopDps, RtChannelSpec, RtNetwork};
use switched_rt_ethernet::netsim::{Delivery, SchedulerKind, SimConfig, Simulator, TrafficSource};
use switched_rt_ethernet::traffic::{FabricScenario, ScenarioFrameSource};
use switched_rt_ethernet::types::{Duration, NodeId, SimTime};

/// Everything observable about one delivery, for exact comparison.
type DeliverySnapshot = (u64, NodeId, NodeId, u64, Option<u16>, Vec<u8>);

fn snapshot(deliveries: &[Delivery]) -> Vec<DeliverySnapshot> {
    deliveries
        .iter()
        .map(|d| {
            (
                d.frame.get(),
                d.receiver,
                d.source,
                d.delivered_at.as_nanos(),
                d.channel.map(|c| c.get()),
                d.eth.encode(),
            )
        })
        .collect()
}

fn sim_config(scheduler: SchedulerKind) -> SimConfig {
    SimConfig {
        scheduler,
        ..SimConfig::default()
    }
}

/// Drive `scenario` with a cross-switch RT workload on the given scheduler
/// and return the full delivery trace plus summary counters.
fn drive(
    scenario: &FabricScenario,
    scheduler: SchedulerKind,
    frames: u64,
) -> (Vec<DeliverySnapshot>, u64, String) {
    let mut sim = Simulator::with_topology(sim_config(scheduler), scenario.topology())
        .expect("scenario fabrics are valid");
    let mut source = ScenarioFrameSource::new(scenario.clone(), frames, Duration::from_micros(3))
        .payload_len(400);
    sim.inject_batch(source.drain_all()).unwrap();
    sim.run_to_idle();
    let deliveries = sim.poll_deliveries();
    (
        snapshot(&deliveries),
        sim.events_processed(),
        sim.stats().summary(),
    )
}

fn assert_equivalent(scenario: FabricScenario, frames: u64) {
    let (heap, heap_events, heap_stats) = drive(&scenario, SchedulerKind::Heap, frames);
    let (cal, cal_events, cal_stats) = drive(&scenario, SchedulerKind::Calendar, frames);
    assert_eq!(heap.len(), cal.len(), "delivery counts diverge");
    for (i, (h, c)) in heap.iter().zip(&cal).enumerate() {
        assert_eq!(h, c, "delivery {i} diverges between schedulers");
    }
    assert_eq!(heap_events, cal_events, "event counts diverge");
    assert_eq!(heap_stats, cal_stats, "statistics diverge");
}

#[test]
fn star_scenario_is_scheduler_invariant() {
    assert_equivalent(FabricScenario::line(1, 4, 4), 2_000);
}

#[test]
fn line_scenario_is_scheduler_invariant() {
    assert_equivalent(FabricScenario::line(4, 2, 2), 2_000);
}

#[test]
fn ring_scenario_is_scheduler_invariant() {
    assert_equivalent(FabricScenario::ring(4, 2, 2), 2_000);
}

#[test]
fn leaf_spine_scenario_is_scheduler_invariant() {
    assert_equivalent(FabricScenario::leaf_spine(3, 2, 2), 2_000);
}

/// The pull-driven path (windowed injection) must agree with the bulk path
/// on both schedulers — it reorders *when* frames are registered, which
/// must not change anything observable.
#[test]
fn pull_driven_injection_is_scheduler_invariant() {
    let scenario = FabricScenario::ring(4, 1, 1);
    let run = |scheduler: SchedulerKind| {
        let mut sim = Simulator::with_topology(sim_config(scheduler), scenario.topology()).unwrap();
        let mut source = ScenarioFrameSource::new(scenario.clone(), 500, Duration::from_micros(5));
        sim.run_with_source(&mut source, Duration::from_micros(400))
            .unwrap();
        assert!(source.is_exhausted());
        snapshot(&sim.poll_deliveries())
    };
    assert_eq!(run(SchedulerKind::Heap), run(SchedulerKind::Calendar));
}

/// Full-stack equivalence: establishment handshakes, per-hop schedules,
/// periodic RT data and best-effort cross traffic over a leaf-spine mesh,
/// byte-for-byte identical under both schedulers.
#[test]
fn full_stack_leaf_spine_run_is_scheduler_invariant() {
    let scenario = FabricScenario::leaf_spine(3, 2, 2);
    let run = |scheduler: SchedulerKind| {
        let mut net = RtNetwork::builder()
            .topology(scenario.topology())
            .scheduler(scheduler)
            .multihop_dps(MultiHopDps::Asymmetric)
            .build()
            .unwrap();
        let spec = RtChannelSpec::paper_default();
        let mut established = Vec::new();
        for request in scenario.cross_switch_requests(6, spec) {
            if let Some(tx) = net
                .establish_channel(request.source, request.destination, request.spec)
                .unwrap()
            {
                established.push((request.source, tx));
            }
        }
        assert!(
            !established.is_empty(),
            "the empty mesh must admit channels"
        );
        let start = net.now() + Duration::from_millis(1);
        for (source, tx) in &established {
            net.send_periodic(*source, tx.id, 8, 700, start).unwrap();
        }
        for k in 0..40u64 {
            net.send_best_effort(
                NodeId::new(0),
                NodeId::new(5),
                1400,
                start + Duration::from_micros(25 * k),
            )
            .unwrap();
        }
        net.run_to_completion().unwrap();
        let received: Vec<_> = net
            .received_messages()
            .iter()
            .map(|m| (m.receiver, m.delivered_at.as_nanos(), m.missed_deadline))
            .collect();
        (
            received,
            net.best_effort_received(),
            net.simulator().stats().summary(),
            net.now(),
        )
    };
    assert_eq!(run(SchedulerKind::Heap), run(SchedulerKind::Calendar));
}

/// A pathological timing mix — bursts of simultaneous frames, then a long
/// silence, then another burst — exercises the calendar queue's overflow
/// migration and resize paths inside a full simulation and must still match
/// the heap exactly.
#[test]
fn bursty_far_future_workload_is_scheduler_invariant() {
    struct Bursts {
        pending: Vec<switched_rt_ethernet::netsim::FrameInjection>,
        emitted: usize,
    }
    impl Bursts {
        fn new() -> Self {
            let scenario = FabricScenario::line(4, 2, 2);
            let mut pending = ScenarioFrameSource::new(scenario, 400, Duration::ZERO)
                .payload_len(200)
                .drain_all();
            // Burst k: 100 simultaneous frames at k * 250 ms.
            for (i, injection) in pending.iter_mut().enumerate() {
                injection.at = SimTime::from_millis(250 * (i / 100) as u64);
            }
            Bursts {
                pending,
                emitted: 0,
            }
        }
    }
    impl TrafficSource for Bursts {
        fn next_batch(
            &mut self,
            horizon: SimTime,
        ) -> Vec<switched_rt_ethernet::netsim::FrameInjection> {
            let mut out = Vec::new();
            while self.emitted < self.pending.len() && self.pending[self.emitted].at < horizon {
                out.push(self.pending[self.emitted].clone());
                self.emitted += 1;
            }
            out
        }

        fn is_exhausted(&self) -> bool {
            self.emitted >= self.pending.len()
        }
    }

    let run = |scheduler: SchedulerKind| {
        let scenario = FabricScenario::line(4, 2, 2);
        let mut sim = Simulator::with_topology(sim_config(scheduler), scenario.topology()).unwrap();
        let mut source = Bursts::new();
        sim.run_with_source(&mut source, Duration::from_millis(50))
            .unwrap();
        snapshot(&sim.poll_deliveries())
    };
    let heap = run(SchedulerKind::Heap);
    assert_eq!(heap.len(), 400);
    assert_eq!(heap, run(SchedulerKind::Calendar));
}
