//! Integration tests for the mesh redesign's acceptance bar: a cyclic
//! topology built through `RtNetworkBuilder` admits channels via
//! `ShortestPathRouter`, every measured worst-case delay on the simulated
//! wire stays within the hop-aware bound `d·slot + T_latency(h)` of the
//! *selected* route, and `EcmpRouter` is deterministic for a fixed seed.

use switched_rt_ethernet::core::{MultiHopDps, RtChannelSpec, RtNetwork};
use switched_rt_ethernet::traffic::FabricScenario;
use switched_rt_ethernet::types::{
    Duration, EcmpRouter, HopLink, NodeId, Route, ShortestPathRouter, Topology, TreeRouter,
};

/// Build-establish-drive-validate over a fabric; returns the routes taken.
fn drive_and_validate(
    mut net: RtNetwork,
    requests: &[(NodeId, NodeId)],
    messages: u64,
) -> Vec<Route> {
    let spec = RtChannelSpec::paper_default();
    let mut established = Vec::new();
    for &(source, destination) in requests {
        if let Some(tx) = net.establish_channel(source, destination, spec).unwrap() {
            established.push((source, tx));
        }
    }
    assert!(!established.is_empty(), "no channel admitted");
    let start = net.now() + Duration::from_millis(1);
    for (source, tx) in &established {
        net.send_periodic(*source, tx.id, messages, 1200, start)
            .unwrap();
    }
    net.run_to_completion().unwrap();

    let stats = net.simulator().stats();
    assert!(stats.rt_delivered > 0);
    assert_eq!(
        stats.total_deadline_misses, 0,
        "admitted traffic missed deadlines"
    );
    let mut routes = Vec::new();
    for (_, tx) in &established {
        let route = net.manager().channel_route(tx.id).expect("channel known");
        let bound = net.channel_deadline_bound(tx.id).expect("bound");
        let measured = stats.channel(tx.id).expect("frames delivered").max_latency;
        assert!(
            measured <= bound,
            "channel {} measured {measured} exceeds its {}-hop bound {bound}",
            tx.id,
            route.path.len(),
        );
        // The per-link deadlines of the selected route sum to d_i.
        let sum: u64 = route.link_deadlines.iter().map(|s| s.get()).sum();
        assert_eq!(sum, spec.deadline.get());
        routes.push(route.path);
    }
    routes
}

#[test]
fn ring_fabric_admits_and_meets_bounds_under_shortest_path_routing() {
    let fabric = FabricScenario::ring(4, 2, 2);
    assert!(!fabric.topology().is_tree(), "the ring must be cyclic");
    let net = RtNetwork::builder()
        .topology(fabric.topology())
        .router(ShortestPathRouter::new())
        .multihop_dps(MultiHopDps::Asymmetric)
        .build()
        .expect("a cyclic fabric builds with a mesh router");
    let requests: Vec<_> = fabric
        .cross_switch_requests(12, RtChannelSpec::paper_default())
        .iter()
        .map(|r| (r.source, r.destination))
        .collect();
    let routes = drive_and_validate(net, &requests, 10);
    // Shortest paths on the 4-ring never need more than 2 trunk hops.
    assert!(routes.iter().all(|r| r.len() <= 4));
    // The closing trunk is actually selected for end-of-line pairs.
    assert!(routes
        .iter()
        .any(|r| r.iter().any(|l| matches!(l, HopLink::Trunk { from, to }
            if (from.get() == 3 && to.get() == 0) || (from.get() == 0 && to.get() == 3)))));
}

#[test]
fn leaf_spine_fabric_works_with_ecmp_and_is_seed_deterministic() {
    let fabric = FabricScenario::leaf_spine(3, 2, 2);
    let requests: Vec<_> = fabric
        .cross_switch_requests(9, RtChannelSpec::paper_default())
        .iter()
        .map(|r| (r.source, r.destination))
        .collect();
    let run = |seed: u64| {
        let net = RtNetwork::builder()
            .topology(fabric.topology())
            .router(EcmpRouter::new(seed))
            .multihop_dps(MultiHopDps::Symmetric)
            .build()
            .expect("a 2-connected fabric builds with ECMP");
        drive_and_validate(net, &requests, 10)
    };
    let first = run(7);
    let second = run(7);
    assert_eq!(
        first, second,
        "a fixed ECMP seed must reproduce every route"
    );
    // Leaf-to-leaf ECMP routes cross exactly one spine: 4 links.
    assert!(first.iter().all(|r| r.len() == 4));
    // Across the request set, both spines carry channels (the point of
    // equal-cost spreading).
    let spine_of = |route: &Route| match route.links()[1] {
        HopLink::Trunk { to, .. } => to.get(),
        other => panic!("expected a trunk after the uplink, got {other:?}"),
    };
    let via_first_spine = first.iter().filter(|r| spine_of(r) == 3).count();
    assert!(
        via_first_spine > 0 && via_first_spine < first.len(),
        "ECMP must spread channels over both spines, got {via_first_spine}/{}",
        first.len()
    );
}

#[test]
fn tree_router_accepts_lines_and_rejects_rings_at_build_time() {
    assert!(RtNetwork::builder()
        .topology(Topology::line(3, 1))
        .router(TreeRouter::new())
        .build()
        .is_ok());
    assert!(RtNetwork::builder()
        .topology(Topology::ring(3, 1))
        .router(TreeRouter::new())
        .build()
        .is_err());
    // Disconnected fabrics are rejected whatever the router.
    let mut disconnected = Topology::new();
    disconnected.add_switch(switched_rt_ethernet::types::SwitchId::new(0));
    disconnected.add_switch(switched_rt_ethernet::types::SwitchId::new(1));
    assert!(RtNetwork::builder()
        .topology(disconnected)
        .router(ShortestPathRouter::new())
        .build()
        .is_err());
}
