//! Integration test for the multi-hop analogue of the Eq. 18.1 guarantee:
//! channels admitted through a 3-switch line topology by the multi-hop
//! admission control are established over the simulated wire (handshake
//! frames crossing the trunks), driven with periodic traffic, and every
//! simulated delivery must meet both its stamped deadline and the per-hop
//! analytical bound `d_i·slot + T_latency(hops)`.

use switched_rt_ethernet::core::RtNetwork;
use switched_rt_ethernet::core::{MultiHopAdmission, MultiHopDps, RtChannelSpec};
use switched_rt_ethernet::netsim::SimConfig;
use switched_rt_ethernet::traffic::FabricScenario;
use switched_rt_ethernet::types::{Duration, HopLink, SwitchId};

/// A 3-switch line with 2 masters and 2 slaves per switch.
fn scenario() -> FabricScenario {
    FabricScenario::line(3, 2, 2)
}

#[test]
fn admitted_multihop_channels_meet_deadline_and_analytical_bound() {
    let fabric = scenario();
    let spec = RtChannelSpec::paper_default();
    let requests = fabric.cross_switch_requests(12, spec);

    // Analytical reference: the same requests through a bare MultiHopAdmission.
    let mut analysis = MultiHopAdmission::new(fabric.topology(), MultiHopDps::Asymmetric);
    let analytically_accepted: Vec<bool> = requests
        .iter()
        .map(|r| {
            analysis
                .request(r.source, r.destination, r.spec)
                .expect("valid request")
                .is_ok()
        })
        .collect();
    assert!(
        analytically_accepted.iter().any(|&a| a),
        "the analysis must admit at least one channel"
    );

    // The same requests over the wire.
    let mut net = RtNetwork::builder()
        .topology(fabric.topology())
        .multihop_dps(MultiHopDps::Asymmetric)
        .build()
        .unwrap();
    let mut established = Vec::new();
    for (r, &expected) in requests.iter().zip(&analytically_accepted) {
        let tx = net
            .establish_channel(r.source, r.destination, r.spec)
            .expect("establishment cannot error on a known topology");
        assert_eq!(
            tx.is_some(),
            expected,
            "wire-level admission disagrees with the analysis for {r:?}"
        );
        if let Some(tx) = tx {
            established.push((r.source, tx));
        }
    }

    // Drive periodic traffic on every admitted channel.
    let start = net.now() + Duration::from_millis(1);
    for (source, tx) in &established {
        net.send_periodic(*source, tx.id, 10, 1200, start)
            .expect("channel was just established");
    }
    net.run_to_completion().expect("simulation completes");

    // Every delivery met its stamped deadline...
    let stats = net.simulator().stats();
    assert!(stats.rt_delivered > 0);
    assert_eq!(
        stats.total_deadline_misses, 0,
        "admitted multi-hop traffic missed stamped deadlines"
    );
    assert!(net.received_messages().iter().all(|m| !m.missed_deadline));

    // ...and every channel's worst-case latency respects the per-hop
    // analytical bound, which is strictly larger than the star bound for
    // cross-switch channels.
    for (_, tx) in &established {
        let channel = net
            .manager()
            .channel_route(tx.id)
            .expect("established channel is known to the manager");
        let hops = channel.path.len();
        assert!(hops >= 3, "cross-switch channels traverse at least 3 links");
        let bound = net
            .channel_deadline_bound(tx.id)
            .expect("established channel has a bound");
        let measured = stats
            .channel(tx.id)
            .expect("channel delivered frames")
            .max_latency;
        assert!(
            measured <= bound,
            "channel {} measured {measured} exceeds its {hops}-hop bound {bound}",
            tx.id
        );
        // The per-link deadlines of the route sum to the end-to-end deadline.
        let sum: u64 = channel.link_deadlines.iter().map(|s| s.get()).sum();
        assert_eq!(sum, spec.deadline.get());
    }

    // The handshake and data frames really crossed both trunks.
    for (from, to) in [(0u32, 1u32), (1, 2)] {
        assert!(
            net.simulator()
                .stats()
                .hop_link(HopLink::Trunk {
                    from: SwitchId::new(from),
                    to: SwitchId::new(to),
                })
                .is_some(),
            "trunk sw{from}->sw{to} carried no frames"
        );
    }
}

#[test]
fn multihop_traffic_survives_best_effort_cross_traffic_on_the_trunk() {
    let fabric = scenario();
    let spec = RtChannelSpec::paper_default();
    let mut net = RtNetwork::builder()
        .topology(fabric.topology())
        .multihop_dps(MultiHopDps::Asymmetric)
        .sim_config(SimConfig::default())
        .build()
        .unwrap();
    // One RT channel across the whole line: sw0 master -> sw2 slave.
    let tx = net
        .establish_channel(fabric.master(0, 0), fabric.slave(2, 0), spec)
        .unwrap()
        .expect("empty fabric accepts the channel");
    let start = net.now() + Duration::from_millis(1);
    net.send_periodic(fabric.master(0, 0), tx.id, 10, 1400, start)
        .unwrap();
    // Best-effort flood sharing both trunks (master on sw0 to slave on sw2).
    for k in 0..400u64 {
        net.send_best_effort(
            fabric.master(0, 1),
            fabric.slave(2, 1),
            1400,
            start + Duration::from_micros(40 * k),
        )
        .unwrap();
    }
    net.run_to_completion().unwrap();
    let stats = net.simulator().stats();
    assert_eq!(
        stats.total_deadline_misses, 0,
        "RT frames missed under BE load"
    );
    assert!(net.best_effort_received() > 0);
    let bound = net.channel_deadline_bound(tx.id).unwrap();
    let worst = stats.channel(tx.id).unwrap().max_latency;
    assert!(worst <= bound, "worst {worst} exceeds bound {bound}");
}
