//! Deterministic regressions for the sharded fabric simulator: the nasty
//! orderings and edge cases that the randomized 32-seed equivalence matrix
//! of `fabric_properties.rs` covers only probabilistically are pinned here
//! on hand-built scenarios, so a future change that breaks one of them
//! fails with a scenario small enough to debug by hand.
//!
//! Pinned behaviours:
//!
//! * two frames crossing the **same inter-shard trunk at the same
//!   timestamp** keep injection `seq` order (the staged-arrival sort key
//!   must reproduce the single-thread tie-break exactly),
//! * a `FailTrunk` on an **inter-shard** trunk drains the in-flight frames
//!   into `failed_link_dropped` — identically to the single-thread oracle,
//!   and without leaking a pooled buffer,
//! * a shard whose calendar goes **empty** still honours the global
//!   conservative window (the coordinator must not let the busy shard run
//!   ahead of the idle one's horizon),
//! * a configuration whose trunk **lookahead** exceeds the minimum frame
//!   transmission time is rejected at construction (conservative windows
//!   could otherwise reorder same-instant events),
//! * on a **multiswitch mixed workload** (RT + best-effort + control +
//!   link-state traffic and a mid-run trunk cut) the per-worker statistics
//!   merged by [`SimStats::merge_from`] reproduce the oracle's accumulator
//!   exactly — the satellite check for the stats-merge path.

use switched_rt_ethernet::frames::{
    EthernetFrame, RequestFrame, ReservationFrame, ReservationOp, ReservationReason, RtDataFrame,
};
use switched_rt_ethernet::netsim::{
    Delivery, FaultScript, FrameInjection, FrameStoreKind, SchedulerKind, ShardedSimulator,
    SimConfig, Simulator,
};
use switched_rt_ethernet::types::{
    constants::ETHERTYPE_IPV4, ChannelId, ConnectionRequestId, Duration, Ipv4Address, MacAddr,
    NodeId, RtError, ShardStrategy, SimTime, Slots, SwitchId, Topology,
};

// --- frame builders -------------------------------------------------------

fn be_frame(from: NodeId, to: NodeId, payload_len: usize) -> EthernetFrame {
    let udp = switched_rt_ethernet::frames::UdpHeader::new(1000, 2000, payload_len).unwrap();
    let ip = switched_rt_ethernet::frames::Ipv4Header::udp(
        Ipv4Address::for_node(from),
        Ipv4Address::for_node(to),
        8 + payload_len,
    )
    .unwrap();
    let mut bytes = ip.encode();
    bytes.extend_from_slice(&udp.encode());
    bytes.extend(std::iter::repeat_n(0x5au8, payload_len));
    EthernetFrame::new(
        MacAddr::for_node(to),
        MacAddr::for_node(from),
        ETHERTYPE_IPV4,
        bytes,
    )
    .unwrap()
}

fn rt_frame(
    from: NodeId,
    to: NodeId,
    channel: u16,
    deadline: SimTime,
    payload_len: usize,
) -> EthernetFrame {
    RtDataFrame {
        eth_src: MacAddr::for_node(from),
        eth_dst: MacAddr::for_node(to),
        stamp: switched_rt_ethernet::frames::rt_data::DeadlineStamp::new(
            deadline.as_nanos(),
            ChannelId::new(channel),
        )
        .unwrap(),
        src_port: 5000,
        dst_port: 5001,
        payload: vec![0u8; payload_len],
    }
    .into_ethernet()
    .unwrap()
}

/// A CONNECT control frame (Figure 18.3) from `from`, addressed to the
/// control plane — classified [`FramePeek::Control`] and accounted under
/// `control_frames`.
fn connect_frame(from: NodeId, to: NodeId, request_id: u8) -> EthernetFrame {
    RequestFrame {
        src_mac: MacAddr::for_node(from),
        dst_mac: MacAddr::for_node(to),
        src_ip: Ipv4Address::for_node(from),
        dst_ip: Ipv4Address::for_node(to),
        period: Slots::new(100),
        capacity: Slots::new(2),
        deadline: Slots::new(50),
        rt_channel_id: None,
        connection_request_id: ConnectionRequestId::new(request_id),
    }
    .into_ethernet(MacAddr::for_node(from), MacAddr::for_switch())
    .unwrap()
}

/// A link-state flood frame announcing trunk `(a, b)` liveness — classified
/// [`FramePeek::LinkState`] and accounted under `link_state_frames`, not
/// `control_frames`.
fn link_state_frame(from: NodeId, a: SwitchId, b: SwitchId, epoch: u64) -> EthernetFrame {
    ReservationFrame {
        op: ReservationOp::LinkState,
        reason: ReservationReason::None,
        coordinator: a,
        token: 1,
        source: from,
        destination: from,
        request_id: ConnectionRequestId::new(0),
        candidate: 0,
        hop: 0,
        channel: None,
        period: Slots::new(100),
        capacity: Slots::new(1),
        deadline: Slots::new(50),
        values: vec![u64::from(a.get()), u64::from(b.get()), 0, epoch],
    }
    .into_ethernet(MacAddr::for_node(from), MacAddr::for_switch())
    .unwrap()
}

// --- drivers --------------------------------------------------------------

type Snapshot = Vec<(u64, NodeId, u64, Vec<u8>)>;

fn snapshot(deliveries: &[Delivery]) -> Snapshot {
    deliveries
        .iter()
        .map(|d| {
            (
                d.frame.get(),
                d.receiver,
                d.delivered_at.as_nanos(),
                d.eth.encode(),
            )
        })
        .collect()
}

/// Run the workload (+ fault script) on the single-thread `HeapScheduler`
/// oracle; return the observable outcome.
fn oracle(
    topology: &Topology,
    workload: &[FrameInjection],
    faults: &FaultScript,
) -> (Snapshot, String, u64) {
    let config = SimConfig {
        scheduler: SchedulerKind::Heap,
        frame_store: FrameStoreKind::Arena,
        ..SimConfig::default()
    };
    let mut sim = Simulator::with_topology(config, topology.clone()).expect("fabric is valid");
    sim.inject_batch(workload.to_vec())
        .expect("workload is valid");
    sim.schedule_faults(faults).expect("faults are in-window");
    sim.run_to_idle();
    assert_eq!(sim.arena_outstanding(), 0, "oracle leaked arena buffers");
    let processed = sim.events_processed();
    (
        snapshot(&sim.poll_deliveries()),
        sim.stats().summary(),
        processed,
    )
}

/// The same run on the sharded simulator; returns the outcome plus the
/// number of conservative windows the coordinator executed.
fn sharded(
    topology: &Topology,
    workload: &[FrameInjection],
    faults: &FaultScript,
    shards: usize,
    strategy: ShardStrategy,
) -> ((Snapshot, String, u64), u64, ShardedSimulator) {
    let config = SimConfig {
        scheduler: SchedulerKind::Calendar,
        frame_store: FrameStoreKind::Arena,
        ..SimConfig::default()
    };
    let mut sim = ShardedSimulator::with_strategy(config, topology.clone(), shards, strategy)
        .expect("fabric is valid");
    sim.inject_batch(workload.to_vec())
        .expect("workload is valid");
    sim.schedule_faults(faults).expect("faults are in-window");
    sim.run_to_idle();
    assert_eq!(
        sim.arena_outstanding(),
        0,
        "sharded x{shards} run leaked arena buffers ({})",
        sim.stats().summary(),
    );
    let processed = sim.events_processed();
    let outcome = (
        snapshot(&sim.poll_deliveries()),
        sim.stats().summary(),
        processed,
    );
    let windows = sim.windows_executed();
    (outcome, windows, sim)
}

/// Assert sharded == oracle across shard counts and both strategies.
fn assert_equivalent(topology: &Topology, workload: &[FrameInjection], faults: &FaultScript) {
    let expected = oracle(topology, workload, faults);
    for shards in [2usize, 4] {
        for strategy in [ShardStrategy::BfsRegions, ShardStrategy::Striped] {
            let (got, _, _) = sharded(topology, workload, faults, shards, strategy);
            assert_eq!(
                expected,
                got,
                "sharded x{shards} ({}) diverges from the oracle",
                strategy.name(),
            );
        }
    }
}

// --- the regressions ------------------------------------------------------

/// Two frames injected at the *same instant* from two nodes on the same
/// access switch, bound for nodes behind the neighbouring switch: both
/// uplink transmissions finish together, both arrivals hit the shared
/// inter-shard trunk at the same timestamp, and the trunk must serialise
/// them in injection `seq` order — frame 0 strictly before frame 1 — just
/// as the single-thread oracle does.
#[test]
fn same_trunk_same_timestamp_frames_keep_injection_seq_order() {
    let topology = Topology::line(2, 2);
    let at = SimTime::from_micros(10);
    // Identical payload sizes → identical uplink transmission times →
    // a genuine same-timestamp collision on the trunk port.
    let workload = vec![
        FrameInjection {
            node: NodeId::new(0),
            eth: be_frame(NodeId::new(0), NodeId::new(2), 400),
            at,
        },
        FrameInjection {
            node: NodeId::new(1),
            eth: be_frame(NodeId::new(1), NodeId::new(3), 400),
            at,
        },
    ];
    let faults = FaultScript::new();
    assert_equivalent(&topology, &workload, &faults);

    // Striped partitioning puts switch 0 and switch 1 in different shards,
    // so the trunk between them is an inter-shard ring crossing.
    let (got, _, sim) = sharded(&topology, &workload, &faults, 2, ShardStrategy::Striped);
    assert_ne!(
        sim.shard_of(SwitchId::new(0)),
        sim.shard_of(SwitchId::new(1)),
        "the scenario requires the trunk to cross shards"
    );
    let (deliveries, _, _) = got;
    assert_eq!(deliveries.len(), 2, "both frames must deliver");
    assert_eq!(
        deliveries[0].0, 0,
        "frame 0 (lower injection seq) crosses first"
    );
    assert_eq!(deliveries[0].1, NodeId::new(2));
    assert_eq!(
        deliveries[1].0, 1,
        "frame 1 serialises behind frame 0 on the trunk"
    );
    assert_eq!(deliveries[1].1, NodeId::new(3));
    assert!(
        deliveries[0].2 < deliveries[1].2,
        "trunk serialisation must order the same-timestamp pair in time"
    );
}

/// A trunk cut on an *inter-shard* trunk while a queue of frames is still
/// in flight across it: every frame caught by the cut lands in
/// `failed_link_dropped`, the count matches the oracle exactly, and no
/// pooled buffer leaks — on both partition strategies.
#[test]
fn inter_shard_trunk_cut_drains_in_flight_frames_into_failed_link_dropped() {
    let topology = Topology::line(2, 2);
    // Enough large frames from both uplink nodes to keep the trunk queue
    // deep past the cut instant (each ~1400-byte frame holds the trunk for
    // >100 us at Fast Ethernet).
    let mut workload = Vec::new();
    for k in 0..40u64 {
        let (src, dst) = if k % 2 == 0 {
            (NodeId::new(0), NodeId::new(2))
        } else {
            (NodeId::new(1), NodeId::new(3))
        };
        workload.push(FrameInjection {
            node: src,
            eth: be_frame(src, dst, 1400),
            at: SimTime::from_nanos(5_000 * k),
        });
    }
    let faults =
        FaultScript::new().fail_at(SimTime::from_millis(2), SwitchId::new(0), SwitchId::new(1));
    let expected = oracle(&topology, &workload, &faults);
    assert!(
        expected.1.contains("link_failed=") && !expected.1.contains("link_failed=0 "),
        "the scenario must actually drop frames on the cut trunk ({})",
        expected.1,
    );
    for strategy in [ShardStrategy::BfsRegions, ShardStrategy::Striped] {
        let (got, _, sim) = sharded(&topology, &workload, &faults, 2, strategy);
        assert_eq!(
            expected,
            got,
            "sharded trunk cut diverges from the oracle ({})",
            strategy.name(),
        );
        assert!(sim.stats().failed_link_dropped > 0);
        assert_eq!(
            sim.injected_count(),
            sim.stats().total_delivered() + sim.stats().total_dropped(),
            "conservation across the cut"
        );
    }
}

/// All traffic confined to shard 0's switch: shard 1's calendar is empty
/// for the whole run, yet the coordinator still advances both shards
/// through the same conservative windows — the run completes, matches the
/// oracle byte-for-byte, and executes more than one window (the idle shard
/// must not collapse the horizon to "done").
#[test]
fn an_idle_shard_still_honours_the_global_window() {
    let topology = Topology::line(2, 2);
    // node 0 → node 1, both behind switch 0; switch 1 (shard 1 under the
    // striped split) never sees a frame.
    let mut workload = Vec::new();
    for k in 0..10u64 {
        workload.push(FrameInjection {
            node: NodeId::new(0),
            eth: rt_frame(
                NodeId::new(0),
                NodeId::new(1),
                1,
                SimTime::from_micros(40 * k + 500),
                200,
            ),
            at: SimTime::from_micros(20 * k),
        });
    }
    let faults = FaultScript::new();
    let expected = oracle(&topology, &workload, &faults);
    let (got, windows, sim) = sharded(&topology, &workload, &faults, 2, ShardStrategy::Striped);
    assert_eq!(expected, got, "idle-shard run diverges from the oracle");
    assert_ne!(
        sim.shard_of(SwitchId::new(0)),
        sim.shard_of(SwitchId::new(1)),
        "the scenario requires switch 1 to sit in its own (idle) shard"
    );
    assert!(
        windows > 1,
        "a ~200 us workload under a 5.5 us lookahead must span many windows, got {windows}"
    );
}

/// Conservative windows are only sound when a frame entering a trunk
/// cannot emerge on the far side within the same window — i.e. when the
/// minimum frame transmission time covers the lookahead
/// `propagation_delay + switch_latency`.  A configuration violating that
/// bound must be rejected at construction, not silently misordered.
#[test]
fn a_lookahead_violating_config_is_rejected_at_construction() {
    // 10 us of switch latency pushes the lookahead (10.5 us) past the
    // 6.72 us minimum-frame transmission time of Fast Ethernet.
    let config = SimConfig {
        switch_latency: Duration::from_micros(10),
        ..SimConfig::default()
    };
    let err = match ShardedSimulator::new(config, Topology::line(2, 1), 2) {
        Ok(_) => panic!("a lookahead exceeding the minimum tx time must be rejected"),
        Err(e) => e,
    };
    match err {
        RtError::Config(msg) => assert!(
            msg.contains("lookahead"),
            "the error must name the violated bound: {msg}"
        ),
        other => panic!("expected RtError::Config, got {other:?}"),
    }
    // The single-thread simulator accepts the same configuration — the
    // bound is a property of conservative windowing, not of the model.
    let config = SimConfig {
        switch_latency: Duration::from_micros(10),
        ..SimConfig::default()
    };
    Simulator::with_topology(config, Topology::line(2, 1))
        .expect("the single-thread simulator has no lookahead bound");
}

/// Satellite check for the stats-merge path: on a three-switch fabric with
/// a mixed workload — RT data, best-effort, CONNECT control frames,
/// link-state floods — plus a mid-run trunk cut and repair, the per-worker
/// accumulators merged by `SimStats::merge_from` reproduce the oracle's
/// single accumulator *exactly*, including the `control=`/`link_state=`
/// split in the summary line.
#[test]
fn merged_stats_reproduce_the_oracle_on_a_mixed_multiswitch_scenario() {
    let topology = Topology::line(3, 2);
    let mut workload = Vec::new();
    // RT data criss-crossing all three switches.
    for k in 0..12u64 {
        let (src, dst) = [(0u32, 4u32), (5, 1), (2, 0), (3, 5)][(k % 4) as usize];
        workload.push(FrameInjection {
            node: NodeId::new(src),
            eth: rt_frame(
                NodeId::new(src),
                NodeId::new(dst),
                (k % 3 + 1) as u16,
                SimTime::from_micros(400 * k + 2_000),
                300,
            ),
            at: SimTime::from_micros(30 * k),
        });
    }
    // Best-effort background load.
    for k in 0..8u64 {
        let (src, dst) = [(1u32, 5u32), (4, 0)][(k % 2) as usize];
        workload.push(FrameInjection {
            node: NodeId::new(src),
            eth: be_frame(NodeId::new(src), NodeId::new(dst), 900),
            at: SimTime::from_micros(25 * k + 10),
        });
    }
    // Control plane: two CONNECTs and two link-state floods, injected at
    // non-manager switches so they cross trunks in the sharded run.
    workload.push(FrameInjection {
        node: NodeId::new(0),
        eth: connect_frame(NodeId::new(0), NodeId::new(5), 1),
        at: SimTime::from_micros(40),
    });
    workload.push(FrameInjection {
        node: NodeId::new(4),
        eth: connect_frame(NodeId::new(4), NodeId::new(1), 2),
        at: SimTime::from_micros(90),
    });
    workload.push(FrameInjection {
        node: NodeId::new(2),
        eth: link_state_frame(NodeId::new(2), SwitchId::new(1), SwitchId::new(2), 1),
        at: SimTime::from_micros(60),
    });
    workload.push(FrameInjection {
        node: NodeId::new(5),
        eth: link_state_frame(NodeId::new(5), SwitchId::new(1), SwitchId::new(2), 2),
        at: SimTime::from_micros(110),
    });
    let faults = FaultScript::new()
        .fail_at(
            SimTime::from_micros(200),
            SwitchId::new(1),
            SwitchId::new(2),
        )
        .repair_at(SimTime::from_millis(1), SwitchId::new(1), SwitchId::new(2));

    let expected = oracle(&topology, &workload, &faults);
    // The scenario must actually exercise both control-frame counters.
    assert!(
        expected.1.contains("control=2") && expected.1.contains("link_state=2"),
        "the oracle summary must account both control frame kinds ({})",
        expected.1,
    );
    for shards in [2usize, 3] {
        for strategy in [ShardStrategy::BfsRegions, ShardStrategy::Striped] {
            let (got, _, sim) = sharded(&topology, &workload, &faults, shards, strategy);
            assert_eq!(
                expected.1,
                got.1,
                "merged stats diverge from the oracle accumulator (x{shards}, {})",
                strategy.name(),
            );
            assert_eq!(
                expected,
                got,
                "mixed multiswitch scenario diverges (x{shards}, {})",
                strategy.name(),
            );
            assert_eq!(sim.stats().control_frames, 2);
            assert_eq!(sim.stats().link_state_frames, 2);
        }
    }
}
