//! Integration test for the Eq. 18.1 guarantee: every message on an admitted
//! RT channel is delivered within `d_i + T_latency`, measured end to end on
//! the simulated network (establishment handshake + periodic data traffic).

use switched_rt_ethernet::core::{DpsKind, RtChannelSpec, RtNetwork};
use switched_rt_ethernet::traffic::{RequestPattern, Scenario};
use switched_rt_ethernet::types::{Duration, NodeId, Slots};

fn run_and_validate(dps: DpsKind, channels: u64, messages: u64, spec: RtChannelSpec) {
    let scenario = Scenario::new(4, 12);
    let mut net = RtNetwork::builder()
        .nodes(scenario.nodes())
        .dps(dps)
        .build()
        .unwrap();
    let requests = RequestPattern::MasterSlaveRoundRobin.generate(&scenario, channels, spec);
    let mut established = Vec::new();
    for r in &requests {
        if let Some(tx) = net
            .establish_channel(r.source, r.destination, r.spec)
            .unwrap()
        {
            established.push((r.source, tx));
        }
    }
    assert!(!established.is_empty(), "no channel admitted");

    let start = net.now() + Duration::from_millis(1);
    for (source, tx) in &established {
        net.send_periodic(*source, tx.id, messages, 1000, start)
            .unwrap();
    }
    net.run_to_completion().unwrap();

    let stats = net.simulator().stats();
    assert_eq!(
        stats.total_deadline_misses, 0,
        "admitted traffic missed deadlines"
    );
    let bound = net.deadline_bound(&spec);
    for (_, tx) in &established {
        let ch = stats.channel(tx.id).expect("channel delivered frames");
        assert_eq!(
            ch.delivered,
            messages * spec.capacity.get(),
            "channel {} lost frames",
            tx.id
        );
        assert!(
            ch.max_latency <= bound,
            "channel {} worst latency {} exceeds bound {}",
            tx.id,
            ch.max_latency,
            bound
        );
    }
}

#[test]
fn paper_parameters_meet_the_bound_under_sdps_and_adps() {
    let spec = RtChannelSpec::paper_default();
    run_and_validate(DpsKind::Symmetric, 16, 10, spec);
    run_and_validate(DpsKind::Asymmetric, 16, 10, spec);
}

#[test]
fn tight_deadline_channels_meet_the_bound() {
    // d = 2C: the tightest deadline the store-and-forward architecture can
    // accept at all.
    let spec = RtChannelSpec::new(Slots::new(50), Slots::new(2), Slots::new(4)).unwrap();
    run_and_validate(DpsKind::Symmetric, 4, 10, spec);
}

#[test]
fn long_period_channels_meet_the_bound() {
    let spec = RtChannelSpec::new(Slots::new(500), Slots::new(5), Slots::new(100)).unwrap();
    run_and_validate(DpsKind::Asymmetric, 8, 5, spec);
}

#[test]
fn saturated_adps_system_still_meets_every_deadline() {
    // Load one master uplink close to its ADPS capacity and verify the
    // guarantee still holds for every admitted channel.
    let spec = RtChannelSpec::paper_default();
    let mut net = RtNetwork::builder()
        .star(14)
        .dps(DpsKind::Asymmetric)
        .build()
        .unwrap();
    let mut established = Vec::new();
    for dst in 1..=13u32 {
        if let Some(tx) = net
            .establish_channel(NodeId::new(0), NodeId::new(dst), spec)
            .unwrap()
        {
            established.push(tx);
        }
    }
    assert!(established.len() >= 8, "expected a heavily loaded uplink");
    let start = net.now() + Duration::from_millis(1);
    for tx in &established {
        net.send_periodic(NodeId::new(0), tx.id, 8, 1400, start)
            .unwrap();
    }
    net.run_to_completion().unwrap();
    let stats = net.simulator().stats();
    assert_eq!(stats.total_deadline_misses, 0);
    assert!(stats.worst_case_latency().unwrap() <= net.deadline_bound(&spec));
}
