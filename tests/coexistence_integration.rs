//! Integration test: real-time guarantees survive best-effort overload, and
//! best-effort traffic still makes progress (Figure 18.2's two-queue
//! architecture working end to end).

use switched_rt_ethernet::core::{DpsKind, RtChannelSpec, RtNetwork};
use switched_rt_ethernet::netsim::SimConfig;
use switched_rt_ethernet::traffic::{BackgroundTraffic, PoissonConfig, Scenario};
use switched_rt_ethernet::types::{Duration, NodeId};

#[test]
fn rt_deadlines_hold_under_best_effort_overload() {
    let mut net = RtNetwork::builder()
        .star(4)
        .dps(DpsKind::Asymmetric)
        .build()
        .unwrap();
    let spec = RtChannelSpec::paper_default();
    let tx = net
        .establish_channel(NodeId::new(0), NodeId::new(1), spec)
        .unwrap()
        .unwrap();

    let start = net.now() + Duration::from_millis(1);
    net.send_periodic(NodeId::new(0), tx.id, 15, 1400, start)
        .unwrap();

    // Offer more best-effort traffic than the shared links can carry.
    let slot = net.simulator().config().link_speed.slot_duration();
    for k in 0..3000u64 {
        net.send_best_effort(
            NodeId::new(0),
            NodeId::new(1),
            1400,
            start + Duration::from_nanos(slot.as_nanos() / 2 * k),
        )
        .unwrap();
    }
    net.run_to_completion().unwrap();

    let stats = net.simulator().stats();
    assert_eq!(stats.total_deadline_misses, 0);
    assert_eq!(
        stats.rt_delivered,
        15 * 3 + 4,
        "45 data frames + 4 handshake frames"
    );
    assert!(stats.worst_case_latency().unwrap() <= net.deadline_bound(&spec));
    // The overloaded best-effort queue eventually drops frames — that is the
    // intended failure mode (RT traffic is never dropped).
    assert!(stats.be_delivered > 0);
    assert!(
        stats.be_dropped > 0,
        "expected best-effort drops under 2x overload"
    );
}

#[test]
fn poisson_background_traffic_across_the_whole_star() {
    // Several RT channels across different node pairs plus Poisson
    // best-effort traffic between random pairs.
    let scenario = Scenario::new(2, 4);
    let mut net = RtNetwork::builder()
        .nodes(scenario.nodes())
        .dps(DpsKind::Asymmetric)
        .build()
        .unwrap();
    let spec = RtChannelSpec::paper_default();
    let mut channels = Vec::new();
    for i in 0..4u64 {
        let tx = net
            .establish_channel(scenario.master(i), scenario.slave(i), spec)
            .unwrap()
            .unwrap();
        channels.push((scenario.master(i), tx));
    }

    let start = net.now() + Duration::from_millis(1);
    for (src, tx) in &channels {
        net.send_periodic(*src, tx.id, 10, 1000, start).unwrap();
    }
    let window = Duration::from_millis(60);
    let background = BackgroundTraffic::new(99).poisson(
        &scenario,
        PoissonConfig {
            mean_interarrival: Duration::from_micros(200),
            payload_len: 1200,
        },
        start,
        window,
    );
    for frame in &background {
        net.send_best_effort(frame.source, frame.destination, frame.payload_len, frame.at)
            .unwrap();
    }
    net.run_to_completion().unwrap();

    let stats = net.simulator().stats();
    assert_eq!(stats.total_deadline_misses, 0);
    assert!(stats.be_delivered > 0);
    for (_, tx) in &channels {
        assert_eq!(stats.channel(tx.id).unwrap().delivered, 30);
    }
}

#[test]
fn bounded_best_effort_queues_protect_memory_not_rt_traffic() {
    // A tiny best-effort queue: drops appear quickly, but RT frames are
    // never dropped and never late.
    let mut net = RtNetwork::builder()
        .star(3)
        .dps(DpsKind::Symmetric)
        .sim_config(SimConfig {
            be_queue_capacity: Some(4),
            ..SimConfig::default()
        })
        .build()
        .unwrap();
    let spec = RtChannelSpec::paper_default();
    let tx = net
        .establish_channel(NodeId::new(0), NodeId::new(1), spec)
        .unwrap()
        .unwrap();
    let start = net.now() + Duration::from_millis(1);
    net.send_periodic(NodeId::new(0), tx.id, 10, 800, start)
        .unwrap();
    for k in 0..500u64 {
        net.send_best_effort(
            NodeId::new(0),
            NodeId::new(1),
            1400,
            start + Duration::from_micros(5 * k),
        )
        .unwrap();
    }
    net.run_to_completion().unwrap();
    let stats = net.simulator().stats();
    assert!(stats.be_dropped > 0);
    assert_eq!(stats.total_deadline_misses, 0);
    assert_eq!(stats.channel(tx.id).unwrap().delivered, 30);
}
