//! Regression test for the paper's headline result (Figure 18.5): accepted
//! channels vs requested channels under SDPS and ADPS in the 10-master /
//! 50-slave configuration with `C=3, P=100, D=40`.
//!
//! The absolute saturation levels follow from the admission arithmetic
//! (6 channels per uplink under SDPS, 11 under ADPS), so they are asserted
//! exactly; the qualitative shape (ADPS ≈ 2× SDPS, saturation plateaus)
//! mirrors the paper's curves.

use switched_rt_ethernet::core::{AdmissionController, DpsKind, RtChannelSpec, SystemState};
use switched_rt_ethernet::traffic::{RequestPattern, Scenario};

fn accepted(dps: DpsKind, requested: u64, pattern: &RequestPattern) -> u64 {
    let scenario = Scenario::paper_master_slave();
    let spec = RtChannelSpec::paper_default();
    let requests = pattern.generate(&scenario, requested, spec);
    let mut controller =
        AdmissionController::new(SystemState::with_nodes(scenario.nodes()), dps.build());
    for r in &requests {
        let _ = controller.request(r.source, r.destination, r.spec).unwrap();
    }
    controller.accepted_count()
}

#[test]
fn below_saturation_both_schemes_accept_everything() {
    let pattern = RequestPattern::MasterSlaveRoundRobin;
    for requested in [20, 40, 60] {
        assert_eq!(accepted(DpsKind::Symmetric, requested, &pattern), requested);
        assert_eq!(
            accepted(DpsKind::Asymmetric, requested, &pattern),
            requested
        );
    }
}

#[test]
fn sdps_saturates_at_six_channels_per_master_uplink() {
    let pattern = RequestPattern::MasterSlaveRoundRobin;
    for requested in [80, 120, 200] {
        assert_eq!(accepted(DpsKind::Symmetric, requested, &pattern), 60);
    }
}

#[test]
fn adps_reaches_the_paper_saturation_level() {
    let pattern = RequestPattern::MasterSlaveRoundRobin;
    // The paper's curve keeps climbing to ~110 accepted channels.
    assert_eq!(accepted(DpsKind::Asymmetric, 100, &pattern), 100);
    let at_200 = accepted(DpsKind::Asymmetric, 200, &pattern);
    assert!(
        (100..=120).contains(&at_200),
        "ADPS at 200 requests accepted {at_200}, expected the paper's ~110"
    );
}

#[test]
fn adps_dominates_sdps_at_every_operating_point() {
    let pattern = RequestPattern::MasterSlaveRoundRobin;
    for requested in (20..=200).step_by(20) {
        let sdps = accepted(DpsKind::Symmetric, requested, &pattern);
        let adps = accepted(DpsKind::Asymmetric, requested, &pattern);
        assert!(
            adps >= sdps,
            "at {requested} requests ADPS accepted {adps} < SDPS {sdps}"
        );
    }
    // And at full load the advantage is close to the paper's ~1.8x.
    let sdps = accepted(DpsKind::Symmetric, 200, &pattern);
    let adps = accepted(DpsKind::Asymmetric, 200, &pattern);
    let ratio = adps as f64 / sdps as f64;
    assert!(ratio > 1.5, "ADPS/SDPS ratio {ratio} too small");
}

#[test]
fn acceptance_is_monotone_in_requested_channels() {
    let pattern = RequestPattern::MasterSlaveRoundRobin;
    for dps in [DpsKind::Symmetric, DpsKind::Asymmetric] {
        let mut prev = 0;
        for requested in (20..=200).step_by(20) {
            let a = accepted(dps, requested, &pattern);
            assert!(a >= prev, "{dps:?}: accepted dropped from {prev} to {a}");
            prev = a;
        }
    }
}

#[test]
fn random_slave_assignment_preserves_the_shape() {
    // The paper does not pin down how slaves are chosen; the result must be
    // robust to choosing them at random instead of round-robin.
    let pattern = RequestPattern::MasterSlaveRandom { seed: 2004 };
    let sdps = accepted(DpsKind::Symmetric, 200, &pattern);
    let adps = accepted(DpsKind::Asymmetric, 200, &pattern);
    assert_eq!(
        sdps, 60,
        "SDPS is limited by the uplinks regardless of slave choice"
    );
    assert!(adps as f64 >= 1.5 * sdps as f64);
}
