//! Deterministic regressions for the distributed control plane: per-switch
//! managers, two-phase reservation over the wire, rollback hygiene,
//! fail-over driven by the switches adjacent to the cut, and whole-switch
//! failures.
//!
//! The randomized central-vs-distributed equivalence property (32 seeds)
//! lives in `tests/fabric_properties.rs`; these are the hand-picked
//! scenarios with exact expectations.

mod common;

use std::collections::BTreeMap;
use std::sync::Arc;

use common::ControlHarness;
use switched_rt_ethernet::core::{
    ChannelManager, DistributedChannelManager, MultiHopDps, RtChannelSpec, RtNetwork,
    RtNetworkBuilder,
};
use switched_rt_ethernet::types::{
    ChannelId, ConnectionRequestId, Duration, HopLink, KShortestRouter, ManagerPlacement, NodeId,
    ShortestPathRouter, SimTime, Slots, SwitchId, Topology,
};

fn spec() -> RtChannelSpec {
    RtChannelSpec::paper_default()
}

fn distributed(topology: Topology) -> RtNetworkBuilder {
    RtNetwork::builder()
        .topology(topology)
        .router(ShortestPathRouter::new())
        .multihop_dps(MultiHopDps::Asymmetric)
        .distributed_control()
}

#[test]
fn distributed_control_requires_a_fabric() {
    assert!(RtNetwork::builder()
        .star(4)
        .distributed_control()
        .build()
        .is_err());
    assert!(distributed(Topology::line(3, 2)).build().is_ok());
}

#[test]
fn distributed_establishment_crosses_the_fabric_and_meets_the_bound() {
    let mut net = distributed(Topology::line(3, 2)).build().unwrap();
    // node 0 (sw0) -> node 5 (sw2): 4 link hops, coordinator sw0, probe and
    // reserve really cross both trunks.
    let tx = net
        .establish_channel(NodeId::new(0), NodeId::new(5), spec())
        .unwrap()
        .expect("an empty fabric accepts the first channel");
    let route = net.manager().channel_route(tx.id).unwrap();
    assert_eq!(route.path.len(), 4);
    assert_eq!(
        route.link_deadlines.iter().map(|s| s.get()).sum::<u64>(),
        spec().deadline.get()
    );
    // The reservation protocol consumed real wire time and real hops.
    assert!(net.now() > SimTime::ZERO);
    let stats = net.simulator().stats();
    assert!(
        stats.control_frames >= 6,
        "probe/reserve/confirm legs expected, saw {} control frames",
        stats.control_frames
    );
    assert!(stats.control_hops > stats.control_frames / 2);
    // Slack is held on every hop, owned by the right switches.
    assert_eq!(net.manager().link_load(HopLink::Uplink(NodeId::new(0))), 1);
    assert_eq!(
        net.manager().link_load(HopLink::Trunk {
            from: SwitchId::new(0),
            to: SwitchId::new(1)
        }),
        1
    );
    assert_eq!(
        net.manager().link_load(HopLink::Downlink(NodeId::new(5))),
        1
    );

    // Traffic on the admitted channel meets the hop-aware bound.
    let start = net.now() + Duration::from_millis(1);
    net.send_periodic(NodeId::new(0), tx.id, 20, 1000, start)
        .unwrap();
    net.run_to_completion().unwrap();
    assert_eq!(net.received_messages().len(), 20 * 3);
    assert!(net.simulator().stats().all_deadlines_met());
    let bound = net.channel_deadline_bound(tx.id).unwrap();
    let worst = net.simulator().stats().channel(tx.id).unwrap().max_latency;
    assert!(worst <= bound, "worst {worst} exceeds bound {bound}");
}

#[test]
fn same_switch_channels_never_leave_the_access_switch() {
    let mut net = distributed(Topology::line(3, 2)).build().unwrap();
    // node 2 and node 3 both live on sw1: no reservation frame may cross a
    // trunk.
    let tx = net
        .establish_channel(NodeId::new(2), NodeId::new(3), spec())
        .unwrap()
        .expect("same-switch channel admitted");
    assert_eq!(net.manager().channel_route(tx.id).unwrap().path.len(), 2);
    for (a, b) in [(0u32, 1u32), (1, 2)] {
        for (f, t) in [(a, b), (b, a)] {
            assert!(
                net.simulator()
                    .stats()
                    .hop_link(HopLink::Trunk {
                        from: SwitchId::new(f),
                        to: SwitchId::new(t),
                    })
                    .is_none(),
                "trunk {f}->{t} must stay idle for a same-switch admission"
            );
        }
    }
}

/// Drive an identical request sequence through the central and the
/// distributed control planes; the admitted sets must match under
/// admission-order id remapping — routes and per-link deadline splits
/// exactly, ids via the order-preserving map — and the rejections too.
/// (Raw ids differ by construction: the distributed manager allocates from
/// per-switch blocks, the central oracle from one global sequencer.)
#[test]
fn central_and_distributed_admit_the_identical_channel_set() {
    let requests: Vec<(u32, u32)> = (0..24u32).map(|i| (i % 4, 8 + (i % 8))).collect();
    let drive = |placement: ManagerPlacement| {
        let mut net = RtNetwork::builder()
            .topology(Topology::ring(4, 4))
            .router(ShortestPathRouter::new())
            .multihop_dps(MultiHopDps::Asymmetric)
            .manager_placement(placement)
            .build()
            .unwrap();
        let mut admitted = Vec::new();
        for &(src, dst) in &requests {
            if let Some(tx) = net
                .establish_channel(NodeId::new(src), NodeId::new(dst), spec())
                .unwrap()
            {
                let route = net.manager().channel_route(tx.id).unwrap();
                admitted.push((tx.id, route.path.clone(), route.link_deadlines.clone()));
            }
        }
        (admitted, net.manager().channel_count())
    };
    let (central, central_count) = drive(ManagerPlacement::Central);
    let (dist, dist_count) = drive(ManagerPlacement::Distributed);
    assert!(!central.is_empty(), "the workload must admit something");
    assert!(
        central.len() < requests.len(),
        "the workload must also reject something"
    );
    assert_eq!(central.len(), dist.len(), "admission counts diverge");
    for (k, ((_, c_path, c_splits), (_, d_path, d_splits))) in
        central.iter().zip(dist.iter()).enumerate()
    {
        assert_eq!(c_path, d_path, "admission {k}: routes diverge");
        assert_eq!(c_splits, d_splits, "admission {k}: deadline splits diverge");
    }
    // The id remapping is a bijection: no distributed id serves two central
    // channels.
    let mapped: std::collections::BTreeSet<ChannelId> = dist.iter().map(|(id, _, _)| *id).collect();
    assert_eq!(mapped.len(), dist.len(), "distributed ids must be distinct");
    assert_eq!(central_count, dist_count);
}

/// The two worlds must also *deliver* identically: identical admission
/// means identical wire schedules, so after remapping the distributed ids
/// onto the central ones (admission order) the delivered data — receiver,
/// channel, payload bytes, arrival nanosecond — must match exactly.
#[test]
fn central_and_distributed_deliver_data_byte_for_byte() {
    let drive = |placement: ManagerPlacement| {
        let mut net = RtNetwork::builder()
            .topology(Topology::ring(4, 2))
            .router(ShortestPathRouter::new())
            .multihop_dps(MultiHopDps::Symmetric)
            .manager_placement(placement)
            .build()
            .unwrap();
        let mut admitted = Vec::new();
        for (src, dst) in [(0u32, 7u32), (1, 4), (2, 5)] {
            if let Some(tx) = net
                .establish_channel(NodeId::new(src), NodeId::new(dst), spec())
                .unwrap()
            {
                admitted.push((NodeId::new(src), tx.id));
            }
        }
        // A fixed absolute timeline, safely after both control planes are
        // done establishing, so the data world is identical by construction.
        let start = SimTime::from_millis(50);
        assert!(net.now() < start);
        for &(src, id) in &admitted {
            net.send_periodic(src, id, 10, 700, start).unwrap();
        }
        net.run_to_completion().unwrap();
        let deliveries = net
            .received_messages()
            .iter()
            .map(|m| {
                (
                    m.receiver,
                    m.message.channel,
                    m.message.payload.clone(),
                    m.delivered_at.as_nanos(),
                    m.missed_deadline,
                )
            })
            .collect::<Vec<_>>();
        let ids: Vec<ChannelId> = admitted.iter().map(|&(_, id)| id).collect();
        (ids, deliveries)
    };
    let (central_ids, central) = drive(ManagerPlacement::Central);
    let (dist_ids, dist) = drive(ManagerPlacement::Distributed);
    assert!(!central.is_empty());
    assert_eq!(central_ids.len(), dist_ids.len(), "admissions diverge");
    // Admission-order id remapping: distributed id → central id.
    let remap: BTreeMap<ChannelId, ChannelId> = dist_ids.iter().copied().zip(central_ids).collect();
    let dist_remapped: Vec<_> = dist
        .into_iter()
        .map(|(rx, ch, payload, at, missed)| (rx, remap[&ch], payload, at, missed))
        .collect();
    assert_eq!(
        central, dist_remapped,
        "data delivery must be byte-for-byte identical under id remapping"
    );
}

/// A failed reservation must leave no slack behind — on any switch of the
/// attempted route.
#[test]
fn rejected_requests_leak_no_slack_anywhere() {
    let mut net = distributed(Topology::line(3, 1)).build().unwrap();
    // Saturate the two trunks: every channel crosses sw0 -> sw1 -> sw2
    // (4 hops, 10 slots per hop symmetric-ish under asymmetric first fit).
    let mut accepted = Vec::new();
    for _ in 0..12 {
        if let Some(tx) = net
            .establish_channel(NodeId::new(0), NodeId::new(2), spec())
            .unwrap()
        {
            accepted.push(tx.id);
        }
    }
    assert!(!accepted.is_empty(), "an empty fabric admits something");
    assert!(accepted.len() < 12, "the trunks must saturate");
    // Link loads equal the accepted channel count exactly: the rejected
    // attempts' probes and reserves all rolled back.
    for link in [
        HopLink::Uplink(NodeId::new(0)),
        HopLink::Trunk {
            from: SwitchId::new(0),
            to: SwitchId::new(1),
        },
        HopLink::Trunk {
            from: SwitchId::new(1),
            to: SwitchId::new(2),
        },
        HopLink::Downlink(NodeId::new(2)),
    ] {
        assert_eq!(
            net.manager().link_load(link),
            accepted.len(),
            "leaked reservation on {link}"
        );
    }
}

#[test]
fn destination_rejection_rolls_the_whole_path_back() {
    let mut net = distributed(Topology::line(3, 2))
        .max_incoming_channels(0)
        .build()
        .unwrap();
    let outcome = net
        .establish_channel(NodeId::new(0), NodeId::new(5), spec())
        .unwrap();
    assert!(outcome.is_none(), "the destination refuses every channel");
    assert_eq!(net.manager().channel_count(), 0);
    assert_eq!(net.manager().pending_count(), 0);
    for link in [
        HopLink::Uplink(NodeId::new(0)),
        HopLink::Trunk {
            from: SwitchId::new(0),
            to: SwitchId::new(1),
        },
        HopLink::Trunk {
            from: SwitchId::new(1),
            to: SwitchId::new(2),
        },
        HopLink::Downlink(NodeId::new(5)),
    ] {
        assert_eq!(net.manager().link_load(link), 0, "leak on {link}");
    }
}

#[test]
fn teardown_releases_every_hop_over_the_wire() {
    let mut net = distributed(Topology::line(3, 2)).build().unwrap();
    let tx = net
        .establish_channel(NodeId::new(0), NodeId::new(5), spec())
        .unwrap()
        .unwrap();
    let trunk = HopLink::Trunk {
        from: SwitchId::new(1),
        to: SwitchId::new(2),
    };
    assert_eq!(net.manager().link_load(trunk), 1);
    net.teardown_channel(NodeId::new(0), tx.id).unwrap();
    assert_eq!(net.manager().channel_count(), 0);
    assert_eq!(
        net.manager().link_load(trunk),
        0,
        "release pass must walk the route"
    );
    assert_eq!(net.layer(NodeId::new(5)).unwrap().rx_channels().count(), 0);
}

/// The acceptance scenario: a trunk cut adjacent to the *former* managing
/// switch (sw0 hosted the central manager; under distributed control it is
/// just another switch).  The fabric must survive with re-routes and zero
/// deadline misses.
#[test]
fn trunk_cut_adjacent_to_the_former_manager_is_survived() {
    let mut net = RtNetwork::builder()
        .topology(Topology::ring(4, 1))
        .router(KShortestRouter::new(3))
        .multihop_dps(MultiHopDps::Symmetric)
        .distributed_control()
        .build()
        .unwrap();
    // node 0 (sw0) -> node 3 (sw3): 3 hops over the closing trunk, which is
    // adjacent to sw0 — the switch that used to host the whole control
    // plane.
    let tx = net
        .establish_channel(NodeId::new(0), NodeId::new(3), spec())
        .unwrap()
        .unwrap();
    assert_eq!(net.manager().channel_route(tx.id).unwrap().path.len(), 3);

    let report = net.fail_trunk(SwitchId::new(3), SwitchId::new(0)).unwrap();
    assert_eq!(report.rerouted.len(), 1);
    assert!(report.dropped.is_empty());
    let route = net.manager().channel_route(tx.id).unwrap();
    assert_eq!(route.path.len(), 5, "re-route goes the long way around");

    // Establishment still works after the cut — through the degraded
    // fabric, coordinated by sw1 (also adjacent to nothing special).
    let tx2 = net
        .establish_channel(NodeId::new(1), NodeId::new(2), spec())
        .unwrap()
        .expect("the degraded ring still admits");

    let start = net.now() + Duration::from_millis(1);
    net.send_periodic(NodeId::new(0), tx.id, 15, 900, start)
        .unwrap();
    net.send_periodic(NodeId::new(1), tx2.id, 15, 900, start)
        .unwrap();
    net.run_to_completion().unwrap();
    assert_eq!(net.received_messages().len(), 2 * 15 * 3);
    assert!(net.simulator().stats().all_deadlines_met(), "0 misses");
    let bound = net.channel_deadline_bound(tx.id).unwrap();
    let worst = net.simulator().stats().channel(tx.id).unwrap().max_latency;
    assert!(worst <= bound);
}

/// Per-site views adopt the incremental rebuild path: a link-state flood
/// mutates each site's private view by exactly one trunk, so the shared
/// router cache must repair the previous table from the cut delta instead
/// of rebuilding every column from scratch.
#[test]
fn link_state_floods_trigger_incremental_rebuilds() {
    let mut net = distributed(Topology::torus(3, 3, 1)).build().unwrap();
    let tx = net
        .establish_channel(NodeId::new(0), NodeId::new(8), spec())
        .unwrap()
        .unwrap();

    let healthy = net.router().next_hop_cache().unwrap().stats();
    assert_eq!(healthy.incremental_rebuilds, 0);
    assert!(healthy.full_rebuilds >= 1, "healthy build is a full build");

    let report = net.fail_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
    assert!(report.dropped.is_empty());

    // Re-admission routes against the flooded per-site views, whose
    // fingerprints differ from the healthy base by one failed trunk.
    let tx2 = net
        .establish_channel(NodeId::new(1), NodeId::new(7), spec())
        .unwrap()
        .expect("the degraded torus still admits");

    let degraded = net.router().next_hop_cache().unwrap().stats();
    assert!(
        degraded.incremental_rebuilds >= 1,
        "the single-trunk cut must take the incremental path, got {degraded:?}"
    );
    assert_eq!(
        degraded.full_rebuilds, healthy.full_rebuilds,
        "no view may fall back to a from-scratch rebuild"
    );

    let start = net.now() + Duration::from_millis(1);
    net.send_periodic(NodeId::new(0), tx.id, 10, 900, start)
        .unwrap();
    net.send_periodic(NodeId::new(1), tx2.id, 10, 900, start)
        .unwrap();
    net.run_to_completion().unwrap();
    assert!(net.simulator().stats().all_deadlines_met());
}

// --- whole-switch failures (satellite: Topology::fail_switch) -------------

#[test]
fn topology_fail_switch_is_atomic() {
    let mut t = Topology::ring(4, 1);
    let cut = t.fail_switch(SwitchId::new(2)).unwrap();
    assert_eq!(
        cut,
        vec![
            (SwitchId::new(2), SwitchId::new(1)),
            (SwitchId::new(2), SwitchId::new(3)),
        ]
    );
    assert_eq!(t.failed_trunks().count(), 2);
    assert!(!t.is_connected(), "sw2 is now isolated");
    // Unknown switches and already-isolated switches are errors.
    assert!(t.fail_switch(SwitchId::new(9)).is_err());
    assert!(t.fail_switch(SwitchId::new(2)).is_err());
    // Repairs splice trunks back individually.
    t.repair_trunk(SwitchId::new(2), SwitchId::new(1)).unwrap();
    t.repair_trunk(SwitchId::new(2), SwitchId::new(3)).unwrap();
    assert!(t.is_connected());
}

#[test]
fn ring_switch_failure_reroutes_through_traffic_and_drops_local_endpoints() {
    // Ring of 4, 2 nodes per switch, central manager with k-shortest
    // fallback: a channel *through* sw1 must re-route the long way, a
    // channel *terminating* at sw1 keeps only its access links (which never
    // fail) — but sw1's nodes lose all cross-switch connectivity, so such
    // channels are dropped.
    let mut net = RtNetwork::builder()
        .topology(Topology::ring(4, 2))
        .router(KShortestRouter::new(4))
        .multihop_dps(MultiHopDps::Symmetric)
        .build()
        .unwrap();
    // Through-channel: node 0 (sw0) -> node 4 (sw2), shortest via sw1.
    let through = net
        .establish_channel(NodeId::new(0), NodeId::new(4), spec())
        .unwrap()
        .unwrap();
    assert!(net
        .manager()
        .channel_route(through.id)
        .unwrap()
        .path
        .contains(&HopLink::Trunk {
            from: SwitchId::new(0),
            to: SwitchId::new(1)
        }));
    // Terminating channel: node 0 (sw0) -> node 2 (sw1).
    let terminating = net
        .establish_channel(NodeId::new(0), NodeId::new(2), spec())
        .unwrap()
        .unwrap();
    // Local channel on sw1: unaffected (access links never fail).
    let local = net
        .establish_channel(NodeId::new(2), NodeId::new(3), spec())
        .unwrap()
        .unwrap();

    let report = net.fail_switch(SwitchId::new(1)).unwrap();
    assert_eq!(report.link, (SwitchId::new(1), SwitchId::new(1)));
    assert_eq!(report.rerouted.len(), 1);
    assert_eq!(report.rerouted[0].id, through.id);
    assert_eq!(report.rerouted[0].path.len(), 4, "0 -> 3 -> 2 detour");
    assert_eq!(report.dropped.len(), 1);
    assert_eq!(report.dropped[0].id, terminating.id);
    assert_eq!(report.unaffected, 1);

    let start = net.now() + Duration::from_millis(1);
    net.send_periodic(NodeId::new(0), through.id, 10, 800, start)
        .unwrap();
    net.send_periodic(NodeId::new(2), local.id, 10, 800, start)
        .unwrap();
    net.run_to_completion().unwrap();
    assert_eq!(net.received_messages().len(), 2 * 10 * 3);
    assert!(net.simulator().stats().all_deadlines_met());
    // The dropped channel is gone end to end.
    assert!(net
        .send_periodic(NodeId::new(0), terminating.id, 1, 100, net.now())
        .is_err());
}

#[test]
fn torus_switch_failure_reroutes_everything_with_zero_misses() {
    // 3x3 torus, 1 node per switch: fail the centre switch; channels
    // crossing it re-route over the wrap-around trunks (k-shortest).
    // Distributed control plane: the fail-over is driven by the four
    // adjacent switches' ledgers.
    let mut net = RtNetwork::builder()
        .topology(Topology::torus(3, 3, 1))
        .router(KShortestRouter::new(6))
        .multihop_dps(MultiHopDps::Symmetric)
        .distributed_control()
        .build()
        .unwrap();
    // node 0 (sw0) -> node 8 (sw8, the far corner): the deterministic
    // shortest path runs through sw2 (BFS tie-break), which is about to
    // die.
    let spec60 = RtChannelSpec::new(Slots::new(100), Slots::new(3), Slots::new(60)).unwrap();
    let tx = net
        .establish_channel(NodeId::new(0), NodeId::new(8), spec60)
        .unwrap()
        .unwrap();
    let before = net.manager().channel_route(tx.id).unwrap();
    assert!(before.path.iter().any(|l| matches!(
        l,
        HopLink::Trunk { from, to } if from == &SwitchId::new(2) || to == &SwitchId::new(2)
    )));

    let report = net.fail_switch(SwitchId::new(2)).unwrap();
    assert_eq!(report.rerouted.len(), 1);
    assert!(report.dropped.is_empty(), "the torus is redundant");
    let after = net.manager().channel_route(tx.id).unwrap();
    assert!(after.path.iter().all(|l| !matches!(
        l,
        HopLink::Trunk { from, to } if from == &SwitchId::new(2) || to == &SwitchId::new(2)
    )));

    let start = net.now() + Duration::from_millis(1);
    net.send_periodic(NodeId::new(0), tx.id, 12, 900, start)
        .unwrap();
    net.run_to_completion().unwrap();
    assert_eq!(net.received_messages().len(), 12 * 3);
    assert!(net.simulator().stats().all_deadlines_met(), "0 misses");
}

// --- weighted links (satellite) -------------------------------------------

#[test]
fn weighted_trunks_steer_routing_and_admission() {
    // A triangle: sw0 - sw1 direct (cost 10) vs sw0 - sw2 - sw1 (cost 1+1).
    let mut t = Topology::new();
    for s in 0..3 {
        t.add_switch(SwitchId::new(s));
    }
    t.add_trunk_weighted(SwitchId::new(0), SwitchId::new(1), 10)
        .unwrap();
    t.add_trunk(SwitchId::new(0), SwitchId::new(2)).unwrap();
    t.add_trunk(SwitchId::new(2), SwitchId::new(1)).unwrap();
    t.attach_node(NodeId::new(0), SwitchId::new(0)).unwrap();
    t.attach_node(NodeId::new(1), SwitchId::new(1)).unwrap();
    assert!(!t.has_uniform_cost());
    assert_eq!(t.trunk_cost(SwitchId::new(0), SwitchId::new(1)), Some(10));

    // Cheapest path avoids the expensive direct trunk.
    assert_eq!(
        t.switch_path(SwitchId::new(0), SwitchId::new(1)),
        Some(vec![SwitchId::new(0), SwitchId::new(2), SwitchId::new(1)])
    );

    // The whole stack (admission + wire) follows the cheap detour.
    let mut net = RtNetwork::builder()
        .topology(t)
        .router(ShortestPathRouter::new())
        .multihop_dps(MultiHopDps::Symmetric)
        .distributed_control()
        .build()
        .unwrap();
    let tx = net
        .establish_channel(NodeId::new(0), NodeId::new(1), spec())
        .unwrap()
        .unwrap();
    let route = net.manager().channel_route(tx.id).unwrap();
    assert_eq!(route.path.len(), 4, "uplink + 2 cheap trunks + downlink");
    assert!(route.path.contains(&HopLink::Trunk {
        from: SwitchId::new(0),
        to: SwitchId::new(2)
    }));
    let start = net.now() + Duration::from_millis(1);
    net.send_periodic(NodeId::new(0), tx.id, 10, 800, start)
        .unwrap();
    net.run_to_completion().unwrap();
    assert!(net.simulator().stats().all_deadlines_met());
    // The expensive trunk never carried a data frame.
    assert!(net
        .simulator()
        .stats()
        .hop_link(HopLink::Trunk {
            from: SwitchId::new(0),
            to: SwitchId::new(1)
        })
        .is_none());
}

// --- reservation leases (tentpole: honest fault survival) -----------------

fn direct(topology: &Topology) -> DistributedChannelManager {
    DistributedChannelManager::new(
        topology.clone(),
        MultiHopDps::Asymmetric,
        Arc::new(ShortestPathRouter::new()),
    )
}

/// The four links of the line(3,1) route node 0 → node 2.
fn line_route_links() -> [HopLink; 4] {
    [
        HopLink::Uplink(NodeId::new(0)),
        HopLink::Trunk {
            from: SwitchId::new(0),
            to: SwitchId::new(1),
        },
        HopLink::Trunk {
            from: SwitchId::new(1),
            to: SwitchId::new(2),
        },
        HopLink::Downlink(NodeId::new(2)),
    ]
}

/// Drive a line(3,1) handshake up to the moment every hop holds a leased
/// reservation and the coordinator has forwarded the request to the
/// destination — the exact gap between Reserve and Confirm.
fn strand_between_reserve_and_confirm(
    mgr: &mut DistributedChannelManager,
    h: &mut ControlHarness,
    now: SimTime,
) {
    h.submit(
        NodeId::new(0),
        NodeId::new(2),
        spec(),
        ConnectionRequestId::new(1),
    );
    while h.awaiting_answer() == 0 {
        assert!(
            h.step(mgr, now).unwrap(),
            "handshake stalled before the reserve pass completed"
        );
    }
    for link in line_route_links() {
        assert_eq!(mgr.link_load(link), 1, "reserve must lease {link}");
    }
}

/// The stranded-reservation regression: a trunk dies between the Reserve
/// pass and the Confirm walk, so the destination's accept can never reach
/// the coordinator.  The partial reservations must *expire* — every ledger
/// returns to its pre-probe state and the requester hears `Rejected` — not
/// leak forever.
#[test]
fn stranded_reservation_expires_and_returns_the_ledger_to_pre_probe_state() {
    let topology = Topology::line(3, 1);
    let mut mgr = direct(&topology);
    let mut h = ControlHarness::new(&topology);
    let now = SimTime::from_millis(1);
    strand_between_reserve_and_confirm(&mut mgr, &mut h, now);

    // The cut lands mid-handshake; the stranded response is never sent.
    mgr.handle_link_failure(SwitchId::new(1), SwitchId::new(2))
        .unwrap();
    h.flood(&mut mgr);
    let settled = h.settle(&mut mgr, now).unwrap();

    assert!(
        settled >= now.saturating_add(mgr.lease_duration()),
        "settling must cross the lease horizon"
    );
    assert_eq!(h.verdicts, vec![None], "the requester must hear Rejected");
    for link in line_route_links() {
        assert_eq!(mgr.link_load(link), 0, "stranded slack leaked on {link}");
    }
    assert_eq!(mgr.channel_count(), 0);
    assert_eq!(mgr.pending_count(), 0);
    assert!(mgr.lease_expired_count() > 0, "expiry must be observable");
    mgr.audit_quiescent().unwrap();
}

/// Lease edge case: a sweep one nanosecond before the deadline reclaims
/// nothing; the sweep at *exactly* the deadline reclaims everything.
#[test]
fn lease_expiry_lands_exactly_on_the_sweep_tick() {
    let topology = Topology::line(3, 1);
    let mut mgr = direct(&topology);
    let mut h = ControlHarness::new(&topology);
    let now = SimTime::from_millis(1);
    strand_between_reserve_and_confirm(&mut mgr, &mut h, now);

    let deadline = mgr.next_timeout().expect("leases are pending");
    assert_eq!(deadline, now.saturating_add(mgr.lease_duration()));
    h.tick(&mut mgr, SimTime::from_nanos(deadline.as_nanos() - 1))
        .unwrap();
    assert_eq!(
        mgr.lease_expired_count(),
        0,
        "early sweep must reclaim nothing"
    );
    assert!(h.verdicts.is_empty());
    for link in line_route_links() {
        assert_eq!(mgr.link_load(link), 1);
    }
    assert_eq!(mgr.next_timeout(), Some(deadline));

    h.tick(&mut mgr, deadline).unwrap();
    assert_eq!(h.verdicts, vec![None]);
    for link in line_route_links() {
        assert_eq!(mgr.link_load(link), 0);
    }
    assert_eq!(mgr.next_timeout(), None);
    mgr.audit_quiescent().unwrap();
}

/// Lease edge case: a Confirm that lands one sweep after its lease expired
/// must be answered with `ReserveFailed(LeaseExpired)` and must *not*
/// resurrect the torn-down admission.
#[test]
fn confirm_arriving_after_lease_expiry_is_rejected_not_resurrected() {
    let topology = Topology::line(3, 1);
    let mut mgr = direct(&topology);
    let mut h = ControlHarness::new(&topology);
    let now = SimTime::from_millis(1);
    strand_between_reserve_and_confirm(&mut mgr, &mut h, now);

    // The destination accepts and its access switch starts the Confirm
    // walk — but that first Confirm frame stays in flight while the lease
    // horizon passes.
    assert!(h.answer(true));
    assert!(h.step(&mut mgr, now).unwrap());
    assert!(h.queued() > 0, "a Confirm must be in flight");
    let deadline = mgr.next_timeout().expect("leases are pending");
    // The sweep fires first, then the stale Confirm (and every follow-up)
    // is delivered at the same late instant.
    h.tick(&mut mgr, deadline).unwrap();

    assert_eq!(h.verdicts, vec![None], "the admission must not resurrect");
    assert_eq!(mgr.channel_count(), 0);
    for link in line_route_links() {
        assert_eq!(mgr.link_load(link), 0, "late Confirm re-leaked {link}");
    }
    mgr.audit_quiescent().unwrap();
}

/// Lease edge case: a trunk repair — with its re-optimisation pass and
/// link-state floods — racing a still-in-flight destination-reject
/// Rollback must leave the books exact: the committed channel intact, the
/// rejection delivered, zero slack leaked.
#[test]
fn repair_racing_a_pending_rollback_leaks_nothing() {
    let topology = Topology::ring(4, 1);
    let mut mgr = DistributedChannelManager::new(
        topology.clone(),
        MultiHopDps::Symmetric,
        Arc::new(KShortestRouter::new(3)),
    );
    let mut h = ControlHarness::new(&topology);
    let now = SimTime::from_millis(1);

    // A committed channel node 0 (sw0) → node 1 (sw1) keeps real slack on
    // the books while the race runs.
    h.submit(
        NodeId::new(0),
        NodeId::new(1),
        spec(),
        ConnectionRequestId::new(1),
    );
    while h.awaiting_answer() == 0 {
        assert!(h.step(&mut mgr, now).unwrap());
    }
    assert!(h.answer(true));
    h.drain(&mut mgr, now).unwrap();
    assert_eq!(h.verdicts.len(), 1);
    assert!(h.verdicts[0].is_some(), "the first channel must commit");

    // Second request node 0 → node 3 (sw3); the destination refuses, so a
    // descending Rollback goes in flight toward the coordinator.
    h.submit(
        NodeId::new(0),
        NodeId::new(3),
        spec(),
        ConnectionRequestId::new(2),
    );
    while h.awaiting_answer() == 0 {
        assert!(h.step(&mut mgr, now).unwrap());
    }
    assert!(h.answer(false));
    assert!(h.step(&mut mgr, now).unwrap());
    assert!(h.queued() > 0, "a Rollback must be in flight");

    // An unrelated trunk dies and is spliced back while the Rollback is
    // pending: repair re-optimisation and link-state floods interleave
    // with it on the wire.
    mgr.handle_link_failure(SwitchId::new(1), SwitchId::new(2))
        .unwrap();
    h.flood(&mut mgr);
    mgr.handle_link_repair(SwitchId::new(1), SwitchId::new(2))
        .unwrap();
    h.flood(&mut mgr);
    h.settle(&mut mgr, now).unwrap();

    assert_eq!(h.verdicts.len(), 2);
    assert_eq!(h.verdicts[1], None, "the rejection must land");
    assert_eq!(mgr.channel_count(), 1, "the committed channel must survive");
    assert_eq!(mgr.rejected_count(), 1);
    mgr.audit_quiescent().unwrap();
}

#[test]
fn k_shortest_orders_candidates_by_cost() {
    // Square: sw0-sw1-sw2 (costs 1,1) vs sw0-sw3-sw2 (costs 5,5).
    let mut t = Topology::new();
    for s in 0..4 {
        t.add_switch(SwitchId::new(s));
    }
    t.add_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
    t.add_trunk(SwitchId::new(1), SwitchId::new(2)).unwrap();
    t.add_trunk_weighted(SwitchId::new(0), SwitchId::new(3), 5)
        .unwrap();
    t.add_trunk_weighted(SwitchId::new(3), SwitchId::new(2), 5)
        .unwrap();
    let router = KShortestRouter::new(2);
    let paths = router.switch_paths(&t, SwitchId::new(0), SwitchId::new(2));
    assert_eq!(paths.len(), 2);
    assert_eq!(
        paths[0],
        vec![SwitchId::new(0), SwitchId::new(1), SwitchId::new(2)],
        "the cheap branch is the primary"
    );
    assert_eq!(
        paths[1],
        vec![SwitchId::new(0), SwitchId::new(3), SwitchId::new(2)]
    );
}
