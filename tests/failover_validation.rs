//! Deterministic fail-over regressions: cut a ring / torus trunk mid-run
//! and prove the three guarantees of the failure model:
//!
//! 1. every affected admitted channel is re-routed over a surviving path
//!    (or reported dropped when none can admit it), keeping its channel id,
//! 2. frames generated after re-admission meet the hop-aware Eq. 18.1 bound
//!    of the *new* route — zero post-re-admission deadline misses,
//! 3. channels whose links are disjoint from the failure and from every
//!    re-route keep byte-for-byte identical delivery sequences to a
//!    fault-free run, and the whole fail-over story is scheduler-invariant
//!    and frame-conserving.

use switched_rt_ethernet::core::{MultiHopDps, RtChannelSpec, RtNetwork};
use switched_rt_ethernet::netsim::SchedulerKind;
use switched_rt_ethernet::traffic::FailoverScenario;
use switched_rt_ethernet::types::{Duration, HopLink, KShortestRouter, SimTime, SwitchId};

fn conservation_holds(net: &RtNetwork) {
    let stats = net.simulator().stats();
    assert_eq!(
        net.simulator().injected_count(),
        stats.total_delivered() + stats.total_dropped(),
        "conservation violated: {}",
        stats.summary()
    );
}

/// Ring closing-trunk cut mid-run: the affected channel is re-routed the
/// long way around (same id), frames in flight over the dead trunk are lost
/// and counted, post-re-admission traffic meets the new 5-hop bound, and a
/// same-switch bystander channel delivers byte-for-byte as in a fault-free
/// run.
#[test]
fn ring_trunk_cut_mid_run_reroutes_and_meets_bounds() {
    let scenario = FailoverScenario::ring_trunk_cut(4, 1, 1);
    let (cut_from, cut_to) = scenario.cut_trunk();
    let spec = RtChannelSpec::paper_default();
    let start1 = SimTime::from_millis(5);
    // Mid-flight cut: 100 us after the first message's frames start, some
    // are still crossing the fabric.
    let cut_at = start1 + Duration::from_micros(100);
    let start2 = cut_at + Duration::from_millis(1);

    let drive = |cut: bool| {
        let mut net = RtNetwork::builder()
            .topology(scenario.fabric().topology())
            .router(KShortestRouter::new(3))
            .multihop_dps(MultiHopDps::Symmetric)
            .build()
            .unwrap();
        // Affected: master on sw0 -> slave on sw3 via the closing trunk.
        let affected_src = scenario.fabric().master(0, 0);
        let affected = net
            .establish_channel(affected_src, scenario.fabric().slave(3, 0), spec)
            .unwrap()
            .expect("empty ring admits the channel");
        assert_eq!(
            net.manager().channel_route(affected.id).unwrap().path.len(),
            3
        );
        // Bystander: master -> slave on sw2, disjoint from the cut trunk
        // and from the affected channel's re-route (which only adds trunk
        // hops and the same sw3 downlink).
        let local_src = scenario.fabric().master(2, 0);
        let local = net
            .establish_channel(local_src, scenario.fabric().slave(2, 0), spec)
            .unwrap()
            .expect("same-switch channel is admitted");

        net.send_periodic(affected_src, affected.id, 3, 700, start1)
            .unwrap();
        net.send_periodic(local_src, local.id, 8, 700, start1)
            .unwrap();
        net.run_until(cut_at).unwrap();
        if cut {
            let report = net.fail_trunk(cut_from, cut_to).unwrap();
            assert_eq!(report.rerouted.len(), 1, "the cross-ring channel re-routes");
            assert_eq!(
                report.rerouted[0].id, affected.id,
                "channel id is preserved"
            );
            assert_eq!(report.rerouted[0].path.len(), 5, "the long way around");
            assert!(report.dropped.is_empty());
            assert_eq!(report.unaffected, 1);
            // Post-re-admission traffic on the new route.
            net.send_periodic(affected_src, affected.id, 5, 700, start2)
                .unwrap();
        }
        net.run_to_completion().unwrap();
        conservation_holds(&net);

        let local_seq: Vec<(u64, bool)> = net
            .received_messages()
            .iter()
            .filter(|m| m.message.channel == local.id)
            .map(|m| (m.delivered_at.as_nanos(), m.missed_deadline))
            .collect();
        (net, affected.id, local_seq)
    };

    let (net, affected_id, local_with_cut) = drive(true);
    let stats = net.simulator().stats();
    // Nothing — pre-cut, in-flight or post-re-admission — missed a
    // deadline; frames lost on the dead trunk are counted, not delivered.
    assert!(
        stats.all_deadlines_met(),
        "deadline misses after fail-over: {}",
        stats.summary()
    );
    assert!(net.received_messages().iter().all(|m| !m.missed_deadline));
    // Every measured latency on the re-routed channel fits the *new* 5-hop
    // bound (post-re-admission the layer stamps against it, and the wire
    // enforces the re-partitioned per-hop budgets).
    let bound_after = net.channel_deadline_bound(affected_id).unwrap();
    let worst = stats.channel(affected_id).unwrap().max_latency;
    assert!(
        worst <= bound_after,
        "worst {worst} exceeds post-fail-over bound {bound_after}"
    );
    // The re-route really avoided the dead trunk and used the detour.
    assert!(net
        .simulator()
        .stats()
        .hop_link(HopLink::Trunk {
            from: SwitchId::new(1),
            to: SwitchId::new(2),
        })
        .is_some());

    // Byte-for-byte: the sw2-local channel cannot tell the two worlds
    // apart.
    let (_, _, local_without_cut) = drive(false);
    assert!(!local_with_cut.is_empty());
    assert_eq!(
        local_with_cut, local_without_cut,
        "a channel off the failed path must keep its exact delivery sequence"
    );
}

/// Torus grid-trunk cut: a redundant fabric re-routes *every* affected
/// channel (nothing is dropped), and post-cut traffic meets the new bounds
/// with zero misses.
#[test]
fn torus_link_cut_reroutes_all_affected_channels() {
    let scenario = FailoverScenario::torus_link_cut(3, 3, 1, 1);
    let (cut_from, cut_to) = scenario.cut_trunk();
    let spec = RtChannelSpec::paper_default();
    let mut net = RtNetwork::builder()
        .topology(scenario.fabric().topology())
        .router(KShortestRouter::new(4))
        .multihop_dps(MultiHopDps::Asymmetric)
        .build()
        .unwrap();
    // Two channels crossing the doomed trunk (one per direction) and one
    // far away.
    let crossing = [
        (
            scenario.fabric().master(0, 0),
            scenario.fabric().slave(1, 0),
        ),
        (
            scenario.fabric().master(1, 0),
            scenario.fabric().slave(0, 0),
        ),
    ];
    let mut affected_ids = Vec::new();
    for &(src, dst) in &crossing {
        let tx = net.establish_channel(src, dst, spec).unwrap().unwrap();
        assert_eq!(
            net.manager().channel_route(tx.id).unwrap().path.len(),
            3,
            "pre-cut routes use the direct trunk"
        );
        affected_ids.push((src, tx.id));
    }
    let far_src = scenario.fabric().master(4, 0);
    let far = net
        .establish_channel(far_src, scenario.fabric().slave(5, 0), spec)
        .unwrap()
        .unwrap();

    let report = net.fail_trunk(cut_from, cut_to).unwrap();
    assert_eq!(report.rerouted.len(), 2, "the torus re-routes everything");
    assert!(report.dropped.is_empty(), "redundancy means no drops");
    assert_eq!(report.unaffected, 1);
    for (_, id) in &affected_ids {
        let route = net.manager().channel_route(*id).unwrap();
        assert_eq!(route.path.len(), 4, "the detour adds exactly one trunk hop");
        assert!(!route.path.iter().any(|l| matches!(
            l,
            HopLink::Trunk { from, to }
            if (*from == cut_from && *to == cut_to) || (*from == cut_to && *to == cut_from)
        )));
    }

    // Post-re-admission traffic on all three channels: zero misses, every
    // latency within its channel's (new) bound.
    let start = net.now() + Duration::from_millis(1);
    for &(src, id) in &affected_ids {
        net.send_periodic(src, id, 6, 900, start).unwrap();
    }
    net.send_periodic(far_src, far.id, 6, 900, start).unwrap();
    net.run_to_completion().unwrap();
    conservation_holds(&net);
    let stats = net.simulator().stats();
    assert!(stats.all_deadlines_met(), "{}", stats.summary());
    for (_, id) in affected_ids.iter().chain([(far_src, far.id)].iter()) {
        let bound = net.channel_deadline_bound(*id).unwrap();
        let worst = stats.channel(*id).unwrap().max_latency;
        assert!(worst <= bound, "channel {id}: {worst} > {bound}");
    }
}

/// A released channel's frames are dropped on the wire and counted — the
/// full-stack version of the teardown satellite: teardown races ahead of
/// already-scheduled periodic traffic, and none of it is delivered.
#[test]
fn teardown_drops_late_frames_instead_of_delivering_them() {
    let scenario = FailoverScenario::ring_trunk_cut(4, 1, 1);
    let spec = RtChannelSpec::paper_default();
    let mut net = RtNetwork::builder()
        .topology(scenario.fabric().topology())
        .multihop_dps(MultiHopDps::Symmetric)
        .build()
        .unwrap();
    let src = scenario.fabric().master(0, 0);
    let tx = net
        .establish_channel(src, scenario.fabric().slave(3, 0), spec)
        .unwrap()
        .unwrap();
    // Schedule 4 messages (12 frames) well in the future, then tear the
    // channel down before any of them reaches the fabric.
    let start = net.now() + Duration::from_millis(20);
    net.send_periodic(src, tx.id, 4, 500, start).unwrap();
    net.teardown_channel(src, tx.id).unwrap();
    assert_eq!(net.channel_count(), 0);
    net.run_to_completion().unwrap();

    let stats = net.simulator().stats();
    assert_eq!(
        net.received_messages().len(),
        0,
        "released channel must not deliver"
    );
    assert_eq!(
        stats.released_channel_dropped,
        4 * spec.capacity.get(),
        "every late frame is dropped and counted: {}",
        stats.summary()
    );
    conservation_holds(&net);
}

/// A teardown landing while data frames are at *every* stage of flight —
/// on the uplink, inside a switch, already on the destination downlink —
/// must never abort the run: frames behind the release are dropped and
/// counted, frames already past their last switch are delivered to a
/// receiver that has forgotten the channel and are simply ignored.
#[test]
fn mid_flight_teardown_never_aborts_the_run() {
    use switched_rt_ethernet::core::RtNetwork;
    use switched_rt_ethernet::types::Topology;
    let spec = RtChannelSpec::paper_default();
    // Sweep the teardown instant across the delivery pipeline of one
    // 3-frame message over a 3-hop route.
    for offset_us in [10u64, 60, 90, 120, 150, 180, 400] {
        let mut net = RtNetwork::builder()
            .topology(Topology::line(2, 1))
            .multihop_dps(MultiHopDps::Symmetric)
            .build()
            .unwrap();
        let src = switched_rt_ethernet::types::NodeId::new(0);
        let dst = switched_rt_ethernet::types::NodeId::new(1);
        let tx = net.establish_channel(src, dst, spec).unwrap().unwrap();
        let start = net.now();
        net.send_periodic(src, tx.id, 1, 500, start).unwrap();
        net.run_until(start + Duration::from_micros(offset_us))
            .unwrap();
        net.teardown_channel(src, tx.id).unwrap();
        net.run_to_completion()
            .unwrap_or_else(|e| panic!("offset {offset_us} us: run aborted: {e}"));
        conservation_holds(&net);
        assert_eq!(net.channel_count(), 0);
    }
}

/// The entire fail-over path — establishment, mid-run cut, re-admission,
/// post-cut traffic — is byte-for-byte identical under the heap and the
/// calendar scheduler.
#[test]
fn failover_runs_are_scheduler_invariant() {
    let scenario = FailoverScenario::ring_trunk_cut(4, 2, 2);
    let (cut_from, cut_to) = scenario.cut_trunk();
    let spec = RtChannelSpec::paper_default();
    let drive = |scheduler: SchedulerKind| {
        let mut net = RtNetwork::builder()
            .topology(scenario.fabric().topology())
            .router(KShortestRouter::new(3))
            .scheduler(scheduler)
            .multihop_dps(MultiHopDps::Asymmetric)
            .build()
            .unwrap();
        let pairs = [
            (
                scenario.fabric().master(0, 0),
                scenario.fabric().slave(3, 0),
            ),
            (
                scenario.fabric().master(1, 0),
                scenario.fabric().slave(2, 0),
            ),
            (
                scenario.fabric().master(2, 1),
                scenario.fabric().slave(0, 1),
            ),
        ];
        let mut channels = Vec::new();
        for &(src, dst) in &pairs {
            if let Some(tx) = net.establish_channel(src, dst, spec).unwrap() {
                channels.push((src, tx.id));
            }
        }
        let start = SimTime::from_millis(5);
        for &(src, id) in &channels {
            net.send_periodic(src, id, 4, 800, start).unwrap();
        }
        let cut_at = start + Duration::from_micros(150);
        net.run_until(cut_at).unwrap();
        net.fail_trunk(cut_from, cut_to).unwrap();
        let start2 = cut_at + Duration::from_millis(1);
        for &(src, id) in &channels {
            if net.manager().channel_route(id).is_some() {
                net.send_periodic(src, id, 4, 800, start2).unwrap();
            }
        }
        net.run_to_completion().unwrap();
        conservation_holds(&net);
        let trace: Vec<(u32, u16, u64, bool)> = net
            .received_messages()
            .iter()
            .map(|m| {
                (
                    m.receiver.get(),
                    m.message.channel.get(),
                    m.delivered_at.as_nanos(),
                    m.missed_deadline,
                )
            })
            .collect();
        (trace, net.simulator().stats().summary())
    };
    let heap = drive(SchedulerKind::Heap);
    let calendar = drive(SchedulerKind::Calendar);
    assert_eq!(heap, calendar, "schedulers diverge on the fail-over path");
}
