//! Cross-validation of the analytical admission control against slot-level
//! EDF schedule simulation, on randomly generated systems.
//!
//! Property: any per-link task set the admission controller has accepted is
//! schedulable — its slot-accurate EDF schedule over the hyperperiod is free
//! of deadline misses.  This ties together `rt-core` (admission, DPS),
//! `rt-edf` (analysis and schedule generation) and `rt-traffic` (workload
//! generation).

use switched_rt_ethernet::core::{AdmissionController, DpsKind, SystemState};
use switched_rt_ethernet::edf::schedule::simulate_over_hyperperiod;
use switched_rt_ethernet::edf::FeasibilityTester;
use switched_rt_ethernet::traffic::{HeterogeneousSpecs, RequestPattern, Scenario};
use switched_rt_ethernet::types::rng::Xoshiro256;
use switched_rt_ethernet::types::Slots;

fn assert_all_links_schedulable(controller: &AdmissionController) {
    for (link, _) in controller.state().loaded_links() {
        let set = controller.state().link_taskset(link);
        // The analysis itself must agree...
        assert!(
            FeasibilityTester::new().test(&set).is_feasible(),
            "link {link} holds an infeasible task set after admission"
        );
        // ...and so must the actual slot-level schedule.  The horizon is
        // capped: heterogeneous periods can have hyperperiods of many
        // millions of slots, and simulating the first 400k slots already
        // covers every release pattern that matters for this property.
        let outcome = simulate_over_hyperperiod(&set, Slots::new(400_000));
        assert!(
            outcome.is_miss_free(),
            "link {link} misses deadlines: {:?}",
            outcome.misses
        );
    }
}

/// Whatever the DPS, request pattern, scenario size and channel specs,
/// everything the switch admits is schedulable on every link.
#[test]
fn admitted_systems_are_schedulable() {
    let mut rng = Xoshiro256::new(0xc055_0001);
    for _ in 0..16 {
        let seed = rng.below(1_000);
        let masters = rng.range_inclusive(2, 5) as u32;
        let slaves = rng.range_inclusive(2, 9) as u32;
        let requested = rng.range_inclusive(10, 59);
        let dps = DpsKind::ALL[rng.below(4) as usize];
        let scenario = Scenario::new(masters, slaves);
        let mut specs = HeterogeneousSpecs::new(seed);
        let requests = RequestPattern::Uniform { seed }
            .generate_with(&scenario, requested, |_| specs.next_spec());
        let mut controller =
            AdmissionController::new(SystemState::with_nodes(scenario.nodes()), dps.build());
        for r in &requests {
            let _ = controller.request(r.source, r.destination, r.spec).unwrap();
        }
        assert_all_links_schedulable(&controller);
    }
}

/// The same holds for the paper's homogeneous master/slave workload at any
/// load level.
#[test]
fn paper_workload_is_schedulable_after_admission() {
    let mut rng = Xoshiro256::new(0xc055_0002);
    for _ in 0..16 {
        let requested = rng.range_inclusive(1, 249);
        let asymmetric = rng.chance(0.5);
        let scenario = Scenario::paper_master_slave();
        let dps = if asymmetric {
            DpsKind::Asymmetric
        } else {
            DpsKind::Symmetric
        };
        let spec = switched_rt_ethernet::core::RtChannelSpec::paper_default();
        let requests = RequestPattern::MasterSlaveRoundRobin.generate(&scenario, requested, spec);
        let mut controller =
            AdmissionController::new(SystemState::with_nodes(scenario.nodes()), dps.build());
        for r in &requests {
            let _ = controller.request(r.source, r.destination, r.spec).unwrap();
        }
        assert_all_links_schedulable(&controller);
    }
}

/// Deterministic counter-example for the utilisation-only shortcut: it
/// over-admits constrained-deadline channels, and the resulting link
/// schedule does miss deadlines (this is Ablation B's premise, pinned down
/// as a test so the ablation keeps demonstrating something real).
#[test]
fn utilisation_only_admission_produces_deadline_misses() {
    let scenario = Scenario::paper_master_slave();
    let spec = switched_rt_ethernet::core::RtChannelSpec::paper_default();
    let requests = RequestPattern::MasterSlaveRoundRobin.generate(&scenario, 200, spec);
    let mut controller = AdmissionController::utilisation_only(
        SystemState::with_nodes(scenario.nodes()),
        DpsKind::Symmetric.build(),
    );
    for r in &requests {
        let _ = controller.request(r.source, r.destination, r.spec).unwrap();
    }
    // Everything is admitted (utilisation stays below 1)...
    assert_eq!(controller.accepted_count(), 200);
    // ...but the uplinks are not actually schedulable.
    let mut misses = 0u64;
    for (link, _) in controller.state().loaded_links() {
        let outcome =
            simulate_over_hyperperiod(&controller.state().link_taskset(link), Slots::new(100_000));
        misses += outcome.misses.len() as u64;
    }
    assert!(
        misses > 0,
        "expected deadline misses under utilisation-only admission"
    );
}
