//! Measurement: per-channel latency and deadline statistics, per-link
//! utilisation, and global counters.
//!
//! The delay-validation experiment (Eq. 18.1) compares the measured
//! worst-case end-to-end delay of every admitted channel against its
//! guaranteed bound `d_i + T_latency`, so the statistics keep exact minimum /
//! maximum / mean latencies per RT channel as well as the number of frames
//! delivered after their absolute deadline.
//!
//! Link accounting is on the per-event hot path (every transmission records
//! one entry), so it is stored *densely*: one [`LinkStats`] slot per output
//! port, indexed by the simulator's contiguous port ids, with the
//! [`HopLink`]-keyed queries resolving against the port registry only on the
//! (cold) read side.

use std::collections::BTreeMap;

use rt_types::{ChannelId, Duration, HopLink, LinkId, SimTime};

/// Latency statistics for one RT channel.
#[derive(Debug, Clone, Copy)]
pub struct ChannelStats {
    /// Frames delivered on this channel.
    pub delivered: u64,
    /// Frames delivered after their absolute deadline.
    pub deadline_misses: u64,
    /// Smallest observed end-to-end latency.
    pub min_latency: Duration,
    /// Largest observed end-to-end latency.
    pub max_latency: Duration,
    /// Sum of latencies (for the mean).
    total_latency: Duration,
}

impl ChannelStats {
    fn new() -> Self {
        ChannelStats {
            delivered: 0,
            deadline_misses: 0,
            min_latency: Duration::from_nanos(u64::MAX),
            max_latency: Duration::ZERO,
            total_latency: Duration::ZERO,
        }
    }

    fn record(&mut self, latency: Duration, missed: bool) {
        self.delivered += 1;
        if missed {
            self.deadline_misses += 1;
        }
        self.min_latency = if latency < self.min_latency {
            latency
        } else {
            self.min_latency
        };
        self.max_latency = if latency > self.max_latency {
            latency
        } else {
            self.max_latency
        };
        self.total_latency += latency;
    }

    /// Mean end-to-end latency over all delivered frames.
    pub fn mean_latency(&self) -> Duration {
        if self.delivered == 0 {
            Duration::ZERO
        } else {
            self.total_latency / self.delivered
        }
    }
}

/// Transmission statistics for one directed link.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Frames transmitted on the link.
    pub frames: u64,
    /// Wire bytes transmitted (including preamble and inter-frame gap).
    pub wire_bytes: u64,
    /// Accumulated transmission time.
    pub busy_time: Duration,
}

impl LinkStats {
    #[inline]
    fn record(&mut self, wire_bytes: usize, tx_time: Duration) {
        self.frames += 1;
        self.wire_bytes += wire_bytes as u64;
        self.busy_time += tx_time;
    }

    /// Utilisation of the link over an observation window of length
    /// `elapsed`.
    pub fn utilisation(&self, elapsed: Duration) -> f64 {
        if elapsed.as_nanos() == 0 {
            0.0
        } else {
            self.busy_time.as_nanos() as f64 / elapsed.as_nanos() as f64
        }
    }
}

/// All measurements accumulated during one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Per-RT-channel latency statistics.
    pub channels: BTreeMap<u16, ChannelStats>,
    /// The directed link of every port, indexed by dense port id
    /// (installed by the simulator at construction).
    port_links: Vec<HopLink>,
    /// Per-port transmission statistics, same indexing.
    port_stats: Vec<LinkStats>,
    /// Real-time frames delivered (data + control).
    pub rt_delivered: u64,
    /// Best-effort frames delivered.
    pub be_delivered: u64,
    /// Best-effort frames dropped at full queues.
    pub be_dropped: u64,
    /// Frames dropped because the switch had no forwarding entry.
    pub unroutable_dropped: u64,
    /// Frames lost to a failed link: drained from a dead port's queues,
    /// cut mid-serialisation, or forwarded onto a dead trunk by a stale
    /// per-channel forwarding entry before re-routing caught up.
    pub failed_link_dropped: u64,
    /// Frames of a *released* (torn-down) RT channel dropped at the first
    /// switch: the fabric forgets a channel's wire state on release, so
    /// late frames are discarded, never silently delivered.
    pub released_channel_dropped: u64,
    /// Control-plane frames (establishment, reservation, tear-down) ever
    /// registered with the fabric, from any injection path.  The
    /// control-plane *overhead* of a run: under distributed admission the
    /// two-phase reservation emits more of these than the paper's
    /// teleport-to-the-manager model.  Link-state floods are counted
    /// separately ([`SimStats::link_state_frames`]) so this stays a pure
    /// per-admission reservation count.
    pub control_frames: u64,
    /// Link traversals by control-plane frames: every port transmission of
    /// a control frame counts one.  Admission latency in *real hops* — the
    /// wire work the control plane consumed.
    pub control_hops: u64,
    /// Link-state flood frames registered with the fabric: topology
    /// convergence overhead, split from [`SimStats::control_frames`] so a
    /// trunk event does not pollute per-admission reservation counts.
    pub link_state_frames: u64,
    /// Link traversals by link-state flood frames — the wire work one
    /// topology event costs before every switch's view has converged.
    pub link_state_hops: u64,
    /// Total real-time deadline misses across all channels.
    pub total_deadline_misses: u64,
    /// Events whose scheduled time lay in the past and was clamped to the
    /// current simulation time.  Debug builds panic instead; a non-zero
    /// count in a release build is a causality bug that must not hide.
    pub clamped_events: u64,
}

impl SimStats {
    /// Statistics over a fixed set of output ports: `port_links[p]` is the
    /// directed link driven by dense port id `p`.
    pub fn for_ports(port_links: Vec<HopLink>) -> Self {
        let port_stats = vec![LinkStats::default(); port_links.len()];
        SimStats {
            port_links,
            port_stats,
            ..SimStats::default()
        }
    }

    /// Record the delivery of a real-time data frame belonging to `channel`.
    pub fn record_rt_delivery(
        &mut self,
        channel: Option<ChannelId>,
        injected_at: SimTime,
        delivered_at: SimTime,
        deadline: Option<SimTime>,
    ) {
        self.rt_delivered += 1;
        let latency = delivered_at.saturating_duration_since(injected_at);
        let missed = deadline.is_some_and(|d| delivered_at > d);
        if missed {
            self.total_deadline_misses += 1;
        }
        if let Some(ch) = channel {
            self.channels
                .entry(ch.get())
                .or_insert_with(ChannelStats::new)
                .record(latency, missed);
        }
    }

    /// Record the delivery of a best-effort frame.
    pub fn record_be_delivery(&mut self) {
        self.be_delivered += 1;
    }

    /// Record a best-effort drop at a full queue.
    pub fn record_be_drop(&mut self) {
        self.be_dropped += 1;
    }

    /// Record a frame dropped for lack of a forwarding entry.
    pub fn record_unroutable(&mut self) {
        self.unroutable_dropped += 1;
    }

    /// Record a frame lost to a failed link.
    pub fn record_failed_link_drop(&mut self) {
        self.failed_link_dropped += 1;
    }

    /// Record a frame of a released channel dropped at a switch.
    pub fn record_released_channel_drop(&mut self) {
        self.released_channel_dropped += 1;
    }

    /// Frames delivered to a final receiver, either class.
    pub fn total_delivered(&self) -> u64 {
        self.rt_delivered + self.be_delivered
    }

    /// Frames dropped for any reason.  Together with
    /// [`SimStats::total_delivered`] this accounts for every frame the
    /// simulator ever registered: once the event queue drains, `injected =
    /// delivered + dropped` — the conservation invariant the property
    /// harness pins.
    pub fn total_dropped(&self) -> u64 {
        self.be_dropped
            + self.unroutable_dropped
            + self.failed_link_dropped
            + self.released_channel_dropped
    }

    /// Record a past-time event clamped to the current simulation time.
    pub fn record_clamped(&mut self) {
        self.clamped_events += 1;
    }

    /// Record the injection of a control-plane frame.
    pub fn record_control_frame(&mut self) {
        self.control_frames += 1;
    }

    /// Record one link traversal by a control-plane frame.
    #[inline]
    pub fn record_control_hop(&mut self) {
        self.control_hops += 1;
    }

    /// Record the injection of a link-state flood frame.
    pub fn record_link_state_frame(&mut self) {
        self.link_state_frames += 1;
    }

    /// Record one link traversal by a link-state flood frame.
    #[inline]
    pub fn record_link_state_hop(&mut self) {
        self.link_state_hops += 1;
    }

    /// Record a transmission on the port with dense id `port` (hot path:
    /// one array write, no map).  Ports are registered via
    /// [`SimStats::for_ports`]; an unregistered port id is a caller bug and
    /// asserts in debug builds (release builds drop the sample rather than
    /// panicking mid-simulation).
    #[inline]
    pub fn record_transmission(&mut self, port: usize, wire_bytes: usize, tx_time: Duration) {
        match self.port_stats.get_mut(port) {
            Some(stats) => stats.record(wire_bytes, tx_time),
            None => debug_assert!(false, "transmission on unregistered port {port}"),
        }
    }

    /// Statistics for one channel, if any frame was delivered on it.
    pub fn channel(&self, id: ChannelId) -> Option<&ChannelStats> {
        self.channels.get(&id.get())
    }

    /// Statistics for one directed access link, if it ever transmitted —
    /// the star-era view, kept for existing callers; the `LinkId` is
    /// converted to the equivalent access [`HopLink`].
    pub fn link(&self, id: LinkId) -> Option<&LinkStats> {
        let hop = match id.direction {
            rt_types::LinkDirection::Uplink => HopLink::Uplink(id.node),
            rt_types::LinkDirection::Downlink => HopLink::Downlink(id.node),
        };
        self.hop_link(hop)
    }

    /// Statistics for any directed link of the fabric, including trunks.
    /// `None` if the link never transmitted (or is not a port of the
    /// fabric).
    pub fn hop_link(&self, link: HopLink) -> Option<&LinkStats> {
        let port = self.port_links.iter().position(|&l| l == link)?;
        let stats = &self.port_stats[port];
        (stats.frames > 0).then_some(stats)
    }

    /// Every directed link that transmitted at least one frame, with its
    /// statistics.
    pub fn links(&self) -> impl Iterator<Item = (HopLink, &LinkStats)> {
        self.port_links
            .iter()
            .zip(self.port_stats.iter())
            .filter(|(_, s)| s.frames > 0)
            .map(|(&l, s)| (l, s))
    }

    /// The worst (largest) per-channel maximum latency, if any channel
    /// delivered frames.
    pub fn worst_case_latency(&self) -> Option<Duration> {
        self.channels.values().map(|c| c.max_latency).max()
    }

    /// `true` if no real-time frame missed its deadline.
    pub fn all_deadlines_met(&self) -> bool {
        self.total_deadline_misses == 0
    }

    /// A one-line human summary of the run's global counters — what the
    /// examples and experiment binaries print at the end.
    pub fn summary(&self) -> String {
        format!(
            "rt={} be={} be_dropped={} unroutable={} link_failed={} released={} deadline_misses={} clamped_events={} link_state={}",
            self.rt_delivered,
            self.be_delivered,
            self.be_dropped,
            self.unroutable_dropped,
            self.failed_link_dropped,
            self.released_channel_dropped,
            self.total_deadline_misses,
            self.clamped_events,
            self.link_state_frames,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_types::NodeId;

    #[test]
    fn channel_stats_accumulate() {
        let mut s = SimStats::default();
        let ch = ChannelId::new(5);
        s.record_rt_delivery(
            Some(ch),
            SimTime::from_micros(0),
            SimTime::from_micros(100),
            Some(SimTime::from_micros(200)),
        );
        s.record_rt_delivery(
            Some(ch),
            SimTime::from_micros(1000),
            SimTime::from_micros(1300),
            Some(SimTime::from_micros(1200)),
        );
        let c = s.channel(ch).unwrap();
        assert_eq!(c.delivered, 2);
        assert_eq!(c.deadline_misses, 1);
        assert_eq!(c.min_latency, Duration::from_micros(100));
        assert_eq!(c.max_latency, Duration::from_micros(300));
        assert_eq!(c.mean_latency(), Duration::from_micros(200));
        assert_eq!(s.total_deadline_misses, 1);
        assert!(!s.all_deadlines_met());
        assert_eq!(s.worst_case_latency(), Some(Duration::from_micros(300)));
    }

    #[test]
    fn rt_delivery_without_channel_counts_globally_only() {
        let mut s = SimStats::default();
        s.record_rt_delivery(None, SimTime::ZERO, SimTime::from_micros(10), None);
        assert_eq!(s.rt_delivered, 1);
        assert!(s.channels.is_empty());
        assert!(s.all_deadlines_met());
    }

    #[test]
    fn link_stats_utilisation() {
        let link = HopLink::Uplink(NodeId::new(3));
        let other = HopLink::Downlink(NodeId::new(3));
        let mut s = SimStats::for_ports(vec![link, other]);
        s.record_transmission(0, 1538, Duration::from_micros(123));
        s.record_transmission(0, 1538, Duration::from_micros(123));
        // Both the HopLink and the legacy LinkId view resolve the entry.
        assert!(s.link(LinkId::uplink(NodeId::new(3))).is_some());
        let l = s.hop_link(link).unwrap();
        assert_eq!(l.frames, 2);
        assert_eq!(l.wire_bytes, 3076);
        assert_eq!(l.busy_time, Duration::from_micros(246));
        let u = l.utilisation(Duration::from_micros(1000));
        assert!((u - 0.246).abs() < 1e-9);
        assert_eq!(l.utilisation(Duration::ZERO), 0.0);
        // A port that never transmitted reports no stats.
        assert!(s.hop_link(other).is_none());
        assert_eq!(s.links().count(), 1);
    }

    #[test]
    fn best_effort_counters() {
        let mut s = SimStats::default();
        s.record_be_delivery();
        s.record_be_delivery();
        s.record_be_drop();
        s.record_unroutable();
        s.record_clamped();
        assert_eq!(s.be_delivered, 2);
        assert_eq!(s.be_dropped, 1);
        assert_eq!(s.unroutable_dropped, 1);
        assert_eq!(s.clamped_events, 1);
        assert!(s.summary().contains("clamped_events=1"));
        assert!(s.summary().contains("be_dropped=1"));
    }

    #[test]
    fn failure_counters_roll_into_total_dropped() {
        let mut s = SimStats::default();
        s.record_be_delivery();
        s.record_rt_delivery(None, SimTime::ZERO, SimTime::from_micros(1), None);
        s.record_be_drop();
        s.record_unroutable();
        s.record_failed_link_drop();
        s.record_failed_link_drop();
        s.record_released_channel_drop();
        assert_eq!(s.failed_link_dropped, 2);
        assert_eq!(s.released_channel_dropped, 1);
        assert_eq!(s.total_delivered(), 2);
        assert_eq!(s.total_dropped(), 5);
        assert!(s.summary().contains("link_failed=2"));
        assert!(s.summary().contains("released=1"));
    }

    #[test]
    fn empty_stats_queries() {
        let s = SimStats::default();
        assert!(s.worst_case_latency().is_none());
        assert!(s.channel(ChannelId::new(1)).is_none());
        assert!(s.link(LinkId::uplink(NodeId::new(0))).is_none());
        assert!(s.all_deadlines_met());
        assert_eq!(s.links().count(), 0);
    }
}
