//! Measurement: per-channel latency and deadline statistics, per-link
//! utilisation, and global counters.
//!
//! The delay-validation experiment (Eq. 18.1) compares the measured
//! worst-case end-to-end delay of every admitted channel against its
//! guaranteed bound `d_i + T_latency`, so the statistics keep exact minimum /
//! maximum / mean latencies per RT channel as well as the number of frames
//! delivered after their absolute deadline.
//!
//! Link accounting is on the per-event hot path (every transmission records
//! one entry), so it is stored *densely*: one [`LinkStats`] slot per output
//! port, indexed by the simulator's contiguous port ids, with the
//! [`HopLink`]-keyed queries resolving against the port registry only on the
//! (cold) read side.

use std::collections::BTreeMap;

use rt_types::{ChannelId, Duration, HopLink, LinkId, SimTime};

/// Latency statistics for one RT channel.
#[derive(Debug, Clone, Copy)]
pub struct ChannelStats {
    /// Frames delivered on this channel.
    pub delivered: u64,
    /// Frames delivered after their absolute deadline.
    pub deadline_misses: u64,
    /// Smallest observed end-to-end latency.
    pub min_latency: Duration,
    /// Largest observed end-to-end latency.
    pub max_latency: Duration,
    /// Sum of latencies (for the mean).
    total_latency: Duration,
}

impl ChannelStats {
    fn new() -> Self {
        ChannelStats {
            delivered: 0,
            deadline_misses: 0,
            min_latency: Duration::from_nanos(u64::MAX),
            max_latency: Duration::ZERO,
            total_latency: Duration::ZERO,
        }
    }

    fn record(&mut self, latency: Duration, missed: bool) {
        self.delivered += 1;
        if missed {
            self.deadline_misses += 1;
        }
        self.min_latency = if latency < self.min_latency {
            latency
        } else {
            self.min_latency
        };
        self.max_latency = if latency > self.max_latency {
            latency
        } else {
            self.max_latency
        };
        self.total_latency += latency;
    }

    /// Fold another accumulator for the same channel into this one —
    /// min/max take the extremes, counts and the latency sum add, so the
    /// merge of per-shard accumulators is indistinguishable from one
    /// accumulator that saw every delivery.
    fn merge(&mut self, other: &ChannelStats) {
        self.delivered += other.delivered;
        self.deadline_misses += other.deadline_misses;
        self.min_latency = self.min_latency.min(other.min_latency);
        self.max_latency = self.max_latency.max(other.max_latency);
        self.total_latency += other.total_latency;
    }

    /// Mean end-to-end latency over all delivered frames.
    pub fn mean_latency(&self) -> Duration {
        if self.delivered == 0 {
            Duration::ZERO
        } else {
            self.total_latency / self.delivered
        }
    }
}

/// Transmission statistics for one directed link.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Frames transmitted on the link.
    pub frames: u64,
    /// Wire bytes transmitted (including preamble and inter-frame gap).
    pub wire_bytes: u64,
    /// Accumulated transmission time.
    pub busy_time: Duration,
}

impl LinkStats {
    #[inline]
    fn record(&mut self, wire_bytes: usize, tx_time: Duration) {
        self.frames += 1;
        self.wire_bytes += wire_bytes as u64;
        self.busy_time += tx_time;
    }

    /// Utilisation of the link over an observation window of length
    /// `elapsed`.
    pub fn utilisation(&self, elapsed: Duration) -> f64 {
        if elapsed.as_nanos() == 0 {
            0.0
        } else {
            self.busy_time.as_nanos() as f64 / elapsed.as_nanos() as f64
        }
    }
}

/// All measurements accumulated during one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Per-RT-channel latency statistics.
    pub channels: BTreeMap<u16, ChannelStats>,
    /// The directed link of every port, indexed by dense port id
    /// (installed by the simulator at construction).
    port_links: Vec<HopLink>,
    /// Per-port transmission statistics, same indexing.
    port_stats: Vec<LinkStats>,
    /// Real-time frames delivered (data + control).
    pub rt_delivered: u64,
    /// Best-effort frames delivered.
    pub be_delivered: u64,
    /// Best-effort frames dropped at full queues.
    pub be_dropped: u64,
    /// Frames dropped because the switch had no forwarding entry.
    pub unroutable_dropped: u64,
    /// Frames lost to a failed link: drained from a dead port's queues,
    /// cut mid-serialisation, or forwarded onto a dead trunk by a stale
    /// per-channel forwarding entry before re-routing caught up.
    pub failed_link_dropped: u64,
    /// Frames of a *released* (torn-down) RT channel dropped at the first
    /// switch: the fabric forgets a channel's wire state on release, so
    /// late frames are discarded, never silently delivered.
    pub released_channel_dropped: u64,
    /// Control-plane frames (establishment, reservation, tear-down) ever
    /// registered with the fabric, from any injection path.  The
    /// control-plane *overhead* of a run: under distributed admission the
    /// two-phase reservation emits more of these than the paper's
    /// teleport-to-the-manager model.  Link-state floods are counted
    /// separately ([`SimStats::link_state_frames`]) so this stays a pure
    /// per-admission reservation count.
    pub control_frames: u64,
    /// Link traversals by control-plane frames: every port transmission of
    /// a control frame counts one.  Admission latency in *real hops* — the
    /// wire work the control plane consumed.
    pub control_hops: u64,
    /// Link-state flood frames registered with the fabric: topology
    /// convergence overhead, split from [`SimStats::control_frames`] so a
    /// trunk event does not pollute per-admission reservation counts.
    pub link_state_frames: u64,
    /// Link traversals by link-state flood frames — the wire work one
    /// topology event costs before every switch's view has converged.
    pub link_state_hops: u64,
    /// Total real-time deadline misses across all channels.
    pub total_deadline_misses: u64,
    /// Events whose scheduled time lay in the past and was clamped to the
    /// current simulation time.  Debug builds panic instead; a non-zero
    /// count in a release build is a causality bug that must not hide.
    pub clamped_events: u64,
}

impl SimStats {
    /// Statistics over a fixed set of output ports: `port_links[p]` is the
    /// directed link driven by dense port id `p`.
    pub fn for_ports(port_links: Vec<HopLink>) -> Self {
        let port_stats = vec![LinkStats::default(); port_links.len()];
        SimStats {
            port_links,
            port_stats,
            ..SimStats::default()
        }
    }

    /// Record the delivery of a real-time data frame belonging to `channel`.
    pub fn record_rt_delivery(
        &mut self,
        channel: Option<ChannelId>,
        injected_at: SimTime,
        delivered_at: SimTime,
        deadline: Option<SimTime>,
    ) {
        self.rt_delivered += 1;
        let latency = delivered_at.saturating_duration_since(injected_at);
        let missed = deadline.is_some_and(|d| delivered_at > d);
        if missed {
            self.total_deadline_misses += 1;
        }
        if let Some(ch) = channel {
            self.channels
                .entry(ch.get())
                .or_insert_with(ChannelStats::new)
                .record(latency, missed);
        }
    }

    /// Record the delivery of a best-effort frame.
    pub fn record_be_delivery(&mut self) {
        self.be_delivered += 1;
    }

    /// Record a best-effort drop at a full queue.
    pub fn record_be_drop(&mut self) {
        self.be_dropped += 1;
    }

    /// Record a frame dropped for lack of a forwarding entry.
    pub fn record_unroutable(&mut self) {
        self.unroutable_dropped += 1;
    }

    /// Record a frame lost to a failed link.
    pub fn record_failed_link_drop(&mut self) {
        self.failed_link_dropped += 1;
    }

    /// Record a frame of a released channel dropped at a switch.
    pub fn record_released_channel_drop(&mut self) {
        self.released_channel_dropped += 1;
    }

    /// Frames delivered to a final receiver, either class.
    pub fn total_delivered(&self) -> u64 {
        self.rt_delivered + self.be_delivered
    }

    /// Frames dropped for any reason.  Together with
    /// [`SimStats::total_delivered`] this accounts for every frame the
    /// simulator ever registered: once the event queue drains, `injected =
    /// delivered + dropped` — the conservation invariant the property
    /// harness pins.
    pub fn total_dropped(&self) -> u64 {
        self.be_dropped
            + self.unroutable_dropped
            + self.failed_link_dropped
            + self.released_channel_dropped
    }

    /// Record a past-time event clamped to the current simulation time.
    pub fn record_clamped(&mut self) {
        self.clamped_events += 1;
    }

    /// Record the injection of a control-plane frame.
    pub fn record_control_frame(&mut self) {
        self.control_frames += 1;
    }

    /// Record one link traversal by a control-plane frame.
    #[inline]
    pub fn record_control_hop(&mut self) {
        self.control_hops += 1;
    }

    /// Record the injection of a link-state flood frame.
    pub fn record_link_state_frame(&mut self) {
        self.link_state_frames += 1;
    }

    /// Record one link traversal by a link-state flood frame.
    #[inline]
    pub fn record_link_state_hop(&mut self) {
        self.link_state_hops += 1;
    }

    /// Record a transmission on the port with dense id `port` (hot path:
    /// one array write, no map).  Ports are registered via
    /// [`SimStats::for_ports`]; an unregistered port id is a caller bug and
    /// asserts in debug builds (release builds drop the sample rather than
    /// panicking mid-simulation).
    #[inline]
    pub fn record_transmission(&mut self, port: usize, wire_bytes: usize, tx_time: Duration) {
        match self.port_stats.get_mut(port) {
            Some(stats) => stats.record(wire_bytes, tx_time),
            None => debug_assert!(false, "transmission on unregistered port {port}"),
        }
    }

    /// Fold another run's measurements into this one.
    ///
    /// This is the reduction step of the sharded simulator: every worker
    /// accumulates into its own `SimStats` (registered over the *full* port
    /// set, so dense port ids agree), and the coordinator folds them into the
    /// injection-side accumulator at the end of the run.  Every counter is a
    /// sum, per-channel statistics merge commutatively, and per-port link
    /// stats add slot-wise — so the merged result is exactly what a
    /// single-thread run would have recorded, which the equivalence suite
    /// pins against the oracle (including the `control_frames` /
    /// `link_state_frames` split that `summary()` reports).
    pub fn merge_from(&mut self, other: &SimStats) {
        for (id, stats) in &other.channels {
            self.channels
                .entry(*id)
                .or_insert_with(ChannelStats::new)
                .merge(stats);
        }
        if self.port_links.is_empty() && !other.port_links.is_empty() {
            self.port_links = other.port_links.clone();
            self.port_stats = vec![LinkStats::default(); self.port_links.len()];
        }
        debug_assert!(
            other.port_links.is_empty() || self.port_links == other.port_links,
            "merged stats must be registered over the same port set"
        );
        for (mine, theirs) in self.port_stats.iter_mut().zip(other.port_stats.iter()) {
            mine.frames += theirs.frames;
            mine.wire_bytes += theirs.wire_bytes;
            mine.busy_time += theirs.busy_time;
        }
        self.rt_delivered += other.rt_delivered;
        self.be_delivered += other.be_delivered;
        self.be_dropped += other.be_dropped;
        self.unroutable_dropped += other.unroutable_dropped;
        self.failed_link_dropped += other.failed_link_dropped;
        self.released_channel_dropped += other.released_channel_dropped;
        self.control_frames += other.control_frames;
        self.control_hops += other.control_hops;
        self.link_state_frames += other.link_state_frames;
        self.link_state_hops += other.link_state_hops;
        self.total_deadline_misses += other.total_deadline_misses;
        self.clamped_events += other.clamped_events;
    }

    /// Statistics for one channel, if any frame was delivered on it.
    pub fn channel(&self, id: ChannelId) -> Option<&ChannelStats> {
        self.channels.get(&id.get())
    }

    /// Statistics for one directed access link, if it ever transmitted —
    /// the star-era view, kept for existing callers; the `LinkId` is
    /// converted to the equivalent access [`HopLink`].
    pub fn link(&self, id: LinkId) -> Option<&LinkStats> {
        let hop = match id.direction {
            rt_types::LinkDirection::Uplink => HopLink::Uplink(id.node),
            rt_types::LinkDirection::Downlink => HopLink::Downlink(id.node),
        };
        self.hop_link(hop)
    }

    /// Statistics for any directed link of the fabric, including trunks.
    /// `None` if the link never transmitted (or is not a port of the
    /// fabric).
    pub fn hop_link(&self, link: HopLink) -> Option<&LinkStats> {
        let port = self.port_links.iter().position(|&l| l == link)?;
        let stats = &self.port_stats[port];
        (stats.frames > 0).then_some(stats)
    }

    /// Every directed link that transmitted at least one frame, with its
    /// statistics.
    pub fn links(&self) -> impl Iterator<Item = (HopLink, &LinkStats)> {
        self.port_links
            .iter()
            .zip(self.port_stats.iter())
            .filter(|(_, s)| s.frames > 0)
            .map(|(&l, s)| (l, s))
    }

    /// The worst (largest) per-channel maximum latency, if any channel
    /// delivered frames.
    pub fn worst_case_latency(&self) -> Option<Duration> {
        self.channels.values().map(|c| c.max_latency).max()
    }

    /// `true` if no real-time frame missed its deadline.
    pub fn all_deadlines_met(&self) -> bool {
        self.total_deadline_misses == 0
    }

    /// A one-line human summary of the run's global counters — what the
    /// examples and experiment binaries print at the end.
    pub fn summary(&self) -> String {
        format!(
            "rt={} be={} be_dropped={} unroutable={} link_failed={} released={} deadline_misses={} clamped_events={} control={} link_state={}",
            self.rt_delivered,
            self.be_delivered,
            self.be_dropped,
            self.unroutable_dropped,
            self.failed_link_dropped,
            self.released_channel_dropped,
            self.total_deadline_misses,
            self.clamped_events,
            self.control_frames,
            self.link_state_frames,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_types::NodeId;

    #[test]
    fn channel_stats_accumulate() {
        let mut s = SimStats::default();
        let ch = ChannelId::new(5);
        s.record_rt_delivery(
            Some(ch),
            SimTime::from_micros(0),
            SimTime::from_micros(100),
            Some(SimTime::from_micros(200)),
        );
        s.record_rt_delivery(
            Some(ch),
            SimTime::from_micros(1000),
            SimTime::from_micros(1300),
            Some(SimTime::from_micros(1200)),
        );
        let c = s.channel(ch).unwrap();
        assert_eq!(c.delivered, 2);
        assert_eq!(c.deadline_misses, 1);
        assert_eq!(c.min_latency, Duration::from_micros(100));
        assert_eq!(c.max_latency, Duration::from_micros(300));
        assert_eq!(c.mean_latency(), Duration::from_micros(200));
        assert_eq!(s.total_deadline_misses, 1);
        assert!(!s.all_deadlines_met());
        assert_eq!(s.worst_case_latency(), Some(Duration::from_micros(300)));
    }

    #[test]
    fn rt_delivery_without_channel_counts_globally_only() {
        let mut s = SimStats::default();
        s.record_rt_delivery(None, SimTime::ZERO, SimTime::from_micros(10), None);
        assert_eq!(s.rt_delivered, 1);
        assert!(s.channels.is_empty());
        assert!(s.all_deadlines_met());
    }

    #[test]
    fn link_stats_utilisation() {
        let link = HopLink::Uplink(NodeId::new(3));
        let other = HopLink::Downlink(NodeId::new(3));
        let mut s = SimStats::for_ports(vec![link, other]);
        s.record_transmission(0, 1538, Duration::from_micros(123));
        s.record_transmission(0, 1538, Duration::from_micros(123));
        // Both the HopLink and the legacy LinkId view resolve the entry.
        assert!(s.link(LinkId::uplink(NodeId::new(3))).is_some());
        let l = s.hop_link(link).unwrap();
        assert_eq!(l.frames, 2);
        assert_eq!(l.wire_bytes, 3076);
        assert_eq!(l.busy_time, Duration::from_micros(246));
        let u = l.utilisation(Duration::from_micros(1000));
        assert!((u - 0.246).abs() < 1e-9);
        assert_eq!(l.utilisation(Duration::ZERO), 0.0);
        // A port that never transmitted reports no stats.
        assert!(s.hop_link(other).is_none());
        assert_eq!(s.links().count(), 1);
    }

    #[test]
    fn best_effort_counters() {
        let mut s = SimStats::default();
        s.record_be_delivery();
        s.record_be_delivery();
        s.record_be_drop();
        s.record_unroutable();
        s.record_clamped();
        assert_eq!(s.be_delivered, 2);
        assert_eq!(s.be_dropped, 1);
        assert_eq!(s.unroutable_dropped, 1);
        assert_eq!(s.clamped_events, 1);
        assert!(s.summary().contains("clamped_events=1"));
        assert!(s.summary().contains("be_dropped=1"));
    }

    #[test]
    fn failure_counters_roll_into_total_dropped() {
        let mut s = SimStats::default();
        s.record_be_delivery();
        s.record_rt_delivery(None, SimTime::ZERO, SimTime::from_micros(1), None);
        s.record_be_drop();
        s.record_unroutable();
        s.record_failed_link_drop();
        s.record_failed_link_drop();
        s.record_released_channel_drop();
        assert_eq!(s.failed_link_dropped, 2);
        assert_eq!(s.released_channel_dropped, 1);
        assert_eq!(s.total_delivered(), 2);
        assert_eq!(s.total_dropped(), 5);
        assert!(s.summary().contains("link_failed=2"));
        assert!(s.summary().contains("released=1"));
    }

    #[test]
    fn merge_reproduces_a_single_accumulator() {
        let links = vec![
            HopLink::Uplink(NodeId::new(0)),
            HopLink::Downlink(NodeId::new(0)),
        ];
        let ch = ChannelId::new(7);
        // One accumulator that saw everything, and two shard-local
        // accumulators that split the same history between them.
        let mut whole = SimStats::for_ports(links.clone());
        let mut parts = [
            SimStats::for_ports(links.clone()),
            SimStats::for_ports(links.clone()),
        ];
        let deliveries = [
            (SimTime::ZERO, SimTime::from_micros(50), None),
            (
                SimTime::from_micros(10),
                SimTime::from_micros(200),
                Some(SimTime::from_micros(100)),
            ),
            (SimTime::from_micros(20), SimTime::from_micros(40), None),
        ];
        for (i, &(injected, delivered, deadline)) in deliveries.iter().enumerate() {
            for s in [&mut whole, &mut parts[i % 2]] {
                s.record_rt_delivery(Some(ch), injected, delivered, deadline);
            }
        }
        for s in [&mut whole, &mut parts[0]] {
            s.record_be_delivery();
            s.record_be_drop();
            s.record_control_frame();
            s.record_control_hop();
            s.record_transmission(0, 1538, Duration::from_micros(123));
        }
        for s in [&mut whole, &mut parts[1]] {
            s.record_unroutable();
            s.record_failed_link_drop();
            s.record_released_channel_drop();
            s.record_link_state_frame();
            s.record_link_state_hop();
            s.record_transmission(1, 84, Duration::from_micros(7));
            s.record_clamped();
        }

        let mut merged = SimStats::for_ports(links);
        let [a, b] = parts;
        merged.merge_from(&a);
        merged.merge_from(&b);

        assert_eq!(merged.summary(), whole.summary());
        assert!(merged.summary().contains("control=1"));
        let (mc, wc) = (
            merged.channel(ch).expect("merged channel"),
            whole.channel(ch).expect("whole channel"),
        );
        assert_eq!(mc.delivered, wc.delivered);
        assert_eq!(mc.deadline_misses, wc.deadline_misses);
        assert_eq!(mc.min_latency, wc.min_latency);
        assert_eq!(mc.max_latency, wc.max_latency);
        assert_eq!(mc.mean_latency(), wc.mean_latency());
        assert_eq!(merged.control_hops, whole.control_hops);
        assert_eq!(merged.link_state_hops, whole.link_state_hops);
        assert_eq!(merged.total_delivered(), whole.total_delivered());
        assert_eq!(merged.total_dropped(), whole.total_dropped());
        assert_eq!(merged.links().count(), whole.links().count());
        for (link, ws) in whole.links() {
            let ms = merged.hop_link(link).expect("merged link stats");
            assert_eq!(ms.frames, ws.frames);
            assert_eq!(ms.wire_bytes, ws.wire_bytes);
            assert_eq!(ms.busy_time, ws.busy_time);
        }
    }

    #[test]
    fn merge_into_unregistered_stats_adopts_the_port_registry() {
        let links = vec![HopLink::Uplink(NodeId::new(1))];
        let mut part = SimStats::for_ports(links);
        part.record_transmission(0, 100, Duration::from_micros(1));
        let mut merged = SimStats::default();
        merged.merge_from(&part);
        assert_eq!(merged.links().count(), 1);
        // Merging a port-less accumulator into a registered one is a no-op
        // on the link side.
        merged.merge_from(&SimStats::default());
        assert_eq!(merged.links().count(), 1);
    }

    #[test]
    fn empty_stats_queries() {
        let s = SimStats::default();
        assert!(s.worst_case_latency().is_none());
        assert!(s.channel(ChannelId::new(1)).is_none());
        assert!(s.link(LinkId::uplink(NodeId::new(0))).is_none());
        assert!(s.all_deadlines_met());
        assert_eq!(s.links().count(), 0);
    }
}
