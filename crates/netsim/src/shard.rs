//! Sharded (parallel) fabric simulation: conservative PDES over worker
//! threads, pinned byte-for-byte against the single-thread [`Simulator`].
//!
//! # Model
//!
//! A **shard** owns a set of switches (assigned by a deterministic
//! [`rt_types::partition_switches`] partition) together with every output
//! port that *originates* at them: the uplink/downlink pair of each attached
//! node and the directed trunk ports leaving an owned switch.  Each shard
//! runs its own calendar [`EventQueue`] over the same per-event handlers as
//! the single-thread simulator, accumulating into its own [`SimStats`] and
//! its own delivery list; the coordinator folds everything back together at
//! the end of the run.
//!
//! # Synchronisation
//!
//! The only cross-shard edge is a frame finishing transmission on an
//! inter-shard trunk: its `ArriveAtSwitch` fires a fixed **lookahead**
//! `L = propagation_delay + switch_latency` after the `TrunkTxComplete`.
//! The coordinator therefore runs classic conservative time windows: with
//! `V` the globally minimal pending time, every shard may safely execute
//! `[V, V + L)` — no event executed in the window can produce a cross-shard
//! arrival inside it.  Cross-shard arrivals travel as `(time, switch,
//! FrameId)` triples over lock-free SPSC rings (the arena store makes this
//! an index move, not a buffer copy); ring overflow spills through the
//! coordinator, so the rings bound memory, never correctness.
//!
//! # Determinism (oracle pinning)
//!
//! The single-thread run is the oracle: same deliveries, same bytes, same
//! counters, at every shard count.  Three mechanisms make the parallel run
//! reproduce it exactly:
//!
//! 1. **Staged arrivals.**  *Every* switch arrival — local or cross-shard —
//!    is staged and ingested at window starts in `(arrival_time, tx_start,
//!    frame_id)` order, where `tx_start = arrival − L − tx_time` is the
//!    instant the producing transmission began.  Because the minimum frame
//!    transmission time exceeds `L` (checked at construction), producing
//!    `TxComplete`s always execute in an earlier window than the arrival's
//!    ingestion, so this order reproduces the oracle's FIFO sequence
//!    numbers for same-instant arrivals.
//! 2. **Ranked injections and faults.**  The preloaded event set (frame
//!    injections, scripted faults) is drained in global `(time, seq)` order
//!    and replayed with explicit ranks: workers interleave injections
//!    before same-time derived events exactly as the oracle's sequence
//!    numbers do, and a fault barrier executes injections ranked before the
//!    fault, then the fault, then resumes windows.
//! 3. **Canonical delivery merge.**  Per-shard delivery lists merge on the
//!    key `(delivered_at, sched_at, tx_start, frame_id)` — the times the
//!    oracle scheduled and executed the delivering events — which
//!    reproduces the oracle's `poll_deliveries` order byte for byte.
//!
//! Faults synchronise on a barrier: the coordinator applies the topology
//! mutation and re-pulls the routing tables (exactly the single-thread
//! semantics), then every worker kills or revives the ports it owns, drains
//! dead queues into `failed_link_dropped`, and dooms frames caught
//! mid-serialisation — so a cut inter-shard trunk loses exactly the frames
//! the oracle loses, while frames whose transmission already completed
//! (ring entries in flight) arrive exactly as they do in the oracle.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use rt_frames::{EthernetFrame, FrameArena, FrameRef};
use rt_types::{
    effective_shards, partition_switches, ChannelId, DenseNextHop, Duration, HopLink, IdIndex,
    NodeId, Route, Router, RtError, RtResult, ShardStrategy, SimTime, SwitchId, Topology,
    MIN_FRAME_WIRE_BYTES, NO_INDEX,
};

use crate::event::{Event, EventQueue, SchedulerKind};
use crate::port::{OutputPort, TrafficClass};
use crate::sim::{
    ChannelWireState, Delivery, FaultScript, FrameDest, FrameId, FrameInjection, FrameRecord,
    LinkFault, SimConfig, Simulator, StoredFrame,
};
use crate::stats::SimStats;

/// Capacity (entries) of each inter-shard ring; a power of two.  Overflow
/// is handled by spilling through the coordinator, so this only sizes the
/// fast path.
const RING_CAPACITY: usize = 1024;

// ---------------------------------------------------------------------------
// SPSC ring
// ---------------------------------------------------------------------------

/// One cross-shard arrival: a frame becomes eligible for forwarding at
/// dense switch `switch` at `time_ns`.
#[derive(Debug, Clone, Copy)]
struct RingEntry {
    time_ns: u64,
    switch: u32,
    frame: u64,
}

/// A bounded lock-free single-producer single-consumer ring carrying
/// [`RingEntry`] triples as three parallel atomic lanes (the workspace
/// forbids `unsafe`, so the slots are atomics rather than raw cells).
///
/// `head`/`tail` are monotonic counters; the producer publishes a slot with
/// a `Release` store of `tail` and the consumer observes it with an
/// `Acquire` load, so the relaxed lane stores happen-before the read side.
struct SpscRing {
    head: AtomicUsize,
    tail: AtomicUsize,
    times: Vec<AtomicU64>,
    switches: Vec<AtomicU64>,
    frames: Vec<AtomicU64>,
    mask: usize,
}

impl SpscRing {
    fn new(capacity: usize) -> Self {
        debug_assert!(capacity.is_power_of_two());
        SpscRing {
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            times: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            switches: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            frames: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            mask: capacity - 1,
        }
    }

    /// Producer side: `false` when the ring is full (the caller spills the
    /// entry through the coordinator instead).
    fn push(&self, entry: RingEntry) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == self.times.len() {
            return false;
        }
        let i = tail & self.mask;
        self.times[i].store(entry.time_ns, Ordering::Relaxed);
        self.switches[i].store(entry.switch as u64, Ordering::Relaxed);
        self.frames[i].store(entry.frame, Ordering::Relaxed);
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side: append every published entry to `out`.
    fn drain_into(&self, out: &mut Vec<RingEntry>) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        let mut cursor = head;
        while cursor != tail {
            let i = cursor & self.mask;
            out.push(RingEntry {
                time_ns: self.times[i].load(Ordering::Relaxed),
                switch: self.switches[i].load(Ordering::Relaxed) as u32,
                frame: self.frames[i].load(Ordering::Relaxed),
            });
            cursor = cursor.wrapping_add(1);
        }
        self.head.store(tail, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// Coordinator <-> worker protocol
// ---------------------------------------------------------------------------

/// One step of the barrier protocol, coordinator to worker.
enum Command {
    /// Execute every owned event with `time < end_excl` (exclusive), after
    /// ingesting `spilled` ring-overflow arrivals and draining the inbound
    /// rings.  `dense` is the routing table to forward with (refreshed
    /// after faults).
    Window {
        end_excl: SimTime,
        dense: Arc<DenseNextHop>,
        spilled: Vec<RingEntry>,
    },
    /// A scripted fault fires at `at` with global sequence rank `rank`:
    /// execute injections at `at` ranked before it, then kill / revive the
    /// owned ports listed (port ids into the full dense port space).
    Fault {
        at: SimTime,
        rank: u64,
        kills: Arc<Vec<u32>>,
        repairs: Arc<Vec<u32>>,
    },
    /// The run is over; send the final report and exit.
    Finish,
}

/// Barrier acknowledgement, worker to coordinator.
struct Report {
    shard: u32,
    /// Earliest pending work this shard knows about: its injection list,
    /// its calendar, its staged arrivals, and everything it pushed onto
    /// outbound rings since the last report.  `u64::MAX` when idle.
    next_ns: u64,
    /// Ring-overflow entries, routed to their destination shard via the
    /// next `Window` command.
    spill: Vec<(u32, RingEntry)>,
}

/// End-of-run hand-back from one worker.
struct WorkerFinal {
    stats: SimStats,
    deliveries: Vec<(DeliveryKey, Delivery)>,
    freed: Vec<FrameRef>,
    processed: u64,
    last_ns: u64,
}

/// Canonical merge key: `(delivered_at, sched_at, tx_start, frame_id)` —
/// see the module docs for why this reproduces the oracle's delivery order.
type DeliveryKey = [u64; 4];

/// A cross- or intra-shard switch arrival parked until its window opens.
#[derive(Debug, Clone, Copy)]
struct Staged {
    time_ns: u64,
    tx_start_ns: u64,
    switch: u32,
    frame: FrameId,
}

// ---------------------------------------------------------------------------
// Shared read-only fabric context
// ---------------------------------------------------------------------------

/// The immutable-during-run parts of the fabric, shared by every worker.
struct Fabric<'a> {
    config: &'a SimConfig,
    frames: &'a [FrameRecord],
    arena: &'a FrameArena,
    node_index: &'a IdIndex,
    node_access: &'a [u32],
    trunk_ports: &'a [u32],
    switch_count: usize,
    port_links: &'a [HopLink],
    channel_wire: &'a [Option<ChannelWireState>],
    released_channels: &'a [bool],
    manager_index: u32,
    distributed_control: bool,
    assignment: &'a [u32],
    lookahead: Duration,
}

impl<'a> Clone for Fabric<'a> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a> Copy for Fabric<'a> {}

impl<'a> Fabric<'a> {
    #[inline]
    fn node_idx(&self, node: NodeId) -> u32 {
        self.node_index
            .get(node.get())
            .expect("events only reference attached nodes")
    }

    #[inline]
    fn trunk_port(&self, from: u32, to: u32) -> Option<u32> {
        match self.trunk_ports[from as usize * self.switch_count + to as usize] {
            NO_INDEX => None,
            port => Some(port),
        }
    }

    #[inline]
    fn channel_state(&self, channel: Option<ChannelId>) -> Option<&'a ChannelWireState> {
        self.channel_wire.get(channel?.get() as usize)?.as_ref()
    }

    #[inline]
    fn is_released(&self, channel: Option<ChannelId>) -> bool {
        channel.is_some_and(|ch| {
            self.released_channels
                .get(ch.get() as usize)
                .copied()
                .unwrap_or(false)
        })
    }

    #[inline]
    fn record(&self, frame: FrameId) -> &'a FrameRecord {
        &self.frames[frame.get() as usize]
    }

    #[inline]
    fn tx_time(&self, wire_bytes: usize) -> Duration {
        self.config.link_speed.transmission_time(wire_bytes)
    }

    /// Mirrors `Simulator::queue_deadline`.
    #[inline]
    fn queue_deadline(&self, record: &FrameRecord, port: u32) -> Option<SimTime> {
        if let Some(offset) = self
            .channel_state(record.channel)
            .and_then(|state| state.offset_for(port))
        {
            return Some(record.injected_at + offset);
        }
        record.deadline
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// One shard's execution state: the same handlers as [`Simulator::handle`],
/// over the full dense port space (only owned ports are ever touched), with
/// switch arrivals staged for deterministic ingestion and deliveries /
/// frees / stats parked for the end-of-run merge.
struct Worker<'a> {
    fab: Fabric<'a>,
    shard: u32,
    dense: Arc<DenseNextHop>,
    queue: EventQueue,
    batch: Vec<Event>,
    ports: Vec<OutputPort>,
    dead: Vec<bool>,
    doomed: Vec<bool>,
    stats: SimStats,
    deliveries: Vec<(DeliveryKey, Delivery)>,
    freed: Vec<FrameRef>,
    /// Preloaded frame injections owned by this shard, in global
    /// `(time, rank)` order.
    injections: VecDeque<(SimTime, u64, Event)>,
    staging: Vec<Staged>,
    /// `inbox[p]`: ring produced by shard `p` for us.
    inbox: Vec<Arc<SpscRing>>,
    /// `outbox[c]`: ring we produce for shard `c`.
    outbox: Vec<Arc<SpscRing>>,
    spill: Vec<(u32, RingEntry)>,
    outbound_min_ns: u64,
    ring_scratch: Vec<RingEntry>,
    last_ns: u64,
}

impl<'a> Worker<'a> {
    #[inline]
    fn schedule_event(&mut self, at: SimTime, event: Event) {
        if self.queue.schedule(at, event) {
            self.stats.record_clamped();
        }
    }

    /// The staging record of an arrival: `tx_start` recovers the instant
    /// the producing transmission began, the tie-break the deterministic
    /// ingestion order sorts on.
    fn staged(&self, time: SimTime, switch: u32, frame: FrameId) -> Staged {
        let time_ns = time.as_nanos();
        let tx = self
            .fab
            .tx_time(self.fab.record(frame).wire_bytes)
            .as_nanos();
        let lookahead = self.fab.lookahead.as_nanos();
        Staged {
            time_ns,
            tx_start_ns: time_ns.saturating_sub(lookahead + tx),
            switch,
            frame,
        }
    }

    /// Route a switch arrival: stage it locally, or hand it to the owning
    /// shard's ring (spilling through the coordinator when full).
    fn emit_arrival(&mut self, at: SimTime, switch: u32, frame: FrameId) {
        let dest = self.fab.assignment[switch as usize];
        if dest == self.shard {
            let staged = self.staged(at, switch, frame);
            self.staging.push(staged);
        } else {
            let entry = RingEntry {
                time_ns: at.as_nanos(),
                switch,
                frame: frame.get(),
            };
            self.outbound_min_ns = self.outbound_min_ns.min(entry.time_ns);
            if !self.outbox[dest as usize].push(entry) {
                self.spill.push((dest, entry));
            }
        }
    }

    /// Pull every published inbound ring entry into the staging area.
    fn drain_rings(&mut self) {
        let mut scratch = std::mem::take(&mut self.ring_scratch);
        for (producer, ring) in self.inbox.iter().enumerate() {
            if producer as u32 != self.shard {
                ring.drain_into(&mut scratch);
            }
        }
        for entry in scratch.drain(..) {
            let staged = self.staged(
                SimTime::from_nanos(entry.time_ns),
                entry.switch,
                FrameId::new(entry.frame),
            );
            self.staging.push(staged);
        }
        self.ring_scratch = scratch;
    }

    /// Move every staged arrival due before `end_excl` into the calendar,
    /// in the canonical `(time, tx_start, frame)` order that reproduces the
    /// oracle's same-instant FIFO sequence.
    fn ingest_staged(&mut self, end_excl: SimTime) {
        let end_ns = end_excl.as_nanos();
        let mut due = Vec::new();
        self.staging.retain(|s| {
            if s.time_ns < end_ns {
                due.push(*s);
                false
            } else {
                true
            }
        });
        due.sort_unstable_by_key(|s| (s.time_ns, s.tx_start_ns, s.frame.get()));
        for s in due {
            let switch = self.dense.switch_at(s.switch);
            self.schedule_event(
                SimTime::from_nanos(s.time_ns),
                Event::ArriveAtSwitch {
                    switch,
                    frame: s.frame,
                },
            );
        }
    }

    /// Execute every owned event strictly before `end_excl`, interleaving
    /// preloaded injections before same-time derived events (they carry
    /// lower oracle sequence numbers).
    fn run_window(&mut self, end_excl: SimTime, dense: Arc<DenseNextHop>, spilled: Vec<RingEntry>) {
        self.dense = dense;
        for entry in spilled {
            let staged = self.staged(
                SimTime::from_nanos(entry.time_ns),
                entry.switch,
                FrameId::new(entry.frame),
            );
            self.staging.push(staged);
        }
        self.drain_rings();
        self.ingest_staged(end_excl);
        let end_incl = SimTime::from_nanos(end_excl.as_nanos().saturating_sub(1));
        loop {
            let next_injection = match self.injections.front() {
                Some(&(t, _, _)) if t < end_excl => Some(t),
                _ => None,
            };
            let next_calendar = self.queue.peek_time().filter(|&t| t < end_excl);
            match (next_injection, next_calendar) {
                (None, None) => break,
                (Some(t), None) => self.handle_injections_at(t),
                (Some(t), Some(c)) if t <= c => self.handle_injections_at(t),
                _ => {
                    let mut batch = std::mem::take(&mut self.batch);
                    if let Some(time) = self.queue.pop_run_until(end_incl, &mut batch) {
                        self.last_ns = self.last_ns.max(time.as_nanos());
                        for event in batch.drain(..) {
                            self.handle(time, event);
                        }
                    }
                    self.batch = batch;
                }
            }
        }
    }

    /// Execute every consecutive preloaded injection at exactly time `t`.
    fn handle_injections_at(&mut self, t: SimTime) {
        self.last_ns = self.last_ns.max(t.as_nanos());
        while let Some(&(it, _, _)) = self.injections.front() {
            if it != t {
                break;
            }
            let (_, _, event) = self.injections.pop_front().expect("front checked");
            self.handle(t, event);
        }
    }

    /// Fault barrier: injections at `at` ranked before the fault fire
    /// first (the oracle pops them first), then this shard's owned ports
    /// die or revive, with dead queues drained into `failed_link_dropped`
    /// and busy ports doomed — exactly `Simulator::kill_trunk_ports`.
    fn fault_step(&mut self, at: SimTime, rank: u64, kills: &[u32], repairs: &[u32]) {
        self.last_ns = self.last_ns.max(at.as_nanos());
        while let Some(&(t, r, _)) = self.injections.front() {
            if t != at || r > rank {
                break;
            }
            let (_, _, event) = self.injections.pop_front().expect("front checked");
            self.handle(at, event);
        }
        for &port in kills {
            if self.port_owner(port) != self.shard {
                continue;
            }
            let p = port as usize;
            self.dead[p] = true;
            if self.ports[p].is_busy(at) {
                self.doomed[p] = true;
            }
            for lost in self.ports[p].drain() {
                self.stats.record_failed_link_drop();
                self.discard_frame(lost.frame);
            }
        }
        for &port in repairs {
            if self.port_owner(port) == self.shard {
                self.dead[port as usize] = false;
            }
        }
        self.drain_rings();
    }

    /// Which shard owns (i.e. transmits on) dense port `port`.
    fn port_owner(&self, port: u32) -> u32 {
        match self.fab.port_links[port as usize] {
            HopLink::Uplink(node) | HopLink::Downlink(node) => {
                let idx = self.fab.node_idx(node);
                self.fab.assignment[self.fab.node_access[idx as usize] as usize]
            }
            HopLink::Trunk { from, .. } => {
                let f = self
                    .dense
                    .index_of(from)
                    .expect("trunk ports reference topology switches");
                self.fab.assignment[f as usize]
            }
        }
    }

    /// Earliest pending work this shard knows about.
    fn next_pending_ns(&self) -> u64 {
        let mut next = u64::MAX;
        if let Some(&(t, _, _)) = self.injections.front() {
            next = next.min(t.as_nanos());
        }
        if let Some(t) = self.queue.peek_time() {
            next = next.min(t.as_nanos());
        }
        for s in &self.staging {
            next = next.min(s.time_ns);
        }
        next
    }

    fn make_report(&mut self) -> Report {
        let next_ns = self.next_pending_ns().min(self.outbound_min_ns);
        self.outbound_min_ns = u64::MAX;
        Report {
            shard: self.shard,
            next_ns,
            spill: std::mem::take(&mut self.spill),
        }
    }

    // --- event handlers, mirroring `Simulator::handle` -------------------

    fn handle(&mut self, now: SimTime, event: Event) {
        match event {
            Event::EnqueueAtNode { node, frame } => {
                let port = 2 * self.fab.node_idx(node);
                self.enqueue_at_port(frame, port);
                self.try_start_tx(now, port);
            }
            Event::NodeTxComplete { node, frame } => {
                let node_idx = self.fab.node_idx(node);
                let port = 2 * node_idx;
                self.ports[port as usize].clear_busy();
                let arrive =
                    now + self.fab.config.propagation_delay + self.fab.config.switch_latency;
                self.emit_arrival(arrive, self.fab.node_access[node_idx as usize], frame);
                self.try_start_tx(now, port);
            }
            Event::ArriveAtSwitch { switch, frame } => {
                let at = self
                    .dense
                    .index_of(switch)
                    .expect("events only reference topology switches");
                let record = self.fab.record(frame);
                let channel = record.channel;
                match record.dest {
                    FrameDest::ControlPlane => {
                        if self.fab.distributed_control || at == self.fab.manager_index {
                            let switch = self.dense.switch_at(at);
                            self.deliver_to_switch(frame, switch, now);
                        } else if let Some(port) = self
                            .dense
                            .next_hop_index(at, self.fab.manager_index)
                            .and_then(|next| self.fab.trunk_port(at, next))
                        {
                            self.enqueue_at_port(frame, port);
                            self.try_start_tx(now, port);
                        } else {
                            self.stats.record_unroutable();
                            self.discard_frame(frame);
                        }
                    }
                    FrameDest::Switch { switch: target } => {
                        if at == target {
                            let switch = self.dense.switch_at(at);
                            self.deliver_to_switch(frame, switch, now);
                        } else if let Some(port) = self
                            .dense
                            .next_hop_index(at, target)
                            .and_then(|next| self.fab.trunk_port(at, next))
                        {
                            self.enqueue_at_port(frame, port);
                            self.try_start_tx(now, port);
                        } else {
                            self.stats.record_unroutable();
                            self.discard_frame(frame);
                        }
                    }
                    FrameDest::Node {
                        node: dest_node,
                        switch: dest_switch,
                    } => {
                        if self.fab.is_released(channel) {
                            self.stats.record_released_channel_drop();
                            self.discard_frame(frame);
                            return;
                        }
                        match self.egress_port(at, dest_node, dest_switch, channel) {
                            Some(port) if self.dead[port as usize] => {
                                self.stats.record_failed_link_drop();
                                self.discard_frame(frame);
                            }
                            Some(port) => {
                                self.enqueue_at_port(frame, port);
                                self.try_start_tx(now, port);
                            }
                            None => {
                                self.stats.record_unroutable();
                                self.discard_frame(frame);
                            }
                        }
                    }
                    FrameDest::Unknown => {
                        self.stats.record_unroutable();
                        self.discard_frame(frame);
                    }
                }
            }
            Event::SwitchTxComplete { to, frame } => {
                let port = 2 * self.fab.node_idx(to) + 1;
                self.ports[port as usize].clear_busy();
                let arrive = now + self.fab.config.propagation_delay;
                self.schedule_event(arrive, Event::ArriveAtNode { node: to, frame });
                self.try_start_tx(now, port);
            }
            Event::TrunkTxComplete { from, to, frame } => {
                let from_idx = self
                    .dense
                    .index_of(from)
                    .expect("events only reference topology switches");
                let to_idx = self
                    .dense
                    .index_of(to)
                    .expect("events only reference topology switches");
                if let Some(port) = self.fab.trunk_port(from_idx, to_idx) {
                    let p = port as usize;
                    self.ports[p].clear_busy();
                    if self.doomed[p] || self.dead[p] {
                        self.doomed[p] = false;
                        self.stats.record_failed_link_drop();
                        self.discard_frame(frame);
                        self.try_start_tx(now, port);
                        return;
                    }
                    let arrive =
                        now + self.fab.config.propagation_delay + self.fab.config.switch_latency;
                    self.emit_arrival(arrive, to_idx, frame);
                    self.try_start_tx(now, port);
                }
            }
            Event::ArriveAtNode { node, frame } => {
                let sched_ns = now
                    .as_nanos()
                    .saturating_sub(self.fab.config.propagation_delay.as_nanos());
                self.deliver_inner(frame, node, None, now, sched_ns);
            }
            Event::EnqueueAtSwitch { .. }
            | Event::FailTrunk { .. }
            | Event::RepairTrunk { .. }
            | Event::FailSwitch { .. } => {
                unreachable!("fault and switch-origination events never enter a shard calendar")
            }
        }
    }

    #[inline]
    fn egress_port(
        &self,
        at: u32,
        dest_node: u32,
        dest_switch: u32,
        channel: Option<ChannelId>,
    ) -> Option<u32> {
        if let Some(port) = self
            .fab
            .channel_state(channel)
            .and_then(|state| state.forwarding_port(at))
        {
            return Some(port);
        }
        if dest_switch == at {
            return Some(2 * dest_node + 1);
        }
        let next = self.dense.next_hop_index(at, dest_switch)?;
        self.fab.trunk_port(at, next)
    }

    fn enqueue_at_port(&mut self, frame: FrameId, port: u32) {
        let record = self.fab.record(frame);
        let class = record.class;
        let deadline = self.fab.queue_deadline(record, port);
        let out = &mut self.ports[port as usize];
        match class {
            TrafficClass::RealTime => {
                out.enqueue_rt(frame, deadline.unwrap_or(SimTime::ZERO));
            }
            TrafficClass::BestEffort => {
                if !out.enqueue_be(frame) {
                    self.stats.record_be_drop();
                    self.discard_frame(frame);
                }
            }
        }
    }

    fn try_start_tx(&mut self, now: SimTime, port: u32) {
        let out = &mut self.ports[port as usize];
        if out.is_busy(now) || out.is_empty() {
            return;
        }
        let Some(queued) = out.dequeue_next() else {
            return;
        };
        let record = self.fab.record(queued.frame);
        let wire_bytes = record.wire_bytes;
        if record.link_state {
            self.stats.record_link_state_hop();
        } else if Simulator::is_control_record(record.class, record.channel) {
            self.stats.record_control_hop();
        }
        let tx = self.fab.tx_time(wire_bytes);
        let done = now + tx;
        self.ports[port as usize].set_busy_until(done);
        self.stats
            .record_transmission(port as usize, wire_bytes, tx);
        let event = match self.fab.port_links[port as usize] {
            HopLink::Uplink(node) => Event::NodeTxComplete {
                node,
                frame: queued.frame,
            },
            HopLink::Downlink(node) => Event::SwitchTxComplete {
                to: node,
                frame: queued.frame,
            },
            HopLink::Trunk { from, to } => Event::TrunkTxComplete {
                from,
                to,
                frame: queued.frame,
            },
        };
        self.schedule_event(done, event);
    }

    fn deliver_to_switch(&mut self, frame: FrameId, switch: SwitchId, now: SimTime) {
        let sched_ns = now.as_nanos().saturating_sub(self.fab.lookahead.as_nanos());
        self.deliver_inner(frame, NodeId::SWITCH, Some(switch), now, sched_ns);
    }

    fn deliver_inner(
        &mut self,
        frame: FrameId,
        receiver: NodeId,
        switch: Option<SwitchId>,
        now: SimTime,
        sched_ns: u64,
    ) {
        let record = self.fab.record(frame);
        match record.class {
            TrafficClass::RealTime => {
                self.stats.record_rt_delivery(
                    record.channel,
                    record.injected_at,
                    now,
                    record.deadline,
                );
            }
            TrafficClass::BestEffort => self.stats.record_be_delivery(),
        }
        let eth = match &record.stored {
            StoredFrame::Owned(eth) => eth.clone(),
            StoredFrame::Pooled(r) => {
                let r = *r;
                let eth = EthernetFrame::decode_unpadded(self.fab.arena.bytes(r))
                    .expect("pooled frames hold a valid unpadded wire image");
                // Frees are deferred to the coordinator: the arena is shared
                // read-only during the run.
                self.freed.push(r);
                eth
            }
        };
        let tx_ns = self.fab.tx_time(record.wire_bytes).as_nanos();
        let key = [
            now.as_nanos(),
            sched_ns,
            sched_ns.saturating_sub(tx_ns),
            frame.get(),
        ];
        self.deliveries.push((
            key,
            Delivery {
                frame,
                receiver,
                switch,
                source: record.source,
                eth,
                injected_at: record.injected_at,
                delivered_at: now,
                channel: record.channel,
                deadline: record.deadline,
                class: record.class,
            },
        ));
    }

    fn discard_frame(&mut self, frame: FrameId) {
        if let StoredFrame::Pooled(r) = self.fab.record(frame).stored {
            self.freed.push(r);
        }
    }
}

/// Worker thread body: answer barrier commands until `Finish`, then hand
/// every accumulated result back.
fn worker_main(
    mut worker: Worker<'_>,
    commands: mpsc::Receiver<Command>,
    reports: mpsc::Sender<Report>,
    finals: mpsc::Sender<WorkerFinal>,
) {
    let _ = reports.send(worker.make_report());
    while let Ok(command) = commands.recv() {
        match command {
            Command::Window {
                end_excl,
                dense,
                spilled,
            } => {
                worker.run_window(end_excl, dense, spilled);
                let _ = reports.send(worker.make_report());
            }
            Command::Fault {
                at,
                rank,
                kills,
                repairs,
            } => {
                worker.fault_step(at, rank, &kills, &repairs);
                let _ = reports.send(worker.make_report());
            }
            Command::Finish => break,
        }
    }
    let _ = finals.send(WorkerFinal {
        stats: worker.stats,
        deliveries: worker.deliveries,
        freed: worker.freed,
        processed: worker.queue.processed(),
        last_ns: worker.last_ns,
    });
}

/// Both directed dense port ids of the trunk `a — b`, appended to `out`.
fn trunk_ports_of(
    dense: &DenseNextHop,
    trunk_ports: &[u32],
    a: SwitchId,
    b: SwitchId,
    out: &mut Vec<u32>,
) {
    if let (Some(f), Some(t)) = (dense.index_of(a), dense.index_of(b)) {
        let s = dense.switch_count();
        for (x, y) in [(f, t), (t, f)] {
            match trunk_ports[x as usize * s + y as usize] {
                NO_INDEX => {}
                port => out.push(port),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ShardedSimulator
// ---------------------------------------------------------------------------

/// The sharded front-end of the fabric simulator.
///
/// Construction, injection and channel management all delegate to an inner
/// single-thread [`Simulator`]; [`ShardedSimulator::run_to_idle`] then
/// executes the preloaded event set across worker threads under the
/// conservative window protocol described in the [module docs](self), and
/// merges deliveries, statistics and arena buffers back so that every
/// observable — `poll_deliveries`, `stats().summary()`, per-channel and
/// per-link counters, `arena_outstanding()` — is byte-for-byte identical to
/// the single-thread run.
pub struct ShardedSimulator {
    inner: Simulator,
    shards: usize,
    strategy: ShardStrategy,
    /// Dense switch index -> owning shard.
    assignment: Vec<u32>,
    windows_executed: u64,
    extra_processed: u64,
    finished_at: SimTime,
}

impl ShardedSimulator {
    /// Build a sharded fabric over `topology` with (up to) `shards` worker
    /// shards and the default partition strategy.
    ///
    /// Fails when the configuration violates the conservative-window
    /// soundness condition: the minimum frame transmission time must cover
    /// the trunk lookahead `propagation_delay + switch_latency`, so that
    /// arrival ingestion order can reproduce the oracle's event sequence
    /// (see the module docs).
    pub fn new(config: SimConfig, topology: Topology, shards: usize) -> RtResult<Self> {
        Self::with_strategy(config, topology, shards, ShardStrategy::default())
    }

    /// [`ShardedSimulator::new`] with an explicit partition strategy.
    pub fn with_strategy(
        config: SimConfig,
        topology: Topology,
        shards: usize,
        strategy: ShardStrategy,
    ) -> RtResult<Self> {
        let inner = Simulator::with_topology(config, topology)?;
        Self::from_inner(inner, shards, strategy)
    }

    /// Build over an explicit [`Router`], as [`Simulator::with_router`].
    pub fn with_router(
        config: SimConfig,
        topology: Topology,
        router: Arc<dyn Router>,
        shards: usize,
    ) -> RtResult<Self> {
        let inner = Simulator::with_router(config, topology, router)?;
        Self::from_inner(inner, shards, ShardStrategy::default())
    }

    fn from_inner(inner: Simulator, shards: usize, strategy: ShardStrategy) -> RtResult<Self> {
        let config = inner.config();
        let lookahead = config.propagation_delay + config.switch_latency;
        let min_tx = config.link_speed.transmission_time(MIN_FRAME_WIRE_BYTES);
        if min_tx < lookahead {
            return Err(RtError::Config(format!(
                "sharded simulation needs the minimum frame transmission time ({} ns) \
                 to cover the trunk lookahead ({} ns): conservative windows would \
                 otherwise reorder same-instant events relative to the single-thread \
                 oracle",
                min_tx.as_nanos(),
                lookahead.as_nanos(),
            )));
        }
        let partition = partition_switches(inner.topology(), shards, strategy);
        let shards = effective_shards(inner.topology().switch_count(), shards);
        let dense = Arc::clone(&inner.dense_next_hop);
        let mut assignment = vec![0u32; dense.switch_count()];
        for (pos, switch) in inner.topology().switches().enumerate() {
            let idx = dense
                .index_of(switch)
                .expect("topology switches are dense-indexed");
            assignment[idx as usize] = partition[pos];
        }
        Ok(ShardedSimulator {
            inner,
            shards,
            strategy,
            assignment,
            windows_executed: 0,
            extra_processed: 0,
            finished_at: SimTime::ZERO,
        })
    }

    // --- delegated setup --------------------------------------------------

    /// See [`Simulator::inject`].
    pub fn inject(&mut self, node: NodeId, eth: EthernetFrame, at: SimTime) -> RtResult<FrameId> {
        self.inner.inject(node, eth, at)
    }

    /// See [`Simulator::inject_batch`].
    pub fn inject_batch(
        &mut self,
        batch: impl IntoIterator<Item = FrameInjection>,
    ) -> RtResult<Vec<FrameId>> {
        self.inner.inject_batch(batch)
    }

    /// See [`Simulator::schedule_fault`].
    pub fn schedule_fault(&mut self, at: SimTime, fault: LinkFault) -> RtResult<()> {
        self.inner.schedule_fault(at, fault)
    }

    /// See [`Simulator::schedule_faults`].
    pub fn schedule_faults(&mut self, script: &FaultScript) -> RtResult<()> {
        self.inner.schedule_faults(script)
    }

    /// See [`Simulator::set_channel_hop_schedule`].
    pub fn set_channel_hop_schedule(
        &mut self,
        channel: ChannelId,
        offsets: impl IntoIterator<Item = (HopLink, Duration)>,
    ) {
        self.inner.set_channel_hop_schedule(channel, offsets)
    }

    /// See [`Simulator::set_channel_route`].
    pub fn set_channel_route(&mut self, channel: ChannelId, route: &Route) {
        self.inner.set_channel_route(channel, route)
    }

    /// See [`Simulator::release_channel`].
    pub fn release_channel(&mut self, channel: ChannelId) {
        self.inner.release_channel(channel)
    }

    // --- observability ----------------------------------------------------

    /// Number of worker shards the run executes on (clamped to the switch
    /// count).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The partition strategy in use.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// The shard owning `switch`, if it is part of the topology.
    pub fn shard_of(&self, switch: SwitchId) -> Option<u32> {
        let idx = self.inner.dense_next_hop.index_of(switch)?;
        Some(self.assignment[idx as usize])
    }

    /// Conservative time windows executed so far (fault barriers not
    /// included).
    pub fn windows_executed(&self) -> u64 {
        self.windows_executed
    }

    /// See [`Simulator::events_processed`]: injections and faults count
    /// once (drained by the coordinator), derived events once in whichever
    /// shard executed them — the same total as the single-thread run.
    pub fn events_processed(&self) -> u64 {
        self.inner.events_processed() + self.extra_processed
    }

    /// See [`Simulator::now`].
    pub fn now(&self) -> SimTime {
        self.inner.now().max(self.finished_at)
    }

    /// See [`Simulator::config`].
    pub fn config(&self) -> &SimConfig {
        self.inner.config()
    }

    /// See [`Simulator::topology`].
    pub fn topology(&self) -> &Topology {
        self.inner.topology()
    }

    /// See [`Simulator::manager_switch`].
    pub fn manager_switch(&self) -> SwitchId {
        self.inner.manager_switch()
    }

    /// See [`Simulator::stats`] (merged across shards after a run).
    pub fn stats(&self) -> &SimStats {
        self.inner.stats()
    }

    /// See [`Simulator::poll_deliveries`] (canonically merged across
    /// shards, in the oracle's order).
    pub fn poll_deliveries(&mut self) -> Vec<Delivery> {
        self.inner.poll_deliveries()
    }

    /// See [`Simulator::injected_count`].
    pub fn injected_count(&self) -> u64 {
        self.inner.injected_count()
    }

    /// See [`Simulator::arena_outstanding`].
    pub fn arena_outstanding(&self) -> usize {
        self.inner.arena_outstanding()
    }

    /// See [`Simulator::arena_stats`].
    pub fn arena_stats(&self) -> rt_frames::ArenaStats {
        self.inner.arena_stats()
    }

    // --- execution --------------------------------------------------------

    /// Run the preloaded event set to completion across the worker shards;
    /// returns the final simulated time.
    ///
    /// Panics if the pending set contains events a sharded run does not
    /// support (switch-originated injections via `inject_at_switch` /
    /// `inject_from_switch`); node injections and scripted faults — the
    /// full workload model of the property harness — are supported.
    pub fn run_to_idle(&mut self) -> SimTime {
        let shards = self.shards;

        // Drain the preloaded event set in global (time, seq) order,
        // splitting node injections per owning shard and faults into the
        // coordinator's script; the rank preserves the oracle's sequence
        // numbers across the split.
        let mut per_shard: Vec<VecDeque<(SimTime, u64, Event)>> =
            (0..shards).map(|_| VecDeque::new()).collect();
        let mut faults: VecDeque<(SimTime, u64, Event)> = VecDeque::new();
        let mut rank = 0u64;
        while let Some((t, event)) = self.inner.events.pop() {
            match event {
                Event::EnqueueAtNode { node, .. } => {
                    let idx = self
                        .inner
                        .node_index
                        .get(node.get())
                        .expect("injections reference attached nodes");
                    let shard = self.assignment[self.inner.node_access[idx as usize] as usize];
                    per_shard[shard as usize].push_back((t, rank, event));
                }
                Event::FailTrunk { .. } | Event::RepairTrunk { .. } | Event::FailSwitch { .. } => {
                    faults.push_back((t, rank, event));
                }
                other => panic!(
                    "sharded runs drive node-injected workloads and scripted faults only; \
                     found {other:?} in the pending event set"
                ),
            }
            rank += 1;
        }

        let lookahead = self.inner.config.propagation_delay + self.inner.config.switch_latency;
        let lookahead_ns = lookahead.as_nanos();
        let assignment = self.assignment.clone();

        let mut windows = 0u64;
        let mut extra_processed = 0u64;
        let mut last_ns = self.inner.now().as_nanos();
        let mut merged_deliveries: Vec<(DeliveryKey, Delivery)> = Vec::new();
        let mut merged_freed: Vec<FrameRef> = Vec::new();

        {
            // Split the inner simulator into the shared read-only fabric
            // context and the coordinator-mutable routing/stat state.
            let Simulator {
                config,
                topology,
                router,
                dense_next_hop,
                node_index,
                node_access,
                trunk_ports,
                port_links,
                channel_wire,
                released_channels,
                frames,
                arena,
                stats,
                pending_deliveries,
                manager_index,
                distributed_control,
                ..
            } = &mut self.inner;
            let config: &SimConfig = config;
            let router: &Arc<dyn Router> = router;
            let node_index: &IdIndex = node_index;
            let node_access: &[u32] = node_access;
            let trunk_ports: &[u32] = trunk_ports;
            let port_links: &[HopLink] = port_links;
            let channel_wire: &[Option<ChannelWireState>] = channel_wire;
            let released_channels: &[bool] = released_channels;
            let frames: &[FrameRecord] = frames;
            let arena: &FrameArena = arena;
            let manager_index = *manager_index;
            let distributed_control = *distributed_control;
            let switch_count = dense_next_hop.switch_count();
            let assignment: &[u32] = &assignment;

            // rings[p][c]: produced by shard p, consumed by shard c.
            let rings: Vec<Vec<Arc<SpscRing>>> = (0..shards)
                .map(|_| {
                    (0..shards)
                        .map(|_| Arc::new(SpscRing::new(RING_CAPACITY)))
                        .collect()
                })
                .collect();

            let (report_tx, report_rx) = mpsc::channel::<Report>();
            let (final_tx, final_rx) = mpsc::channel::<WorkerFinal>();
            let mut command_txs = Vec::with_capacity(shards);

            std::thread::scope(|scope| {
                for shard in 0..shards {
                    let (command_tx, command_rx) = mpsc::channel::<Command>();
                    command_txs.push(command_tx);
                    let fab = Fabric {
                        config,
                        frames,
                        arena,
                        node_index,
                        node_access,
                        trunk_ports,
                        switch_count,
                        port_links,
                        channel_wire,
                        released_channels,
                        manager_index,
                        distributed_control,
                        assignment,
                        lookahead,
                    };
                    let injections = std::mem::take(&mut per_shard[shard]);
                    let inbox: Vec<Arc<SpscRing>> =
                        (0..shards).map(|p| Arc::clone(&rings[p][shard])).collect();
                    let outbox: Vec<Arc<SpscRing>> =
                        (0..shards).map(|c| Arc::clone(&rings[shard][c])).collect();
                    let dense = Arc::clone(dense_next_hop);
                    let reports = report_tx.clone();
                    let finals = final_tx.clone();
                    let port_count = port_links.len();
                    let be_capacity = config.be_queue_capacity;
                    scope.spawn(move || {
                        let ports = (0..port_count)
                            .map(|_| match be_capacity {
                                Some(cap) => OutputPort::with_be_capacity(cap),
                                None => OutputPort::new(),
                            })
                            .collect();
                        let worker = Worker {
                            fab,
                            shard: shard as u32,
                            dense,
                            queue: EventQueue::with_scheduler(SchedulerKind::Calendar),
                            batch: Vec::new(),
                            ports,
                            dead: vec![false; port_count],
                            doomed: vec![false; port_count],
                            stats: SimStats::for_ports(fab.port_links.to_vec()),
                            deliveries: Vec::new(),
                            freed: Vec::new(),
                            injections,
                            staging: Vec::new(),
                            inbox,
                            outbox,
                            spill: Vec::new(),
                            outbound_min_ns: u64::MAX,
                            ring_scratch: Vec::new(),
                            last_ns: 0,
                        };
                        worker_main(worker, command_rx, reports, finals);
                    });
                }
                drop(report_tx);
                drop(final_tx);

                let mut next_ns = vec![u64::MAX; shards];
                let mut held: Vec<Vec<RingEntry>> = vec![Vec::new(); shards];
                let gather = |next_ns: &mut [u64], held: &mut [Vec<RingEntry>]| {
                    for _ in 0..shards {
                        let report = report_rx.recv().expect("worker thread alive");
                        next_ns[report.shard as usize] = report.next_ns;
                        for (dest, entry) in report.spill {
                            held[dest as usize].push(entry);
                        }
                    }
                };
                gather(&mut next_ns, &mut held);

                loop {
                    let mut t_work = next_ns.iter().copied().min().unwrap_or(u64::MAX);
                    for h in &held {
                        for entry in h {
                            t_work = t_work.min(entry.time_ns);
                        }
                    }
                    let t_fault = faults
                        .front()
                        .map(|&(t, _, _)| t.as_nanos())
                        .unwrap_or(u64::MAX);
                    if t_work == u64::MAX && t_fault == u64::MAX {
                        break;
                    }
                    if t_fault <= t_work {
                        // Fault barrier: the coordinator mutates the
                        // topology and re-pulls routing (the single-thread
                        // semantics of fail_link / repair_link /
                        // fail_switch); the workers kill / revive the ports
                        // they own.
                        let (at, fault_rank, fault) =
                            faults.pop_front().expect("fault time was finite");
                        last_ns = last_ns.max(at.as_nanos());
                        let mut kills = Vec::new();
                        let mut repairs = Vec::new();
                        let mut changed = false;
                        match fault {
                            Event::FailTrunk { from, to } => {
                                let result = topology.fail_trunk(from, to);
                                debug_assert!(
                                    result.is_ok(),
                                    "scripted FailTrunk failed: {result:?}"
                                );
                                if result.is_ok() {
                                    trunk_ports_of(
                                        dense_next_hop,
                                        trunk_ports,
                                        from,
                                        to,
                                        &mut kills,
                                    );
                                    changed = true;
                                }
                            }
                            Event::RepairTrunk { from, to } => {
                                let result = topology.repair_trunk(from, to);
                                debug_assert!(
                                    result.is_ok(),
                                    "scripted RepairTrunk failed: {result:?}"
                                );
                                if result.is_ok() {
                                    trunk_ports_of(
                                        dense_next_hop,
                                        trunk_ports,
                                        from,
                                        to,
                                        &mut repairs,
                                    );
                                    changed = true;
                                }
                            }
                            Event::FailSwitch { switch } => {
                                let result = topology.fail_switch(switch);
                                debug_assert!(
                                    result.is_ok(),
                                    "scripted FailSwitch failed: {result:?}"
                                );
                                if let Ok(cut) = result {
                                    for (a, b) in cut {
                                        trunk_ports_of(
                                            dense_next_hop,
                                            trunk_ports,
                                            a,
                                            b,
                                            &mut kills,
                                        );
                                    }
                                    changed = true;
                                }
                            }
                            _ => unreachable!("only fault events enter the fault script"),
                        }
                        if changed {
                            *dense_next_hop = router.dense_next_hop(topology);
                        }
                        let kills = Arc::new(kills);
                        let repairs = Arc::new(repairs);
                        for tx in &command_txs {
                            tx.send(Command::Fault {
                                at,
                                rank: fault_rank,
                                kills: Arc::clone(&kills),
                                repairs: Arc::clone(&repairs),
                            })
                            .expect("worker thread alive");
                        }
                        gather(&mut next_ns, &mut held);
                    } else {
                        // Conservative window [t_work, t_work + L), cut
                        // short by the next fault.
                        let end_excl = t_work
                            .saturating_add(lookahead_ns)
                            .min(t_fault)
                            .max(t_work.saturating_add(1));
                        for (shard, tx) in command_txs.iter().enumerate() {
                            tx.send(Command::Window {
                                end_excl: SimTime::from_nanos(end_excl),
                                dense: Arc::clone(dense_next_hop),
                                spilled: std::mem::take(&mut held[shard]),
                            })
                            .expect("worker thread alive");
                        }
                        gather(&mut next_ns, &mut held);
                        windows += 1;
                    }
                }
                for tx in &command_txs {
                    let _ = tx.send(Command::Finish);
                }
            });

            for _ in 0..shards {
                let done = final_rx.recv().expect("every worker sends a final report");
                stats.merge_from(&done.stats);
                merged_deliveries.extend(done.deliveries);
                merged_freed.extend(done.freed);
                extra_processed += done.processed;
                last_ns = last_ns.max(done.last_ns);
            }
            merged_deliveries.sort_unstable_by_key(|a| a.0);
            pending_deliveries.extend(merged_deliveries.into_iter().map(|(_, d)| d));
        }

        for r in merged_freed {
            self.inner.arena.free(r);
        }
        self.windows_executed += windows;
        self.extra_processed += extra_processed;
        self.finished_at = self.finished_at.max(SimTime::from_nanos(last_ns));
        self.now()
    }
}
