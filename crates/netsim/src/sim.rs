//! The simulator proper: a topology-driven fabric of store-and-forward
//! full-duplex switches with end nodes attached.
//!
//! ## Model
//!
//! * A [`Topology`] describes the fabric: every end node has one full-duplex
//!   cable to its access switch, and switches are connected by full-duplex
//!   trunk links forming any connected graph — a tree or a cyclic mesh with
//!   redundant trunks.  Every *directed* edge of that graph is
//!   driven by one [`OutputPort`]: the node → switch direction (the *uplink*)
//!   by the node's NIC, the switch → node direction (the *downlink*) and each
//!   switch → switch direction (a *trunk port*) by the owning switch.  Every
//!   port is an EDF-sorted real-time queue with strict priority over a FCFS
//!   best-effort queue.
//! * Transmission time of a frame is its wire size (including preamble and
//!   inter-frame gap) divided by the configured link speed.  Frames are
//!   never preempted once started.
//! * Store-and-forward: a frame reaches a switch only after its last bit has
//!   been received; the switch then spends `switch_latency` before the frame
//!   is eligible for transmission on its output port.  Propagation delay is
//!   added per link traversal.  These constant terms, together with one
//!   non-preemptable frame already on the wire per link, form the paper's
//!   `T_latency` (Eq. 18.1) — see [`SimConfig::t_latency_for_hops`].
//! * Forwarding is route-driven: frames of an admitted RT channel follow the
//!   per-switch forwarding entries installed for that channel's [`Route`] at
//!   admission time ([`Simulator::set_channel_hop_schedule`]), so a channel
//!   pinned to a non-shortest path by its router really takes that path on
//!   the wire.  Everything else (control frames, best-effort traffic,
//!   channels without an installed route) falls back to the fabric's
//!   next-hop table, computed once per topology by the [`Router`] the
//!   simulator was built with — shortest paths on a mesh, the unique path on
//!   a tree.
//! * Frames addressed to the switch MAC itself (RT-layer control traffic)
//!   are forwarded to the *managing switch* (the lowest switch id) and
//!   delivered to its "control plane" — the caller; the caller can originate
//!   frames from the managing switch with [`Simulator::inject_from_switch`]
//!   (used for ResponseFrames).
//! * For multi-hop RT channels, per-hop EDF deadlines can be registered with
//!   [`Simulator::set_channel_hop_schedule`]: each port then sorts the
//!   channel's frames by the per-hop deadline budget of *that* link rather
//!   than the end-to-end stamp, which is the wire-level analogue of the
//!   multi-hop deadline partitioning analysis.
//!
//! ## Hot path
//!
//! The per-event path is allocation- and hash-free: at construction every
//! entity gets a contiguous index — nodes, switches (via the router's
//! [`DenseNextHop`]) and output ports (uplink `2i`, downlink `2i + 1`,
//! trunks after all access ports) — and every per-event decision is a few
//! bounds-checked array reads.  A frame's destination MAC is resolved
//! *once*, at injection time, into its dense node and access-switch
//! indices.  The pending-event set lives behind the
//! [`crate::event::EventScheduler`] chosen in [`SimConfig::scheduler`]: the
//! calendar queue by default, the binary heap as the reference.
//!
//! The single-switch star of the paper's §18.1 is the degenerate one-switch
//! case ([`Simulator::new`]) and behaves exactly as it always has.
//!
//! The simulator is single-threaded and deterministic: identical inputs
//! produce identical event sequences, deliveries and statistics — on either
//! scheduler.

use std::collections::HashMap;
use std::sync::Arc;

use rt_frames::{EthernetFrame, Frame, FrameArena, FramePeek, FrameRef};
use rt_types::{
    ChannelId, DenseNextHop, Duration, HopLink, IdIndex, LinkId, MacAddr, NextHopTable, NodeId,
    Route, Router, RtError, RtResult, ShortestPathRouter, SimTime, SwitchId, Topology, NO_INDEX,
};

use crate::event::{Event, EventQueue, SchedulerKind};
use crate::port::{OutputPort, TrafficClass};
use crate::stats::SimStats;

/// Identifier of a frame inside one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(u64);

impl FrameId {
    /// Construct from a raw index (mostly useful in tests).
    pub const fn new(v: u64) -> Self {
        FrameId(v)
    }

    /// The raw index.
    pub const fn get(self) -> u64 {
        self.0
    }
}

/// How the simulator stores frame payloads between injection and delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrameStoreKind {
    /// Every frame record owns its decoded [`EthernetFrame`]; delivery
    /// clones it.  The bit-exact reference path.
    Owned,
    /// Frame bytes live in a pooled [`FrameArena`]: injection serialises the
    /// frame once into a recycled buffer, every hop hands the index along,
    /// and the buffer returns to the pool at delivery or drop.  Steady-state
    /// allocation-free; byte-for-byte identical deliveries.  The default.
    #[default]
    Arena,
}

impl FrameStoreKind {
    /// A short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FrameStoreKind::Owned => "owned",
            FrameStoreKind::Arena => "arena",
        }
    }
}

/// Static configuration of the simulated network.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Bit rate of every link (the paper assumes 100 Mbit/s Fast Ethernet).
    pub link_speed: rt_types::LinkSpeed,
    /// One-way propagation delay of every link.
    pub propagation_delay: Duration,
    /// Store-and-forward processing latency inside every switch.
    pub switch_latency: Duration,
    /// Capacity of every best-effort queue (`None` = unbounded).
    pub be_queue_capacity: Option<usize>,
    /// Which event scheduler drives the simulation (calendar queue by
    /// default; the binary heap is the bit-exact reference).
    pub scheduler: SchedulerKind,
    /// How frame payloads are stored in flight (arena-pooled buffers by
    /// default; `Owned` is the clone-per-delivery reference).
    pub frame_store: FrameStoreKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            link_speed: rt_types::LinkSpeed::FAST_ETHERNET,
            // 100 m of cable at ~2/3 c is ~0.5 us.
            propagation_delay: Duration::from_nanos(500),
            // A small constant store-and-forward processing overhead.
            switch_latency: Duration::from_micros(5),
            be_queue_capacity: Some(1024),
            scheduler: SchedulerKind::default(),
            frame_store: FrameStoreKind::default(),
        }
    }
}

impl SimConfig {
    /// The constant per-message latency term `T_latency` of Eq. 18.1 for a
    /// path of `link_hops` directed links (a star path has 2: uplink +
    /// downlink; each extra switch adds one trunk hop):
    ///
    /// * one propagation delay per link,
    /// * one store-and-forward processing latency per switch traversed
    ///   (`link_hops − 1` switches),
    /// * one maximum-size-frame blocking term per link — an already-started
    ///   frame is never preempted, so a newly urgent frame can wait up to
    ///   one full slot on every link it crosses.
    pub fn t_latency_for_hops(&self, link_hops: usize) -> Duration {
        let hops = link_hops as u64;
        self.propagation_delay * hops
            + self.switch_latency * hops.saturating_sub(1)
            + self.link_speed.slot_duration() * hops
    }

    /// The `T_latency` constant for the single-switch star (two link hops).
    pub fn t_latency(&self) -> Duration {
        self.t_latency_for_hops(2)
    }
}

/// Where a frame is headed, resolved once at injection time so the per-hop
/// forwarding decision never touches the MAC table again.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FrameDest {
    /// An attached end node: its dense node index and the dense index of
    /// its access switch.
    Node {
        /// Dense node index (downlink port is `2·node + 1`).
        node: u32,
        /// Dense index of the node's access switch.
        switch: u32,
    },
    /// The generic switch MAC: deliver to the managing switch's control
    /// plane (central placement) or to the first switch that receives the
    /// frame (distributed placement).
    ControlPlane,
    /// The per-switch control-plane MAC of one specific switch (dense
    /// index): forwarded over trunks and delivered to that switch's control
    /// plane — the transport of the distributed reservation protocol.
    Switch {
        /// Dense index of the addressed switch.
        switch: u32,
    },
    /// No attached node owns the MAC; dropped as unroutable at the first
    /// switch (exactly as the per-hop lookup used to).
    Unknown,
}

/// Where one frame's bytes live while it crosses the fabric.
#[derive(Debug, Clone)]
pub(crate) enum StoredFrame {
    /// The decoded frame, owned by the record ([`FrameStoreKind::Owned`]).
    Owned(EthernetFrame),
    /// An index into the simulator's [`FrameArena`]
    /// ([`FrameStoreKind::Arena`]): the buffer holds the unpadded wire
    /// image and is freed back to the pool at delivery or drop.
    Pooled(FrameRef),
}

/// Everything the simulator remembers about one injected frame.
#[derive(Debug, Clone)]
pub(crate) struct FrameRecord {
    pub(crate) stored: StoredFrame,
    pub(crate) class: TrafficClass,
    /// Absolute end-to-end deadline (simulated time) for RT frames.
    pub(crate) deadline: Option<SimTime>,
    /// RT channel for RT data frames.
    pub(crate) channel: Option<ChannelId>,
    /// `true` for link-state flood frames — control-class on the wire, but
    /// accounted as convergence overhead instead of reservation traffic.
    pub(crate) link_state: bool,
    /// The resolved destination (dense indices).
    pub(crate) dest: FrameDest,
    /// Where the frame entered the network (`NodeId::SWITCH` for frames
    /// originated by the switch control plane).
    pub(crate) source: NodeId,
    pub(crate) injected_at: SimTime,
    pub(crate) wire_bytes: usize,
}

/// A frame delivered to its final receiver (an end node, or the switch
/// control plane for frames addressed to the switch MAC).
#[derive(Debug, Clone)]
pub struct Delivery {
    /// The frame id.
    pub frame: FrameId,
    /// The receiving entity (`NodeId::SWITCH` for control-plane deliveries).
    pub receiver: NodeId,
    /// For control-plane deliveries: *which* switch's control plane
    /// received the frame.  `None` for deliveries to end nodes.
    pub switch: Option<SwitchId>,
    /// The node (or switch) that injected the frame.
    pub source: NodeId,
    /// The decoded Ethernet frame.
    pub eth: EthernetFrame,
    /// When the frame was injected.
    pub injected_at: SimTime,
    /// When the last bit arrived at the receiver.
    pub delivered_at: SimTime,
    /// The RT channel, for RT data frames.
    pub channel: Option<ChannelId>,
    /// The absolute deadline, for RT frames.
    pub deadline: Option<SimTime>,
    /// Which queue class the frame travelled in.
    pub class: TrafficClass,
}

impl Delivery {
    /// End-to-end latency of this delivery.
    pub fn latency(&self) -> Duration {
        self.delivered_at
            .saturating_duration_since(self.injected_at)
    }

    /// `true` if the frame had a deadline and arrived after it.
    pub fn missed_deadline(&self) -> bool {
        self.deadline.is_some_and(|d| self.delivered_at > d)
    }
}

/// One frame for [`Simulator::inject_batch`]: where it enters the network,
/// what it carries, and when.
#[derive(Debug, Clone)]
pub struct FrameInjection {
    /// The injecting node.
    pub node: NodeId,
    /// The frame.
    pub eth: EthernetFrame,
    /// The injection time (must not lie in the simulated past).
    pub at: SimTime,
}

/// One scripted fabric fault: a trunk cut or a trunk repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// Cut the trunk between the two switches.
    Fail {
        /// One end of the trunk.
        from: SwitchId,
        /// The other end.
        to: SwitchId,
    },
    /// Splice a previously cut trunk back.
    Repair {
        /// One end of the trunk.
        from: SwitchId,
        /// The other end.
        to: SwitchId,
    },
    /// Cut every healthy trunk incident to one switch, atomically (the
    /// switch dropping off the fabric; its access links survive).
    FailSwitch {
        /// The switch losing all its trunks.
        switch: SwitchId,
    },
}

/// A scripted sequence of link failures and repairs, injected up front like
/// a traffic workload ([`Simulator::schedule_faults`]): each fault becomes a
/// first-class simulator event, totally ordered with the frames around it,
/// so a fail-over scenario is exactly as reproducible as a fault-free run.
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    events: Vec<(SimTime, LinkFault)>,
}

impl FaultScript {
    /// An empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a trunk cut at `at` (builder style).
    pub fn fail_at(mut self, at: SimTime, from: SwitchId, to: SwitchId) -> Self {
        self.events.push((at, LinkFault::Fail { from, to }));
        self
    }

    /// Add a trunk repair at `at` (builder style).
    pub fn repair_at(mut self, at: SimTime, from: SwitchId, to: SwitchId) -> Self {
        self.events.push((at, LinkFault::Repair { from, to }));
        self
    }

    /// Add a whole-switch failure at `at` (builder style): every healthy
    /// trunk incident to `switch` is cut in one atomic event.
    pub fn fail_switch_at(mut self, at: SimTime, switch: SwitchId) -> Self {
        self.events.push((at, LinkFault::FailSwitch { switch }));
        self
    }

    /// The scheduled faults, in insertion order.
    pub fn events(&self) -> &[(SimTime, LinkFault)] {
        &self.events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the script holds no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A pull-driven workload generator: instead of scheduling every frame of a
/// long experiment up front (bloating the pending-event set), the simulator
/// asks the source for the next window's worth of frames as simulated time
/// advances — see [`Simulator::run_with_source`].
pub trait TrafficSource {
    /// The frames to inject with `at < horizon`.  Called with a
    /// monotonically advancing horizon; return an empty batch when nothing
    /// falls before it.
    fn next_batch(&mut self, horizon: SimTime) -> Vec<FrameInjection>;

    /// `true` once the source will never produce another frame.
    fn is_exhausted(&self) -> bool;
}

/// Per-channel wire state installed at admission time: the EDF deadline
/// budget of every link of the route, plus the per-switch forwarding
/// entries that pin the channel's frames to the admitted route (which on a
/// mesh need not be the next-hop table's shortest path).  Both tables are
/// tiny sorted vectors keyed by dense indices — a route has a handful of
/// hops, so lookups are a short binary search over one cache line.
#[derive(Debug, Default)]
pub(crate) struct ChannelWireState {
    /// `(port, budget)`: per-link EDF deadline budget (offset from
    /// injection time), sorted by dense port id.
    offsets: Vec<(u32, Duration)>,
    /// `(switch, port)`: at each switch of the route, the egress the
    /// channel's frames take, sorted by dense switch index.
    forwarding: Vec<(u32, u32)>,
}

impl ChannelWireState {
    fn set_offset(&mut self, port: u32, budget: Duration) {
        match self.offsets.binary_search_by_key(&port, |e| e.0) {
            Ok(i) => self.offsets[i].1 = budget,
            Err(i) => self.offsets.insert(i, (port, budget)),
        }
    }

    fn set_forwarding(&mut self, switch: u32, port: u32) {
        match self.forwarding.binary_search_by_key(&switch, |e| e.0) {
            Ok(i) => self.forwarding[i].1 = port,
            Err(i) => self.forwarding.insert(i, (switch, port)),
        }
    }

    #[inline]
    pub(crate) fn offset_for(&self, port: u32) -> Option<Duration> {
        self.offsets
            .binary_search_by_key(&port, |e| e.0)
            .ok()
            .map(|i| self.offsets[i].1)
    }

    #[inline]
    pub(crate) fn forwarding_port(&self, switch: u32) -> Option<u32> {
        self.forwarding
            .binary_search_by_key(&switch, |e| e.0)
            .ok()
            .map(|i| self.forwarding[i].1)
    }
}

/// The simulator.
#[derive(Debug)]
pub struct Simulator {
    pub(crate) config: SimConfig,
    pub(crate) events: EventQueue,
    pub(crate) topology: Topology,
    /// The path-selection policy the fabric was built with.
    pub(crate) router: Arc<dyn Router>,
    /// The `(at, towards) → neighbour` forwarding state of the trunk graph
    /// in dense form — what the per-event path reads.  The `BTreeMap`
    /// reference form is *not* held here: the router's cache materialises
    /// it lazily for whoever asks ([`Simulator::next_hop_table`]), so a
    /// structural fabric never pays the O(V²) table at all.
    pub(crate) dense_next_hop: Arc<DenseNextHop>,
    /// Raw node id → dense node index.
    pub(crate) node_index: IdIndex,
    /// Dense node index → dense index of the node's access switch.
    pub(crate) node_access: Vec<u32>,
    /// Dense `(from, to)` switch-index pair → trunk port id (`NO_INDEX`
    /// where no trunk exists); row-major `from · S + to`.
    pub(crate) trunk_ports: Vec<u32>,
    /// One output port per directed edge, by dense port id: uplink of node
    /// `i` at `2i`, its downlink at `2i + 1`, trunk ports after all access
    /// ports.
    ports: Vec<OutputPort>,
    /// Dense port id → the directed link it drives.
    pub(crate) port_links: Vec<HopLink>,
    /// MAC → node table (static; consulted once per frame at injection).
    forwarding: HashMap<MacAddr, NodeId>,
    /// The generic switch MAC address (node-originated control traffic is
    /// addressed here).
    switch_mac: MacAddr,
    /// Per-switch control-plane MAC → dense switch index (the transport of
    /// switch-to-switch reservation frames).
    switch_macs: HashMap<MacAddr, u32>,
    /// The switch hosting the RT channel management software.
    pub(crate) manager_switch: SwitchId,
    /// Dense index of the managing switch.
    pub(crate) manager_index: u32,
    /// `true` when the topology places a channel manager on every switch:
    /// frames addressed to the generic switch MAC are then consumed by the
    /// first switch that receives them instead of being forwarded to the
    /// managing switch.
    pub(crate) distributed_control: bool,
    /// Per-channel route state (deadline budgets + forwarding entries),
    /// indexed by raw channel id.
    pub(crate) channel_wire: Vec<Option<ChannelWireState>>,
    /// Channels whose wire state was torn down ([`Simulator::release_channel`]),
    /// indexed by raw channel id: their late frames are dropped at the first
    /// switch and counted, never silently delivered.  Re-installing a hop
    /// schedule (re-admission under the same id) clears the flag.
    pub(crate) released_channels: Vec<bool>,
    /// Ports whose link is currently failed, by dense port id.  Only trunk
    /// ports can die today; access links never fail.
    dead_ports: Vec<bool>,
    /// Ports that had a frame mid-serialisation when their link was cut:
    /// that frame is lost even if the link is repaired before the
    /// transmission-complete event fires.
    doomed_ports: Vec<bool>,
    pub(crate) frames: Vec<FrameRecord>,
    /// Pooled buffers for in-flight frame bytes
    /// ([`FrameStoreKind::Arena`]); empty and untouched in `Owned` mode.
    pub(crate) arena: FrameArena,
    pub(crate) pending_deliveries: Vec<Delivery>,
    /// Reusable scratch for the batched same-time event drain.
    event_batch: Vec<Event>,
    pub(crate) stats: SimStats,
}

impl Simulator {
    /// Build the degenerate single-switch star with `node_ids` attached —
    /// the network of the paper's §18.1.
    ///
    /// Each node is assigned the MAC address [`MacAddr::for_node`]; the
    /// switch uses [`MacAddr::for_switch`].
    pub fn new(config: SimConfig, node_ids: impl IntoIterator<Item = NodeId>) -> Self {
        Simulator::with_topology(config, Topology::star(SwitchId::new(0), node_ids))
            .expect("a single-switch star is always a valid topology")
    }

    /// Build a simulator over an arbitrary connected multi-switch topology
    /// (tree or mesh) with the default [`ShortestPathRouter`] forwarding
    /// fabric-internal traffic: one output port per directed edge — node
    /// uplinks, switch downlinks and both directions of every trunk.
    pub fn with_topology(config: SimConfig, topology: Topology) -> RtResult<Self> {
        Simulator::with_router(config, topology, Arc::new(ShortestPathRouter::new()))
    }

    /// Build a simulator over `topology` with an explicit [`Router`]: the
    /// router's capability check runs once here (a [`rt_types::TreeRouter`]
    /// rejects cyclic graphs), and its cached next-hop table forwards all
    /// traffic that has no per-route forwarding entries.
    pub fn with_router(
        config: SimConfig,
        topology: Topology,
        router: Arc<dyn Router>,
    ) -> RtResult<Self> {
        if topology.switch_count() == 0 {
            return Err(RtError::Config("a fabric needs at least one switch".into()));
        }
        if !topology.is_connected() {
            return Err(RtError::Config("the switch graph must be connected".into()));
        }
        router.validate(&topology)?;
        let make_port = || match config.be_queue_capacity {
            Some(cap) => OutputPort::with_be_capacity(cap),
            None => OutputPort::new(),
        };
        let dense_next_hop = router.dense_next_hop(&topology);
        let switch_count = dense_next_hop.switch_count();

        // Dense node layout: `topology.nodes()` iterates in ascending id
        // order, which is exactly the IdIndex ordering.
        let node_index = IdIndex::new(topology.nodes().map(|n| n.get()));
        let mut node_access = Vec::with_capacity(node_index.len());
        let mut ports = Vec::with_capacity(2 * node_index.len() + 2 * topology.trunk_count());
        let mut port_links = Vec::with_capacity(ports.capacity());
        let mut forwarding = HashMap::new();
        for node in topology.nodes() {
            let access = topology
                .switch_of(node)
                .expect("nodes() yields attached nodes");
            node_access.push(
                dense_next_hop
                    .index_of(access)
                    .expect("attachments reference known switches"),
            );
            ports.push(make_port());
            port_links.push(HopLink::Uplink(node));
            ports.push(make_port());
            port_links.push(HopLink::Downlink(node));
            forwarding.insert(MacAddr::for_node(node), node);
        }
        let mut trunk_ports = vec![NO_INDEX; switch_count * switch_count];
        for (a, b) in topology.trunks() {
            for (from, to) in [(a, b), (b, a)] {
                let f = dense_next_hop.index_of(from).expect("trunk switch known") as usize;
                let t = dense_next_hop.index_of(to).expect("trunk switch known") as usize;
                trunk_ports[f * switch_count + t] = ports.len() as u32;
                ports.push(make_port());
                port_links.push(HopLink::Trunk { from, to });
            }
        }
        let manager_switch = topology
            .switches()
            .next()
            .expect("switch_count checked above");
        let manager_index = dense_next_hop
            .index_of(manager_switch)
            .expect("manager is a topology switch");
        let mut switch_macs = HashMap::with_capacity(switch_count);
        for switch in topology.switches() {
            let idx = dense_next_hop
                .index_of(switch)
                .expect("switches are indexed");
            switch_macs.insert(MacAddr::for_switch_id(switch), idx);
        }
        let distributed_control =
            topology.manager_placement() == rt_types::ManagerPlacement::Distributed;
        let stats = SimStats::for_ports(port_links.clone());
        let port_count = ports.len();
        Ok(Simulator {
            config,
            events: EventQueue::with_scheduler(config.scheduler),
            topology,
            router,
            dense_next_hop,
            node_index,
            node_access,
            trunk_ports,
            ports,
            port_links,
            forwarding,
            switch_mac: MacAddr::for_switch(),
            switch_macs,
            manager_switch,
            manager_index,
            distributed_control,
            channel_wire: Vec::new(),
            released_channels: Vec::new(),
            dead_ports: vec![false; port_count],
            doomed_ports: vec![false; port_count],
            frames: Vec::new(),
            arena: FrameArena::new(),
            pending_deliveries: Vec::new(),
            event_batch: Vec::new(),
            stats,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The topology the fabric was built from.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The path-selection policy the fabric was built with.
    pub fn router(&self) -> &Arc<dyn Router> {
        &self.router
    }

    /// The event scheduler the simulation runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.events.scheduler_kind()
    }

    /// The router's `(at, towards) → neighbour` next-hop table (reference
    /// form; the hot path reads the dense flattening instead).  Served from
    /// the router's per-fingerprint cache, materialised lazily on first
    /// call — constructing a simulator never builds the `BTreeMap` form.
    pub fn next_hop_table(&self) -> Arc<NextHopTable> {
        self.router.next_hop_table(&self.topology)
    }

    /// The switch hosting the control plane (the lowest switch id).
    pub fn manager_switch(&self) -> SwitchId {
        self.manager_switch
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Number of end nodes attached to the fabric.
    pub fn node_count(&self) -> usize {
        self.node_index.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events.processed()
    }

    /// Number of frames ever registered with the fabric (every injection
    /// path counts, including switch-originated control frames).  Once the
    /// event queue drains, `injected_count() == stats().total_delivered() +
    /// stats().total_dropped()` — frame conservation.
    pub fn injected_count(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Number of events still pending.
    pub fn events_pending(&self) -> usize {
        self.events.len()
    }

    /// Drain the deliveries that have accumulated since the last call.
    pub fn poll_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.pending_deliveries)
    }

    // --- dense lookups ---------------------------------------------------

    /// Dense node index of an event's node (events only reference nodes
    /// that passed injection validation).
    #[inline]
    fn node_idx(&self, node: NodeId) -> u32 {
        self.node_index
            .get(node.get())
            .expect("events only reference attached nodes")
    }

    /// Dense switch index of an event's switch.
    #[inline]
    fn switch_idx(&self, switch: SwitchId) -> u32 {
        self.dense_next_hop
            .index_of(switch)
            .expect("events only reference topology switches")
    }

    /// The trunk port from dense switch `from` to dense switch `to`.
    #[inline]
    fn trunk_port(&self, from: u32, to: u32) -> Option<u32> {
        let s = self.dense_next_hop.switch_count();
        match self.trunk_ports[from as usize * s + to as usize] {
            NO_INDEX => None,
            port => Some(port),
        }
    }

    /// The port id of a topology link, if the link exists in this fabric.
    fn port_of_link(&self, link: HopLink) -> Option<u32> {
        match link {
            HopLink::Uplink(node) => self.node_index.get(node.get()).map(|i| 2 * i),
            HopLink::Downlink(node) => self.node_index.get(node.get()).map(|i| 2 * i + 1),
            HopLink::Trunk { from, to } => {
                let f = self.dense_next_hop.index_of(from)?;
                let t = self.dense_next_hop.index_of(to)?;
                self.trunk_port(f, t)
            }
        }
    }

    // --- channel wire state ----------------------------------------------

    /// Register the wire state of an admitted multi-hop channel: for each
    /// link of its route, the offset from a frame's injection time by which
    /// the frame should have finished crossing that link.  Ports on the
    /// route then EDF-sort the channel's frames by the per-hop deadline
    /// instead of the end-to-end stamp, and — because the links identify the
    /// route — every switch on it gains a per-channel forwarding entry, so
    /// the channel's frames follow the *admitted* route even where it
    /// differs from the next-hop table (ECMP or pinned paths on a mesh).
    pub fn set_channel_hop_schedule(
        &mut self,
        channel: ChannelId,
        offsets: impl IntoIterator<Item = (HopLink, Duration)>,
    ) {
        let mut state = ChannelWireState::default();
        for (link, offset) in offsets {
            self.add_forwarding_entry(&mut state, link);
            if let Some(port) = self.port_of_link(link) {
                state.set_offset(port, offset);
            }
        }
        *self.channel_wire_slot(channel) = Some(state);
        self.mark_released(channel, false);
    }

    /// Install the forwarding entries of an admitted channel's [`Route`]
    /// without per-hop deadline budgets (frames keep EDF-sorting by their
    /// end-to-end stamp).  Useful when the route was pinned by a router but
    /// no deadline partitioning applies.
    pub fn set_channel_route(&mut self, channel: ChannelId, route: &Route) {
        let mut state = ChannelWireState::default();
        for &link in route.links() {
            self.add_forwarding_entry(&mut state, link);
        }
        *self.channel_wire_slot(channel) = Some(state);
        self.mark_released(channel, false);
    }

    /// The per-switch forwarding entry one route link contributes: a trunk
    /// is the egress of its transmitting switch, a downlink the egress of
    /// the destination's access switch, an uplink belongs to the node.
    fn add_forwarding_entry(&self, state: &mut ChannelWireState, link: HopLink) {
        match link {
            HopLink::Trunk { from, .. } => {
                if let (Some(switch), Some(port)) =
                    (self.dense_next_hop.index_of(from), self.port_of_link(link))
                {
                    state.set_forwarding(switch, port);
                }
            }
            HopLink::Downlink(node) => {
                if let Some(node_idx) = self.node_index.get(node.get()) {
                    state.set_forwarding(self.node_access[node_idx as usize], 2 * node_idx + 1);
                }
            }
            HopLink::Uplink(_) => {}
        }
    }

    /// Forget a channel's wire state (the raw table edit; most callers want
    /// the full [`Simulator::release_channel`] teardown).
    pub fn clear_channel_hop_schedule(&mut self, channel: ChannelId) {
        if let Some(slot) = self.channel_wire.get_mut(channel.get() as usize) {
            *slot = None;
        }
    }

    /// Wire-level teardown of a released channel: its forwarding entries and
    /// per-hop budgets are forgotten *and* the channel is marked released,
    /// so any of its frames still in (or entering) the fabric are dropped at
    /// the first switch and counted in
    /// [`SimStats::released_channel_dropped`] — a real switch that tore a
    /// channel down does not keep delivering for it.  Re-admitting a channel
    /// under the same id ([`Simulator::set_channel_hop_schedule`]) clears
    /// the flag.
    pub fn release_channel(&mut self, channel: ChannelId) {
        self.clear_channel_hop_schedule(channel);
        self.mark_released(channel, true);
    }

    fn mark_released(&mut self, channel: ChannelId, released: bool) {
        let idx = channel.get() as usize;
        if idx >= self.released_channels.len() {
            if !released {
                return;
            }
            self.released_channels.resize(idx + 1, false);
        }
        self.released_channels[idx] = released;
    }

    /// `true` if the channel's wire state was torn down and not re-installed.
    #[inline]
    fn is_released(&self, channel: Option<ChannelId>) -> bool {
        channel.is_some_and(|c| {
            self.released_channels
                .get(c.get() as usize)
                .copied()
                .unwrap_or(false)
        })
    }

    fn channel_wire_slot(&mut self, channel: ChannelId) -> &mut Option<ChannelWireState> {
        let idx = channel.get() as usize;
        if idx >= self.channel_wire.len() {
            self.channel_wire.resize_with(idx + 1, || None);
        }
        &mut self.channel_wire[idx]
    }

    /// The installed wire state of a channel, if any (hot path).
    #[inline]
    fn channel_state(&self, channel: Option<ChannelId>) -> Option<&ChannelWireState> {
        self.channel_wire.get(channel?.get() as usize)?.as_ref()
    }

    // --- fault injection --------------------------------------------------

    /// Cut the trunk between `from` and `to` *now*: the topology degrades
    /// ([`Topology::fail_trunk`], so the router's cached tables invalidate
    /// via the changed fingerprint and control/best-effort forwarding
    /// immediately avoids the dead edge), both directed trunk ports die,
    /// every frame queued at them is lost, and a frame mid-serialisation is
    /// lost with the cable.  Per-channel forwarding entries that still point
    /// at the dead ports drop (and count) their frames until the channel is
    /// re-routed.
    pub fn fail_link(&mut self, from: SwitchId, to: SwitchId) -> RtResult<()> {
        self.topology.fail_trunk(from, to)?;
        let now = self.now();
        self.kill_trunk_ports(from, to, now);
        self.refresh_routing_tables();
        Ok(())
    }

    /// Kill both directed ports of one trunk: mark them dead, doom a frame
    /// mid-serialisation (lost with the cable even across a repair), and
    /// drain + count their queues.
    fn kill_trunk_ports(&mut self, a: SwitchId, b: SwitchId, now: SimTime) {
        let f = self.switch_idx(a);
        let t = self.switch_idx(b);
        for (x, y) in [(f, t), (t, f)] {
            if let Some(port) = self.trunk_port(x, y) {
                let p = port as usize;
                self.dead_ports[p] = true;
                if self.ports[p].is_busy(now) {
                    self.doomed_ports[p] = true;
                }
                for lost in self.ports[p].drain() {
                    self.stats.record_failed_link_drop();
                    self.discard_frame(lost.frame);
                }
            }
        }
    }

    /// Splice a previously cut trunk back: the topology recovers
    /// ([`Topology::repair_trunk`]), both trunk ports come back to life and
    /// the forwarding tables see the restored edge from this instant on.
    /// Channels stay on whatever route they were (re-)admitted on — route
    /// re-selection after a repair is an admission-control decision, not a
    /// wire-level one.
    pub fn repair_link(&mut self, from: SwitchId, to: SwitchId) -> RtResult<()> {
        self.topology.repair_trunk(from, to)?;
        let f = self.switch_idx(from);
        let t = self.switch_idx(to);
        for (a, b) in [(f, t), (t, f)] {
            if let Some(port) = self.trunk_port(a, b) {
                self.dead_ports[port as usize] = false;
            }
        }
        self.refresh_routing_tables();
        Ok(())
    }

    /// Cut every healthy trunk incident to `switch` *now*, atomically: the
    /// topology degrades in one step ([`Topology::fail_switch`]) and then
    /// every incident directed trunk port dies exactly as in
    /// [`Simulator::fail_link`] — queues drained and counted, frames
    /// mid-serialisation lost with their cables.  The switch itself (and
    /// its access links) survives; repairs splice trunks back one at a
    /// time via [`Simulator::repair_link`].
    pub fn fail_switch(&mut self, switch: SwitchId) -> RtResult<()> {
        let cut = self.topology.fail_switch(switch)?;
        let now = self.now();
        for &(a, b) in &cut {
            self.kill_trunk_ports(a, b, now);
        }
        self.refresh_routing_tables();
        Ok(())
    }

    /// Re-pull the dense next-hop form from the router after a topology
    /// mutation.  The router caches per fingerprint (rebuilding
    /// incrementally for a single trunk flip), so this is cheap when
    /// nothing changed and one bounded recompute when something did.  The
    /// dense switch indexing is stable across failures (the switch set
    /// never changes), so ports and trunk indices stay valid.
    fn refresh_routing_tables(&mut self) {
        self.dense_next_hop = self.router.dense_next_hop(&self.topology);
    }

    /// Schedule a single fault as a first-class simulator event: it fires in
    /// `(time, seq)` order with every other event, so a cut interleaves
    /// deterministically with the traffic around it.
    pub fn schedule_fault(&mut self, at: SimTime, fault: LinkFault) -> RtResult<()> {
        if at < self.now() {
            return Err(Self::past_injection_error(at, self.now()));
        }
        let event = match fault {
            LinkFault::Fail { from, to } => Event::FailTrunk { from, to },
            LinkFault::Repair { from, to } => Event::RepairTrunk { from, to },
            LinkFault::FailSwitch { switch } => Event::FailSwitch { switch },
        };
        self.schedule_event(at, event);
        Ok(())
    }

    /// Schedule a whole [`FaultScript`] up front, like a traffic workload.
    pub fn schedule_faults(&mut self, script: &FaultScript) -> RtResult<()> {
        for &(at, fault) in script.events() {
            self.schedule_fault(at, fault)?;
        }
        Ok(())
    }

    /// The currently failed trunks (each once, `from < to`).
    pub fn failed_links(&self) -> Vec<(SwitchId, SwitchId)> {
        self.topology.failed_trunks().collect()
    }

    // --- injection -------------------------------------------------------

    fn classify(
        eth: &EthernetFrame,
    ) -> RtResult<(TrafficClass, Option<SimTime>, Option<ChannelId>, bool)> {
        // `Frame::peek` borrows: classification costs no clone and no
        // payload copy, and accepts/rejects exactly as `Frame::classify`.
        match Frame::peek(eth)? {
            FramePeek::RtData(stamp) => Ok((
                TrafficClass::RealTime,
                Some(SimTime::from_nanos(stamp.absolute_deadline)),
                Some(stamp.channel),
                false,
            )),
            // Control frames ride the RT queue with an immediate deadline
            // so that channel management is never starved.
            FramePeek::Control => Ok((TrafficClass::RealTime, None, None, false)),
            // Link-state floods queue exactly like other control frames but
            // are accounted separately: they are convergence overhead, not
            // per-admission reservation traffic.
            FramePeek::LinkState => Ok((TrafficClass::RealTime, None, None, true)),
            FramePeek::BestEffort => Ok((TrafficClass::BestEffort, None, None, false)),
        }
    }

    /// Resolve a destination MAC once, into dense indices.
    fn resolve_dest(&self, dst: MacAddr) -> FrameDest {
        if dst == self.switch_mac {
            return FrameDest::ControlPlane;
        }
        if let Some(&switch) = self.switch_macs.get(&dst) {
            return FrameDest::Switch { switch };
        }
        match self.forwarding.get(&dst) {
            Some(&node) => {
                let node_idx = self
                    .node_index
                    .get(node.get())
                    .expect("forwarding only holds attached nodes");
                FrameDest::Node {
                    node: node_idx,
                    switch: self.node_access[node_idx as usize],
                }
            }
            None => FrameDest::Unknown,
        }
    }

    fn register_frame(
        &mut self,
        eth: EthernetFrame,
        source: NodeId,
        injected_at: SimTime,
    ) -> RtResult<FrameId> {
        let classified = Self::classify(&eth)?;
        Ok(self.register_classified(eth, classified, source, injected_at))
    }

    /// The infallible second half of frame registration (classification
    /// already done — the batch path pre-validates everything first so a
    /// failed batch leaves the simulation untouched).
    fn register_classified(
        &mut self,
        eth: EthernetFrame,
        (class, deadline, channel, link_state): (
            TrafficClass,
            Option<SimTime>,
            Option<ChannelId>,
            bool,
        ),
        source: NodeId,
        injected_at: SimTime,
    ) -> FrameId {
        let dest = self.resolve_dest(eth.dst);
        let wire_bytes = eth.wire_bytes();
        let id = FrameId(self.frames.len() as u64);
        if link_state {
            self.stats.record_link_state_frame();
        } else if Self::is_control_record(class, channel) {
            self.stats.record_control_frame();
        }
        // The one serialisation of the zero-copy path: the frame's unpadded
        // wire image goes into a pooled buffer here, and only the small
        // `FrameRef` travels through the event loop.
        let stored = match self.config.frame_store {
            FrameStoreKind::Owned => StoredFrame::Owned(eth),
            FrameStoreKind::Arena => StoredFrame::Pooled(
                self.arena
                    .alloc_with(eth.unpadded_len(), |buf| eth.encode_unpadded_to_slice(buf)),
            ),
        };
        self.frames.push(FrameRecord {
            stored,
            class,
            deadline,
            channel,
            link_state,
            dest,
            source,
            injected_at,
            wire_bytes,
        });
        id
    }

    /// `true` if a frame of this classification is control-plane traffic:
    /// real-time class without a data channel (establishment, reservation
    /// and tear-down frames; RT data always carries its channel id).
    #[inline]
    pub(crate) fn is_control_record(class: TrafficClass, channel: Option<ChannelId>) -> bool {
        class == TrafficClass::RealTime && channel.is_none()
    }

    /// One checked gate for every injection path: the entry point must be an
    /// attached node and the time must not lie in the simulated past.  The
    /// error construction is kept out of line so the (always-taken) happy
    /// path stays branch-plus-return.
    fn validate_injection(&self, node: NodeId, at: SimTime) -> RtResult<()> {
        if self.node_index.get(node.get()).is_none() {
            return Err(RtError::UnknownNode(node));
        }
        if at < self.now() {
            return Err(Self::past_injection_error(at, self.now()));
        }
        Ok(())
    }

    #[cold]
    #[inline(never)]
    fn past_injection_error(at: SimTime, now: SimTime) -> RtError {
        RtError::Simulation(format!(
            "cannot inject at {at}, simulation time is already {now}"
        ))
    }

    /// Schedule an internal event, folding the (release-build) past-time
    /// clamp count into the run statistics.
    #[inline]
    fn schedule_event(&mut self, at: SimTime, event: Event) {
        if self.events.schedule(at, event) {
            self.stats.record_clamped();
        }
    }

    /// Inject a frame at `node`'s RT layer at time `at` (it enters the NIC
    /// output queues at that instant).
    pub fn inject(&mut self, node: NodeId, eth: EthernetFrame, at: SimTime) -> RtResult<FrameId> {
        self.validate_injection(node, at)?;
        let id = self.register_frame(eth, node, at)?;
        self.schedule_event(at, Event::EnqueueAtNode { node, frame: id });
        Ok(id)
    }

    /// Inject a whole batch of frames in one call, reserving the frame
    /// store up front — what scenario generators should use instead of one
    /// [`Simulator::inject`] round-trip per frame.
    ///
    /// All-or-nothing: the whole batch is validated (and classified)
    /// before the first frame is registered, so an `Err` leaves the
    /// simulation exactly as it was — retrying a corrected batch cannot
    /// double-inject the earlier frames.
    pub fn inject_batch(
        &mut self,
        batch: impl IntoIterator<Item = FrameInjection>,
    ) -> RtResult<Vec<FrameId>> {
        let batch = batch.into_iter();
        let mut prepared = Vec::with_capacity(batch.size_hint().0);
        for injection in batch {
            self.validate_injection(injection.node, injection.at)?;
            let classified = Self::classify(&injection.eth)?;
            prepared.push((injection, classified));
        }
        // Infallible from here on.
        self.frames.reserve(prepared.len());
        let mut ids = Vec::with_capacity(prepared.len());
        for (FrameInjection { node, eth, at }, classified) in prepared {
            let id = self.register_classified(eth, classified, node, at);
            self.schedule_event(at, Event::EnqueueAtNode { node, frame: id });
            ids.push(id);
        }
        Ok(ids)
    }

    /// Inject a frame originated by the switch control plane (e.g. a
    /// ResponseFrame) towards `to`.  The frame starts at the managing
    /// switch's ports at time `at` and crosses any trunks on the way.
    pub fn inject_from_switch(
        &mut self,
        to: NodeId,
        eth: EthernetFrame,
        at: SimTime,
    ) -> RtResult<FrameId> {
        self.validate_injection(to, at)?;
        let id = self.register_frame(eth, NodeId::SWITCH, at)?;
        self.schedule_event(at, Event::EnqueueAtSwitch { to, frame: id });
        Ok(id)
    }

    /// Inject a frame originated by the control plane of a *specific*
    /// switch: it enters that switch's forwarding at time `at` and is
    /// routed by its destination MAC — to an attached node, or to another
    /// switch's control-plane address, crossing (and queueing on) every
    /// trunk in between.  This is the transport of the distributed
    /// reservation protocol: a probe of a five-trunk route really costs
    /// five store-and-forward traversals of wire time.
    pub fn inject_at_switch(
        &mut self,
        at_switch: SwitchId,
        eth: EthernetFrame,
        at: SimTime,
    ) -> RtResult<FrameId> {
        if self.dense_next_hop.index_of(at_switch).is_none() {
            return Err(RtError::Config(format!("unknown switch {at_switch}")));
        }
        if at < self.now() {
            return Err(Self::past_injection_error(at, self.now()));
        }
        let id = self.register_frame(eth, NodeId::SWITCH, at)?;
        self.schedule_event(
            at,
            Event::ArriveAtSwitch {
                switch: at_switch,
                frame: id,
            },
        );
        Ok(id)
    }

    // --- execution -------------------------------------------------------

    /// Run until the event queue is empty; returns the final simulated time.
    ///
    /// Events are drained in same-time *runs*: one scheduler dispatch pulls
    /// every event scheduled at the minimal instant (in FIFO order), so a
    /// burst of simultaneous arrivals costs one min-search instead of one
    /// per event.  Events the handlers schedule at that same instant carry
    /// later sequence numbers, so handling the run before them is exactly
    /// the single-pop order.
    pub fn run_to_idle(&mut self) -> SimTime {
        let mut batch = std::mem::take(&mut self.event_batch);
        while let Some(time) = self.events.pop_run(&mut batch) {
            for event in batch.drain(..) {
                self.handle(time, event);
            }
        }
        self.event_batch = batch;
        self.now()
    }

    /// Run until at least one delivery is pending (`true`) or the event
    /// queue drains (`false`).  This is what a control-plane driver wants:
    /// react to each delivery *at its simulated time* instead of after the
    /// whole event queue has drained — a teardown or a fault must take
    /// effect while later traffic is still in flight, not after it.
    pub fn run_until_delivery(&mut self) -> bool {
        while self.pending_deliveries.is_empty() {
            if !self.step() {
                return false;
            }
        }
        true
    }

    /// The time-bounded form of [`Simulator::run_until_delivery`]: run
    /// until a delivery is pending (`true`) or no event at or before
    /// `limit` remains (`false`).  Events after `limit` stay pending.
    pub fn run_until_delivery_before(&mut self, limit: SimTime) -> bool {
        while self.pending_deliveries.is_empty() {
            match self.events.pop_until(limit) {
                Some((time, event)) => self.handle(time, event),
                None => return false,
            }
        }
        true
    }

    /// Run until `limit` (inclusive); events after `limit` stay pending.
    /// Same-time runs are drained in one scheduler dispatch, as in
    /// [`Simulator::run_to_idle`].
    pub fn run_until(&mut self, limit: SimTime) {
        let mut batch = std::mem::take(&mut self.event_batch);
        while let Some(time) = self.events.pop_run_until(limit, &mut batch) {
            for event in batch.drain(..) {
                self.handle(time, event);
            }
        }
        self.event_batch = batch;
    }

    /// Drive the simulation with a pull-based [`TrafficSource`]: inject the
    /// source's frames window by window (so the pending-event set stays
    /// proportional to one window, not to the whole experiment), then drain
    /// the fabric.  Returns the final simulated time.
    pub fn run_with_source(
        &mut self,
        source: &mut dyn TrafficSource,
        window: Duration,
    ) -> RtResult<SimTime> {
        let window = if window == Duration::ZERO {
            Duration::from_millis(1)
        } else {
            window
        };
        let mut horizon = self.now() + window;
        loop {
            let batch = source.next_batch(horizon);
            self.inject_batch(batch)?;
            if source.is_exhausted() {
                return Ok(self.run_to_idle());
            }
            self.run_until(horizon);
            horizon += window;
        }
    }

    /// Process a single event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.events.pop() {
            Some((time, event)) => {
                self.handle(time, event);
                true
            }
            None => false,
        }
    }

    fn tx_time(&self, wire_bytes: usize) -> Duration {
        self.config.link_speed.transmission_time(wire_bytes)
    }

    /// The output port a frame takes when it sits at dense switch `at` and
    /// must reach the dense destination node `dest_node` attached to dense
    /// switch `dest_switch`: the channel's installed route entry when one
    /// exists, otherwise the local downlink or the trunk port towards the
    /// next switch of the next-hop table.
    #[inline]
    fn egress_port(
        &self,
        at: u32,
        dest_node: u32,
        dest_switch: u32,
        channel: Option<ChannelId>,
    ) -> Option<u32> {
        if let Some(port) = self
            .channel_state(channel)
            .and_then(|state| state.forwarding_port(at))
        {
            return Some(port);
        }
        if dest_switch == at {
            return Some(2 * dest_node + 1);
        }
        let next = self.dense_next_hop.next_hop_index(at, dest_switch)?;
        self.trunk_port(at, next)
    }

    fn handle(&mut self, now: SimTime, event: Event) {
        match event {
            Event::EnqueueAtNode { node, frame } => {
                let port = 2 * self.node_idx(node);
                self.enqueue_at_port(frame, port);
                self.try_start_tx(now, port);
            }
            Event::NodeTxComplete { node, frame } => {
                let node_idx = self.node_idx(node);
                let port = 2 * node_idx;
                self.ports[port as usize].clear_busy();
                // Last bit leaves the node now; it arrives at the access
                // switch after the propagation delay, and becomes eligible
                // for forwarding after the switch processing latency.
                let arrive = now + self.config.propagation_delay + self.config.switch_latency;
                let switch = self
                    .dense_next_hop
                    .switch_at(self.node_access[node_idx as usize]);
                self.schedule_event(arrive, Event::ArriveAtSwitch { switch, frame });
                self.try_start_tx(now, port);
            }
            Event::ArriveAtSwitch { switch, frame } => {
                let at = self.switch_idx(switch);
                let record = &self.frames[frame.0 as usize];
                let channel = record.channel;
                match record.dest {
                    FrameDest::ControlPlane => {
                        // Generic control-plane traffic.  Distributed
                        // placement: the first switch to see the frame runs
                        // a manager and consumes it.  Central placement:
                        // deliver at the managing switch, forward over
                        // trunks towards it from anywhere else.
                        if self.distributed_control || at == self.manager_index {
                            let switch = self.dense_next_hop.switch_at(at);
                            self.deliver_to_switch(frame, switch, now);
                        } else if let Some(port) = self
                            .dense_next_hop
                            .next_hop_index(at, self.manager_index)
                            .and_then(|next| self.trunk_port(at, next))
                        {
                            self.enqueue_at_port(frame, port);
                            self.try_start_tx(now, port);
                        } else {
                            self.stats.record_unroutable();
                            self.discard_frame(frame);
                        }
                    }
                    FrameDest::Switch { switch: target } => {
                        // Switch-to-switch control traffic (reservation
                        // frames): deliver at the addressed switch, forward
                        // over trunks towards it from anywhere else.
                        if at == target {
                            let switch = self.dense_next_hop.switch_at(at);
                            self.deliver_to_switch(frame, switch, now);
                        } else if let Some(port) = self
                            .dense_next_hop
                            .next_hop_index(at, target)
                            .and_then(|next| self.trunk_port(at, next))
                        {
                            self.enqueue_at_port(frame, port);
                            self.try_start_tx(now, port);
                        } else {
                            self.stats.record_unroutable();
                            self.discard_frame(frame);
                        }
                    }
                    FrameDest::Node {
                        node: dest_node,
                        switch: dest_switch,
                    } => {
                        if self.is_released(channel) {
                            // The channel was torn down: the switch has no
                            // state for it any more, so the frame is
                            // discarded, not delivered on a stale route.
                            self.stats.record_released_channel_drop();
                            self.discard_frame(frame);
                            return;
                        }
                        match self.egress_port(at, dest_node, dest_switch, channel) {
                            Some(port) if self.dead_ports[port as usize] => {
                                // A stale per-channel forwarding entry still
                                // points at the cut trunk; the frame is lost
                                // until the channel is re-routed.
                                self.stats.record_failed_link_drop();
                                self.discard_frame(frame);
                            }
                            Some(port) => {
                                self.enqueue_at_port(frame, port);
                                self.try_start_tx(now, port);
                            }
                            None => {
                                self.stats.record_unroutable();
                                self.discard_frame(frame);
                            }
                        }
                    }
                    FrameDest::Unknown => {
                        self.stats.record_unroutable();
                        self.discard_frame(frame);
                    }
                }
            }
            Event::EnqueueAtSwitch { to, frame } => {
                // Control-plane origination at the managing switch.
                let to_idx = self.node_idx(to);
                let dest_switch = self.node_access[to_idx as usize];
                match self.egress_port(self.manager_index, to_idx, dest_switch, None) {
                    Some(port) => {
                        self.enqueue_at_port(frame, port);
                        self.try_start_tx(now, port);
                    }
                    None => {
                        self.stats.record_unroutable();
                        self.discard_frame(frame);
                    }
                }
            }
            Event::SwitchTxComplete { to, frame } => {
                let port = 2 * self.node_idx(to) + 1;
                self.ports[port as usize].clear_busy();
                let arrive = now + self.config.propagation_delay;
                self.schedule_event(arrive, Event::ArriveAtNode { node: to, frame });
                self.try_start_tx(now, port);
            }
            Event::TrunkTxComplete { from, to, frame } => {
                let from_idx = self.switch_idx(from);
                let to_idx = self.switch_idx(to);
                if let Some(port) = self.trunk_port(from_idx, to_idx) {
                    let p = port as usize;
                    self.ports[p].clear_busy();
                    if self.doomed_ports[p] || self.dead_ports[p] {
                        // The cable was cut while this frame was on it (or
                        // is still cut): the frame never arrives.  A dead
                        // port has empty queues (drained at failure time,
                        // enqueues blocked), but a *repaired* port may have
                        // picked up new frames while this doomed
                        // transmission still held it busy — restart it.
                        self.doomed_ports[p] = false;
                        self.stats.record_failed_link_drop();
                        self.discard_frame(frame);
                        self.try_start_tx(now, port);
                        return;
                    }
                    // Store-and-forward at the receiving switch, exactly as
                    // for a frame arriving over an uplink.
                    let arrive = now + self.config.propagation_delay + self.config.switch_latency;
                    self.schedule_event(arrive, Event::ArriveAtSwitch { switch: to, frame });
                    self.try_start_tx(now, port);
                }
            }
            Event::ArriveAtNode { node, frame } => {
                self.deliver(frame, node, now);
            }
            Event::FailTrunk { from, to } => {
                // A scripted cut of an already-failed (or unknown) trunk is
                // a script bug in debug builds; release builds ignore it
                // rather than corrupting the run.
                let result = self.fail_link(from, to);
                debug_assert!(result.is_ok(), "scripted FailTrunk failed: {result:?}");
            }
            Event::RepairTrunk { from, to } => {
                let result = self.repair_link(from, to);
                debug_assert!(result.is_ok(), "scripted RepairTrunk failed: {result:?}");
            }
            Event::FailSwitch { switch } => {
                let result = self.fail_switch(switch);
                debug_assert!(result.is_ok(), "scripted FailSwitch failed: {result:?}");
            }
        }
    }

    /// The EDF deadline a frame uses while queued at port `port`: the
    /// registered per-hop budget of its channel when one exists, the
    /// end-to-end stamp otherwise.
    #[inline]
    fn queue_deadline(&self, record: &FrameRecord, port: u32) -> Option<SimTime> {
        if let Some(offset) = self
            .channel_state(record.channel)
            .and_then(|state| state.offset_for(port))
        {
            return Some(record.injected_at + offset);
        }
        record.deadline
    }

    fn enqueue_at_port(&mut self, frame: FrameId, port: u32) {
        let record = &self.frames[frame.0 as usize];
        let class = record.class;
        let deadline = self.queue_deadline(record, port);
        let out = &mut self.ports[port as usize];
        match class {
            TrafficClass::RealTime => {
                // Control frames have no deadline; give them "now or
                // earlier" urgency by using time zero so they are never
                // queued behind data frames.
                out.enqueue_rt(frame, deadline.unwrap_or(SimTime::ZERO));
            }
            TrafficClass::BestEffort => {
                if !out.enqueue_be(frame) {
                    self.stats.record_be_drop();
                    self.discard_frame(frame);
                }
            }
        }
    }

    fn try_start_tx(&mut self, now: SimTime, port: u32) {
        let out = &mut self.ports[port as usize];
        if out.is_busy(now) || out.is_empty() {
            return;
        }
        let Some(queued) = out.dequeue_next() else {
            return;
        };
        let record = &self.frames[queued.frame.0 as usize];
        let wire_bytes = record.wire_bytes;
        if record.link_state {
            self.stats.record_link_state_hop();
        } else if Self::is_control_record(record.class, record.channel) {
            self.stats.record_control_hop();
        }
        let tx = self.config.link_speed.transmission_time(wire_bytes);
        let done = now + tx;
        self.ports[port as usize].set_busy_until(done);
        self.stats
            .record_transmission(port as usize, wire_bytes, tx);
        let event = match self.port_links[port as usize] {
            HopLink::Uplink(node) => Event::NodeTxComplete {
                node,
                frame: queued.frame,
            },
            HopLink::Downlink(node) => Event::SwitchTxComplete {
                to: node,
                frame: queued.frame,
            },
            HopLink::Trunk { from, to } => Event::TrunkTxComplete {
                from,
                to,
                frame: queued.frame,
            },
        };
        self.schedule_event(done, event);
    }

    fn deliver(&mut self, frame: FrameId, receiver: NodeId, now: SimTime) {
        self.deliver_inner(frame, receiver, None, now);
    }

    /// Deliver a frame to a switch's control plane (`receiver` is
    /// [`NodeId::SWITCH`]; the `switch` field says which one).
    fn deliver_to_switch(&mut self, frame: FrameId, switch: SwitchId, now: SimTime) {
        self.deliver_inner(frame, NodeId::SWITCH, Some(switch), now);
    }

    fn deliver_inner(
        &mut self,
        frame: FrameId,
        receiver: NodeId,
        switch: Option<SwitchId>,
        now: SimTime,
    ) {
        let record = &self.frames[frame.0 as usize];
        match record.class {
            TrafficClass::RealTime => {
                self.stats.record_rt_delivery(
                    record.channel,
                    record.injected_at,
                    now,
                    record.deadline,
                );
            }
            TrafficClass::BestEffort => self.stats.record_be_delivery(),
        }
        // Materialise the public `Delivery` frame: the owned store clones
        // its decoded frame; the arena store decodes the pooled unpadded
        // wire image (struct-exact, so deliveries are byte-for-byte
        // identical across stores) and returns the buffer to the pool.
        let eth = match &record.stored {
            StoredFrame::Owned(eth) => eth.clone(),
            StoredFrame::Pooled(r) => {
                let r = *r;
                let eth = EthernetFrame::decode_unpadded(self.arena.bytes(r))
                    .expect("pooled frames hold a valid unpadded wire image");
                self.arena.free(r);
                eth
            }
        };
        self.pending_deliveries.push(Delivery {
            frame,
            receiver,
            switch,
            source: record.source,
            eth,
            injected_at: record.injected_at,
            delivered_at: now,
            channel: record.channel,
            deadline: record.deadline,
            class: record.class,
        });
    }

    /// A frame leaves the fabric without being delivered (unroutable, BE
    /// overflow, released channel, dead link): return its pooled buffer to
    /// the arena.  Every drop site must call this exactly once — the
    /// arena-leak invariant (`arena_outstanding() == 0` once the fabric
    /// drains) is what the property suite checks.
    fn discard_frame(&mut self, frame: FrameId) {
        if let StoredFrame::Pooled(r) = self.frames[frame.0 as usize].stored {
            self.arena.free(r);
        }
    }

    /// Which frame store the simulator runs on.
    pub fn frame_store_kind(&self) -> FrameStoreKind {
        self.config.frame_store
    }

    /// Pooled frame buffers currently in flight (always 0 in `Owned` mode,
    /// and 0 once every injected frame has been delivered or dropped).
    pub fn arena_outstanding(&self) -> usize {
        self.arena.outstanding()
    }

    /// Allocation counters of the frame arena (fresh allocations vs
    /// buffer reuses; see [`rt_frames::ArenaStats`]).
    pub fn arena_stats(&self) -> rt_frames::ArenaStats {
        self.arena.stats()
    }

    /// Total transmission (busy) time recorded on an access link so far.
    pub fn link_busy_time(&self, link: LinkId) -> Duration {
        self.stats
            .link(link)
            .map(|l| l.busy_time)
            .unwrap_or(Duration::ZERO)
    }

    /// Total transmission (busy) time recorded on any fabric link so far.
    pub fn hop_busy_time(&self, link: HopLink) -> Duration {
        self.stats
            .hop_link(link)
            .map(|l| l.busy_time)
            .unwrap_or(Duration::ZERO)
    }

    /// Convenience: the transmission time of a frame of `wire_bytes` bytes at
    /// the configured link speed.
    pub fn transmission_time(&self, wire_bytes: usize) -> Duration {
        self.tx_time(wire_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_frames::rt_data::{DeadlineStamp, RtDataFrame};
    use rt_types::constants::ETHERTYPE_IPV4;
    use rt_types::Ipv4Address;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    fn be_frame(from: NodeId, to: NodeId, payload_len: usize) -> EthernetFrame {
        // A plain (non-RT) IPv4/UDP frame.
        let udp = rt_frames::UdpHeader::new(1000, 2000, payload_len).unwrap();
        let ip = rt_frames::Ipv4Header::udp(
            Ipv4Address::for_node(from),
            Ipv4Address::for_node(to),
            8 + payload_len,
        )
        .unwrap();
        let mut bytes = ip.encode();
        bytes.extend_from_slice(&udp.encode());
        bytes.extend(std::iter::repeat_n(0xa5u8, payload_len));
        EthernetFrame::new(
            MacAddr::for_node(to),
            MacAddr::for_node(from),
            ETHERTYPE_IPV4,
            bytes,
        )
        .unwrap()
    }

    fn rt_frame(
        from: NodeId,
        to: NodeId,
        channel: u16,
        deadline: SimTime,
        payload_len: usize,
    ) -> EthernetFrame {
        RtDataFrame {
            eth_src: MacAddr::for_node(from),
            eth_dst: MacAddr::for_node(to),
            stamp: DeadlineStamp::new(deadline.as_nanos(), ChannelId::new(channel)).unwrap(),
            src_port: 5000,
            dst_port: 5001,
            payload: vec![0u8; payload_len],
        }
        .into_ethernet()
        .unwrap()
    }

    #[test]
    fn single_frame_end_to_end_latency() {
        let config = SimConfig::default();
        let mut sim = Simulator::new(config, nodes(2));
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        let eth = be_frame(n0, n1, 1000);
        let wire = eth.wire_bytes();
        sim.inject(n0, eth, SimTime::ZERO).unwrap();
        sim.run_to_idle();
        let deliveries = sim.poll_deliveries();
        assert_eq!(deliveries.len(), 1);
        let d = &deliveries[0];
        assert_eq!(d.receiver, n1);
        assert_eq!(d.source, n0);
        // Two serialisations + two propagations + switch latency.
        let expected = config.link_speed.transmission_time(wire) * 2
            + config.propagation_delay * 2
            + config.switch_latency;
        assert_eq!(d.latency(), expected);
        assert_eq!(sim.stats().be_delivered, 1);
    }

    #[test]
    fn control_frames_to_switch_are_delivered_to_control_plane() {
        let mut sim = Simulator::new(SimConfig::default(), nodes(2));
        let n0 = NodeId::new(0);
        let req = rt_frames::RequestFrame {
            src_mac: MacAddr::for_node(n0),
            dst_mac: MacAddr::for_node(NodeId::new(1)),
            src_ip: Ipv4Address::for_node(n0),
            dst_ip: Ipv4Address::for_node(NodeId::new(1)),
            period: rt_types::Slots::new(100),
            capacity: rt_types::Slots::new(3),
            deadline: rt_types::Slots::new(40),
            rt_channel_id: None,
            connection_request_id: rt_types::ConnectionRequestId::new(1),
        };
        let eth = req
            .into_ethernet(MacAddr::for_node(n0), MacAddr::for_switch())
            .unwrap();
        sim.inject(n0, eth, SimTime::ZERO).unwrap();
        sim.run_to_idle();
        let deliveries = sim.poll_deliveries();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].receiver, NodeId::SWITCH);
        assert_eq!(deliveries[0].class, TrafficClass::RealTime);
    }

    #[test]
    fn switch_originated_frames_reach_the_node() {
        let mut sim = Simulator::new(SimConfig::default(), nodes(2));
        let n1 = NodeId::new(1);
        let resp = rt_frames::ResponseFrame {
            rt_channel_id: Some(ChannelId::new(1)),
            switch_mac: MacAddr::for_switch(),
            verdict: rt_frames::rt_response::ResponseVerdict::Accepted,
            connection_request_id: rt_types::ConnectionRequestId::new(1),
        };
        let eth = resp
            .into_ethernet(MacAddr::for_switch(), MacAddr::for_node(n1))
            .unwrap();
        sim.inject_from_switch(n1, eth, SimTime::from_micros(10))
            .unwrap();
        sim.run_to_idle();
        let deliveries = sim.poll_deliveries();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].receiver, n1);
        assert_eq!(deliveries[0].source, NodeId::SWITCH);
    }

    #[test]
    fn rt_frames_overtake_best_effort_on_the_uplink() {
        let mut sim = Simulator::new(SimConfig::default(), nodes(2));
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        // Queue three large best-effort frames first, then one RT frame, all
        // at the same instant.
        let mut ids = Vec::new();
        for _ in 0..3 {
            ids.push(
                sim.inject(n0, be_frame(n0, n1, 1400), SimTime::ZERO)
                    .unwrap(),
            );
        }
        let rt_id = sim
            .inject(
                n0,
                rt_frame(n0, n1, 7, SimTime::from_millis(5), 100),
                SimTime::ZERO,
            )
            .unwrap();
        sim.run_to_idle();
        let deliveries = sim.poll_deliveries();
        assert_eq!(deliveries.len(), 4);
        // The first best-effort frame wins the race only if it started
        // before the RT frame was enqueued; both were enqueued at the same
        // event time, and enqueue events are FIFO, so the first BE frame is
        // already on the wire.  The RT frame must then beat the remaining
        // two BE frames.
        let order: Vec<FrameId> = deliveries.iter().map(|d| d.frame).collect();
        let rt_pos = order.iter().position(|&f| f == rt_id).unwrap();
        assert!(
            rt_pos <= 1,
            "RT frame delivered at position {rt_pos}, order {order:?}"
        );
        assert!(sim.stats().all_deadlines_met());
    }

    #[test]
    fn deadline_misses_are_detected() {
        let mut sim = Simulator::new(SimConfig::default(), nodes(2));
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        // An impossible deadline: 1 us for a full-size frame.
        sim.inject(
            n0,
            rt_frame(n0, n1, 3, SimTime::from_micros(1), 1400),
            SimTime::ZERO,
        )
        .unwrap();
        sim.run_to_idle();
        assert_eq!(sim.stats().total_deadline_misses, 1);
        let ch = sim.stats().channel(ChannelId::new(3)).unwrap();
        assert_eq!(ch.deadline_misses, 1);
        assert_eq!(ch.delivered, 1);
    }

    #[test]
    fn downlink_congestion_from_two_sources() {
        // Both node 0 and node 1 send to node 2 at the same time: the two
        // uplinks run in parallel but the downlink serialises the frames.
        let config = SimConfig::default();
        let mut sim = Simulator::new(config, nodes(3));
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        let n2 = NodeId::new(2);
        sim.inject(n0, be_frame(n0, n2, 1400), SimTime::ZERO)
            .unwrap();
        sim.inject(n1, be_frame(n1, n2, 1400), SimTime::ZERO)
            .unwrap();
        sim.run_to_idle();
        let deliveries = sim.poll_deliveries();
        assert_eq!(deliveries.len(), 2);
        let downlink = sim.stats().link(LinkId::downlink(n2)).unwrap();
        assert_eq!(downlink.frames, 2);
        // The second delivery is at least one transmission time after the
        // first (serialisation on the shared downlink).
        let t0 = deliveries[0].delivered_at;
        let t1 = deliveries[1].delivered_at;
        let gap = t1.saturating_duration_since(t0);
        let tx = config
            .link_speed
            .transmission_time(deliveries[1].eth.wire_bytes());
        assert!(gap >= tx, "gap {gap} smaller than tx time {tx}");
    }

    #[test]
    fn unknown_destination_is_dropped() {
        let mut sim = Simulator::new(SimConfig::default(), nodes(2));
        let n0 = NodeId::new(0);
        let ghost = NodeId::new(99);
        sim.inject(n0, be_frame(n0, ghost, 100), SimTime::ZERO)
            .unwrap();
        sim.run_to_idle();
        assert_eq!(sim.poll_deliveries().len(), 0);
        assert_eq!(sim.stats().unroutable_dropped, 1);
    }

    #[test]
    fn injection_errors() {
        let mut sim = Simulator::new(SimConfig::default(), nodes(1));
        let n0 = NodeId::new(0);
        let n9 = NodeId::new(9);
        assert!(sim.inject(n9, be_frame(n0, n0, 10), SimTime::ZERO).is_err());
        assert!(sim
            .inject_from_switch(n9, be_frame(n0, n0, 10), SimTime::ZERO)
            .is_err());
        // Advance time, then try to inject in the past.
        sim.inject(n0, be_frame(n0, n0, 10), SimTime::from_micros(100))
            .unwrap();
        sim.run_to_idle();
        assert!(sim.now() >= SimTime::from_micros(100));
        assert!(sim.inject(n0, be_frame(n0, n0, 10), SimTime::ZERO).is_err());
        // The past-time error keeps its message shape (shared helper).
        let err = sim
            .inject(n0, be_frame(n0, n0, 10), SimTime::ZERO)
            .unwrap_err();
        assert!(err.to_string().contains("simulation time is already"));
        let err = sim
            .inject_from_switch(n0, be_frame(n0, n0, 10), SimTime::ZERO)
            .unwrap_err();
        assert!(err.to_string().contains("simulation time is already"));
    }

    #[test]
    fn run_until_leaves_future_events_pending() {
        let mut sim = Simulator::new(SimConfig::default(), nodes(2));
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        sim.inject(n0, be_frame(n0, n1, 100), SimTime::from_millis(10))
            .unwrap();
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(sim.poll_deliveries().len(), 0);
        assert!(sim.events_pending() > 0);
        sim.run_to_idle();
        assert_eq!(sim.poll_deliveries().len(), 1);
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn t_latency_is_hop_count_aware() {
        let config = SimConfig::default();
        let slot = config.link_speed.slot_duration();
        // Star: 2 links, 1 switch, 2 blocking slots.
        assert_eq!(
            config.t_latency(),
            config.propagation_delay * 2 + config.switch_latency + slot * 2
        );
        assert_eq!(config.t_latency(), config.t_latency_for_hops(2));
        // A 3-switch line path: 4 links, 3 switches, 4 blocking slots.
        assert_eq!(
            config.t_latency_for_hops(4),
            config.propagation_delay * 4 + config.switch_latency * 3 + slot * 4
        );
        // Each extra hop adds exactly prop + switch latency + one slot.
        let per_hop = config.propagation_delay + config.switch_latency + slot;
        assert_eq!(
            config.t_latency_for_hops(3),
            config.t_latency_for_hops(2) + per_hop
        );
    }

    #[test]
    fn determinism_same_inputs_same_outputs() {
        let run = || {
            let mut sim = Simulator::new(SimConfig::default(), nodes(4));
            for i in 0..4u32 {
                for j in 0..4u32 {
                    if i != j {
                        let f = rt_frame(
                            NodeId::new(i),
                            NodeId::new(j),
                            (i * 4 + j) as u16,
                            SimTime::from_millis(2),
                            500,
                        );
                        sim.inject(
                            NodeId::new(i),
                            f,
                            SimTime::from_micros(u64::from(i * 7 + j)),
                        )
                        .unwrap();
                    }
                }
            }
            sim.run_to_idle();
            let d: Vec<(FrameId, SimTime)> = sim
                .poll_deliveries()
                .iter()
                .map(|d| (d.frame, d.delivered_at))
                .collect();
            d
        };
        assert_eq!(run(), run());
    }

    // --- fabric (multi-switch) behaviour ---------------------------------

    /// Two switches, one trunk, one node on each side.
    fn dumbbell_sim(config: SimConfig) -> Simulator {
        let mut t = Topology::new();
        t.add_switch(SwitchId::new(0));
        t.add_switch(SwitchId::new(1));
        t.add_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        t.attach_node(NodeId::new(0), SwitchId::new(0)).unwrap();
        t.attach_node(NodeId::new(1), SwitchId::new(1)).unwrap();
        Simulator::with_topology(config, t).unwrap()
    }

    #[test]
    fn with_topology_validates_the_fabric() {
        // No switches.
        assert!(Simulator::with_topology(SimConfig::default(), Topology::new()).is_err());
        // Disconnected switches.
        let mut t = Topology::new();
        t.add_switch(SwitchId::new(0));
        t.add_switch(SwitchId::new(1));
        assert!(Simulator::with_topology(SimConfig::default(), t).is_err());
    }

    #[test]
    fn cross_switch_frame_crosses_the_trunk_with_per_hop_latency() {
        let config = SimConfig::default();
        let mut sim = dumbbell_sim(config);
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        let eth = be_frame(n0, n1, 1000);
        let wire = eth.wire_bytes();
        sim.inject(n0, eth, SimTime::ZERO).unwrap();
        sim.run_to_idle();
        let deliveries = sim.poll_deliveries();
        assert_eq!(deliveries.len(), 1);
        // Three serialisations (uplink, trunk, downlink), three propagation
        // delays, two switch latencies.
        let expected = config.link_speed.transmission_time(wire) * 3
            + config.propagation_delay * 3
            + config.switch_latency * 2;
        assert_eq!(deliveries[0].latency(), expected);
        // The trunk recorded exactly one transmission.
        let trunk = sim
            .stats()
            .hop_link(HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(1),
            })
            .unwrap();
        assert_eq!(trunk.frames, 1);
        // The reverse trunk direction carried nothing.
        assert!(sim
            .stats()
            .hop_link(HopLink::Trunk {
                from: SwitchId::new(1),
                to: SwitchId::new(0),
            })
            .is_none());
    }

    #[test]
    fn same_switch_traffic_never_touches_the_trunk() {
        let config = SimConfig::default();
        let mut t = Topology::new();
        t.add_switch(SwitchId::new(0));
        t.add_switch(SwitchId::new(1));
        t.add_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        t.attach_node(NodeId::new(0), SwitchId::new(0)).unwrap();
        t.attach_node(NodeId::new(1), SwitchId::new(0)).unwrap();
        let mut sim = Simulator::with_topology(config, t).unwrap();
        sim.inject(
            NodeId::new(0),
            be_frame(NodeId::new(0), NodeId::new(1), 500),
            SimTime::ZERO,
        )
        .unwrap();
        sim.run_to_idle();
        assert_eq!(sim.poll_deliveries().len(), 1);
        assert!(sim
            .stats()
            .hop_link(HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(1),
            })
            .is_none());
    }

    #[test]
    fn star_topology_matches_the_new_constructor_exactly() {
        // The acceptance bar for the refactor: the explicit one-switch
        // topology and the legacy star constructor produce byte-identical
        // delivery sequences.
        let drive = |mut sim: Simulator| {
            for i in 0..3u32 {
                for j in 0..3u32 {
                    if i != j {
                        sim.inject(
                            NodeId::new(i),
                            rt_frame(
                                NodeId::new(i),
                                NodeId::new(j),
                                (i * 3 + j) as u16,
                                SimTime::from_millis(1),
                                700,
                            ),
                            SimTime::from_micros(u64::from(3 * i + j)),
                        )
                        .unwrap();
                        sim.inject(
                            NodeId::new(i),
                            be_frame(NodeId::new(i), NodeId::new(j), 1200),
                            SimTime::from_micros(u64::from(3 * i + j)),
                        )
                        .unwrap();
                    }
                }
            }
            sim.run_to_idle();
            sim.poll_deliveries()
                .iter()
                .map(|d| (d.frame, d.receiver, d.delivered_at, d.eth.encode()))
                .collect::<Vec<_>>()
        };
        let star = drive(Simulator::new(SimConfig::default(), nodes(3)));
        let topo = drive(
            Simulator::with_topology(
                SimConfig::default(),
                Topology::star(SwitchId::new(0), nodes(3)),
            )
            .unwrap(),
        );
        assert_eq!(star, topo);
    }

    #[test]
    fn control_plane_reaches_the_manager_switch_across_trunks() {
        // Node 1 lives on switch 1; the manager is switch 0.  A request
        // addressed to the switch MAC must cross the trunk and be delivered
        // to the control plane, and a response injected from the manager
        // must cross back.
        let mut sim = dumbbell_sim(SimConfig::default());
        let n1 = NodeId::new(1);
        assert_eq!(sim.manager_switch(), SwitchId::new(0));
        let req = rt_frames::RequestFrame {
            src_mac: MacAddr::for_node(n1),
            dst_mac: MacAddr::for_node(NodeId::new(0)),
            src_ip: Ipv4Address::for_node(n1),
            dst_ip: Ipv4Address::for_node(NodeId::new(0)),
            period: rt_types::Slots::new(100),
            capacity: rt_types::Slots::new(3),
            deadline: rt_types::Slots::new(40),
            rt_channel_id: None,
            connection_request_id: rt_types::ConnectionRequestId::new(2),
        };
        let eth = req
            .into_ethernet(MacAddr::for_node(n1), MacAddr::for_switch())
            .unwrap();
        sim.inject(n1, eth, SimTime::ZERO).unwrap();
        sim.run_to_idle();
        let deliveries = sim.poll_deliveries();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].receiver, NodeId::SWITCH);
        // The request crossed the sw1 -> sw0 trunk direction.
        assert!(sim
            .stats()
            .hop_link(HopLink::Trunk {
                from: SwitchId::new(1),
                to: SwitchId::new(0),
            })
            .is_some());

        // Response back out to node 1 crosses sw0 -> sw1.
        let resp = rt_frames::ResponseFrame {
            rt_channel_id: Some(ChannelId::new(4)),
            switch_mac: MacAddr::for_switch(),
            verdict: rt_frames::rt_response::ResponseVerdict::Accepted,
            connection_request_id: rt_types::ConnectionRequestId::new(2),
        };
        let eth = resp
            .into_ethernet(MacAddr::for_switch(), MacAddr::for_node(n1))
            .unwrap();
        sim.inject_from_switch(n1, eth, sim.now()).unwrap();
        sim.run_to_idle();
        let deliveries = sim.poll_deliveries();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].receiver, n1);
        assert!(sim
            .stats()
            .hop_link(HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(1),
            })
            .is_some());
    }

    #[test]
    fn per_hop_schedule_orders_the_trunk_queue() {
        // Two RT channels share the trunk.  Channel 1's frame is stamped
        // with a LATER end-to-end deadline but registered with a TIGHTER
        // trunk budget; with per-hop scheduling it must win the trunk.
        let config = SimConfig::default();
        let mut t = Topology::new();
        t.add_switch(SwitchId::new(0));
        t.add_switch(SwitchId::new(1));
        t.add_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        for n in 0..3 {
            t.attach_node(NodeId::new(n), SwitchId::new(0)).unwrap();
        }
        for n in 3..5 {
            t.attach_node(NodeId::new(n), SwitchId::new(1)).unwrap();
        }
        let trunk = HopLink::Trunk {
            from: SwitchId::new(0),
            to: SwitchId::new(1),
        };
        let run = |with_schedule: bool| -> Vec<u16> {
            let mut sim = Simulator::with_topology(config, t.clone()).unwrap();
            if with_schedule {
                // Channel 1 gets a tight trunk budget, channel 2 a loose one
                // (offsets are from injection time).
                sim.set_channel_hop_schedule(
                    ChannelId::new(1),
                    [(trunk, Duration::from_micros(200))],
                );
                sim.set_channel_hop_schedule(
                    ChannelId::new(2),
                    [(trunk, Duration::from_micros(900))],
                );
            }
            // A best-effort blocker occupies the trunk first, so both RT
            // frames are waiting in the trunk's EDF queue when it frees.
            // All three frames are injected at the same instant on three
            // distinct uplinks and have identical sizes, so they reach the
            // trunk simultaneously; FIFO event order enqueues the blocker
            // first.
            sim.inject(
                NodeId::new(0),
                be_frame(NodeId::new(0), NodeId::new(3), 1400),
                SimTime::ZERO,
            )
            .unwrap();
            // Channel 2 is stamped with the EARLIER end-to-end deadline.
            sim.inject(
                NodeId::new(1),
                rt_frame(
                    NodeId::new(1),
                    NodeId::new(3),
                    2,
                    SimTime::from_micros(800),
                    1400,
                ),
                SimTime::ZERO,
            )
            .unwrap();
            sim.inject(
                NodeId::new(2),
                rt_frame(
                    NodeId::new(2),
                    NodeId::new(4),
                    1,
                    SimTime::from_micros(900),
                    1400,
                ),
                SimTime::ZERO,
            )
            .unwrap();
            sim.run_to_idle();
            sim.poll_deliveries()
                .iter()
                .filter_map(|d| d.channel.map(|c| c.get()))
                .collect()
        };
        // Without per-hop schedules, the end-to-end stamps decide: channel 2
        // (earlier stamp) crosses the trunk first.
        assert_eq!(run(false), vec![2, 1]);
        // With per-hop schedules, channel 1's tighter trunk budget wins.
        assert_eq!(run(true), vec![1, 2]);
    }

    #[test]
    fn mesh_frames_take_the_shortest_path_by_default() {
        // Ring of 4 switches, one node each: node 0 -> node 3 must use the
        // closing trunk (1 trunk hop), not the 3-hop line path.
        let config = SimConfig::default();
        let mut sim = Simulator::with_topology(config, Topology::ring(4, 1)).unwrap();
        let eth = be_frame(NodeId::new(0), NodeId::new(3), 600);
        let wire = eth.wire_bytes();
        sim.inject(NodeId::new(0), eth, SimTime::ZERO).unwrap();
        sim.run_to_idle();
        let deliveries = sim.poll_deliveries();
        assert_eq!(deliveries.len(), 1);
        // 3 links (uplink, closing trunk, downlink), 2 switches.
        let expected = config.link_speed.transmission_time(wire) * 3
            + config.propagation_delay * 3
            + config.switch_latency * 2;
        assert_eq!(deliveries[0].latency(), expected);
        assert!(sim
            .stats()
            .hop_link(HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(3),
            })
            .is_some());
        assert!(sim
            .stats()
            .hop_link(HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(1),
            })
            .is_none());
    }

    #[test]
    fn installed_route_overrides_the_next_hop_table() {
        // Pin an RT channel to the LONG way around the ring; its frames
        // must follow the installed route while unpinned traffic still
        // takes the short way.
        let mut sim = Simulator::with_topology(SimConfig::default(), Topology::ring(4, 1)).unwrap();
        let long_way = Route::from_links(vec![
            HopLink::Uplink(NodeId::new(0)),
            HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(1),
            },
            HopLink::Trunk {
                from: SwitchId::new(1),
                to: SwitchId::new(2),
            },
            HopLink::Trunk {
                from: SwitchId::new(2),
                to: SwitchId::new(3),
            },
            HopLink::Downlink(NodeId::new(3)),
        ])
        .unwrap();
        sim.set_channel_route(ChannelId::new(9), &long_way);
        sim.inject(
            NodeId::new(0),
            rt_frame(
                NodeId::new(0),
                NodeId::new(3),
                9,
                SimTime::from_millis(10),
                500,
            ),
            SimTime::ZERO,
        )
        .unwrap();
        sim.run_to_idle();
        assert_eq!(sim.poll_deliveries().len(), 1);
        for (from, to) in [(0u32, 1u32), (1, 2), (2, 3)] {
            assert!(
                sim.stats()
                    .hop_link(HopLink::Trunk {
                        from: SwitchId::new(from),
                        to: SwitchId::new(to),
                    })
                    .is_some(),
                "pinned route must cross sw{from}->sw{to}"
            );
        }
        assert!(sim
            .stats()
            .hop_link(HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(3),
            })
            .is_none());
        // Tear-down forgets the pin: the next frame takes the short way.
        sim.clear_channel_hop_schedule(ChannelId::new(9));
        sim.inject(
            NodeId::new(0),
            rt_frame(
                NodeId::new(0),
                NodeId::new(3),
                9,
                SimTime::from_millis(20),
                500,
            ),
            sim.now(),
        )
        .unwrap();
        sim.run_to_idle();
        assert!(sim
            .stats()
            .hop_link(HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(3),
            })
            .is_some());
    }

    #[test]
    fn with_router_runs_the_capability_check() {
        use std::sync::Arc;
        // A TreeRouter-backed simulator refuses a cyclic fabric...
        assert!(Simulator::with_router(
            SimConfig::default(),
            Topology::ring(4, 1),
            Arc::new(rt_types::TreeRouter::new()),
        )
        .is_err());
        // ...but accepts a line, and produces the same next-hop table as
        // the default shortest-path router (unique paths on a tree).
        let tree = Simulator::with_router(
            SimConfig::default(),
            Topology::line(3, 1),
            Arc::new(rt_types::TreeRouter::new()),
        )
        .unwrap();
        let shortest =
            Simulator::with_topology(SimConfig::default(), Topology::line(3, 1)).unwrap();
        assert_eq!(*tree.next_hop_table(), *shortest.next_hop_table());
        assert_eq!(tree.router().name(), "tree");
    }

    #[test]
    fn line_topology_delivers_across_many_switches() {
        let config = SimConfig::default();
        let t = Topology::line(4, 1); // node k on switch k
        let mut sim = Simulator::with_topology(config, t).unwrap();
        let eth = be_frame(NodeId::new(0), NodeId::new(3), 400);
        let wire = eth.wire_bytes();
        sim.inject(NodeId::new(0), eth, SimTime::ZERO).unwrap();
        sim.run_to_idle();
        let deliveries = sim.poll_deliveries();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].receiver, NodeId::new(3));
        // 5 links (uplink + 3 trunks + downlink), 4 switches.
        let expected = config.link_speed.transmission_time(wire) * 5
            + config.propagation_delay * 5
            + config.switch_latency * 4;
        assert_eq!(deliveries[0].latency(), expected);
    }

    // --- scheduler wiring, batching, sources ------------------------------

    fn config_with(scheduler: SchedulerKind) -> SimConfig {
        SimConfig {
            scheduler,
            ..SimConfig::default()
        }
    }

    #[test]
    fn scheduler_choice_flows_from_the_config() {
        let heap = Simulator::new(config_with(SchedulerKind::Heap), nodes(2));
        assert_eq!(heap.scheduler_kind(), SchedulerKind::Heap);
        let cal = Simulator::new(config_with(SchedulerKind::Calendar), nodes(2));
        assert_eq!(cal.scheduler_kind(), SchedulerKind::Calendar);
        assert_eq!(
            Simulator::new(SimConfig::default(), nodes(2)).scheduler_kind(),
            SchedulerKind::default()
        );
    }

    #[test]
    fn both_schedulers_deliver_identically_on_a_busy_star() {
        let drive = |scheduler: SchedulerKind| {
            let mut sim = Simulator::new(config_with(scheduler), nodes(6));
            for k in 0..200u64 {
                let src = NodeId::new((k % 6) as u32);
                let dst = NodeId::new(((k + 3) % 6) as u32);
                sim.inject(
                    src,
                    rt_frame(src, dst, (k % 9) as u16 + 1, SimTime::from_millis(50), 800),
                    SimTime::from_micros(k * 3),
                )
                .unwrap();
            }
            sim.run_to_idle();
            sim.poll_deliveries()
                .iter()
                .map(|d| (d.frame, d.receiver, d.delivered_at))
                .collect::<Vec<_>>()
        };
        assert_eq!(drive(SchedulerKind::Heap), drive(SchedulerKind::Calendar));
    }

    #[test]
    fn frame_store_choice_flows_from_the_config() {
        let owned = Simulator::new(
            SimConfig {
                frame_store: FrameStoreKind::Owned,
                ..SimConfig::default()
            },
            nodes(2),
        );
        assert_eq!(owned.frame_store_kind(), FrameStoreKind::Owned);
        let sim = Simulator::new(SimConfig::default(), nodes(2));
        assert_eq!(sim.frame_store_kind(), FrameStoreKind::Arena);
        assert_eq!(FrameStoreKind::Owned.name(), "owned");
        assert_eq!(FrameStoreKind::Arena.name(), "arena");
    }

    #[test]
    fn owned_and_arena_stores_deliver_byte_identical_frames() {
        // The acceptance bar for the zero-copy path: deliveries (including
        // re-encoded wire bytes) must be byte-for-byte identical across
        // stores, on a mixed RT + BE + control workload with drops.
        let drive = |frame_store: FrameStoreKind| {
            let config = SimConfig {
                frame_store,
                ..SimConfig::default()
            };
            let mut sim = Simulator::new(config, nodes(4));
            for k in 0..60u64 {
                let src = NodeId::new((k % 4) as u32);
                let dst = NodeId::new(((k + 1) % 4) as u32);
                sim.inject(
                    src,
                    rt_frame(src, dst, (k % 5) as u16 + 1, SimTime::from_millis(20), 700),
                    SimTime::from_micros(k * 7),
                )
                .unwrap();
                sim.inject(
                    src,
                    be_frame(src, dst, 60 + (k as usize % 1200)),
                    SimTime::from_micros(k * 7),
                )
                .unwrap();
            }
            // An unroutable frame exercises the drop path.
            sim.inject(
                NodeId::new(0),
                be_frame(NodeId::new(0), NodeId::new(77), 300),
                SimTime::from_micros(1),
            )
            .unwrap();
            sim.run_to_idle();
            let deliveries: Vec<_> = sim
                .poll_deliveries()
                .iter()
                .map(|d| (d.frame, d.receiver, d.delivered_at, d.eth.encode()))
                .collect();
            (deliveries, sim.stats().summary(), sim.arena_outstanding())
        };
        let (owned, owned_stats, owned_outstanding) = drive(FrameStoreKind::Owned);
        let (arena, arena_stats, arena_outstanding) = drive(FrameStoreKind::Arena);
        assert_eq!(owned, arena);
        assert_eq!(owned_stats, arena_stats);
        assert_eq!(owned_outstanding, 0, "owned mode never touches the arena");
        assert_eq!(arena_outstanding, 0, "every pooled buffer must come home");
    }

    #[test]
    fn arena_buffers_are_recycled_in_steady_state() {
        // Frames free at delivery, so a long run reuses a handful of slots:
        // the pool must not grow with the number of frames.
        let mut sim = Simulator::new(SimConfig::default(), nodes(2));
        let (n0, n1) = (NodeId::new(0), NodeId::new(1));
        let mut at = SimTime::ZERO;
        for _ in 0..200u64 {
            sim.inject(n0, be_frame(n0, n1, 900), at).unwrap();
            sim.run_to_idle();
            at = sim.now();
        }
        assert_eq!(sim.poll_deliveries().len(), 200);
        assert_eq!(sim.arena_outstanding(), 0);
        let stats = sim.arena_stats();
        assert_eq!(stats.fresh_allocations, 1, "one slot serves the run");
        assert_eq!(stats.reuses, 199);
        assert_eq!(stats.frees, 200);
    }

    #[test]
    fn dropped_frames_return_their_buffers_to_the_arena() {
        // Every drop path must free: released channel, BE overflow, failed
        // link (queued + in-flight), unroutable.
        let config = SimConfig {
            be_queue_capacity: Some(1),
            ..SimConfig::default()
        };
        let mut sim = dumbbell_sim(config);
        let (n0, n1) = (NodeId::new(0), NodeId::new(1));
        // BE overflow: burst at one uplink with capacity 1.
        for _ in 0..4 {
            sim.inject(n0, be_frame(n0, n1, 1400), SimTime::ZERO)
                .unwrap();
        }
        // Released channel.
        let ch = ChannelId::new(5);
        sim.set_channel_route(
            ch,
            &Route::from_links(vec![
                HopLink::Uplink(n0),
                HopLink::Trunk {
                    from: SwitchId::new(0),
                    to: SwitchId::new(1),
                },
                HopLink::Downlink(n1),
            ])
            .unwrap(),
        );
        sim.release_channel(ch);
        sim.inject(
            n0,
            rt_frame(n0, n1, 5, SimTime::from_millis(9), 400),
            SimTime::ZERO,
        )
        .unwrap();
        // Unroutable.
        sim.inject(n0, be_frame(n0, NodeId::new(99), 200), SimTime::ZERO)
            .unwrap();
        // Failed link: cut the trunk while frames are queued and in flight.
        sim.schedule_fault(
            SimTime::from_micros(150),
            LinkFault::Fail {
                from: SwitchId::new(0),
                to: SwitchId::new(1),
            },
        )
        .unwrap();
        sim.run_to_idle();
        assert!(sim.stats().total_dropped() > 0);
        assert_eq!(
            sim.injected_count(),
            sim.stats().total_delivered() + sim.stats().total_dropped()
        );
        assert_eq!(
            sim.arena_outstanding(),
            0,
            "drops leaked pooled buffers: {:?}",
            sim.arena_stats()
        );
    }

    #[test]
    fn inject_batch_matches_individual_injection() {
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        let singles = {
            let mut sim = Simulator::new(SimConfig::default(), nodes(2));
            for k in 0..20u64 {
                sim.inject(n0, be_frame(n0, n1, 300), SimTime::from_micros(k * 50))
                    .unwrap();
            }
            sim.run_to_idle();
            sim.poll_deliveries()
                .iter()
                .map(|d| (d.frame, d.delivered_at))
                .collect::<Vec<_>>()
        };
        let batched = {
            let mut sim = Simulator::new(SimConfig::default(), nodes(2));
            let ids = sim
                .inject_batch((0..20u64).map(|k| FrameInjection {
                    node: n0,
                    eth: be_frame(n0, n1, 300),
                    at: SimTime::from_micros(k * 50),
                }))
                .unwrap();
            assert_eq!(ids.len(), 20);
            sim.run_to_idle();
            sim.poll_deliveries()
                .iter()
                .map(|d| (d.frame, d.delivered_at))
                .collect::<Vec<_>>()
        };
        assert_eq!(singles, batched);
        // A bad entry anywhere fails the whole batch atomically: nothing is
        // registered or scheduled, so a corrected retry cannot duplicate
        // the earlier frames.
        let mut sim = Simulator::new(SimConfig::default(), nodes(2));
        assert!(sim
            .inject_batch([
                FrameInjection {
                    node: n0,
                    eth: be_frame(n0, n1, 10),
                    at: SimTime::ZERO,
                },
                FrameInjection {
                    node: NodeId::new(77),
                    eth: be_frame(n0, n1, 10),
                    at: SimTime::ZERO,
                },
            ])
            .is_err());
        assert_eq!(sim.events_pending(), 0, "failed batch must inject nothing");
        let retry = sim
            .inject_batch([FrameInjection {
                node: n0,
                eth: be_frame(n0, n1, 10),
                at: SimTime::ZERO,
            }])
            .unwrap();
        assert_eq!(
            retry[0],
            FrameId::new(0),
            "no ghost frames from the failed batch"
        );
        sim.run_to_idle();
        assert_eq!(sim.poll_deliveries().len(), 1);
    }

    /// A source that emits one frame every `period`, pull-driven.
    struct EveryPeriod {
        next_at: SimTime,
        period: Duration,
        remaining: u32,
    }

    impl TrafficSource for EveryPeriod {
        fn next_batch(&mut self, horizon: SimTime) -> Vec<FrameInjection> {
            let mut out = Vec::new();
            while self.remaining > 0 && self.next_at < horizon {
                out.push(FrameInjection {
                    node: NodeId::new(0),
                    eth: be_frame(NodeId::new(0), NodeId::new(1), 200),
                    at: self.next_at,
                });
                self.next_at += self.period;
                self.remaining -= 1;
            }
            out
        }

        fn is_exhausted(&self) -> bool {
            self.remaining == 0
        }
    }

    #[test]
    fn run_with_source_delivers_the_whole_workload() {
        let mut sim = Simulator::new(SimConfig::default(), nodes(2));
        let mut source = EveryPeriod {
            next_at: SimTime::from_micros(100),
            period: Duration::from_micros(400),
            remaining: 50,
        };
        let end = sim
            .run_with_source(&mut source, Duration::from_millis(2))
            .unwrap();
        assert!(source.is_exhausted());
        assert_eq!(sim.poll_deliveries().len(), 50);
        assert!(end >= SimTime::from_micros(100 + 49 * 400));
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn sparse_switch_and_node_ids_still_work() {
        // Ids far apart exercise the IdIndex fallback paths.
        let mut t = Topology::new();
        t.add_switch(SwitchId::new(10));
        t.add_switch(SwitchId::new(500));
        t.add_trunk(SwitchId::new(10), SwitchId::new(500)).unwrap();
        t.attach_node(NodeId::new(3), SwitchId::new(10)).unwrap();
        t.attach_node(NodeId::new(4_000_000), SwitchId::new(500))
            .unwrap();
        let mut sim = Simulator::with_topology(SimConfig::default(), t).unwrap();
        let (a, b) = (NodeId::new(3), NodeId::new(4_000_000));
        sim.inject(a, be_frame(a, b, 500), SimTime::ZERO).unwrap();
        sim.run_to_idle();
        let deliveries = sim.poll_deliveries();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].receiver, b);
        assert!(sim
            .stats()
            .hop_link(HopLink::Trunk {
                from: SwitchId::new(10),
                to: SwitchId::new(500),
            })
            .is_some());
    }

    // --- fault injection --------------------------------------------------

    #[test]
    fn released_channel_frames_are_dropped_and_counted() {
        // A channel with installed wire state is released mid-run: frames
        // injected before the teardown but still in flight, and frames
        // injected after it, are dropped at the first switch — never
        // silently delivered — and the drop is counted.
        let mut sim = dumbbell_sim(SimConfig::default());
        let (n0, n1) = (NodeId::new(0), NodeId::new(1));
        let ch = ChannelId::new(5);
        let route = Route::from_links(vec![
            HopLink::Uplink(n0),
            HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(1),
            },
            HopLink::Downlink(n1),
        ])
        .unwrap();
        sim.set_channel_route(ch, &route);
        // Before release: delivered normally.
        sim.inject(
            n0,
            rt_frame(n0, n1, 5, SimTime::from_millis(5), 400),
            SimTime::ZERO,
        )
        .unwrap();
        sim.run_to_idle();
        assert_eq!(sim.poll_deliveries().len(), 1);
        assert_eq!(sim.stats().released_channel_dropped, 0);

        // Release, then send two more frames on the dead channel.
        sim.release_channel(ch);
        for _ in 0..2 {
            sim.inject(
                n0,
                rt_frame(n0, n1, 5, SimTime::from_millis(9), 400),
                sim.now(),
            )
            .unwrap();
        }
        sim.run_to_idle();
        assert_eq!(
            sim.poll_deliveries().len(),
            0,
            "released channel must not deliver"
        );
        assert_eq!(sim.stats().released_channel_dropped, 2);
        // Conservation: every frame is accounted for.
        assert_eq!(
            sim.injected_count(),
            sim.stats().total_delivered() + sim.stats().total_dropped()
        );

        // Re-admission under the same id clears the flag.
        sim.set_channel_route(ch, &route);
        sim.inject(
            n0,
            rt_frame(n0, n1, 5, SimTime::from_millis(20), 400),
            sim.now(),
        )
        .unwrap();
        sim.run_to_idle();
        assert_eq!(sim.poll_deliveries().len(), 1);
        assert_eq!(sim.stats().released_channel_dropped, 2);
    }

    #[test]
    fn failed_trunk_loses_queued_and_in_flight_frames() {
        let config = SimConfig::default();
        // Two masters on sw0, one slave on sw1: parallel uplinks let the
        // trunk queue actually build up.
        let mut t = Topology::new();
        t.add_switch(SwitchId::new(0));
        t.add_switch(SwitchId::new(1));
        t.add_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        t.attach_node(NodeId::new(0), SwitchId::new(0)).unwrap();
        t.attach_node(NodeId::new(1), SwitchId::new(0)).unwrap();
        t.attach_node(NodeId::new(2), SwitchId::new(0)).unwrap();
        t.attach_node(NodeId::new(3), SwitchId::new(1)).unwrap();
        let mut sim = Simulator::with_topology(config, t).unwrap();
        let dst = NodeId::new(3);
        // Three 1400-byte frames from three parallel uplinks arrive at the
        // switch together (~122 us): one starts serialising on the trunk,
        // two wait in its queue.  The cut at 200 us dooms the in-flight
        // frame and drains the two queued ones.
        for n in 0..3u32 {
            let src = NodeId::new(n);
            sim.inject(src, be_frame(src, dst, 1400), SimTime::ZERO)
                .unwrap();
        }
        sim.schedule_fault(
            SimTime::from_micros(200),
            LinkFault::Fail {
                from: SwitchId::new(0),
                to: SwitchId::new(1),
            },
        )
        .unwrap();
        sim.run_to_idle();
        assert_eq!(sim.poll_deliveries().len(), 0);
        assert_eq!(sim.stats().failed_link_dropped, 3);
        assert_eq!(
            sim.injected_count(),
            sim.stats().total_delivered() + sim.stats().total_dropped()
        );
        assert_eq!(
            sim.failed_links(),
            vec![(SwitchId::new(0), SwitchId::new(1))]
        );
        // After the cut, cross-switch traffic is unroutable (the dumbbell
        // has no alternate path)...
        sim.inject(
            NodeId::new(0),
            be_frame(NodeId::new(0), dst, 400),
            sim.now(),
        )
        .unwrap();
        sim.run_to_idle();
        assert_eq!(sim.stats().unroutable_dropped, 1);
        // ...until the repair, after which delivery resumes.
        sim.repair_link(SwitchId::new(1), SwitchId::new(0)).unwrap();
        assert!(sim.failed_links().is_empty());
        sim.inject(
            NodeId::new(0),
            be_frame(NodeId::new(0), dst, 400),
            sim.now(),
        )
        .unwrap();
        sim.run_to_idle();
        assert_eq!(sim.poll_deliveries().len(), 1);
    }

    #[test]
    fn repair_during_a_doomed_transmission_restarts_the_port() {
        // A fail/repair flap shorter than one serialisation: the in-flight
        // frame is lost with the cable, but a frame that queued at the
        // repaired port while the doomed transmission still held it busy
        // must start transmitting when the doomed one completes.
        let mut t = Topology::new();
        t.add_switch(SwitchId::new(0));
        t.add_switch(SwitchId::new(1));
        t.add_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        t.attach_node(NodeId::new(0), SwitchId::new(0)).unwrap();
        t.attach_node(NodeId::new(1), SwitchId::new(0)).unwrap();
        t.attach_node(NodeId::new(2), SwitchId::new(1)).unwrap();
        let mut sim = Simulator::with_topology(SimConfig::default(), t).unwrap();
        let dst = NodeId::new(2);
        // Frame A: on the trunk from ~123 us to ~240 us.
        sim.inject(
            NodeId::new(0),
            be_frame(NodeId::new(0), dst, 1400),
            SimTime::ZERO,
        )
        .unwrap();
        // Frame B: reaches the switch at ~153 us, after the repair, while
        // the trunk is still busy with doomed frame A.
        sim.inject(
            NodeId::new(1),
            be_frame(NodeId::new(1), dst, 1400),
            SimTime::from_micros(30),
        )
        .unwrap();
        let script = FaultScript::new()
            .fail_at(
                SimTime::from_micros(150),
                SwitchId::new(0),
                SwitchId::new(1),
            )
            .repair_at(
                SimTime::from_micros(152),
                SwitchId::new(0),
                SwitchId::new(1),
            );
        sim.schedule_faults(&script).unwrap();
        sim.run_to_idle();
        let deliveries = sim.poll_deliveries();
        assert_eq!(deliveries.len(), 1, "frame B must cross the repaired trunk");
        assert_eq!(deliveries[0].source, NodeId::new(1));
        assert_eq!(
            sim.stats().failed_link_dropped,
            1,
            "frame A died with the cable"
        );
        assert_eq!(
            sim.injected_count(),
            sim.stats().total_delivered() + sim.stats().total_dropped()
        );
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn ring_reroutes_around_a_cut_trunk() {
        // On a ring the next-hop table recovers instantly: after the
        // closing trunk dies, node 0 -> node 3 goes the long way around.
        let mut sim = Simulator::with_topology(SimConfig::default(), Topology::ring(4, 1)).unwrap();
        sim.fail_link(SwitchId::new(3), SwitchId::new(0)).unwrap();
        sim.inject(
            NodeId::new(0),
            be_frame(NodeId::new(0), NodeId::new(3), 500),
            SimTime::ZERO,
        )
        .unwrap();
        sim.run_to_idle();
        let deliveries = sim.poll_deliveries();
        assert_eq!(deliveries.len(), 1, "the ring survives a single cut");
        for (from, to) in [(0u32, 1u32), (1, 2), (2, 3)] {
            assert!(sim
                .stats()
                .hop_link(HopLink::Trunk {
                    from: SwitchId::new(from),
                    to: SwitchId::new(to),
                })
                .is_some());
        }
        assert_eq!(sim.stats().failed_link_dropped, 0);
    }

    #[test]
    fn stale_channel_forwarding_over_a_dead_trunk_drops() {
        // A channel pinned to the closing trunk keeps its (stale) entry
        // after the cut: its frames drop and are counted until re-routing
        // installs a fresh route.
        let mut sim = Simulator::with_topology(SimConfig::default(), Topology::ring(4, 1)).unwrap();
        let ch = ChannelId::new(3);
        let pinned = Route::from_links(vec![
            HopLink::Uplink(NodeId::new(0)),
            HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(3),
            },
            HopLink::Downlink(NodeId::new(3)),
        ])
        .unwrap();
        sim.set_channel_route(ch, &pinned);
        sim.fail_link(SwitchId::new(0), SwitchId::new(3)).unwrap();
        sim.inject(
            NodeId::new(0),
            rt_frame(
                NodeId::new(0),
                NodeId::new(3),
                3,
                SimTime::from_millis(5),
                400,
            ),
            SimTime::ZERO,
        )
        .unwrap();
        sim.run_to_idle();
        assert_eq!(sim.poll_deliveries().len(), 0);
        assert_eq!(sim.stats().failed_link_dropped, 1);
        // Re-route: install the surviving path; frames flow again.
        let around = Route::from_links(vec![
            HopLink::Uplink(NodeId::new(0)),
            HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(1),
            },
            HopLink::Trunk {
                from: SwitchId::new(1),
                to: SwitchId::new(2),
            },
            HopLink::Trunk {
                from: SwitchId::new(2),
                to: SwitchId::new(3),
            },
            HopLink::Downlink(NodeId::new(3)),
        ])
        .unwrap();
        sim.set_channel_route(ch, &around);
        sim.inject(
            NodeId::new(0),
            rt_frame(
                NodeId::new(0),
                NodeId::new(3),
                3,
                SimTime::from_millis(10),
                400,
            ),
            sim.now(),
        )
        .unwrap();
        sim.run_to_idle();
        assert_eq!(sim.poll_deliveries().len(), 1);
    }

    #[test]
    fn fault_script_interleaves_deterministically() {
        // Fail + repair scripted around a traffic burst: the same script
        // always yields the same outcome, on either scheduler.
        let run = |scheduler| {
            let config = SimConfig {
                scheduler,
                ..SimConfig::default()
            };
            let mut sim = Simulator::with_topology(config, Topology::ring(4, 1)).unwrap();
            let script = FaultScript::new()
                .fail_at(
                    SimTime::from_micros(300),
                    SwitchId::new(3),
                    SwitchId::new(0),
                )
                .repair_at(SimTime::from_millis(2), SwitchId::new(3), SwitchId::new(0));
            assert_eq!(script.len(), 2);
            assert!(!script.is_empty());
            sim.schedule_faults(&script).unwrap();
            for k in 0..8u64 {
                sim.inject(
                    NodeId::new(0),
                    be_frame(NodeId::new(0), NodeId::new(3), 900),
                    SimTime::from_micros(100 * k),
                )
                .unwrap();
            }
            sim.run_to_idle();
            let deliveries: Vec<_> = sim
                .poll_deliveries()
                .iter()
                .map(|d| (d.frame.get(), d.delivered_at.as_nanos()))
                .collect();
            (deliveries, sim.stats().summary())
        };
        use crate::event::SchedulerKind;
        let heap = run(SchedulerKind::Heap);
        let calendar = run(SchedulerKind::Calendar);
        assert_eq!(heap, calendar);
        // Scheduling a fault in the past is rejected like any injection.
        let mut sim = Simulator::with_topology(SimConfig::default(), Topology::ring(4, 1)).unwrap();
        sim.inject(
            NodeId::new(0),
            be_frame(NodeId::new(0), NodeId::new(1), 200),
            SimTime::from_millis(1),
        )
        .unwrap();
        sim.run_to_idle();
        assert!(sim
            .schedule_fault(
                SimTime::ZERO,
                LinkFault::Fail {
                    from: SwitchId::new(0),
                    to: SwitchId::new(1)
                }
            )
            .is_err());
    }
}
