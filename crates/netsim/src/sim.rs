//! The simulator proper: a star of end nodes around one store-and-forward
//! full-duplex switch.
//!
//! ## Model
//!
//! * Every end node has one full-duplex cable to the switch.  The node →
//!   switch direction (the *uplink*) is driven by the node's NIC output
//!   port; the switch → node direction (the *downlink*) by the corresponding
//!   switch output port.  Both ports are [`OutputPort`]s: EDF-sorted
//!   real-time queue with strict priority over a FCFS best-effort queue.
//! * Transmission time of a frame is its wire size (including preamble and
//!   inter-frame gap) divided by the configured link speed.  Frames are
//!   never preempted once started.
//! * Store-and-forward: a frame reaches the switch only after its last bit
//!   has been received; the switch then spends `switch_latency` before the
//!   frame is eligible for transmission on its output port.  Propagation
//!   delay is added per link traversal.  Together these constant terms form
//!   the paper's `T_latency` (Eq. 18.1).
//! * Frames addressed to the switch MAC itself (RT-layer control traffic)
//!   are delivered to the switch "control plane" — the caller — rather than
//!   forwarded; the caller can originate frames from the switch with
//!   [`Simulator::inject_from_switch`] (used for ResponseFrames).
//!
//! The simulator is single-threaded and deterministic: identical inputs
//! produce identical event sequences, deliveries and statistics.

use std::collections::HashMap;

use rt_frames::{EthernetFrame, Frame};
use rt_types::{
    ChannelId, Duration, LinkId, MacAddr, NodeId, RtError, RtResult, SimTime,
};

use crate::event::{Event, EventQueue};
use crate::port::{OutputPort, TrafficClass};
use crate::stats::SimStats;

/// Identifier of a frame inside one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(u64);

impl FrameId {
    /// Construct from a raw index (mostly useful in tests).
    pub const fn new(v: u64) -> Self {
        FrameId(v)
    }

    /// The raw index.
    pub const fn get(self) -> u64 {
        self.0
    }
}

/// Static configuration of the simulated network.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Bit rate of every link (the paper assumes 100 Mbit/s Fast Ethernet).
    pub link_speed: rt_types::LinkSpeed,
    /// One-way propagation delay of every link.
    pub propagation_delay: Duration,
    /// Store-and-forward processing latency inside the switch.
    pub switch_latency: Duration,
    /// Capacity of every best-effort queue (`None` = unbounded).
    pub be_queue_capacity: Option<usize>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            link_speed: rt_types::LinkSpeed::FAST_ETHERNET,
            // 100 m of cable at ~2/3 c is ~0.5 us.
            propagation_delay: Duration::from_nanos(500),
            // A small constant store-and-forward processing overhead.
            switch_latency: Duration::from_micros(5),
            be_queue_capacity: Some(1024),
        }
    }
}

impl SimConfig {
    /// The constant per-frame latency term `T_latency` of Eq. 18.1 for this
    /// configuration: two propagation delays (uplink + downlink) plus the
    /// switch processing latency plus one maximum-size frame transmission
    /// per hop that is not accounted for in the slot-based deadline budget
    /// (the store-and-forward serialisation on the second hop).
    pub fn t_latency(&self) -> Duration {
        self.propagation_delay * 2 + self.switch_latency
    }
}

/// Everything the simulator remembers about one injected frame.
#[derive(Debug, Clone)]
struct FrameRecord {
    eth: EthernetFrame,
    class: TrafficClass,
    /// Absolute deadline (simulated time) for RT frames.
    deadline: Option<SimTime>,
    /// RT channel for RT data frames.
    channel: Option<ChannelId>,
    /// Where the frame entered the network (`NodeId::SWITCH` for frames
    /// originated by the switch control plane).
    source: NodeId,
    injected_at: SimTime,
    wire_bytes: usize,
}

/// A frame delivered to its final receiver (an end node, or the switch
/// control plane for frames addressed to the switch MAC).
#[derive(Debug, Clone)]
pub struct Delivery {
    /// The frame id.
    pub frame: FrameId,
    /// The receiving entity (`NodeId::SWITCH` for control-plane deliveries).
    pub receiver: NodeId,
    /// The node (or switch) that injected the frame.
    pub source: NodeId,
    /// The decoded Ethernet frame.
    pub eth: EthernetFrame,
    /// When the frame was injected.
    pub injected_at: SimTime,
    /// When the last bit arrived at the receiver.
    pub delivered_at: SimTime,
    /// The RT channel, for RT data frames.
    pub channel: Option<ChannelId>,
    /// The absolute deadline, for RT frames.
    pub deadline: Option<SimTime>,
    /// Which queue class the frame travelled in.
    pub class: TrafficClass,
}

impl Delivery {
    /// End-to-end latency of this delivery.
    pub fn latency(&self) -> Duration {
        self.delivered_at.saturating_duration_since(self.injected_at)
    }

    /// `true` if the frame had a deadline and arrived after it.
    pub fn missed_deadline(&self) -> bool {
        self.deadline.is_some_and(|d| self.delivered_at > d)
    }
}

/// State kept per end node.
#[derive(Debug)]
struct NodeState {
    /// The NIC output port driving the uplink.
    uplink: OutputPort,
}

/// The simulator.
#[derive(Debug)]
pub struct Simulator {
    config: SimConfig,
    events: EventQueue,
    nodes: HashMap<NodeId, NodeState>,
    /// Switch output ports, one per attached node (the downlinks).
    switch_ports: HashMap<NodeId, OutputPort>,
    /// MAC → node forwarding table (static, built from the attached nodes).
    forwarding: HashMap<MacAddr, NodeId>,
    /// The switch's own MAC address.
    switch_mac: MacAddr,
    frames: Vec<FrameRecord>,
    pending_deliveries: Vec<Delivery>,
    stats: SimStats,
}

impl Simulator {
    /// Build a simulator with `node_ids` attached to the switch.
    ///
    /// Each node is assigned the MAC address [`MacAddr::for_node`]; the
    /// switch uses [`MacAddr::for_switch`].
    pub fn new(config: SimConfig, node_ids: impl IntoIterator<Item = NodeId>) -> Self {
        let mut nodes = HashMap::new();
        let mut switch_ports = HashMap::new();
        let mut forwarding = HashMap::new();
        for id in node_ids {
            let port = match config.be_queue_capacity {
                Some(cap) => OutputPort::with_be_capacity(cap),
                None => OutputPort::new(),
            };
            let uplink = match config.be_queue_capacity {
                Some(cap) => OutputPort::with_be_capacity(cap),
                None => OutputPort::new(),
            };
            nodes.insert(id, NodeState { uplink });
            switch_ports.insert(id, port);
            forwarding.insert(MacAddr::for_node(id), id);
        }
        Simulator {
            config,
            events: EventQueue::new(),
            nodes,
            switch_ports,
            forwarding,
            switch_mac: MacAddr::for_switch(),
            frames: Vec::new(),
            pending_deliveries: Vec::new(),
            stats: SimStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Number of nodes attached to the switch.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events.processed()
    }

    /// Drain the deliveries that have accumulated since the last call.
    pub fn poll_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.pending_deliveries)
    }

    fn classify(eth: &EthernetFrame) -> RtResult<(TrafficClass, Option<SimTime>, Option<ChannelId>)> {
        match Frame::classify(eth.clone())? {
            Frame::RtData(data) => Ok((
                TrafficClass::RealTime,
                Some(SimTime::from_nanos(data.stamp.absolute_deadline)),
                Some(data.stamp.channel),
            )),
            Frame::Request(_) | Frame::Response(_) | Frame::Teardown(_) => {
                // Control frames ride the RT queue with an immediate
                // deadline so that channel management is never starved.
                Ok((TrafficClass::RealTime, None, None))
            }
            Frame::BestEffort(_) => Ok((TrafficClass::BestEffort, None, None)),
        }
    }

    fn register_frame(
        &mut self,
        eth: EthernetFrame,
        source: NodeId,
        injected_at: SimTime,
    ) -> RtResult<FrameId> {
        let (class, deadline, channel) = Self::classify(&eth)?;
        let wire_bytes = eth.wire_bytes();
        let id = FrameId(self.frames.len() as u64);
        self.frames.push(FrameRecord {
            eth,
            class,
            deadline,
            channel,
            source,
            injected_at,
            wire_bytes,
        });
        Ok(id)
    }

    /// Inject a frame at `node`'s RT layer at time `at` (it enters the NIC
    /// output queues at that instant).
    pub fn inject(&mut self, node: NodeId, eth: EthernetFrame, at: SimTime) -> RtResult<FrameId> {
        if !self.nodes.contains_key(&node) {
            return Err(RtError::UnknownNode(node));
        }
        if at < self.now() {
            return Err(RtError::Simulation(format!(
                "cannot inject at {at}, simulation time is already {}",
                self.now()
            )));
        }
        let id = self.register_frame(eth, node, at)?;
        self.events.schedule(at, Event::EnqueueAtNode { node, frame: id });
        Ok(id)
    }

    /// Inject a frame originated by the switch control plane (e.g. a
    /// ResponseFrame) towards `to`, entering that downlink's output queues
    /// at time `at`.
    pub fn inject_from_switch(
        &mut self,
        to: NodeId,
        eth: EthernetFrame,
        at: SimTime,
    ) -> RtResult<FrameId> {
        if !self.switch_ports.contains_key(&to) {
            return Err(RtError::UnknownNode(to));
        }
        if at < self.now() {
            return Err(RtError::Simulation(format!(
                "cannot inject at {at}, simulation time is already {}",
                self.now()
            )));
        }
        let id = self.register_frame(eth, NodeId::SWITCH, at)?;
        self.events
            .schedule(at, Event::EnqueueAtSwitch { to, frame: id });
        Ok(id)
    }

    /// Run until the event queue is empty; returns the final simulated time.
    pub fn run_to_idle(&mut self) -> SimTime {
        while self.step() {}
        self.now()
    }

    /// Run until `limit` (inclusive); events after `limit` stay pending.
    pub fn run_until(&mut self, limit: SimTime) {
        while let Some((time, event)) = self.events.pop_until(limit) {
            self.handle(time, event);
        }
    }

    /// Process a single event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.events.pop() {
            Some((time, event)) => {
                self.handle(time, event);
                true
            }
            None => false,
        }
    }

    fn tx_time(&self, wire_bytes: usize) -> Duration {
        self.config.link_speed.transmission_time(wire_bytes)
    }

    fn handle(&mut self, now: SimTime, event: Event) {
        match event {
            Event::EnqueueAtNode { node, frame } => {
                self.enqueue_at_port(frame, PortRef::NodeUplink(node));
                self.try_start_tx(now, PortRef::NodeUplink(node));
            }
            Event::NodeTxComplete { node, frame } => {
                if let Some(state) = self.nodes.get_mut(&node) {
                    state.uplink.clear_busy();
                }
                // Last bit leaves the node now; it arrives at the switch
                // after the propagation delay, and becomes eligible for
                // forwarding after the switch processing latency.
                let arrive =
                    now + self.config.propagation_delay + self.config.switch_latency;
                self.events
                    .schedule(arrive, Event::ArriveAtSwitch { from: node, frame });
                self.try_start_tx(now, PortRef::NodeUplink(node));
            }
            Event::ArriveAtSwitch { from: _, frame } => {
                let dst = self.frames[frame.0 as usize].eth.dst;
                if dst == self.switch_mac {
                    // Control-plane traffic addressed to the switch itself.
                    self.deliver(frame, NodeId::SWITCH, now);
                } else if let Some(&to) = self.forwarding.get(&dst) {
                    self.enqueue_at_port(frame, PortRef::SwitchPort(to));
                    self.try_start_tx(now, PortRef::SwitchPort(to));
                } else {
                    self.stats.record_unroutable();
                }
            }
            Event::EnqueueAtSwitch { to, frame } => {
                self.enqueue_at_port(frame, PortRef::SwitchPort(to));
                self.try_start_tx(now, PortRef::SwitchPort(to));
            }
            Event::SwitchTxComplete { to, frame } => {
                if let Some(port) = self.switch_ports.get_mut(&to) {
                    port.clear_busy();
                }
                let arrive = now + self.config.propagation_delay;
                self.events
                    .schedule(arrive, Event::ArriveAtNode { node: to, frame });
                self.try_start_tx(now, PortRef::SwitchPort(to));
            }
            Event::ArriveAtNode { node, frame } => {
                self.deliver(frame, node, now);
            }
        }
    }

    fn enqueue_at_port(&mut self, frame: FrameId, port_ref: PortRef) {
        let record = &self.frames[frame.0 as usize];
        let class = record.class;
        let deadline = record.deadline;
        let port = match port_ref {
            PortRef::NodeUplink(node) => match self.nodes.get_mut(&node) {
                Some(n) => &mut n.uplink,
                None => return,
            },
            PortRef::SwitchPort(node) => match self.switch_ports.get_mut(&node) {
                Some(p) => p,
                None => return,
            },
        };
        match class {
            TrafficClass::RealTime => {
                // Control frames have no deadline; give them "now or
                // earlier" urgency by using time zero so they are never
                // queued behind data frames.
                port.enqueue_rt(frame, deadline.unwrap_or(SimTime::ZERO));
            }
            TrafficClass::BestEffort => {
                if !port.enqueue_be(frame) {
                    self.stats.record_be_drop();
                }
            }
        }
    }

    fn try_start_tx(&mut self, now: SimTime, port_ref: PortRef) {
        let (port, link) = match port_ref {
            PortRef::NodeUplink(node) => match self.nodes.get_mut(&node) {
                Some(n) => (&mut n.uplink, LinkId::uplink(node)),
                None => return,
            },
            PortRef::SwitchPort(node) => match self.switch_ports.get_mut(&node) {
                Some(p) => (p, LinkId::downlink(node)),
                None => return,
            },
        };
        if port.is_busy(now) || port.is_empty() {
            return;
        }
        let Some(queued) = port.dequeue_next() else {
            return;
        };
        let wire_bytes = self.frames[queued.frame.0 as usize].wire_bytes;
        let tx = self.config.link_speed.transmission_time(wire_bytes);
        let done = now + tx;
        port.set_busy_until(done);
        self.stats.record_transmission(link, wire_bytes, tx);
        let event = match port_ref {
            PortRef::NodeUplink(node) => Event::NodeTxComplete {
                node,
                frame: queued.frame,
            },
            PortRef::SwitchPort(node) => Event::SwitchTxComplete {
                to: node,
                frame: queued.frame,
            },
        };
        self.events.schedule(done, event);
    }

    fn deliver(&mut self, frame: FrameId, receiver: NodeId, now: SimTime) {
        let record = &self.frames[frame.0 as usize];
        match record.class {
            TrafficClass::RealTime => {
                self.stats.record_rt_delivery(
                    record.channel,
                    record.injected_at,
                    now,
                    record.deadline,
                );
            }
            TrafficClass::BestEffort => self.stats.record_be_delivery(),
        }
        self.pending_deliveries.push(Delivery {
            frame,
            receiver,
            source: record.source,
            eth: record.eth.clone(),
            injected_at: record.injected_at,
            delivered_at: now,
            channel: record.channel,
            deadline: record.deadline,
            class: record.class,
        });
    }

    /// Total transmission (busy) time recorded on `link` so far.
    pub fn link_busy_time(&self, link: LinkId) -> Duration {
        self.stats
            .link(link)
            .map(|l| l.busy_time)
            .unwrap_or(Duration::ZERO)
    }

    /// Convenience: the transmission time of a frame of `wire_bytes` bytes at
    /// the configured link speed.
    pub fn transmission_time(&self, wire_bytes: usize) -> Duration {
        self.tx_time(wire_bytes)
    }
}

/// Which output port an operation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PortRef {
    /// The uplink NIC port of a node.
    NodeUplink(NodeId),
    /// The switch output port towards a node (its downlink).
    SwitchPort(NodeId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_frames::rt_data::{DeadlineStamp, RtDataFrame};
    use rt_types::constants::ETHERTYPE_IPV4;
    use rt_types::Ipv4Address;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    fn be_frame(from: NodeId, to: NodeId, payload_len: usize) -> EthernetFrame {
        // A plain (non-RT) IPv4/UDP frame.
        let udp = rt_frames::UdpHeader::new(1000, 2000, payload_len).unwrap();
        let ip = rt_frames::Ipv4Header::udp(
            Ipv4Address::for_node(from),
            Ipv4Address::for_node(to),
            8 + payload_len,
        )
        .unwrap();
        let mut bytes = ip.encode();
        bytes.extend_from_slice(&udp.encode());
        bytes.extend(std::iter::repeat_n(0xa5u8, payload_len));
        EthernetFrame::new(
            MacAddr::for_node(to),
            MacAddr::for_node(from),
            ETHERTYPE_IPV4,
            bytes,
        )
        .unwrap()
    }

    fn rt_frame(
        from: NodeId,
        to: NodeId,
        channel: u16,
        deadline: SimTime,
        payload_len: usize,
    ) -> EthernetFrame {
        RtDataFrame {
            eth_src: MacAddr::for_node(from),
            eth_dst: MacAddr::for_node(to),
            stamp: DeadlineStamp::new(deadline.as_nanos(), ChannelId::new(channel)).unwrap(),
            src_port: 5000,
            dst_port: 5001,
            payload: vec![0u8; payload_len],
        }
        .into_ethernet()
        .unwrap()
    }

    #[test]
    fn single_frame_end_to_end_latency() {
        let config = SimConfig::default();
        let mut sim = Simulator::new(config, nodes(2));
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        let eth = be_frame(n0, n1, 1000);
        let wire = eth.wire_bytes();
        sim.inject(n0, eth, SimTime::ZERO).unwrap();
        sim.run_to_idle();
        let deliveries = sim.poll_deliveries();
        assert_eq!(deliveries.len(), 1);
        let d = &deliveries[0];
        assert_eq!(d.receiver, n1);
        assert_eq!(d.source, n0);
        // Two serialisations + two propagations + switch latency.
        let expected = config.link_speed.transmission_time(wire) * 2
            + config.propagation_delay * 2
            + config.switch_latency;
        assert_eq!(d.latency(), expected);
        assert_eq!(sim.stats().be_delivered, 1);
    }

    #[test]
    fn control_frames_to_switch_are_delivered_to_control_plane() {
        let mut sim = Simulator::new(SimConfig::default(), nodes(2));
        let n0 = NodeId::new(0);
        let req = rt_frames::RequestFrame {
            src_mac: MacAddr::for_node(n0),
            dst_mac: MacAddr::for_node(NodeId::new(1)),
            src_ip: Ipv4Address::for_node(n0),
            dst_ip: Ipv4Address::for_node(NodeId::new(1)),
            period: rt_types::Slots::new(100),
            capacity: rt_types::Slots::new(3),
            deadline: rt_types::Slots::new(40),
            rt_channel_id: None,
            connection_request_id: rt_types::ConnectionRequestId::new(1),
        };
        let eth = req
            .into_ethernet(MacAddr::for_node(n0), MacAddr::for_switch())
            .unwrap();
        sim.inject(n0, eth, SimTime::ZERO).unwrap();
        sim.run_to_idle();
        let deliveries = sim.poll_deliveries();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].receiver, NodeId::SWITCH);
        assert_eq!(deliveries[0].class, TrafficClass::RealTime);
    }

    #[test]
    fn switch_originated_frames_reach_the_node() {
        let mut sim = Simulator::new(SimConfig::default(), nodes(2));
        let n1 = NodeId::new(1);
        let resp = rt_frames::ResponseFrame {
            rt_channel_id: Some(ChannelId::new(1)),
            switch_mac: MacAddr::for_switch(),
            verdict: rt_frames::rt_response::ResponseVerdict::Accepted,
            connection_request_id: rt_types::ConnectionRequestId::new(1),
        };
        let eth = resp
            .into_ethernet(MacAddr::for_switch(), MacAddr::for_node(n1))
            .unwrap();
        sim.inject_from_switch(n1, eth, SimTime::from_micros(10)).unwrap();
        sim.run_to_idle();
        let deliveries = sim.poll_deliveries();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].receiver, n1);
        assert_eq!(deliveries[0].source, NodeId::SWITCH);
    }

    #[test]
    fn rt_frames_overtake_best_effort_on_the_uplink() {
        let mut sim = Simulator::new(SimConfig::default(), nodes(2));
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        // Queue three large best-effort frames first, then one RT frame, all
        // at the same instant.
        let mut ids = Vec::new();
        for _ in 0..3 {
            ids.push(sim.inject(n0, be_frame(n0, n1, 1400), SimTime::ZERO).unwrap());
        }
        let rt_id = sim
            .inject(
                n0,
                rt_frame(n0, n1, 7, SimTime::from_millis(5), 100),
                SimTime::ZERO,
            )
            .unwrap();
        sim.run_to_idle();
        let deliveries = sim.poll_deliveries();
        assert_eq!(deliveries.len(), 4);
        // The first best-effort frame wins the race only if it started
        // before the RT frame was enqueued; both were enqueued at the same
        // event time, and enqueue events are FIFO, so the first BE frame is
        // already on the wire.  The RT frame must then beat the remaining
        // two BE frames.
        let order: Vec<FrameId> = deliveries.iter().map(|d| d.frame).collect();
        let rt_pos = order.iter().position(|&f| f == rt_id).unwrap();
        assert!(rt_pos <= 1, "RT frame delivered at position {rt_pos}, order {order:?}");
        assert!(sim.stats().all_deadlines_met());
    }

    #[test]
    fn deadline_misses_are_detected() {
        let mut sim = Simulator::new(SimConfig::default(), nodes(2));
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        // An impossible deadline: 1 us for a full-size frame.
        sim.inject(
            n0,
            rt_frame(n0, n1, 3, SimTime::from_micros(1), 1400),
            SimTime::ZERO,
        )
        .unwrap();
        sim.run_to_idle();
        assert_eq!(sim.stats().total_deadline_misses, 1);
        let ch = sim.stats().channel(ChannelId::new(3)).unwrap();
        assert_eq!(ch.deadline_misses, 1);
        assert_eq!(ch.delivered, 1);
    }

    #[test]
    fn downlink_congestion_from_two_sources() {
        // Both node 0 and node 1 send to node 2 at the same time: the two
        // uplinks run in parallel but the downlink serialises the frames.
        let config = SimConfig::default();
        let mut sim = Simulator::new(config, nodes(3));
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        let n2 = NodeId::new(2);
        sim.inject(n0, be_frame(n0, n2, 1400), SimTime::ZERO).unwrap();
        sim.inject(n1, be_frame(n1, n2, 1400), SimTime::ZERO).unwrap();
        sim.run_to_idle();
        let deliveries = sim.poll_deliveries();
        assert_eq!(deliveries.len(), 2);
        let downlink = sim.stats().link(LinkId::downlink(n2)).unwrap();
        assert_eq!(downlink.frames, 2);
        // The second delivery is at least one transmission time after the
        // first (serialisation on the shared downlink).
        let t0 = deliveries[0].delivered_at;
        let t1 = deliveries[1].delivered_at;
        let gap = t1.saturating_duration_since(t0);
        let tx = config.link_speed.transmission_time(deliveries[1].eth.wire_bytes());
        assert!(gap >= tx, "gap {gap} smaller than tx time {tx}");
    }

    #[test]
    fn unknown_destination_is_dropped() {
        let mut sim = Simulator::new(SimConfig::default(), nodes(2));
        let n0 = NodeId::new(0);
        let ghost = NodeId::new(99);
        sim.inject(n0, be_frame(n0, ghost, 100), SimTime::ZERO).unwrap();
        sim.run_to_idle();
        assert_eq!(sim.poll_deliveries().len(), 0);
        assert_eq!(sim.stats().unroutable_dropped, 1);
    }

    #[test]
    fn injection_errors() {
        let mut sim = Simulator::new(SimConfig::default(), nodes(1));
        let n0 = NodeId::new(0);
        let n9 = NodeId::new(9);
        assert!(sim.inject(n9, be_frame(n0, n0, 10), SimTime::ZERO).is_err());
        assert!(sim
            .inject_from_switch(n9, be_frame(n0, n0, 10), SimTime::ZERO)
            .is_err());
        // Advance time, then try to inject in the past.
        sim.inject(n0, be_frame(n0, n0, 10), SimTime::from_micros(100)).unwrap();
        sim.run_to_idle();
        assert!(sim.now() >= SimTime::from_micros(100));
        assert!(sim.inject(n0, be_frame(n0, n0, 10), SimTime::ZERO).is_err());
    }

    #[test]
    fn run_until_leaves_future_events_pending() {
        let mut sim = Simulator::new(SimConfig::default(), nodes(2));
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        sim.inject(n0, be_frame(n0, n1, 100), SimTime::from_millis(10)).unwrap();
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(sim.poll_deliveries().len(), 0);
        sim.run_to_idle();
        assert_eq!(sim.poll_deliveries().len(), 1);
    }

    #[test]
    fn t_latency_constant() {
        let config = SimConfig::default();
        assert_eq!(
            config.t_latency(),
            config.propagation_delay * 2 + config.switch_latency
        );
    }

    #[test]
    fn determinism_same_inputs_same_outputs() {
        let run = || {
            let mut sim = Simulator::new(SimConfig::default(), nodes(4));
            for i in 0..4u32 {
                for j in 0..4u32 {
                    if i != j {
                        let f = rt_frame(
                            NodeId::new(i),
                            NodeId::new(j),
                            (i * 4 + j) as u16,
                            SimTime::from_millis(2),
                            500,
                        );
                        sim.inject(NodeId::new(i), f, SimTime::from_micros(u64::from(i * 7 + j)))
                            .unwrap();
                    }
                }
            }
            sim.run_to_idle();
            let d: Vec<(FrameId, SimTime)> = sim
                .poll_deliveries()
                .iter()
                .map(|d| (d.frame, d.delivered_at))
                .collect();
            d
        };
        assert_eq!(run(), run());
    }
}
