//! The dual-queue output port of Figure 18.2.
//!
//! Every transmitter in the network — an end node's NIC on its uplink, and
//! each switch port on its downlink — owns one [`OutputPort`]: a
//! deadline-sorted queue for real-time frames and a FCFS queue for
//! best-effort frames.  Real-time frames always win over best-effort frames;
//! a best-effort frame that has already started transmitting is not
//! preempted (Ethernet cannot abort a frame on the wire), which is the source
//! of the one-frame blocking term in the paper's `T_latency`.

use rt_edf::{EdfQueue, FcfsQueue};
use rt_types::SimTime;

use crate::sim::FrameId;

/// Which of the two queues a frame belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Deadline-stamped real-time traffic (and RT-layer control frames).
    RealTime,
    /// Everything else, served FCFS behind all real-time traffic.
    BestEffort,
}

/// A frame waiting in (or selected from) an output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedFrame {
    /// The frame's identity (payload is owned by the simulator).
    pub frame: FrameId,
    /// The queue it was taken from.
    pub class: TrafficClass,
    /// Absolute deadline for real-time frames (nanoseconds of simulated
    /// time); `None` for best-effort frames.
    pub deadline: Option<SimTime>,
}

/// Statistics kept per output port.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortCounters {
    /// Real-time frames enqueued.
    pub rt_enqueued: u64,
    /// Best-effort frames enqueued (accepted).
    pub be_enqueued: u64,
    /// Best-effort frames dropped because the bounded queue was full.
    pub be_dropped: u64,
    /// Frames of either class that started transmission.
    pub transmitted: u64,
    /// Peak occupancy of the real-time queue.
    pub rt_peak_depth: usize,
    /// Peak occupancy of the best-effort queue.
    pub be_peak_depth: usize,
}

/// One output port: RT queue + best-effort queue + the busy state of the
/// attached directed link.
#[derive(Debug)]
pub struct OutputPort {
    rt: EdfQueue<QueuedFrame>,
    be: FcfsQueue<QueuedFrame>,
    /// The port is transmitting until this time (inclusive upper edge).
    busy_until: Option<SimTime>,
    counters: PortCounters,
}

impl OutputPort {
    /// A port with an unbounded best-effort queue.
    pub fn new() -> Self {
        OutputPort {
            rt: EdfQueue::new(),
            be: FcfsQueue::new(),
            busy_until: None,
            counters: PortCounters::default(),
        }
    }

    /// A port whose best-effort queue holds at most `be_capacity` frames
    /// (additional best-effort arrivals are dropped, as in a real switch).
    pub fn with_be_capacity(be_capacity: usize) -> Self {
        OutputPort {
            rt: EdfQueue::new(),
            be: FcfsQueue::bounded(be_capacity),
            busy_until: None,
            counters: PortCounters::default(),
        }
    }

    /// Enqueue a real-time frame with its absolute deadline.
    pub fn enqueue_rt(&mut self, frame: FrameId, deadline: SimTime) {
        self.rt.push(
            deadline.as_nanos(),
            QueuedFrame {
                frame,
                class: TrafficClass::RealTime,
                deadline: Some(deadline),
            },
        );
        self.counters.rt_enqueued += 1;
        self.counters.rt_peak_depth = self.counters.rt_peak_depth.max(self.rt.len());
    }

    /// Enqueue a best-effort frame; returns `false` if it was dropped.
    pub fn enqueue_be(&mut self, frame: FrameId) -> bool {
        let accepted = self.be.push(QueuedFrame {
            frame,
            class: TrafficClass::BestEffort,
            deadline: None,
        });
        if accepted {
            self.counters.be_enqueued += 1;
            self.counters.be_peak_depth = self.counters.be_peak_depth.max(self.be.len());
        } else {
            self.counters.be_dropped += 1;
        }
        accepted
    }

    /// `true` if the port is currently transmitting at `now`.
    pub fn is_busy(&self, now: SimTime) -> bool {
        self.busy_until.is_some_and(|t| t > now)
    }

    /// Mark the port busy until `until` (called when a transmission starts).
    pub fn set_busy_until(&mut self, until: SimTime) {
        self.busy_until = Some(until);
    }

    /// Clear the busy state (called when a transmission completes).
    pub fn clear_busy(&mut self) {
        self.busy_until = None;
    }

    /// Select the next frame to transmit: the earliest-deadline real-time
    /// frame if any, otherwise the oldest best-effort frame.  Returns `None`
    /// when both queues are empty.  The caller is responsible for checking
    /// [`OutputPort::is_busy`] first.
    pub fn dequeue_next(&mut self) -> Option<QueuedFrame> {
        let next = if let Some((_, f)) = self.rt.pop() {
            Some(f)
        } else {
            self.be.pop()
        };
        if next.is_some() {
            self.counters.transmitted += 1;
        }
        next
    }

    /// Remove and return every waiting frame (RT first, in EDF order, then
    /// best-effort in FCFS order) *without* counting them as transmitted —
    /// what happens to a port's queues when its link is cut: the frames are
    /// lost, not sent.
    pub fn drain(&mut self) -> Vec<QueuedFrame> {
        let mut lost = Vec::with_capacity(self.queued());
        while let Some((_, f)) = self.rt.pop() {
            lost.push(f);
        }
        while let Some(f) = self.be.pop() {
            lost.push(f);
        }
        lost
    }

    /// Number of frames waiting (both classes).
    pub fn queued(&self) -> usize {
        self.rt.len() + self.be.len()
    }

    /// Number of real-time frames waiting.
    pub fn queued_rt(&self) -> usize {
        self.rt.len()
    }

    /// Number of best-effort frames waiting.
    pub fn queued_be(&self) -> usize {
        self.be.len()
    }

    /// `true` if nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.rt.is_empty() && self.be.is_empty()
    }

    /// The per-port counters.
    pub fn counters(&self) -> PortCounters {
        self.counters
    }
}

impl Default for OutputPort {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(v: u64) -> FrameId {
        FrameId::new(v)
    }

    #[test]
    fn rt_has_strict_priority_over_be() {
        let mut p = OutputPort::new();
        p.enqueue_be(fid(1));
        p.enqueue_be(fid(2));
        p.enqueue_rt(fid(3), SimTime::from_micros(500));
        p.enqueue_rt(fid(4), SimTime::from_micros(100));
        assert_eq!(p.queued(), 4);

        // EDF among RT frames: frame 4 (earlier deadline) first.
        assert_eq!(p.dequeue_next().unwrap().frame, fid(4));
        assert_eq!(p.dequeue_next().unwrap().frame, fid(3));
        // Then FCFS among best-effort.
        assert_eq!(p.dequeue_next().unwrap().frame, fid(1));
        assert_eq!(p.dequeue_next().unwrap().frame, fid(2));
        assert!(p.dequeue_next().is_none());
        assert_eq!(p.counters().transmitted, 4);
    }

    #[test]
    fn busy_tracking() {
        let mut p = OutputPort::new();
        assert!(!p.is_busy(SimTime::ZERO));
        p.set_busy_until(SimTime::from_micros(10));
        assert!(p.is_busy(SimTime::from_micros(5)));
        assert!(!p.is_busy(SimTime::from_micros(10)));
        p.clear_busy();
        assert!(!p.is_busy(SimTime::ZERO));
    }

    #[test]
    fn bounded_be_queue_drops() {
        let mut p = OutputPort::with_be_capacity(2);
        assert!(p.enqueue_be(fid(1)));
        assert!(p.enqueue_be(fid(2)));
        assert!(!p.enqueue_be(fid(3)));
        assert_eq!(p.counters().be_dropped, 1);
        assert_eq!(p.counters().be_enqueued, 2);
        // RT frames are never dropped.
        p.enqueue_rt(fid(4), SimTime::from_micros(1));
        assert_eq!(p.queued_rt(), 1);
    }

    #[test]
    fn peak_depth_counters() {
        let mut p = OutputPort::new();
        for i in 0..5 {
            p.enqueue_rt(fid(i), SimTime::from_micros(i));
        }
        p.dequeue_next();
        for i in 5..8 {
            p.enqueue_be(fid(i));
        }
        assert_eq!(p.counters().rt_peak_depth, 5);
        assert_eq!(p.counters().be_peak_depth, 3);
        assert_eq!(p.queued_rt(), 4);
        assert_eq!(p.queued_be(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn queued_frame_carries_class_and_deadline() {
        let mut p = OutputPort::new();
        p.enqueue_rt(fid(1), SimTime::from_micros(7));
        p.enqueue_be(fid(2));
        let rt = p.dequeue_next().unwrap();
        assert_eq!(rt.class, TrafficClass::RealTime);
        assert_eq!(rt.deadline, Some(SimTime::from_micros(7)));
        let be = p.dequeue_next().unwrap();
        assert_eq!(be.class, TrafficClass::BestEffort);
        assert_eq!(be.deadline, None);
    }
}
