//! The discrete-event core: a time-ordered event queue with deterministic
//! tie-breaking.
//!
//! Determinism matters: the experiments must be exactly reproducible from a
//! seed, so events scheduled for the same instant are processed in the order
//! they were scheduled (FIFO), never in heap order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rt_types::{NodeId, SimTime, SwitchId};

use crate::sim::FrameId;

/// Something that happens at a point in simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A frame (already built by the application / RT layer) is handed to a
    /// node's NIC output queues.
    EnqueueAtNode {
        /// The node whose uplink will carry the frame.
        node: NodeId,
        /// The frame, by id (the simulator owns the payload).
        frame: FrameId,
    },
    /// The node's uplink finished serialising a frame onto the wire.
    NodeTxComplete {
        /// The transmitting node.
        node: NodeId,
        /// The frame that completed.
        frame: FrameId,
    },
    /// A frame fully arrived at a switch input (store-and-forward: the last
    /// bit has been received and the switch processing latency has elapsed).
    ArriveAtSwitch {
        /// The switch that received the frame.
        switch: SwitchId,
        /// The frame.
        frame: FrameId,
    },
    /// A switch output port towards end node `to` (its downlink) finished
    /// serialising a frame.
    SwitchTxComplete {
        /// The destination node of the port.
        to: NodeId,
        /// The frame that completed.
        frame: FrameId,
    },
    /// A trunk port between two switches finished serialising a frame.
    TrunkTxComplete {
        /// The transmitting switch.
        from: SwitchId,
        /// The receiving switch.
        to: SwitchId,
        /// The frame that completed.
        frame: FrameId,
    },
    /// A frame fully arrived at its destination node.
    ArriveAtNode {
        /// The receiving node.
        node: NodeId,
        /// The frame.
        frame: FrameId,
    },
    /// A frame originated by the switch control plane (channel-management
    /// traffic such as ResponseFrames) is handed to the managing switch's
    /// ports, addressed to end node `to`.
    EnqueueAtSwitch {
        /// The destination node.
        to: NodeId,
        /// The frame.
        frame: FrameId,
    },
}

/// An event plus its scheduled time and a FIFO sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ScheduledEvent {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by (time, seq): invert for BinaryHeap.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with FIFO tie-breaking and a monotone clock.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
    now: SimTime,
    processed: u64,
}

impl EventQueue {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulation time (the time of the last event popped).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.  Scheduling in the past is a
    /// programming error and panics in debug builds; in release builds the
    /// event is clamped to `now` so the simulation stays causally ordered.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {} ({event:?})",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent {
            time: at,
            seq,
            event,
        });
    }

    /// The time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let e = self.heap.pop()?;
        self.now = e.time;
        self.processed += 1;
        Some((e.time, e.event))
    }

    /// Pop the next event only if it is scheduled at or before `limit`.
    pub fn pop_until(&mut self, limit: SimTime) -> Option<(SimTime, Event)> {
        if self.peek_time()? <= limit {
            self.pop()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(node: u32, frame: u64) -> Event {
        Event::EnqueueAtNode {
            node: NodeId::new(node),
            frame: FrameId::new(frame),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), ev(3, 3));
        q.schedule(SimTime::from_nanos(10), ev(1, 1));
        q.schedule(SimTime::from_nanos(20), ev(2, 2));
        assert_eq!(q.len(), 3);
        let (t1, e1) = q.pop().unwrap();
        assert_eq!(t1, SimTime::from_nanos(10));
        assert_eq!(e1, ev(1, 1));
        assert_eq!(q.now(), SimTime::from_nanos(10));
        assert_eq!(q.pop().unwrap().0, SimTime::from_nanos(20));
        assert_eq!(q.pop().unwrap().0, SimTime::from_nanos(30));
        assert!(q.pop().is_none());
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            q.schedule(t, ev(i, i as u64));
        }
        for i in 0..10 {
            let (_, e) = q.pop().unwrap();
            assert_eq!(e, ev(i, i as u64), "event {i} out of order");
        }
    }

    #[test]
    fn pop_until_respects_limit() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), ev(1, 1));
        q.schedule(SimTime::from_nanos(200), ev(2, 2));
        assert!(q.pop_until(SimTime::from_nanos(50)).is_none());
        assert!(q.pop_until(SimTime::from_nanos(100)).is_some());
        assert!(q.pop_until(SimTime::from_nanos(150)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), ev(1, 1));
        q.pop();
        q.schedule(SimTime::from_nanos(50), ev(2, 2));
    }

    #[test]
    fn clock_is_monotone() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ev(1, 1));
        q.schedule(SimTime::from_nanos(10), ev(2, 2));
        q.schedule(SimTime::from_nanos(40), ev(3, 3));
        let mut prev = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= prev);
            prev = t;
        }
    }
}
