//! The discrete-event core: a time-ordered event queue with deterministic
//! tie-breaking, behind a pluggable [`EventScheduler`].
//!
//! Determinism matters: the experiments must be exactly reproducible from a
//! seed, so events scheduled for the same instant are processed in the order
//! they were scheduled (FIFO), never in heap or bucket order.  Every
//! scheduler implementation must honour the total order `(time, seq)`; the
//! [`HeapScheduler`] is the straightforward reference, the
//! [`CalendarScheduler`] is the O(1)-amortised structure the fabric runs on
//! at scale, and a test suite asserts they produce byte-for-byte identical
//! delivery sequences.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rt_types::{NodeId, SimTime, SwitchId};

use crate::sim::FrameId;

/// Something that happens at a point in simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A frame (already built by the application / RT layer) is handed to a
    /// node's NIC output queues.
    EnqueueAtNode {
        /// The node whose uplink will carry the frame.
        node: NodeId,
        /// The frame, by id (the simulator owns the payload).
        frame: FrameId,
    },
    /// The node's uplink finished serialising a frame onto the wire.
    NodeTxComplete {
        /// The transmitting node.
        node: NodeId,
        /// The frame that completed.
        frame: FrameId,
    },
    /// A frame fully arrived at a switch input (store-and-forward: the last
    /// bit has been received and the switch processing latency has elapsed).
    ArriveAtSwitch {
        /// The switch that received the frame.
        switch: SwitchId,
        /// The frame.
        frame: FrameId,
    },
    /// A switch output port towards end node `to` (its downlink) finished
    /// serialising a frame.
    SwitchTxComplete {
        /// The destination node of the port.
        to: NodeId,
        /// The frame that completed.
        frame: FrameId,
    },
    /// A trunk port between two switches finished serialising a frame.
    TrunkTxComplete {
        /// The transmitting switch.
        from: SwitchId,
        /// The receiving switch.
        to: SwitchId,
        /// The frame that completed.
        frame: FrameId,
    },
    /// A frame fully arrived at its destination node.
    ArriveAtNode {
        /// The receiving node.
        node: NodeId,
        /// The frame.
        frame: FrameId,
    },
    /// A frame originated by the switch control plane (channel-management
    /// traffic such as ResponseFrames) is handed to the managing switch's
    /// ports, addressed to end node `to`.
    EnqueueAtSwitch {
        /// The destination node.
        to: NodeId,
        /// The frame.
        frame: FrameId,
    },
    /// Fault injection: the trunk between `from` and `to` is cut at this
    /// instant.  Both directed ports die, their queues are lost, and frames
    /// mid-serialisation are lost with the cable.
    FailTrunk {
        /// One end of the trunk.
        from: SwitchId,
        /// The other end.
        to: SwitchId,
    },
    /// Fault injection: a previously failed trunk comes back at this
    /// instant; forwarding tables recover on the spot.
    RepairTrunk {
        /// One end of the trunk.
        from: SwitchId,
        /// The other end.
        to: SwitchId,
    },
    /// Fault injection: every healthy trunk incident to `switch` is cut at
    /// this instant, atomically (a whole switch dropping off the fabric).
    /// Repairs splice the trunks back one at a time.
    FailSwitch {
        /// The switch losing all its trunks.
        switch: SwitchId,
    },
}

/// An event plus its scheduled time and a FIFO sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ScheduledEvent {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by (time, seq): invert for BinaryHeap.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Which [`EventScheduler`] an [`EventQueue`] (and hence a simulator) runs
/// on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// The binary-heap reference scheduler: O(log n) per operation, exact
    /// and simple.
    Heap,
    /// The calendar-queue scheduler: O(1) amortised per operation at any
    /// pending-event population, identical `(time, seq)` ordering.  The
    /// default.
    #[default]
    Calendar,
}

impl SchedulerKind {
    /// A short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Heap => "heap",
            SchedulerKind::Calendar => "calendar",
        }
    }
}

/// The pending-event store of the simulation: a priority queue over the
/// total order `(time, seq)` — earliest time first, FIFO (ascending `seq`)
/// among equal times.
///
/// Implementations must be exact: `pop` always returns the global minimum,
/// never an approximation, so that every scheduler yields the identical
/// event sequence for identical inputs.
pub trait EventScheduler: std::fmt::Debug {
    /// Insert an event.  `seq` values arrive strictly increasing, and
    /// `time` is never earlier than the time of the last popped event.
    fn push(&mut self, time: SimTime, seq: u64, event: Event);

    /// Remove and return the `(time, seq)`-minimal event.
    fn pop(&mut self) -> Option<(SimTime, Event)>;

    /// Remove and return the minimal event only if its time is at or
    /// before `limit`.  Semantically `peek_time() <= limit` then `pop()`,
    /// but implementations whose peek is not O(1) override it to run the
    /// min search once (the windowed `run_until` path calls this per
    /// event).
    fn pop_at_or_before(&mut self, limit: SimTime) -> Option<(SimTime, Event)> {
        if self.peek_time()? <= limit {
            self.pop()
        } else {
            None
        }
    }

    /// Remove the `(time, seq)`-minimal event *and every other event
    /// scheduled at the same time*, appending them to `out` in FIFO
    /// (ascending `seq`) order.  Returns the run's time, or `None` when
    /// empty.  Semantically a `pop` followed by `peek_time`-guarded pops;
    /// implementations whose min search is not O(1) override it to locate
    /// the run once.
    fn pop_run(&mut self, out: &mut Vec<Event>) -> Option<SimTime> {
        let (time, event) = self.pop()?;
        out.push(event);
        while self.peek_time() == Some(time) {
            let (_, event) = self.pop().expect("peeked a pending event");
            out.push(event);
        }
        Some(time)
    }

    /// [`EventScheduler::pop_run`] gated on the window: drains the minimal
    /// same-time run only if its time is at or before `limit`.
    fn pop_run_at_or_before(&mut self, limit: SimTime, out: &mut Vec<Event>) -> Option<SimTime> {
        let (time, event) = self.pop_at_or_before(limit)?;
        out.push(event);
        while self.peek_time() == Some(time) {
            let (_, event) = self.pop().expect("peeked a pending event");
            out.push(event);
        }
        Some(time)
    }

    /// The time of the minimal event without removing it.
    fn peek_time(&self) -> Option<SimTime>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// `true` if no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The scheduler's [`SchedulerKind`].
    fn kind(&self) -> SchedulerKind;
}

/// The reference scheduler: a plain binary heap.  O(log n) per operation
/// and increasingly cache-hostile as the pending population grows, but
/// trivially correct — the [`CalendarScheduler`] is validated against it.
#[derive(Debug, Default)]
pub struct HeapScheduler {
    heap: BinaryHeap<ScheduledEvent>,
}

impl HeapScheduler {
    /// An empty heap scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventScheduler for HeapScheduler {
    fn push(&mut self, time: SimTime, seq: u64, event: Event) {
        self.heap.push(ScheduledEvent { time, seq, event });
    }

    fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Heap
    }
}

/// One slab slot of the calendar queue: a pending event plus an intrusive
/// link (`next` chains slots within a bucket, within the overflow list, or
/// within the free list).
#[derive(Debug)]
struct CalendarSlot {
    time: u64,
    seq: u64,
    next: u32,
    event: Event,
}

/// "No slot" sentinel for the intrusive links.
const NIL: u32 = u32::MAX;

/// A placeholder event for vacated slots (never observable outside).
fn placeholder_event() -> Event {
    Event::EnqueueAtNode {
        node: NodeId::new(0),
        frame: FrameId::new(0),
    }
}

/// A Brown-style calendar queue: an array of time buckets of self-resizing
/// width, unordered within a bucket (the pop selects the `(time, seq)`
/// minimum, which preserves FIFO exactly), with a lazily sorted overflow
/// list for events beyond the current bucket "year".
///
/// ## Layout
///
/// The pending set lives in one contiguous **slab** of [`CalendarSlot`]s
/// with intrusive `next` links; a bucket is a 4-byte head index into the
/// slab, and vacated slots go on a free list for reuse.  This keeps the
/// bucket array small enough to stay cache-resident at six-figure pending
/// populations and makes push/pop allocation-free in steady state — the
/// naive `Vec<Vec<Entry>>` layout measurably slowed the *rest* of the
/// simulator down by evicting its hot state from cache.
///
/// ## Behaviour
///
/// * An event with time `t` in the current year lands in bucket
///   `(t >> width_shift) & bucket_mask`; later years go to the `overflow`
///   list.
/// * `pop` advances a cursor over the buckets of the current year; because
///   bucket index is monotone in time within a year, the first non-empty
///   bucket at or after the cursor holds the global minimum.
/// * When the year drains, the earliest year present in the overflow is
///   migrated into the buckets ("lazily sorted": the overflow is scanned,
///   never kept ordered).
/// * When the pending population outgrows (or far undershoots) the bucket
///   count, the queue resizes: the bucket count tracks the population and
///   the bucket width is re-estimated from the observed event spacing, so
///   the average bucket holds O(1) events.
///
/// All decisions are functions of queue content only — no wall clock, no
/// randomness — so the structure is exactly deterministic.
///
/// ## Known degenerate case
///
/// A bucket's entries are unordered, so a *huge* population of events at
/// the **exact same nanosecond** collapses into one bucket whose min scan
/// is linear — draining `n` same-instant events costs O(n²) comparisons
/// (resizing cannot split them: they hash to one bucket at any width).
/// Simulation workloads schedule at distinct times at nanosecond
/// resolution, so this does not arise in practice; a trace that really
/// floods one instant should run on the [`HeapScheduler`] reference, which
/// is O(log n) regardless of time distribution.
#[derive(Debug)]
pub struct CalendarScheduler {
    /// Slot storage; `buckets`, `overflow_head` and `free_head` index into
    /// this.
    slab: Vec<CalendarSlot>,
    /// Head slot of each bucket (`NIL` = empty).
    buckets: Vec<u32>,
    /// Head of the free-slot list.
    free_head: u32,
    /// Head of the (unsorted) overflow list: events in years after
    /// `current_year`.
    overflow_head: u32,
    /// Events on the overflow list.
    overflow_len: usize,
    /// log2 of the bucket width in nanoseconds.
    width_shift: u32,
    /// `buckets.len() - 1` (the bucket count is a power of two).
    bucket_mask: u64,
    /// The year currently spread over `buckets` (`time >> year_shift`).
    current_year: u64,
    /// Next bucket index to examine in the current year.
    cursor: usize,
    /// Events currently stored in buckets (all in `current_year`).
    in_buckets: usize,
    /// Time of the last popped event: the lower bound the
    /// [`EventScheduler`] contract guarantees for every future push.  The
    /// resize anchor — `current_year` may never advance past this year, or
    /// a later legal push at a nearer time would be misfiled.
    floor: u64,
    /// Resizes performed (exposed for tests and diagnostics).
    resizes: u64,
    /// Reusable `(seq, slot)` scratch for the batched same-time drain.
    run_scratch: Vec<(u64, u32)>,
}

/// Initial and minimal number of buckets.
const MIN_BUCKETS: usize = 16;
/// Hard cap on the bucket count (2^20 head indices = 4 MiB).
const MAX_BUCKETS: usize = 1 << 20;
/// Initial bucket width: 2^13 ns ≈ 8.2 µs, about one small-frame slot.
const INITIAL_WIDTH_SHIFT: u32 = 13;
/// Events per bucket the resize aims for.  A handful keeps the bucket
/// array (the randomly-accessed part) several times smaller than the
/// pending set while the in-bucket min scan stays a short walk over
/// adjacent slab slots.
const TARGET_OCCUPANCY: usize = 1;

impl Default for CalendarScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl CalendarScheduler {
    /// An empty calendar queue with the initial geometry.
    pub fn new() -> Self {
        CalendarScheduler {
            slab: Vec::new(),
            buckets: vec![NIL; MIN_BUCKETS],
            free_head: NIL,
            overflow_head: NIL,
            overflow_len: 0,
            width_shift: INITIAL_WIDTH_SHIFT,
            bucket_mask: (MIN_BUCKETS - 1) as u64,
            current_year: 0,
            cursor: 0,
            in_buckets: 0,
            floor: 0,
            resizes: 0,
            run_scratch: Vec::new(),
        }
    }

    /// Number of resizes performed so far (test hook).
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// Current bucket count (test hook).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Events currently parked in the overflow list (test hook).
    pub fn overflow_len(&self) -> usize {
        self.overflow_len
    }

    #[inline]
    fn year_shift(&self) -> u32 {
        self.width_shift + self.buckets.len().trailing_zeros()
    }

    #[inline]
    fn year_of(&self, time: u64) -> u64 {
        time >> self.year_shift()
    }

    #[inline]
    fn bucket_of(&self, time: u64) -> usize {
        ((time >> self.width_shift) & self.bucket_mask) as usize
    }

    /// Take a slot off the free list (or grow the slab) and fill it.
    fn alloc_slot(&mut self, time: u64, seq: u64, event: Event) -> u32 {
        if self.free_head != NIL {
            let slot = self.free_head;
            let s = &mut self.slab[slot as usize];
            self.free_head = s.next;
            s.time = time;
            s.seq = seq;
            s.event = event;
            slot
        } else {
            let slot = self.slab.len() as u32;
            self.slab.push(CalendarSlot {
                time,
                seq,
                next: NIL,
                event,
            });
            slot
        }
    }

    /// Return a slot to the free list and move its event out.
    fn release_slot(&mut self, slot: u32) -> (u64, Event) {
        let s = &mut self.slab[slot as usize];
        let time = s.time;
        let event = std::mem::replace(&mut s.event, placeholder_event());
        s.next = self.free_head;
        self.free_head = slot;
        (time, event)
    }

    /// Link an (already filled) slot into its home: a current-year bucket
    /// or the overflow list.
    fn link(&mut self, slot: u32) {
        let time = self.slab[slot as usize].time;
        if self.year_of(time) == self.current_year {
            let bucket = self.bucket_of(time);
            self.slab[slot as usize].next = self.buckets[bucket];
            self.buckets[bucket] = slot;
            self.in_buckets += 1;
            // Never skip an event inserted behind the scan position.
            if bucket < self.cursor {
                self.cursor = bucket;
            }
        } else {
            debug_assert!(
                self.year_of(time) > self.current_year,
                "insert into a past year: {} < {}",
                self.year_of(time),
                self.current_year
            );
            self.slab[slot as usize].next = self.overflow_head;
            self.overflow_head = slot;
            self.overflow_len += 1;
        }
    }

    /// Move the earliest overflow year into the buckets.  Called when the
    /// current year has drained.
    fn migrate_next_year(&mut self) {
        debug_assert_eq!(self.in_buckets, 0);
        if self.overflow_head == NIL {
            return;
        }
        let mut min_year = u64::MAX;
        let mut walk = self.overflow_head;
        while walk != NIL {
            let s = &self.slab[walk as usize];
            min_year = min_year.min(self.year_of(s.time));
            walk = s.next;
        }
        self.current_year = min_year;
        self.cursor = 0;
        // Detach the whole list, re-link every slot: this-year slots land
        // in buckets, the rest re-forms the overflow list.
        let mut walk = std::mem::replace(&mut self.overflow_head, NIL);
        self.overflow_len = 0;
        while walk != NIL {
            let next = self.slab[walk as usize].next;
            self.link(walk);
            walk = next;
        }
    }

    /// Collect every live slot index (buckets + overflow).
    fn live_slots(&self) -> Vec<u32> {
        let mut slots = Vec::with_capacity(self.len());
        for &head in &self.buckets {
            let mut walk = head;
            while walk != NIL {
                slots.push(walk);
                walk = self.slab[walk as usize].next;
            }
        }
        let mut walk = self.overflow_head;
        while walk != NIL {
            slots.push(walk);
            walk = self.slab[walk as usize].next;
        }
        slots
    }

    /// Grow or shrink so the population fits the bucket count, and
    /// re-estimate the bucket width from the observed event spacing.
    fn resize(&mut self) {
        let total = self.len();
        let target_buckets = (total / TARGET_OCCUPANCY)
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);

        let slots = self.live_slots();

        // Estimate the typical spacing between consecutive events from the
        // spread of the nearest ~64 pending times: the k-th smallest time
        // minus the smallest, divided by k.  This tracks the local event
        // density and ignores far-future outliers.
        let mut times: Vec<u64> = slots.iter().map(|&s| self.slab[s as usize].time).collect();
        let new_width_shift = if times.len() >= 2 {
            let k = (times.len() - 1).min(64);
            let (_, kth, _) = times.select_nth_unstable(k);
            let kth = *kth;
            let min = *times[..k].iter().min().unwrap_or(&kth).min(&kth);
            let gap = (kth - min) / k as u64;
            if gap == 0 {
                // Degenerate (many simultaneous events): keep the width.
                self.width_shift
            } else {
                // Width ≈ TARGET_OCCUPANCY × typical gap.
                let width = gap.saturating_mul(TARGET_OCCUPANCY as u64);
                (64 - width.leading_zeros()).clamp(4, 40)
            }
        } else {
            self.width_shift
        };

        if target_buckets == self.buckets.len() && new_width_shift == self.width_shift {
            return;
        }

        // Re-seat under the new geometry: only links move, the slab stays.
        self.buckets = vec![NIL; target_buckets];
        self.bucket_mask = (target_buckets - 1) as u64;
        self.width_shift = new_width_shift;
        self.overflow_head = NIL;
        self.overflow_len = 0;
        self.in_buckets = 0;
        self.cursor = 0;
        // Anchor the new year at the push floor, NOT at the earliest
        // pending event: a future push may legally carry any time >= floor,
        // and anchoring past it would misfile that push into a "past year".
        // If everything pending is far in the future the buckets simply
        // stay empty until pop migrates — correctness over a one-off scan.
        self.current_year = self.year_of(self.floor);
        self.resizes += 1;
        for slot in slots {
            self.link(slot);
        }
    }

    /// `(slot, predecessor)` of the minimal entry, or `None` when the
    /// buckets are empty (`predecessor == NIL` means the bucket head).
    fn find_min(&self) -> Option<(u32, u32, usize)> {
        if self.in_buckets == 0 {
            return None;
        }
        let mut cursor = self.cursor;
        while self.buckets[cursor] == NIL {
            cursor += 1;
            debug_assert!(cursor < self.buckets.len(), "in_buckets out of sync");
        }
        let mut best = self.buckets[cursor];
        let mut best_prev = NIL;
        let mut prev = best;
        let mut walk = self.slab[best as usize].next;
        while walk != NIL {
            let s = &self.slab[walk as usize];
            let b = &self.slab[best as usize];
            if (s.time, s.seq) < (b.time, b.seq) {
                best = walk;
                best_prev = prev;
            }
            prev = walk;
            walk = s.next;
        }
        Some((best, best_prev, cursor))
    }

    /// The earliest time on the overflow list (linear scan; the overflow
    /// is lazily sorted).
    fn overflow_min_time(&self) -> Option<u64> {
        let mut min: Option<u64> = None;
        let mut walk = self.overflow_head;
        while walk != NIL {
            let s = &self.slab[walk as usize];
            min = Some(min.map_or(s.time, |m| m.min(s.time)));
            walk = s.next;
        }
        min
    }

    /// Make sure the buckets hold the global minimum, migrating the next
    /// overflow year in when the current year has drained.  Returns `false`
    /// when the queue is empty.  **Callers must pop immediately after a
    /// migration** — the migrated year runs ahead of the push floor until
    /// the pop re-aligns it.
    fn bring_min_into_buckets(&mut self) -> bool {
        if self.in_buckets > 0 {
            return true;
        }
        if self.overflow_head == NIL {
            return false;
        }
        self.migrate_next_year();
        // A migrated year may hold far more events than the buckets were
        // sized for.  The resize re-anchors at the (older) floor, which can
        // push the migrated year back to overflow — migrate again under the
        // new geometry in that case.
        if self.in_buckets > 2 * TARGET_OCCUPANCY * self.buckets.len()
            && self.buckets.len() < MAX_BUCKETS
        {
            self.resize();
            if self.in_buckets == 0 {
                self.migrate_next_year();
            }
        }
        true
    }

    /// Unlink every slot of `bucket` whose time is `min_time` in **one**
    /// chain walk, then release them to `out` in `seq` order.  Equal times
    /// land in the same bucket at any geometry (`bucket_of` is a pure
    /// function of time, and equal times share a year), so this really is
    /// the whole run; a per-event `find_min` would rescan the same chain
    /// once per event — O(n²) on an n-event burst.
    fn drain_run(&mut self, bucket: usize, min_time: u64, out: &mut Vec<Event>) {
        let mut run = std::mem::take(&mut self.run_scratch);
        debug_assert!(run.is_empty());
        let mut prev = NIL;
        let mut walk = self.buckets[bucket];
        while walk != NIL {
            let s = &self.slab[walk as usize];
            let next = s.next;
            if s.time == min_time {
                run.push((s.seq, walk));
                if prev == NIL {
                    self.buckets[bucket] = next;
                } else {
                    self.slab[prev as usize].next = next;
                }
            } else {
                prev = walk;
            }
            walk = next;
        }
        debug_assert!(!run.is_empty(), "drain_run called with the min elsewhere");
        self.in_buckets -= run.len();
        // The bucket chain is unordered; FIFO comes from the seq sort.
        run.sort_unstable_by_key(|&(seq, _)| seq);
        for &(_, slot) in &run {
            let (_, event) = self.release_slot(slot);
            out.push(event);
        }
        run.clear();
        self.run_scratch = run;
        self.floor = min_time;
        if self.len() * 8 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            self.resize();
        }
    }

    /// Unlink and release the minimal slot located by
    /// [`CalendarScheduler::find_min`], advancing the push floor.
    fn take(&mut self, slot: u32, prev: u32, bucket: usize) -> (SimTime, Event) {
        let next = self.slab[slot as usize].next;
        if prev == NIL {
            self.buckets[bucket] = next;
        } else {
            self.slab[prev as usize].next = next;
        }
        self.in_buckets -= 1;
        let (time, event) = self.release_slot(slot);
        // The popped minimum is the new lower bound for future pushes.
        self.floor = time;
        if self.len() * 8 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            self.resize();
        }
        (SimTime::from_nanos(time), event)
    }
}

impl EventScheduler for CalendarScheduler {
    fn push(&mut self, time: SimTime, seq: u64, event: Event) {
        let slot = self.alloc_slot(time.as_nanos(), seq, event);
        self.link(slot);
        if self.len() > 2 * TARGET_OCCUPANCY * self.buckets.len()
            && self.buckets.len() < MAX_BUCKETS
        {
            self.resize();
        }
    }

    fn pop(&mut self) -> Option<(SimTime, Event)> {
        if !self.bring_min_into_buckets() {
            return None;
        }
        let (slot, prev, bucket) = self.find_min().expect("buckets hold the minimum");
        self.cursor = bucket;
        Some(self.take(slot, prev, bucket))
    }

    fn pop_at_or_before(&mut self, limit: SimTime) -> Option<(SimTime, Event)> {
        // One min search per call (a peek-then-pop pair would run it
        // twice); committing the cursor even on a refusal keeps repeated
        // window probes from rescanning the same empty buckets.
        if self.in_buckets == 0 {
            // Migrating advances `current_year`, which is only safe when a
            // pop follows immediately (it re-establishes the floor/year
            // invariant) — so refuse far-future overflow *before*
            // migrating, or a later near-time push would be misfiled into
            // a "past year".
            match self.overflow_min_time() {
                Some(min) if min <= limit.as_nanos() => {
                    let migrated = self.bring_min_into_buckets();
                    debug_assert!(migrated, "overflow was non-empty");
                }
                _ => return None,
            }
        }
        let (slot, prev, bucket) = self.find_min().expect("buckets hold the minimum");
        self.cursor = bucket;
        if self.slab[slot as usize].time > limit.as_nanos() {
            return None;
        }
        Some(self.take(slot, prev, bucket))
    }

    fn pop_run(&mut self, out: &mut Vec<Event>) -> Option<SimTime> {
        if !self.bring_min_into_buckets() {
            return None;
        }
        let (slot, _, bucket) = self.find_min().expect("buckets hold the minimum");
        self.cursor = bucket;
        let min_time = self.slab[slot as usize].time;
        self.drain_run(bucket, min_time, out);
        Some(SimTime::from_nanos(min_time))
    }

    fn pop_run_at_or_before(&mut self, limit: SimTime, out: &mut Vec<Event>) -> Option<SimTime> {
        // Mirrors `pop_at_or_before`: refuse far-future overflow *before*
        // migrating, so a refused probe cannot advance the year anchor.
        if self.in_buckets == 0 {
            match self.overflow_min_time() {
                Some(min) if min <= limit.as_nanos() => {
                    let migrated = self.bring_min_into_buckets();
                    debug_assert!(migrated, "overflow was non-empty");
                }
                _ => return None,
            }
        }
        let (slot, _, bucket) = self.find_min().expect("buckets hold the minimum");
        self.cursor = bucket;
        let min_time = self.slab[slot as usize].time;
        if min_time > limit.as_nanos() {
            return None;
        }
        self.drain_run(bucket, min_time, out);
        Some(SimTime::from_nanos(min_time))
    }

    fn peek_time(&self) -> Option<SimTime> {
        if let Some((slot, _, _)) = self.find_min() {
            return Some(SimTime::from_nanos(self.slab[slot as usize].time));
        }
        // Buckets drained: the minimum lives in the overflow list.
        self.overflow_min_time().map(SimTime::from_nanos)
    }

    fn len(&self) -> usize {
        self.in_buckets + self.overflow_len
    }

    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Calendar
    }
}

/// A time-ordered event queue with FIFO tie-breaking and a monotone clock,
/// over a pluggable [`EventScheduler`].
#[derive(Debug)]
pub struct EventQueue {
    scheduler: Box<dyn EventScheduler>,
    next_seq: u64,
    now: SimTime,
    processed: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::with_scheduler(SchedulerKind::default())
    }
}

impl EventQueue {
    /// An empty queue at time zero on the default scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue at time zero on the given scheduler.
    pub fn with_scheduler(kind: SchedulerKind) -> Self {
        let scheduler: Box<dyn EventScheduler> = match kind {
            SchedulerKind::Heap => Box::new(HeapScheduler::new()),
            SchedulerKind::Calendar => Box::new(CalendarScheduler::new()),
        };
        EventQueue {
            scheduler,
            next_seq: 0,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Which scheduler the queue runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.scheduler.kind()
    }

    /// The current simulation time (the time of the last event popped).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.scheduler.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.scheduler.is_empty()
    }

    /// Schedule `event` at absolute time `at`.  Scheduling in the past is a
    /// programming error and panics in debug builds; in release builds the
    /// event is clamped to `now` so the simulation stays causally ordered,
    /// and the clamp is reported (returns `true`) so the caller can count
    /// it — the simulator folds this into `SimStats::clamped_events`, where
    /// the bug cannot hide.
    pub fn schedule(&mut self, at: SimTime, event: Event) -> bool {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {} ({event:?})",
            self.now
        );
        let clamped = at < self.now;
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduler.push(at, seq, event);
        clamped
    }

    /// The time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.scheduler.peek_time()
    }

    /// Pop the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let (time, event) = self.scheduler.pop()?;
        self.now = time;
        self.processed += 1;
        Some((time, event))
    }

    /// Pop the next event only if it is scheduled at or before `limit`
    /// (one min search on schedulers whose peek is not O(1)).
    pub fn pop_until(&mut self, limit: SimTime) -> Option<(SimTime, Event)> {
        let (time, event) = self.scheduler.pop_at_or_before(limit)?;
        self.now = time;
        self.processed += 1;
        Some((time, event))
    }

    /// Drain the whole run of events at the minimal pending time into
    /// `out` (cleared first; FIFO order), advancing the clock to that time.
    /// One scheduler dispatch per *instant* instead of per event.
    pub fn pop_run(&mut self, out: &mut Vec<Event>) -> Option<SimTime> {
        out.clear();
        let time = self.scheduler.pop_run(out)?;
        self.now = time;
        self.processed += out.len() as u64;
        Some(time)
    }

    /// The windowed form of [`EventQueue::pop_run`]: drains the minimal
    /// same-time run only if it is scheduled at or before `limit`.
    pub fn pop_run_until(&mut self, limit: SimTime, out: &mut Vec<Event>) -> Option<SimTime> {
        out.clear();
        let time = self.scheduler.pop_run_at_or_before(limit, out)?;
        self.now = time;
        self.processed += out.len() as u64;
        Some(time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(node: u32, frame: u64) -> Event {
        Event::EnqueueAtNode {
            node: NodeId::new(node),
            frame: FrameId::new(frame),
        }
    }

    fn queues() -> [EventQueue; 2] {
        [
            EventQueue::with_scheduler(SchedulerKind::Heap),
            EventQueue::with_scheduler(SchedulerKind::Calendar),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in queues() {
            q.schedule(SimTime::from_nanos(30), ev(3, 3));
            q.schedule(SimTime::from_nanos(10), ev(1, 1));
            q.schedule(SimTime::from_nanos(20), ev(2, 2));
            assert_eq!(q.len(), 3);
            let (t1, e1) = q.pop().unwrap();
            assert_eq!(t1, SimTime::from_nanos(10));
            assert_eq!(e1, ev(1, 1));
            assert_eq!(q.now(), SimTime::from_nanos(10));
            assert_eq!(q.pop().unwrap().0, SimTime::from_nanos(20));
            assert_eq!(q.pop().unwrap().0, SimTime::from_nanos(30));
            assert!(q.pop().is_none());
            assert_eq!(q.processed(), 3);
        }
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        for mut q in queues() {
            let t = SimTime::from_micros(5);
            for i in 0..10 {
                q.schedule(t, ev(i, i as u64));
            }
            for i in 0..10 {
                let (_, e) = q.pop().unwrap();
                assert_eq!(e, ev(i, i as u64), "event {i} out of order");
            }
        }
    }

    #[test]
    fn pop_until_respects_limit() {
        for mut q in queues() {
            q.schedule(SimTime::from_nanos(100), ev(1, 1));
            q.schedule(SimTime::from_nanos(200), ev(2, 2));
            assert!(q.pop_until(SimTime::from_nanos(50)).is_none());
            assert!(q.pop_until(SimTime::from_nanos(100)).is_some());
            assert!(q.pop_until(SimTime::from_nanos(150)).is_none());
            assert_eq!(q.len(), 1);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), ev(1, 1));
        q.pop();
        q.schedule(SimTime::from_nanos(50), ev(2, 2));
    }

    /// In release builds the past-time clamp is counted instead of
    /// panicking (debug builds assert, so this can only run there).
    #[test]
    #[cfg(not(debug_assertions))]
    fn clamped_events_are_counted_in_release() {
        for mut q in queues() {
            assert!(!q.schedule(SimTime::from_nanos(100), ev(1, 1)));
            q.pop();
            assert!(q.schedule(SimTime::from_nanos(50), ev(2, 2)));
            // The clamped event runs at `now`, keeping causal order.
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, SimTime::from_nanos(100));
        }
    }

    #[test]
    fn clock_is_monotone() {
        for mut q in queues() {
            q.schedule(SimTime::from_nanos(10), ev(1, 1));
            q.schedule(SimTime::from_nanos(10), ev(2, 2));
            q.schedule(SimTime::from_nanos(40), ev(3, 3));
            let mut prev = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                assert!(t >= prev);
                prev = t;
            }
        }
    }

    #[test]
    fn scheduler_kinds_report_their_names() {
        let [heap, calendar] = queues();
        assert_eq!(heap.scheduler_kind(), SchedulerKind::Heap);
        assert_eq!(calendar.scheduler_kind(), SchedulerKind::Calendar);
        assert_eq!(SchedulerKind::Heap.name(), "heap");
        assert_eq!(SchedulerKind::Calendar.name(), "calendar");
        assert_eq!(EventQueue::new().scheduler_kind(), SchedulerKind::default());
    }

    // --- calendar-specific behaviour -------------------------------------

    /// Deterministic pseudo-random times without external crates.
    fn scramble(k: u64) -> u64 {
        k.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
    }

    #[test]
    fn calendar_matches_heap_on_a_large_scrambled_workload() {
        let mut heap = EventQueue::with_scheduler(SchedulerKind::Heap);
        let mut cal = EventQueue::with_scheduler(SchedulerKind::Calendar);
        // Mixed phases: bulk pre-load, then interleaved push/pop with times
        // clustered at several scales (including exact ties).
        for k in 0..5_000u64 {
            let t = SimTime::from_nanos(scramble(k) % 10_000_000);
            heap.schedule(t, ev(0, k));
            cal.schedule(t, ev(0, k));
        }
        let mut seq = 5_000u64;
        for round in 0..5_000u64 {
            let (th, eh) = heap.pop().unwrap();
            let (tc, ec) = cal.pop().unwrap();
            assert_eq!((th, &eh), (tc, &ec), "divergence at round {round}");
            // Re-schedule a couple of follow-ups relative to `now`,
            // including same-instant ties and far-future spikes.
            for offset in [0u64, 1, 777, 123_456, 500_000_000] {
                let t = th + rt_types::Duration::from_nanos(offset + scramble(round) % 9_999);
                heap.schedule(t, ev(1, seq));
                cal.schedule(t, ev(1, seq));
                seq += 1;
            }
        }
        // Drain both completely.
        loop {
            match (heap.pop(), cal.pop()) {
                (None, None) => break,
                (h, c) => assert_eq!(h, c),
            }
        }
    }

    #[test]
    fn calendar_resizes_under_load() {
        let mut cal = CalendarScheduler::new();
        assert_eq!(cal.bucket_count(), MIN_BUCKETS);
        for k in 0..10_000u64 {
            cal.push(SimTime::from_nanos(k * 1000), k, ev(0, k));
        }
        assert!(cal.resizes() > 0, "10k events must trigger growth");
        assert!(
            cal.bucket_count() >= 10_000 / (2 * TARGET_OCCUPANCY),
            "bucket count {} must track the population",
            cal.bucket_count()
        );
        // Drain; shrink back towards the floor.
        let mut prev = SimTime::ZERO;
        for _ in 0..10_000 {
            let (t, _) = cal.pop().unwrap();
            assert!(t >= prev);
            prev = t;
        }
        assert!(cal.pop().is_none());
        assert_eq!(cal.bucket_count(), MIN_BUCKETS, "drained queue shrinks");
    }

    #[test]
    fn calendar_far_future_events_go_to_overflow_and_come_back_ordered() {
        let mut cal = CalendarScheduler::new();
        // A cluster now, plus far-future stragglers years of bucket-time
        // away.
        for k in 0..50u64 {
            cal.push(SimTime::from_nanos(k * 100), k, ev(0, k));
        }
        for k in 0..50u64 {
            cal.push(SimTime::from_secs(3600 + k), 50 + k, ev(1, 50 + k));
        }
        assert!(
            cal.overflow_len() > 0,
            "hour-away events must be parked in overflow"
        );
        // peek_time never reports an overflow event while nearer ones wait.
        assert_eq!(cal.peek_time(), Some(SimTime::ZERO));
        let mut prev = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = cal.pop() {
            assert!(t >= prev, "overflow migration broke the order");
            prev = t;
            popped += 1;
        }
        assert_eq!(popped, 100);
        assert_eq!(cal.overflow_len(), 0);
    }

    /// Regression: a growth resize while *only* far-future events are
    /// pending must not advance the year anchor past the push floor — a
    /// later, perfectly legal near-time push (time >= now) would otherwise
    /// be misfiled behind the far-future events (and trip a debug assert).
    #[test]
    fn calendar_resize_keeps_the_anchor_at_the_push_floor() {
        for variant in ["fresh", "after_pop"] {
            let mut q = EventQueue::with_scheduler(SchedulerKind::Calendar);
            let mut h = EventQueue::with_scheduler(SchedulerKind::Heap);
            if variant == "after_pop" {
                // Advance the clock a little first so floor > 0.
                for queue in [&mut q, &mut h] {
                    queue.schedule(SimTime::from_nanos(500), ev(9, 999));
                    queue.pop();
                }
            }
            // Enough hour-away events to trigger the growth resize while
            // nothing near-time is pending.
            for k in 0..40u64 {
                let t = SimTime::from_secs(3600) + rt_types::Duration::from_nanos(k * 100);
                q.schedule(t, ev(0, k));
                h.schedule(t, ev(0, k));
            }
            // A legal near-time event must still come out first.
            q.schedule(SimTime::from_micros(1), ev(1, 40));
            h.schedule(SimTime::from_micros(1), ev(1, 40));
            let mut prev = SimTime::ZERO;
            loop {
                let (qp, hp) = (q.pop(), h.pop());
                assert_eq!(qp, hp, "calendar diverged from heap ({variant})");
                match qp {
                    Some((t, _)) => {
                        assert!(t >= prev, "clock ran backwards ({variant})");
                        prev = t;
                    }
                    None => break,
                }
            }
        }
    }

    /// Regression: `pop_until` with only far-future events pending must
    /// refuse *without* migrating the calendar's year forward — a later
    /// near-time push (legal: time >= now) would otherwise land in a
    /// "past year".  This is the windowed `run_until` / `run_with_source`
    /// sequence.
    #[test]
    fn calendar_refused_pop_until_does_not_break_later_near_pushes() {
        let mut q = EventQueue::with_scheduler(SchedulerKind::Calendar);
        let mut h = EventQueue::with_scheduler(SchedulerKind::Heap);
        for k in 0..40u64 {
            let t = SimTime::from_secs(3600 + k);
            q.schedule(t, ev(0, k));
            h.schedule(t, ev(0, k));
        }
        // A windowed probe far below the pending minimum refuses...
        assert!(q.pop_until(SimTime::from_millis(1)).is_none());
        assert!(h.pop_until(SimTime::from_millis(1)).is_none());
        // ...and a near-time push afterwards must still order first.
        q.schedule(SimTime::from_micros(7), ev(1, 40));
        h.schedule(SimTime::from_micros(7), ev(1, 40));
        loop {
            let (qp, hp) = (q.pop(), h.pop());
            assert_eq!(qp, hp, "calendar diverged after a refused pop_until");
            if qp.is_none() {
                break;
            }
        }
    }

    /// Regression, shrink-path variant: draining a large near-time
    /// population down to a far-future remainder triggers shrink resizes;
    /// a near-time push right after a pop must still order correctly.
    #[test]
    fn calendar_shrink_resize_keeps_the_anchor_at_the_push_floor() {
        let mut q = EventQueue::with_scheduler(SchedulerKind::Calendar);
        let mut h = EventQueue::with_scheduler(SchedulerKind::Heap);
        for k in 0..2_000u64 {
            let t = SimTime::from_nanos(k * 50);
            q.schedule(t, ev(0, k));
            h.schedule(t, ev(0, k));
        }
        for k in 0..20u64 {
            let t = SimTime::from_secs(100 + k);
            q.schedule(t, ev(1, 2_000 + k));
            h.schedule(t, ev(1, 2_000 + k));
        }
        // Drain the near population (forcing shrink resizes while the
        // far-future tail remains), pushing a fresh near event every so
        // often.
        let mut seq = 3_000u64;
        let mut prev = SimTime::ZERO;
        loop {
            let (qp, hp) = (q.pop(), h.pop());
            assert_eq!(qp, hp, "calendar diverged from heap during drain");
            let Some((t, _)) = qp else { break };
            assert!(t >= prev);
            prev = t;
            if seq < 3_200 && t < SimTime::from_secs(1) {
                let near = t + rt_types::Duration::from_nanos(25);
                q.schedule(near, ev(2, seq));
                h.schedule(near, ev(2, seq));
                seq += 1;
            }
        }
    }

    #[test]
    fn pop_run_drains_whole_same_time_runs_in_fifo_order() {
        for mut q in queues() {
            // Three instants: a 5-event run, a singleton, a 3-event run.
            for i in 0..5u64 {
                q.schedule(SimTime::from_micros(10), ev(0, i));
            }
            q.schedule(SimTime::from_micros(20), ev(1, 100));
            for i in 0..3u64 {
                q.schedule(SimTime::from_micros(30), ev(2, 200 + i));
            }
            let mut out = Vec::new();
            let t = q.pop_run(&mut out).unwrap();
            assert_eq!(t, SimTime::from_micros(10));
            assert_eq!(q.now(), t);
            assert_eq!(
                out,
                (0..5).map(|i| ev(0, i)).collect::<Vec<_>>(),
                "first run must be complete and FIFO"
            );
            assert_eq!(q.pop_run(&mut out), Some(SimTime::from_micros(20)));
            assert_eq!(out, vec![ev(1, 100)]);
            assert_eq!(q.pop_run(&mut out), Some(SimTime::from_micros(30)));
            assert_eq!(out.len(), 3);
            assert_eq!(q.pop_run(&mut out), None);
            assert!(out.is_empty(), "a refused pop_run leaves out cleared");
            assert_eq!(q.processed(), 9);
        }
    }

    #[test]
    fn pop_run_until_respects_the_window() {
        for mut q in queues() {
            for i in 0..4u64 {
                q.schedule(SimTime::from_nanos(100), ev(0, i));
            }
            q.schedule(SimTime::from_nanos(200), ev(1, 10));
            let mut out = Vec::new();
            assert_eq!(q.pop_run_until(SimTime::from_nanos(50), &mut out), None);
            assert_eq!(q.len(), 5, "a refused window drains nothing");
            assert_eq!(
                q.pop_run_until(SimTime::from_nanos(100), &mut out),
                Some(SimTime::from_nanos(100))
            );
            assert_eq!(out.len(), 4);
            assert_eq!(q.pop_run_until(SimTime::from_nanos(150), &mut out), None);
            assert_eq!(q.len(), 1);
        }
    }

    #[test]
    fn pop_run_matches_single_pops_on_a_scrambled_workload() {
        // The batched drain must yield the exact single-pop sequence on
        // both schedulers, including follow-up pushes landing in the run
        // that was just drained ("same-instant" ties are legal re-pushes).
        let mut single = EventQueue::with_scheduler(SchedulerKind::Heap);
        let mut heap = EventQueue::with_scheduler(SchedulerKind::Heap);
        let mut cal = EventQueue::with_scheduler(SchedulerKind::Calendar);
        // Clustered times with many exact ties (only 500 distinct instants
        // for 2000 events).
        for k in 0..2_000u64 {
            let t = SimTime::from_nanos((scramble(k) % 500) * 1_000);
            for q in [&mut single, &mut heap, &mut cal] {
                q.schedule(t, ev(0, k));
            }
        }
        let mut seq = 2_000u64;
        let (mut h_out, mut c_out) = (Vec::new(), Vec::new());
        while let Some(t) = heap.pop_run(&mut h_out) {
            assert_eq!(cal.pop_run(&mut c_out), Some(t));
            assert_eq!(h_out, c_out, "calendar run diverged from heap run");
            for e in &h_out {
                let (st, se) = single.pop().unwrap();
                assert_eq!((st, &se), (t, e), "batched drain diverged from single pops");
            }
            if seq < 2_400 {
                for offset in [0u64, 0, 3_000] {
                    let at = t + rt_types::Duration::from_nanos(offset);
                    for q in [&mut single, &mut heap, &mut cal] {
                        q.schedule(at, ev(1, seq));
                    }
                    seq += 1;
                }
            }
        }
        assert!(cal.pop_run(&mut c_out).is_none());
        assert!(single.pop().is_none());
    }

    #[test]
    fn calendar_identical_times_preserve_fifo_across_resizes() {
        let mut cal = CalendarScheduler::new();
        let t = SimTime::from_micros(123);
        for k in 0..1000u64 {
            cal.push(t, k, ev(0, k));
        }
        for k in 0..1000u64 {
            let (pt, e) = cal.pop().unwrap();
            assert_eq!(pt, t);
            assert_eq!(e, ev(0, k), "FIFO broken at {k}");
        }
    }

    #[test]
    fn calendar_empty_year_gaps_are_skipped() {
        let mut cal = CalendarScheduler::new();
        // Three events in three distant years.
        cal.push(SimTime::from_nanos(5), 0, ev(0, 0));
        cal.push(SimTime::from_secs(10), 1, ev(0, 1));
        cal.push(SimTime::from_secs(20), 2, ev(0, 2));
        assert_eq!(cal.pop().unwrap().0, SimTime::from_nanos(5));
        assert_eq!(cal.pop().unwrap().0, SimTime::from_secs(10));
        assert_eq!(cal.pop().unwrap().0, SimTime::from_secs(20));
        assert!(cal.pop().is_none());
        assert!(cal.peek_time().is_none());
    }
}
