//! # rt-netsim
//!
//! A deterministic discrete-event simulator of the network architecture in
//! §18.1 of the paper: a single store-and-forward full-duplex switched
//! Ethernet switch in a star topology with end nodes attached, each output
//! port (in the end-node NICs and in the switch) holding a deadline-sorted
//! real-time queue and a FCFS best-effort queue (Figure 18.2).
//!
//! The simulator stands in for the physical 100 Mbit/s Ethernet testbed the
//! paper assumes: transmission times are derived from frame sizes and the
//! configured link speed, propagation delay and switch latency are constant
//! per-hop terms (the paper's `T_latency`), and all queueing decisions are
//! made exactly as the RT layer prescribes — EDF among real-time frames,
//! strict priority of real-time over best-effort, FCFS among best-effort
//! frames.
//!
//! Modules:
//! * [`event`] — the simulation clock and the pluggable event scheduler
//!   (binary-heap reference vs. calendar queue),
//! * [`port`] — the dual-queue (RT + best effort) output port model,
//! * [`sim`] — the simulator proper: nodes, switch, links, frame delivery,
//! * [`stats`] — latency / deadline-miss / utilisation accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod port;
pub mod shard;
pub mod sim;
pub mod stats;

pub use event::{
    CalendarScheduler, Event, EventQueue, EventScheduler, HeapScheduler, SchedulerKind,
};
pub use port::{OutputPort, QueuedFrame, TrafficClass};
pub use shard::ShardedSimulator;
pub use sim::{
    Delivery, FaultScript, FrameId, FrameInjection, FrameStoreKind, LinkFault, SimConfig,
    Simulator, TrafficSource,
};
pub use stats::{ChannelStats, LinkStats, SimStats};
