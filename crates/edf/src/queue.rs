//! The two output queues of the RT layer (Figure 18.2).
//!
//! Every output port — in an end node's NIC and in each switch port — holds
//! two queues: a **deadline-sorted queue** for real-time frames (served EDF)
//! and a **FCFS queue** for everything else.  The RT queue always has strict
//! priority over the best-effort queue; within the RT queue the frame with
//! the earliest absolute deadline is transmitted first, and ties are broken
//! in arrival order so that the schedule is deterministic.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// An entry in the deadline-sorted queue.
#[derive(Debug, Clone)]
struct EdfEntry<T> {
    /// Absolute deadline; smaller is more urgent.
    deadline: u64,
    /// Monotonic arrival sequence number; breaks deadline ties FIFO.
    seq: u64,
    item: T,
}

impl<T> PartialEq for EdfEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl<T> Eq for EdfEntry<T> {}

impl<T> Ord for EdfEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the smallest deadline (then the
        // smallest sequence number) is at the top.
        other
            .deadline
            .cmp(&self.deadline)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for EdfEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deadline-sorted (EDF) queue.
///
/// `pop` always returns the item with the smallest absolute deadline;
/// among equal deadlines the one that was pushed first wins.
#[derive(Debug, Clone)]
pub struct EdfQueue<T> {
    heap: BinaryHeap<EdfEntry<T>>,
    next_seq: u64,
}

impl<T> Default for EdfQueue<T> {
    fn default() -> Self {
        EdfQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<T> EdfQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Enqueue `item` with the given absolute deadline.
    pub fn push(&mut self, deadline: u64, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(EdfEntry {
            deadline,
            seq,
            item,
        });
    }

    /// Dequeue the most urgent item, returning `(deadline, item)`.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        self.heap.pop().map(|e| (e.deadline, e.item))
    }

    /// The deadline of the most urgent item without removing it.
    pub fn peek_deadline(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.deadline)
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Iterate over queued items in no particular order (for statistics).
    pub fn iter_unordered(&self) -> impl Iterator<Item = (u64, &T)> {
        self.heap.iter().map(|e| (e.deadline, &e.item))
    }
}

/// A First-Come-First-Served queue for best-effort traffic, with an optional
/// capacity bound (frames arriving at a full queue are dropped, which is what
/// a real switch does to best-effort traffic under overload).
#[derive(Debug, Clone)]
pub struct FcfsQueue<T> {
    queue: VecDeque<T>,
    capacity: Option<usize>,
    dropped: u64,
}

impl<T> Default for FcfsQueue<T> {
    fn default() -> Self {
        FcfsQueue {
            queue: VecDeque::new(),
            capacity: None,
            dropped: 0,
        }
    }
}

impl<T> FcfsQueue<T> {
    /// An unbounded FCFS queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// A FCFS queue that holds at most `capacity` items.
    pub fn bounded(capacity: usize) -> Self {
        FcfsQueue {
            queue: VecDeque::with_capacity(capacity),
            capacity: Some(capacity),
            dropped: 0,
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of items dropped because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Enqueue `item`; returns `false` (and counts a drop) if the queue is
    /// bounded and full.
    pub fn push(&mut self, item: T) -> bool {
        if let Some(cap) = self.capacity {
            if self.queue.len() >= cap {
                self.dropped += 1;
                return false;
            }
        }
        self.queue.push_back(item);
        true
    }

    /// Dequeue the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Peek at the oldest item.
    pub fn peek(&self) -> Option<&T> {
        self.queue.front()
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_types::rng::Xoshiro256;

    #[test]
    fn edf_orders_by_deadline() {
        let mut q = EdfQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_deadline(), Some(10));
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn edf_ties_break_fifo() {
        let mut q = EdfQueue::new();
        q.push(5, "first");
        q.push(5, "second");
        q.push(5, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn edf_interleaved_push_pop() {
        let mut q = EdfQueue::new();
        q.push(100, 1u32);
        q.push(50, 2);
        assert_eq!(q.pop(), Some((50, 2)));
        q.push(10, 3);
        q.push(70, 4);
        assert_eq!(q.pop(), Some((10, 3)));
        assert_eq!(q.pop(), Some((70, 4)));
        assert_eq!(q.pop(), Some((100, 1)));
    }

    #[test]
    fn edf_clear_and_iter() {
        let mut q = EdfQueue::new();
        q.push(1, 'x');
        q.push(2, 'y');
        assert_eq!(q.iter_unordered().count(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn fcfs_preserves_order() {
        let mut q = FcfsQueue::new();
        assert!(q.push(1));
        assert!(q.push(2));
        assert!(q.push(3));
        assert_eq!(q.peek(), Some(&1));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fcfs_bounded_drops_when_full() {
        let mut q = FcfsQueue::bounded(2);
        assert!(q.push('a'));
        assert!(q.push('b'));
        assert!(!q.push('c'));
        assert_eq!(q.len(), 2);
        assert_eq!(q.dropped(), 1);
        q.pop();
        assert!(q.push('c'));
        assert_eq!(q.dropped(), 1);
    }

    #[test]
    fn fcfs_clear() {
        let mut q = FcfsQueue::bounded(4);
        q.push(1);
        q.push(2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    /// Popping everything from an EdfQueue yields deadlines in
    /// non-decreasing order regardless of insertion order.
    #[test]
    fn prop_edf_pop_sorted() {
        let mut rng = Xoshiro256::new(0xedf_0001);
        for _ in 0..64 {
            let n = rng.below(100) as usize;
            let deadlines: Vec<u64> = (0..n).map(|_| rng.below(1000)).collect();
            let mut q = EdfQueue::new();
            for (i, d) in deadlines.iter().enumerate() {
                q.push(*d, i);
            }
            let mut prev = None;
            while let Some((d, _)) = q.pop() {
                if let Some(p) = prev {
                    assert!(d >= p);
                }
                prev = Some(d);
            }
        }
    }

    /// FCFS output equals its input sequence.
    #[test]
    fn prop_fcfs_order_preserved() {
        let mut rng = Xoshiro256::new(0xedf_0002);
        for _ in 0..64 {
            let n = rng.below(100) as usize;
            let items: Vec<u16> = (0..n).map(|_| rng.below(1 << 16) as u16).collect();
            let mut q = FcfsQueue::new();
            for it in &items {
                q.push(*it);
            }
            let mut out = Vec::new();
            while let Some(it) = q.pop() {
                out.push(it);
            }
            assert_eq!(out, items);
        }
    }

    /// Among equal deadlines, EDF pops in insertion order (stable).
    #[test]
    fn prop_edf_stable_for_equal_deadlines() {
        for n in 1usize..50 {
            let mut q = EdfQueue::new();
            for i in 0..n {
                q.push(42, i);
            }
            let popped: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
            let expected: Vec<usize> = (0..n).collect();
            assert_eq!(popped, expected);
        }
    }
}
