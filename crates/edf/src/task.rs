//! The periodic task model.
//!
//! The paper maps each half of an RT channel onto a periodic task running on
//! the corresponding directed link ("each part of the RT channel can be
//! looked upon as a periodic task, and the corresponding link would
//! constitute a CPU").  The capacity `C_i` plays the role of the worst-case
//! execution time, the period `P_i` the inter-arrival time, and the per-link
//! deadline (`d_iu` or `d_id`) the relative deadline.

use rt_types::{RtError, RtResult, Slots};

/// A periodic task `{P, C, d}` in time slots.
///
/// Invariants enforced at construction:
/// * `period > 0`,
/// * `capacity > 0`,
/// * `capacity ≤ period` (a task cannot need more link time per period than
///   the period itself),
/// * `relative_deadline ≥ capacity` (Eq. 18.9: a deadline shorter than the
///   worst-case transmission time can never be met).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeriodicTask {
    period: Slots,
    capacity: Slots,
    relative_deadline: Slots,
}

impl PeriodicTask {
    /// Create a task, validating the invariants listed on the type.
    pub fn new(period: Slots, capacity: Slots, relative_deadline: Slots) -> RtResult<Self> {
        if period.is_zero() {
            return Err(RtError::InvalidChannelSpec(
                "period must be positive".into(),
            ));
        }
        if capacity.is_zero() {
            return Err(RtError::InvalidChannelSpec(
                "capacity must be positive".into(),
            ));
        }
        if capacity > period {
            return Err(RtError::InvalidChannelSpec(format!(
                "capacity {capacity} exceeds period {period}"
            )));
        }
        if relative_deadline < capacity {
            return Err(RtError::InvalidChannelSpec(format!(
                "relative deadline {relative_deadline} is shorter than capacity {capacity}"
            )));
        }
        Ok(PeriodicTask {
            period,
            capacity,
            relative_deadline,
        })
    }

    /// The period `P` in slots.
    pub fn period(&self) -> Slots {
        self.period
    }

    /// The capacity (worst-case transmission time) `C` in slots.
    pub fn capacity(&self) -> Slots {
        self.capacity
    }

    /// The relative deadline `d` in slots.
    pub fn relative_deadline(&self) -> Slots {
        self.relative_deadline
    }

    /// `true` if the relative deadline equals the period (the Liu & Layland
    /// case where the utilisation bound alone is exact for EDF).
    pub fn is_implicit_deadline(&self) -> bool {
        self.relative_deadline == self.period
    }

    /// `true` if the relative deadline is no larger than the period
    /// (constrained-deadline task).
    pub fn is_constrained_deadline(&self) -> bool {
        self.relative_deadline <= self.period
    }

    /// Utilisation `C/P` of this task as a float.
    pub fn utilisation(&self) -> f64 {
        self.capacity.get() as f64 / self.period.get() as f64
    }

    /// Density `C / min(d, P)` of this task as a float.
    pub fn density(&self) -> f64 {
        let denom = self.relative_deadline.min(self.period);
        self.capacity.get() as f64 / denom.get() as f64
    }

    /// Contribution of this task to the workload function `h(t)` of Eq. 18.3:
    /// `(1 + floor((t - d) / P)) * C` for `t ≥ d`, zero otherwise.
    pub fn demand_up_to(&self, t: Slots) -> Slots {
        if t < self.relative_deadline {
            return Slots::ZERO;
        }
        let jobs = 1 + (t - self.relative_deadline).div_floor(self.period);
        self.capacity.saturating_mul(jobs)
    }

    /// Number of whole jobs released in `[0, t)` assuming the first release
    /// at time zero: `ceil(t / P)`.
    pub fn releases_before(&self, t: Slots) -> u64 {
        t.div_ceil(self.period)
    }

    /// Return a copy with a different relative deadline (used by deadline
    /// partitioning to derive the uplink/downlink tasks from one channel).
    pub fn with_relative_deadline(&self, d: Slots) -> RtResult<Self> {
        PeriodicTask::new(self.period, self.capacity, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(p: u64, c: u64, d: u64) -> PeriodicTask {
        PeriodicTask::new(Slots::new(p), Slots::new(c), Slots::new(d)).unwrap()
    }

    #[test]
    fn construction_validates_invariants() {
        assert!(PeriodicTask::new(Slots::new(0), Slots::new(1), Slots::new(1)).is_err());
        assert!(PeriodicTask::new(Slots::new(10), Slots::new(0), Slots::new(5)).is_err());
        assert!(PeriodicTask::new(Slots::new(10), Slots::new(11), Slots::new(20)).is_err());
        assert!(PeriodicTask::new(Slots::new(10), Slots::new(3), Slots::new(2)).is_err());
        assert!(PeriodicTask::new(Slots::new(10), Slots::new(3), Slots::new(3)).is_ok());
    }

    #[test]
    fn deadline_classification() {
        assert!(t(10, 2, 10).is_implicit_deadline());
        assert!(t(10, 2, 10).is_constrained_deadline());
        assert!(!t(10, 2, 7).is_implicit_deadline());
        assert!(t(10, 2, 7).is_constrained_deadline());
        assert!(!t(10, 2, 15).is_constrained_deadline());
    }

    #[test]
    fn utilisation_and_density() {
        let task = t(100, 3, 40);
        assert!((task.utilisation() - 0.03).abs() < 1e-12);
        assert!((task.density() - 3.0 / 40.0).abs() < 1e-12);
        // Density uses min(d, P).
        let task = t(10, 2, 20);
        assert!((task.density() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn demand_matches_equation_18_3() {
        // The paper's running parameters: C=3, P=100, d=40 (here d=20 for a
        // partitioned half).
        let task = t(100, 3, 20);
        assert_eq!(task.demand_up_to(Slots::new(0)), Slots::ZERO);
        assert_eq!(task.demand_up_to(Slots::new(19)), Slots::ZERO);
        assert_eq!(task.demand_up_to(Slots::new(20)), Slots::new(3));
        assert_eq!(task.demand_up_to(Slots::new(119)), Slots::new(3));
        assert_eq!(task.demand_up_to(Slots::new(120)), Slots::new(6));
        assert_eq!(task.demand_up_to(Slots::new(1020)), Slots::new(33));
    }

    #[test]
    fn releases_before_counts_jobs() {
        let task = t(10, 1, 10);
        assert_eq!(task.releases_before(Slots::new(0)), 0);
        assert_eq!(task.releases_before(Slots::new(1)), 1);
        assert_eq!(task.releases_before(Slots::new(10)), 1);
        assert_eq!(task.releases_before(Slots::new(11)), 2);
        assert_eq!(task.releases_before(Slots::new(100)), 10);
    }

    #[test]
    fn with_relative_deadline_revalidates() {
        let task = t(100, 3, 40);
        let half = task.with_relative_deadline(Slots::new(20)).unwrap();
        assert_eq!(half.relative_deadline(), Slots::new(20));
        assert_eq!(half.period(), Slots::new(100));
        assert!(task.with_relative_deadline(Slots::new(2)).is_err());
    }
}
