//! The per-link EDF feasibility test of §18.3.2.
//!
//! A link (one direction of one full-duplex cable) is feasible when the set
//! of channel-halves (periodic tasks) assigned to it can be EDF-scheduled:
//!
//! 1. **First constraint** — the utilisation `U = Σ C_i/P_i` must not exceed
//!    one (Eq. 18.2).  Liu & Layland showed this alone is sufficient when
//!    every task's relative deadline equals its period.
//! 2. **Second constraint** — the workload function must satisfy `h(t) ≤ t`
//!    for all `t` (Eq. 18.3).  Following the paper it is enough to check
//!    `1 ≤ t ≤ BusyPeriod` (Eq. 18.4) and, within that range, only the
//!    points `t = m·P_i + d_i` (Eq. 18.5).
//!
//! The tester also offers a *utilisation-only* mode, which is exactly the
//! shortcut the paper attributes to Liu & Layland; the feasibility-ablation
//! experiment uses it to show why the full test is needed when `d < P`.

use rt_types::Slots;

use crate::task::PeriodicTask;
use crate::taskset::TaskSet;

/// Why a task set was judged infeasible (or why analysis gave up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeasibilityVerdict {
    /// Both constraints hold: the link can be EDF-scheduled.
    Feasible,
    /// Constraint 1 violated: total utilisation exceeds one.
    UtilisationExceeded,
    /// Constraint 2 violated: the workload exceeded the available time at
    /// the given check-point.
    DemandExceeded {
        /// The first check-point at which `h(t) > t`.
        at: Slots,
        /// The workload `h(t)` at that point.
        demand: Slots,
    },
    /// The busy period (or the number of check-points) exceeded the
    /// configured analysis cap, so no guarantee can be given.  Treated as
    /// infeasible by admission control (fail safe).
    AnalysisLimitExceeded,
}

/// The result of a feasibility test, with the quantities that were computed
/// along the way (useful for reporting and for the ablation benchmarks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeasibilityOutcome {
    /// The verdict.
    pub verdict: FeasibilityVerdict,
    /// Total utilisation of the examined set (as a float, for reporting).
    pub utilisation: f64,
    /// The busy period, when it was computed.
    pub busy_period: Option<Slots>,
    /// How many check-points were evaluated for Constraint 2.
    pub checkpoints_examined: usize,
}

impl FeasibilityOutcome {
    /// `true` when the set was judged feasible.
    pub fn is_feasible(&self) -> bool {
        self.verdict == FeasibilityVerdict::Feasible
    }
}

/// Configuration of the feasibility tester.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeasibilityConfig {
    /// Upper bound on the busy-period search (and on check-point values).
    /// If the busy-period iteration has not converged below this bound the
    /// test reports [`FeasibilityVerdict::AnalysisLimitExceeded`].
    pub busy_period_cap: Slots,
    /// If `true`, only Constraint 1 (utilisation ≤ 1) is checked.  This is
    /// exact for implicit-deadline sets and *optimistic* otherwise; used by
    /// the ablation experiments.
    pub utilisation_only: bool,
}

impl Default for FeasibilityConfig {
    fn default() -> Self {
        FeasibilityConfig {
            busy_period_cap: Slots::new(10_000_000),
            utilisation_only: false,
        }
    }
}

/// The feasibility tester (stateless apart from its configuration).
#[derive(Debug, Clone, Copy, Default)]
pub struct FeasibilityTester {
    config: FeasibilityConfig,
}

impl FeasibilityTester {
    /// A tester with the default configuration (full two-constraint test).
    pub fn new() -> Self {
        Self::default()
    }

    /// A tester with an explicit configuration.
    pub fn with_config(config: FeasibilityConfig) -> Self {
        FeasibilityTester { config }
    }

    /// A tester that checks only the utilisation bound (Constraint 1).
    pub fn utilisation_only() -> Self {
        FeasibilityTester {
            config: FeasibilityConfig {
                utilisation_only: true,
                ..FeasibilityConfig::default()
            },
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> FeasibilityConfig {
        self.config
    }

    /// Run the feasibility test on `set`.
    pub fn test(&self, set: &TaskSet) -> FeasibilityOutcome {
        let utilisation = set.utilisation_f64();

        // Constraint 1: U <= 1 (exact rational comparison).
        if set.utilisation().exceeds_one() {
            return FeasibilityOutcome {
                verdict: FeasibilityVerdict::UtilisationExceeded,
                utilisation,
                busy_period: None,
                checkpoints_examined: 0,
            };
        }

        // Liu & Layland shortcut: with implicit deadlines (d == P for every
        // task) the utilisation bound is necessary and sufficient.
        let all_implicit = set.tasks().iter().all(|t| t.is_implicit_deadline());
        if self.config.utilisation_only || all_implicit || set.is_empty() {
            return FeasibilityOutcome {
                verdict: FeasibilityVerdict::Feasible,
                utilisation,
                busy_period: None,
                checkpoints_examined: 0,
            };
        }

        // Constraint 2: h(t) <= t for the Eq. 18.5 check-points within the
        // first busy period (Eq. 18.4).
        let cap = match set.hyperperiod() {
            Some(h) => h.min(self.config.busy_period_cap),
            None => self.config.busy_period_cap,
        };
        let busy_period = match set.busy_period(cap) {
            Some(bp) => bp,
            None => {
                return FeasibilityOutcome {
                    verdict: FeasibilityVerdict::AnalysisLimitExceeded,
                    utilisation,
                    busy_period: None,
                    checkpoints_examined: 0,
                }
            }
        };

        let checkpoints = set.checkpoints(busy_period);
        let mut examined = 0;
        for t in checkpoints {
            examined += 1;
            let demand = set.workload(t);
            if demand > t {
                return FeasibilityOutcome {
                    verdict: FeasibilityVerdict::DemandExceeded { at: t, demand },
                    utilisation,
                    busy_period: Some(busy_period),
                    checkpoints_examined: examined,
                };
            }
        }

        FeasibilityOutcome {
            verdict: FeasibilityVerdict::Feasible,
            utilisation,
            busy_period: Some(busy_period),
            checkpoints_examined: examined,
        }
    }

    /// Test whether `candidate` can be added to `set`: clones the set, adds
    /// the candidate and runs the full test.  This is exactly the question
    /// the switch answers during admission control.
    pub fn test_with_candidate(
        &self,
        set: &TaskSet,
        candidate: &PeriodicTask,
    ) -> FeasibilityOutcome {
        let mut tentative = set.clone();
        tentative.push(*candidate);
        self.test(&tentative)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testgen::random_task_vec;
    use rt_types::rng::Xoshiro256;

    fn task(p: u64, c: u64, d: u64) -> PeriodicTask {
        PeriodicTask::new(Slots::new(p), Slots::new(c), Slots::new(d)).unwrap()
    }

    #[test]
    fn empty_set_is_feasible() {
        let out = FeasibilityTester::new().test(&TaskSet::new());
        assert!(out.is_feasible());
        assert_eq!(out.utilisation, 0.0);
    }

    #[test]
    fn implicit_deadline_uses_utilisation_bound_only() {
        // Three tasks with d = P and U exactly 1: feasible by Liu & Layland.
        let set = TaskSet::from_tasks(vec![task(2, 1, 2), task(4, 1, 4), task(4, 1, 4)]);
        let out = FeasibilityTester::new().test(&set);
        assert!(out.is_feasible());
        assert_eq!(out.checkpoints_examined, 0);

        // Push it over 1.
        let mut set = set;
        set.push(task(100, 1, 100));
        let out = FeasibilityTester::new().test(&set);
        assert_eq!(out.verdict, FeasibilityVerdict::UtilisationExceeded);
    }

    #[test]
    fn paper_parameters_per_uplink_limit() {
        // SDPS halves the deadline of C=3, P=100, D=40 channels to 20 slots.
        // On one uplink at most floor(20/3) = 6 such halves fit.
        let tester = FeasibilityTester::new();
        let mut set = TaskSet::new();
        for i in 0..7 {
            let out = tester.test_with_candidate(&set, &task(100, 3, 20));
            if i < 6 {
                assert!(out.is_feasible(), "channel {i} should be accepted");
                set.push(task(100, 3, 20));
            } else {
                assert!(!out.is_feasible(), "channel {i} should be rejected");
                assert!(matches!(
                    out.verdict,
                    FeasibilityVerdict::DemandExceeded { at, demand }
                        if at == Slots::new(20) && demand == Slots::new(21)
                ));
            }
        }
        // With ADPS-style asymmetric deadlines (d_u = 33) the same uplink
        // fits floor(33/3) = 11 halves.
        let mut set = TaskSet::new();
        for _ in 0..11 {
            let out = tester.test_with_candidate(&set, &task(100, 3, 33));
            assert!(out.is_feasible());
            set.push(task(100, 3, 33));
        }
        assert!(!tester
            .test_with_candidate(&set, &task(100, 3, 33))
            .is_feasible());
    }

    #[test]
    fn demand_violation_is_detected_even_with_low_utilisation() {
        // Two tasks, each C=4 with deadline 5: at t=5 the demand is 8 > 5,
        // although the utilisation is only 8/100.
        let set = TaskSet::from_tasks(vec![task(50, 4, 5), task(50, 4, 5)]);
        let out = FeasibilityTester::new().test(&set);
        assert!(matches!(
            out.verdict,
            FeasibilityVerdict::DemandExceeded { at, demand }
                if at == Slots::new(5) && demand == Slots::new(8)
        ));
        // The utilisation-only tester happily (and wrongly) accepts it.
        let out = FeasibilityTester::utilisation_only().test(&set);
        assert!(out.is_feasible());
    }

    #[test]
    fn constrained_deadlines_feasible_case() {
        // C=1, P=10, d=2 for five tasks: at t=2 demand is 5 > 2? Yes — so
        // that is infeasible.  Use d spread out instead.
        let set = TaskSet::from_tasks(vec![
            task(10, 1, 2),
            task(10, 1, 4),
            task(10, 1, 6),
            task(10, 1, 8),
            task(10, 1, 10),
        ]);
        let out = FeasibilityTester::new().test(&set);
        assert!(out.is_feasible());
        assert!(out.checkpoints_examined > 0);
    }

    #[test]
    fn analysis_cap_reported() {
        let set = TaskSet::from_tasks(vec![task(7, 3, 6), task(11, 5, 9)]);
        let tester = FeasibilityTester::with_config(FeasibilityConfig {
            busy_period_cap: Slots::new(2),
            utilisation_only: false,
        });
        let out = tester.test(&set);
        assert_eq!(out.verdict, FeasibilityVerdict::AnalysisLimitExceeded);
        assert!(!out.is_feasible());
    }

    #[test]
    fn candidate_test_does_not_mutate_set() {
        let set = TaskSet::from_tasks(vec![task(100, 3, 20)]);
        let before = set.clone();
        let _ = FeasibilityTester::new().test_with_candidate(&set, &task(100, 3, 20));
        assert_eq!(set, before);
    }

    /// The full test never accepts a set that the utilisation bound rejects
    /// (it is strictly stronger).
    #[test]
    fn prop_full_test_stronger_than_utilisation() {
        let mut rng = Xoshiro256::new(0xfea5_0001);
        for _ in 0..128 {
            let tasks = random_task_vec(&mut rng, (1, 9), (2, 39), (1, 7), (1, 49));
            let set = TaskSet::from_tasks(tasks);
            let full = FeasibilityTester::new().test(&set);
            let util = FeasibilityTester::utilisation_only().test(&set);
            if full.is_feasible() {
                assert!(util.is_feasible());
            }
        }
    }

    /// Removing a task never turns a feasible set infeasible
    /// (sustainability of the demand-based test).
    #[test]
    fn prop_feasibility_monotone_under_removal() {
        let mut rng = Xoshiro256::new(0xfea5_0002);
        for _ in 0..128 {
            let tasks = random_task_vec(&mut rng, (2, 7), (2, 29), (1, 5), (2, 39));
            let set = TaskSet::from_tasks(tasks.clone());
            let tester = FeasibilityTester::new();
            if tester.test(&set).is_feasible() {
                let mut smaller = tasks;
                let idx = rng.below(smaller.len() as u64) as usize;
                smaller.remove(idx);
                let smaller = TaskSet::from_tasks(smaller);
                assert!(tester.test(&smaller).is_feasible());
            }
        }
    }
}
