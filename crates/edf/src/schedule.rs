//! Slot-accurate single-link EDF schedule generation.
//!
//! The analytical feasibility test of [`crate::feasibility`] answers *whether*
//! a task set can be scheduled; this module actually builds the schedule, one
//! slot at a time, and reports every deadline miss.  It serves two purposes:
//!
//! * **cross-validation** — property tests assert that any set the analysis
//!   declares feasible produces a miss-free schedule over its hyperperiod
//!   (and that the utilisation-only shortcut does *not* enjoy this property
//!   for constrained deadlines, which is Ablation B);
//! * **tie-break documentation** — frames are atomic (one slot each), so the
//!   link is effectively preemptive at slot granularity, exactly the model
//!   the paper's analysis assumes.

use rt_types::Slots;

use crate::queue::EdfQueue;
use crate::taskset::TaskSet;

/// A single deadline miss observed while simulating the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineMiss {
    /// Index of the task (position in the task set) whose job missed.
    pub task_index: usize,
    /// Release time of the offending job.
    pub release: Slots,
    /// Absolute deadline that was missed.
    pub deadline: Slots,
    /// Slots of the job still unsent at the deadline.
    pub remaining: Slots,
}

/// The result of simulating an EDF schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleOutcome {
    /// Horizon that was simulated (slots `0 .. horizon`).
    pub horizon: Slots,
    /// Every deadline miss that occurred, in chronological order.
    pub misses: Vec<DeadlineMiss>,
    /// Number of slots in which the link was busy.
    pub busy_slots: u64,
    /// Number of jobs that completed by their deadline.
    pub completed_jobs: u64,
}

impl ScheduleOutcome {
    /// `true` if no deadline was missed within the horizon.
    pub fn is_miss_free(&self) -> bool {
        self.misses.is_empty()
    }

    /// Fraction of the horizon during which the link was transmitting.
    pub fn link_utilisation(&self) -> f64 {
        if self.horizon.is_zero() {
            0.0
        } else {
            self.busy_slots as f64 / self.horizon.get() as f64
        }
    }
}

/// One in-flight job during schedule simulation.
#[derive(Debug, Clone, Copy)]
struct Job {
    task_index: usize,
    release: Slots,
    deadline: Slots,
    remaining: Slots,
}

/// Simulate a synchronous (all first releases at time 0), fully periodic EDF
/// schedule of `set` on one link for `horizon` slots.
///
/// Frames are one slot long and the scheduler re-evaluates after every slot,
/// so the schedule is preemptive at slot granularity with FIFO tie-breaking
/// among equal deadlines.  Misses are recorded when a job's absolute deadline
/// passes while it still has slots remaining (the job then keeps running —
/// "late completion" semantics — so one overload does not silently absorb
/// later ones).
pub fn simulate_edf_schedule(set: &TaskSet, horizon: Slots) -> ScheduleOutcome {
    let mut outcome = ScheduleOutcome {
        horizon,
        misses: Vec::new(),
        busy_slots: 0,
        completed_jobs: 0,
    };
    if set.is_empty() || horizon.is_zero() {
        return outcome;
    }

    // Ready queue keyed by absolute deadline, plus the job currently being
    // transmitted (kept out of the queue so that equal-deadline jobs run to
    // completion instead of round-robining).
    let mut ready: EdfQueue<Job> = EdfQueue::new();
    let mut current: Option<Job> = None;
    // Per-task next release time.
    let mut next_release: Vec<Slots> = vec![Slots::ZERO; set.len()];

    for t in 0..horizon.get() {
        let now = Slots::new(t);

        // Release new jobs whose release time has arrived.
        for (idx, task) in set.tasks().iter().enumerate() {
            while next_release[idx] <= now {
                let release = next_release[idx];
                let deadline = release + task.relative_deadline();
                ready.push(
                    deadline.get(),
                    Job {
                        task_index: idx,
                        release,
                        deadline,
                        remaining: task.capacity(),
                    },
                );
                next_release[idx] = release + task.period();
            }
        }

        // Pick the job for this slot: keep the current one unless a strictly
        // earlier deadline is waiting (EDF preemption at slot granularity).
        match current.take() {
            Some(cur) => {
                if ready
                    .peek_deadline()
                    .is_some_and(|d| d < cur.deadline.get())
                {
                    ready.push(cur.deadline.get(), cur);
                    current = ready.pop().map(|(_, j)| j);
                } else {
                    current = Some(cur);
                }
            }
            None => current = ready.pop().map(|(_, j)| j),
        }

        // Transmit one slot of the chosen job, if any.
        if let Some(mut job) = current.take() {
            outcome.busy_slots += 1;
            job.remaining = job.remaining.saturating_sub(Slots::ONE);
            let finish = now + Slots::ONE;
            if job.remaining.is_zero() {
                if finish <= job.deadline {
                    outcome.completed_jobs += 1;
                }
                // A late completion was already recorded as a miss at the
                // slot boundary where its deadline passed.
            } else {
                current = Some(job);
            }
        }

        // Record misses: any job (queued or in transmission) whose deadline
        // falls exactly on the next slot boundary and that still has work
        // left has missed.  Each job is recorded exactly once because the
        // check uses equality with the boundary.
        let boundary = now + Slots::ONE;
        let mut missed_now: Vec<DeadlineMiss> = ready
            .iter_unordered()
            .map(|(_, job)| job)
            .chain(current.iter())
            .filter(|job| job.deadline == boundary && !job.remaining.is_zero())
            .map(|job| DeadlineMiss {
                task_index: job.task_index,
                release: job.release,
                deadline: job.deadline,
                remaining: job.remaining,
            })
            .collect();
        missed_now.sort_by_key(|m| (m.deadline.get(), m.task_index));
        outcome.misses.extend(missed_now);
    }

    outcome
}

/// Simulate over the set's hyperperiod (or `fallback` slots if the
/// hyperperiod overflows), which is sufficient to observe any miss of a
/// synchronous periodic set.
pub fn simulate_over_hyperperiod(set: &TaskSet, fallback: Slots) -> ScheduleOutcome {
    let horizon = set.hyperperiod().unwrap_or(fallback).min(fallback);
    simulate_edf_schedule(set, horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::FeasibilityTester;
    use crate::task::PeriodicTask;
    use crate::testgen::random_task_vec;
    use rt_types::rng::Xoshiro256;

    fn task(p: u64, c: u64, d: u64) -> PeriodicTask {
        PeriodicTask::new(Slots::new(p), Slots::new(c), Slots::new(d)).unwrap()
    }

    #[test]
    fn empty_set_idles() {
        let out = simulate_edf_schedule(&TaskSet::new(), Slots::new(100));
        assert!(out.is_miss_free());
        assert_eq!(out.busy_slots, 0);
        assert_eq!(out.link_utilisation(), 0.0);
    }

    #[test]
    fn single_task_schedules_cleanly() {
        let set = TaskSet::from_tasks(vec![task(10, 3, 10)]);
        let out = simulate_edf_schedule(&set, Slots::new(100));
        assert!(out.is_miss_free());
        assert_eq!(out.busy_slots, 30);
        assert_eq!(out.completed_jobs, 10);
        assert!((out.link_utilisation() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn full_utilisation_implicit_deadlines_meets_all() {
        let set = TaskSet::from_tasks(vec![task(2, 1, 2), task(4, 2, 4)]);
        let out = simulate_over_hyperperiod(&set, Slots::new(1000));
        assert!(out.is_miss_free());
        assert_eq!(out.busy_slots, out.horizon.get());
    }

    #[test]
    fn overload_produces_misses() {
        // Two tasks each needing 4 slots by t=5: impossible.
        let set = TaskSet::from_tasks(vec![task(50, 4, 5), task(50, 4, 5)]);
        let out = simulate_edf_schedule(&set, Slots::new(50));
        assert!(!out.is_miss_free());
        let m = out.misses[0];
        assert_eq!(m.deadline, Slots::new(5));
        assert_eq!(m.remaining, Slots::new(3));
    }

    #[test]
    fn six_sdps_halves_fit_one_uplink_but_seven_do_not() {
        // The Fig. 18.5 arithmetic: C=3, d_u=20, P=100.
        let six = TaskSet::from_tasks(vec![task(100, 3, 20); 6]);
        assert!(simulate_edf_schedule(&six, Slots::new(500)).is_miss_free());
        let seven = TaskSet::from_tasks(vec![task(100, 3, 20); 7]);
        let out = simulate_edf_schedule(&seven, Slots::new(500));
        assert!(!out.is_miss_free());
        assert_eq!(out.misses[0].deadline, Slots::new(20));
    }

    #[test]
    fn misses_recorded_once_per_job() {
        let set = TaskSet::from_tasks(vec![task(100, 4, 5), task(100, 4, 5)]);
        let out = simulate_edf_schedule(&set, Slots::new(100));
        // Exactly one job misses (the second one), exactly once.
        assert_eq!(out.misses.len(), 1);
    }

    /// Analytical feasibility implies a miss-free simulated schedule over
    /// the hyperperiod (soundness of the admission test).
    #[test]
    fn prop_feasible_implies_miss_free() {
        let mut rng = Xoshiro256::new(0x5c4e_0001);
        for _ in 0..64 {
            let tasks = random_task_vec(&mut rng, (1, 5), (2, 24), (1, 4), (1, 29));
            let set = TaskSet::from_tasks(tasks);
            let verdict = FeasibilityTester::new().test(&set);
            if verdict.is_feasible() {
                let out = simulate_over_hyperperiod(&set, Slots::new(100_000));
                assert!(
                    out.is_miss_free(),
                    "analysis said feasible but schedule missed: {:?}",
                    out.misses
                );
            }
        }
    }

    /// A simulated miss implies the analysis also rejects the set
    /// (completeness over the hyperperiod for synchronous release).
    #[test]
    fn prop_miss_implies_infeasible() {
        let mut rng = Xoshiro256::new(0x5c4e_0002);
        for _ in 0..64 {
            let tasks = random_task_vec(&mut rng, (1, 4), (2, 19), (1, 3), (1, 24));
            let set = TaskSet::from_tasks(tasks);
            let out = simulate_over_hyperperiod(&set, Slots::new(100_000));
            if !out.is_miss_free() {
                let verdict = FeasibilityTester::new().test(&set);
                assert!(
                    !verdict.is_feasible(),
                    "schedule missed but analysis said feasible"
                );
            }
        }
    }
}
