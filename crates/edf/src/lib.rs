//! # rt-edf
//!
//! Earliest-Deadline-First scheduling theory and queueing primitives, as used
//! by the paper's per-link admission control (§18.3):
//!
//! * [`task`] — the periodic task model `{P, C, d}` that each half of an RT
//!   channel (uplink part, downlink part) maps onto,
//! * [`taskset`] — utilisation, hyperperiod, busy period and the workload
//!   function `h(t)` of Eq. 18.3,
//! * [`feasibility`] — the two-constraint feasibility test (utilisation ≤ 1,
//!   `h(t) ≤ t` at the Eq. 18.5 check-points within the first busy period,
//!   Eq. 18.4),
//! * [`queue`] — the deadline-sorted (EDF) output queue and the FCFS
//!   best-effort queue used by end nodes and switch ports,
//! * [`schedule`] — a slot-accurate single-link EDF schedule generator used
//!   to cross-validate the analytical test in property tests and in the
//!   feasibility-ablation experiment.
//!
//! Everything here is expressed in integer time slots ([`rt_types::Slots`]);
//! conversion to wall-clock time is the simulator's business.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod feasibility;
pub mod fixed_priority;
pub mod queue;
pub mod schedule;
pub mod task;
pub mod taskset;

#[cfg(test)]
pub(crate) mod testgen;

pub use feasibility::{FeasibilityConfig, FeasibilityOutcome, FeasibilityTester};
pub use fixed_priority::{dm_schedulable, dm_schedulable_with_candidate, DmAnalysis};
pub use queue::{EdfQueue, FcfsQueue};
pub use schedule::{simulate_edf_schedule, ScheduleOutcome};
pub use task::PeriodicTask;
pub use taskset::TaskSet;
