//! A fixed-priority (Deadline-Monotonic) baseline scheduler analysis.
//!
//! The paper's conclusions suggest that "alternative communication models
//! and scheduling algorithms could be explored"; the natural alternative to
//! frame-level EDF on a link is fixed-priority scheduling with priorities
//! assigned Deadline-Monotonically (shorter relative deadline ⇒ higher
//! priority), which is what simpler switch implementations with a small
//! number of strict-priority queues approximate.
//!
//! This module provides the classical response-time analysis for that
//! baseline so experiments can compare how many channels a link admits under
//! DM versus under EDF.  For constrained-deadline periodic tasks released
//! synchronously, the worst-case response time of task `i` is the smallest
//! fixed point of
//!
//! ```text
//! R_i = C_i + Σ_{j ∈ hp(i)} ⌈R_i / P_j⌉ · C_j
//! ```
//!
//! and the set is schedulable iff `R_i ≤ d_i` for every task.  EDF dominates
//! DM (every DM-schedulable set is EDF-schedulable, not vice versa), which
//! the tests assert against [`crate::feasibility::FeasibilityTester`].

use rt_types::Slots;

use crate::task::PeriodicTask;
use crate::taskset::TaskSet;

/// The outcome of the Deadline-Monotonic response-time analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmAnalysis {
    /// `true` if every task's worst-case response time is within its
    /// relative deadline.
    pub schedulable: bool,
    /// Worst-case response time per task, in the order of the *input* task
    /// set (`None` when the fixed-point iteration exceeded the analysis cap,
    /// which also forces `schedulable = false`).
    pub response_times: Vec<Option<Slots>>,
}

impl DmAnalysis {
    /// The largest computed response time, if all converged.
    pub fn worst_response_time(&self) -> Option<Slots> {
        self.response_times
            .iter()
            .copied()
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .max()
    }
}

/// Deadline-Monotonic feasibility via exact response-time analysis.
///
/// `cap` bounds the fixed-point iteration (a response time above the cap is
/// treated as divergence, i.e. unschedulable); the largest relative deadline
/// in the set is always a sufficient cap for the schedulability question.
pub fn dm_response_time_analysis(set: &TaskSet, cap: Slots) -> DmAnalysis {
    let n = set.len();
    if n == 0 {
        return DmAnalysis {
            schedulable: true,
            response_times: Vec::new(),
        };
    }
    // Priority order: ascending relative deadline (ties broken by input
    // order, which keeps the analysis deterministic).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (set.tasks()[i].relative_deadline(), i));

    let mut response_times: Vec<Option<Slots>> = vec![None; n];
    let mut schedulable = true;
    for (rank, &idx) in order.iter().enumerate() {
        let task = &set.tasks()[idx];
        let higher: Vec<&PeriodicTask> = order[..rank].iter().map(|&j| &set.tasks()[j]).collect();
        let response = response_time(task, &higher, cap);
        // The single-busy-window recurrence is exact only while a job
        // finishes before its successor is released (R <= P); for tasks with
        // d > P the bound is therefore applied to min(d, P), which keeps the
        // verdict sound (never optimistic) at the cost of some pessimism for
        // arbitrary-deadline sets.
        let limit = task.relative_deadline().min(task.period());
        match response {
            Some(r) if r <= limit => {
                response_times[idx] = Some(r);
            }
            Some(r) => {
                response_times[idx] = Some(r);
                schedulable = false;
            }
            None => {
                schedulable = false;
            }
        }
    }
    DmAnalysis {
        schedulable,
        response_times,
    }
}

/// Worst-case response time of `task` against the higher-priority tasks
/// `higher`, or `None` if the iteration exceeds `cap`.
fn response_time(task: &PeriodicTask, higher: &[&PeriodicTask], cap: Slots) -> Option<Slots> {
    let mut r = task.capacity();
    loop {
        if r > cap {
            return None;
        }
        let interference: Slots = higher
            .iter()
            .map(|h| h.capacity().saturating_mul(r.div_ceil(h.period())))
            .sum();
        let next = task.capacity().saturating_add(interference);
        if next == r {
            return Some(r);
        }
        r = next;
    }
}

/// Convenience wrapper mirroring the EDF tester's interface: is `set`
/// schedulable under Deadline-Monotonic fixed priorities?
pub fn dm_schedulable(set: &TaskSet) -> bool {
    let cap = set
        .max_relative_deadline()
        .unwrap_or(Slots::ZERO)
        .saturating_add(Slots::ONE);
    dm_response_time_analysis(set, cap).schedulable
}

/// Can `candidate` be added to `set` and keep the link DM-schedulable?
pub fn dm_schedulable_with_candidate(set: &TaskSet, candidate: &PeriodicTask) -> bool {
    let mut tentative = set.clone();
    tentative.push(*candidate);
    dm_schedulable(&tentative)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::FeasibilityTester;
    use crate::schedule::simulate_over_hyperperiod;
    use crate::testgen::random_task_vec;
    use rt_types::rng::Xoshiro256;

    fn task(p: u64, c: u64, d: u64) -> PeriodicTask {
        PeriodicTask::new(Slots::new(p), Slots::new(c), Slots::new(d)).unwrap()
    }

    #[test]
    fn empty_and_single_task_sets() {
        assert!(dm_schedulable(&TaskSet::new()));
        let set = TaskSet::from_tasks(vec![task(10, 3, 10)]);
        let analysis = dm_response_time_analysis(&set, Slots::new(100));
        assert!(analysis.schedulable);
        assert_eq!(analysis.response_times, vec![Some(Slots::new(3))]);
        assert_eq!(analysis.worst_response_time(), Some(Slots::new(3)));
    }

    #[test]
    fn classic_response_time_example() {
        // Three tasks (C, P=D): (1,4), (2,6), (3,13) — a textbook RTA case.
        let set = TaskSet::from_tasks(vec![task(4, 1, 4), task(6, 2, 6), task(13, 3, 13)]);
        let analysis = dm_response_time_analysis(&set, Slots::new(1000));
        assert!(analysis.schedulable);
        // R1 = 1; R2 = 2 + 1 = 3; R3 iterates 3 -> 6 -> 9 -> 10 -> 10.
        assert_eq!(analysis.response_times[0], Some(Slots::new(1)));
        assert_eq!(analysis.response_times[1], Some(Slots::new(3)));
        assert_eq!(analysis.response_times[2], Some(Slots::new(10)));
        assert_eq!(analysis.worst_response_time(), Some(Slots::new(10)));
    }

    #[test]
    fn unschedulable_set_is_detected() {
        // Utilisation 1.0 with inverted deadline pressure: (C=5, P=10, d=6)
        // and (C=5, P=10, d=10): the low-priority task gets response 10 > 10?
        // R2 = 5 + ceil(R2/10)*5 -> 10 <= 10 fine; make it harder: d2 = 9.
        let set = TaskSet::from_tasks(vec![task(10, 5, 6), task(10, 5, 9)]);
        let analysis = dm_response_time_analysis(&set, Slots::new(1000));
        assert!(!analysis.schedulable);
        assert_eq!(analysis.response_times[1], Some(Slots::new(10)));
        // EDF, by contrast, schedules it (demand at 6 is 5, at 9 is 10 > 9?
        // h(9) = 5 + 5 = 10 > 9 -> actually EDF also rejects this one).
        // Use a set EDF accepts but DM rejects below.
    }

    #[test]
    fn edf_dominates_dm_on_a_concrete_set() {
        // Two tasks where DM's fixed priorities fail but EDF succeeds:
        // t1 = (P=10, C=6, d=10), t2 = (P=14, C=5, d=14).
        // DM: t1 has priority; R2 = 5 + ceil(R2/10)*6 -> 11 -> 17 > 14: fail.
        // EDF: U = 0.6 + 0.357 = 0.957 <= 1 with implicit deadlines: feasible.
        let set = TaskSet::from_tasks(vec![task(10, 6, 10), task(14, 5, 14)]);
        assert!(!dm_schedulable(&set));
        assert!(FeasibilityTester::new().test(&set).is_feasible());
        // And the slot-level EDF schedule indeed has no misses.
        assert!(simulate_over_hyperperiod(&set, Slots::new(100_000)).is_miss_free());
    }

    #[test]
    fn paper_uplink_capacity_under_dm_equals_edf_for_identical_tasks() {
        // With identical tasks (same C, P, d) DM and EDF admit the same
        // number on one link: 6 halves of the paper's channels at d_u = 20.
        let mut set = TaskSet::new();
        for i in 0..7 {
            let candidate = task(100, 3, 20);
            let dm = dm_schedulable_with_candidate(&set, &candidate);
            let edf = FeasibilityTester::new()
                .test_with_candidate(&set, &candidate)
                .is_feasible();
            assert_eq!(dm, edf, "divergence at channel {i}");
            if dm {
                set.push(candidate);
            }
        }
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn candidate_test_does_not_mutate() {
        let set = TaskSet::from_tasks(vec![task(10, 2, 10)]);
        let before = set.clone();
        let _ = dm_schedulable_with_candidate(&set, &task(10, 2, 10));
        assert_eq!(set, before);
    }

    #[test]
    fn capped_iteration_reports_unschedulable() {
        // Over-utilised: the low-priority task's response (12) exceeds both
        // its deadline and, with a tight analysis cap, the cap itself.
        let set = TaskSet::from_tasks(vec![task(4, 3, 4), task(5, 3, 5)]);
        let analysis = dm_response_time_analysis(&set, Slots::new(50));
        assert!(!analysis.schedulable);
        assert_eq!(analysis.response_times[1], Some(Slots::new(12)));
        // With a cap below the fixed point the iteration is cut off and the
        // response is reported as unknown.
        let capped = dm_response_time_analysis(&set, Slots::new(8));
        assert!(!capped.schedulable);
        assert_eq!(capped.response_times[1], None);
        assert_eq!(capped.worst_response_time(), None);
    }

    /// EDF dominates DM: any DM-schedulable set passes the EDF feasibility
    /// test.
    #[test]
    fn prop_edf_dominates_dm() {
        let mut rng = Xoshiro256::new(0xd300_0001);
        for _ in 0..64 {
            let tasks = random_task_vec(&mut rng, (1, 6), (2, 29), (1, 5), (1, 39));
            let set = TaskSet::from_tasks(tasks);
            if dm_schedulable(&set) {
                assert!(
                    FeasibilityTester::new().test(&set).is_feasible(),
                    "DM-schedulable set rejected by the EDF test"
                );
            }
        }
    }

    /// DM schedulability matches a priority-faithful property: removing a
    /// task never breaks schedulability.
    #[test]
    fn prop_dm_sustainable_under_removal() {
        let mut rng = Xoshiro256::new(0xd300_0002);
        for _ in 0..64 {
            let tasks = random_task_vec(&mut rng, (2, 6), (2, 24), (1, 4), (2, 34));
            let set = TaskSet::from_tasks(tasks.clone());
            if dm_schedulable(&set) {
                let mut smaller = tasks;
                let idx = rng.below(smaller.len() as u64) as usize;
                smaller.remove(idx);
                assert!(dm_schedulable(&TaskSet::from_tasks(smaller)));
            }
        }
    }
}
