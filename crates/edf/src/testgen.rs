//! Shared generators for the crate's randomised unit tests (the in-repo
//! replacement for the property-testing dependency): valid random task sets
//! drawn from configurable parameter ranges, always respecting the
//! [`PeriodicTask`] invariants.

use rt_types::rng::Xoshiro256;
use rt_types::Slots;

use crate::task::PeriodicTask;

/// Draw `n` valid tasks with `period ∈ [p.0, p.1]`, `capacity ∈ [c.0, c.1]`
/// (clamped to the period) and `relative deadline ∈ [d.0, d.1]` (clamped up
/// to the capacity).
pub(crate) fn random_tasks(
    rng: &mut Xoshiro256,
    n: usize,
    p: (u64, u64),
    c: (u64, u64),
    d: (u64, u64),
) -> Vec<PeriodicTask> {
    (0..n)
        .map(|_| {
            let period = rng.range_inclusive(p.0, p.1);
            let capacity = rng.range_inclusive(c.0, c.1).min(period);
            let deadline = rng.range_inclusive(d.0, d.1).max(capacity);
            PeriodicTask::new(
                Slots::new(period),
                Slots::new(capacity),
                Slots::new(deadline),
            )
            .expect("generated parameters satisfy the task invariants")
        })
        .collect()
}

/// Draw a task-set size in `[lo, hi]` followed by that many tasks.
pub(crate) fn random_task_vec(
    rng: &mut Xoshiro256,
    len: (usize, usize),
    p: (u64, u64),
    c: (u64, u64),
    d: (u64, u64),
) -> Vec<PeriodicTask> {
    let n = rng.range_inclusive(len.0 as u64, len.1 as u64) as usize;
    random_tasks(rng, n, p, c, d)
}
