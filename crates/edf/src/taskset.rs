//! Sets of periodic tasks sharing one link, and the quantities the paper's
//! feasibility analysis needs: utilisation, hyperperiod, busy period and the
//! workload function `h(t)` (Eq. 18.3) with its check-points (Eq. 18.5).

use rt_types::Slots;

use crate::task::PeriodicTask;

/// An exact rational utilisation value `num/den`, kept reduced.
///
/// Using an exact fraction (rather than accumulating floats) makes the
/// "utilisation ≤ 1" constraint of the feasibility test deterministic even
/// for hundreds of channels with awkward periods.  When the exact arithmetic
/// would overflow `u128` (pathologically co-prime periods), the value is
/// rounded *up* to a fixed-point approximation, so the admission test can
/// become slightly pessimistic but never optimistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Utilisation {
    num: u128,
    den: u128,
}

/// Denominator used when exact arithmetic has to fall back to fixed point.
const FIXED_DEN: u128 = 1 << 40;
/// Denominator bound above which fractions are converted to fixed point to
/// keep subsequent arithmetic overflow-free.
const MAX_EXACT_DEN: u128 = 1 << 80;

impl Utilisation {
    /// Zero utilisation.
    pub const ZERO: Utilisation = Utilisation { num: 0, den: 1 };

    /// Build the utilisation `capacity / period` of one task.
    pub fn of_task(task: &PeriodicTask) -> Utilisation {
        Utilisation::from_ratio(task.capacity().get() as u128, task.period().get() as u128)
    }

    /// Build from an arbitrary ratio (`den` must be non-zero).
    pub fn from_ratio(num: u128, den: u128) -> Utilisation {
        assert!(den != 0, "utilisation denominator must be non-zero");
        let mut u = Utilisation { num, den };
        u.reduce();
        u
    }

    fn reduce(&mut self) {
        let g = gcd_u128(self.num, self.den);
        if g > 1 {
            self.num /= g;
            self.den /= g;
        }
    }

    /// Convert to fixed point with denominator [`FIXED_DEN`], rounding the
    /// numerator up (conservative for admission control).
    fn to_fixed(self) -> Utilisation {
        if self.den == FIXED_DEN {
            return self;
        }
        let q = self.num / self.den;
        let r = self.num % self.den;
        // r < den <= MAX_EXACT_DEN = 2^80, FIXED_DEN = 2^40, so r * FIXED_DEN
        // stays well inside u128.
        let frac = (r * FIXED_DEN).div_ceil(self.den);
        Utilisation {
            num: q * FIXED_DEN + frac,
            den: FIXED_DEN,
        }
    }

    /// Add another utilisation.  Exact whenever the intermediate values fit;
    /// otherwise both operands are rounded up to fixed point first.
    #[allow(clippy::should_implement_trait)] // consuming, infallible sum — the name mirrors the maths
    pub fn add(self, other: Utilisation) -> Utilisation {
        // a/b + c/d = (a*(d/g) + c*(b/g)) / (b*(d/g)) with g = gcd(b, d).
        let g = gcd_u128(self.den, other.den);
        let lb = self.den / g;
        let rb = other.den / g;
        let exact = (|| {
            let den = self.den.checked_mul(rb)?;
            if den > MAX_EXACT_DEN {
                return None;
            }
            let num = self
                .num
                .checked_mul(rb)?
                .checked_add(other.num.checked_mul(lb)?)?;
            Some(Utilisation::from_ratio(num, den))
        })();
        match exact {
            Some(u) => u,
            None => {
                let a = self.to_fixed();
                let b = other.to_fixed();
                Utilisation::from_ratio(a.num.saturating_add(b.num), FIXED_DEN)
            }
        }
    }

    /// `true` if the utilisation is strictly greater than 1.
    pub fn exceeds_one(self) -> bool {
        self.num > self.den
    }

    /// `true` if the utilisation is less than or equal to 1.
    pub fn at_most_one(self) -> bool {
        self.num <= self.den
    }

    /// The value as a float (for reporting only).
    pub fn as_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// A set of periodic tasks competing for one directed link.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskSet {
    tasks: Vec<PeriodicTask>,
}

impl TaskSet {
    /// The empty task set.
    pub fn new() -> Self {
        TaskSet::default()
    }

    /// Build from a vector of tasks.
    pub fn from_tasks(tasks: Vec<PeriodicTask>) -> Self {
        TaskSet { tasks }
    }

    /// Number of tasks (the paper's *LinkLoad* of the link).
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if there are no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The tasks.
    pub fn tasks(&self) -> &[PeriodicTask] {
        &self.tasks
    }

    /// Add a task.
    pub fn push(&mut self, task: PeriodicTask) {
        self.tasks.push(task);
    }

    /// Remove the first task equal to `task`; returns `true` if one was
    /// removed.  Used to roll back a tentative admission.
    pub fn remove_one(&mut self, task: &PeriodicTask) -> bool {
        if let Some(pos) = self.tasks.iter().position(|t| t == task) {
            self.tasks.remove(pos);
            true
        } else {
            false
        }
    }

    /// Total utilisation `U = Σ C_i / P_i` (Eq. 18.2), exact.
    pub fn utilisation(&self) -> Utilisation {
        self.tasks
            .iter()
            .fold(Utilisation::ZERO, |acc, t| acc.add(Utilisation::of_task(t)))
    }

    /// Total utilisation as a float (reporting only).
    pub fn utilisation_f64(&self) -> f64 {
        self.tasks.iter().map(|t| t.utilisation()).sum()
    }

    /// The hyperperiod (least common multiple of all periods), or `None` if
    /// it overflows `u64` or the set is empty.
    pub fn hyperperiod(&self) -> Option<Slots> {
        if self.tasks.is_empty() {
            return None;
        }
        let mut lcm = Slots::ONE;
        for t in &self.tasks {
            lcm = lcm.checked_lcm(t.period())?;
        }
        Some(lcm)
    }

    /// Length of the first busy period: the smallest fixed point of
    /// `L = Σ ceil(L / P_i) · C_i`, starting from `L = Σ C_i`.
    ///
    /// Diverges when utilisation exceeds 1, so the iteration is capped at
    /// `cap`; returns `None` if no fixed point is found below the cap.
    pub fn busy_period(&self, cap: Slots) -> Option<Slots> {
        if self.tasks.is_empty() {
            return Some(Slots::ZERO);
        }
        let mut l: Slots = self.tasks.iter().map(|t| t.capacity()).sum();
        loop {
            if l > cap {
                return None;
            }
            let next: Slots = self
                .tasks
                .iter()
                .map(|t| t.capacity().saturating_mul(l.div_ceil(t.period())))
                .sum();
            if next == l {
                return Some(l);
            }
            l = next;
        }
    }

    /// The workload function `h(t)` of Eq. 18.3: the total capacity of all
    /// jobs with absolute deadline no later than `t`, assuming synchronous
    /// release at time zero.
    pub fn workload(&self, t: Slots) -> Slots {
        self.tasks.iter().map(|task| task.demand_up_to(t)).sum()
    }

    /// The deadline check-points of Eq. 18.5 that lie in `(0, limit]`, in
    /// increasing order without duplicates: every `t = m·P_i + d_i`.
    ///
    /// Only at these points can `h(t)` increase, so Constraint 2 only needs
    /// to be evaluated there.
    pub fn checkpoints(&self, limit: Slots) -> Vec<Slots> {
        let mut points = Vec::new();
        for task in &self.tasks {
            let mut t = task.relative_deadline();
            while t <= limit {
                if !t.is_zero() {
                    points.push(t);
                }
                match t.checked_add(task.period()) {
                    Some(next) => t = next,
                    None => break,
                }
            }
        }
        points.sort_unstable();
        points.dedup();
        points
    }

    /// Convenience: the largest relative deadline in the set, if any.
    pub fn max_relative_deadline(&self) -> Option<Slots> {
        self.tasks.iter().map(|t| t.relative_deadline()).max()
    }

    /// Convenience: the sum of all capacities.
    pub fn total_capacity(&self) -> Slots {
        self.tasks.iter().map(|t| t.capacity()).sum()
    }
}

impl FromIterator<PeriodicTask> for TaskSet {
    fn from_iter<I: IntoIterator<Item = PeriodicTask>>(iter: I) -> Self {
        TaskSet {
            tasks: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testgen::random_task_vec;
    use rt_types::rng::Xoshiro256;

    fn task(p: u64, c: u64, d: u64) -> PeriodicTask {
        PeriodicTask::new(Slots::new(p), Slots::new(c), Slots::new(d)).unwrap()
    }

    #[test]
    fn utilisation_exact_arithmetic() {
        let u = Utilisation::from_ratio(1, 3)
            .add(Utilisation::from_ratio(1, 3))
            .add(Utilisation::from_ratio(1, 3));
        assert!(!u.exceeds_one());
        assert!(u.at_most_one());
        assert_eq!(u, Utilisation::from_ratio(1, 1));
        let over = u.add(Utilisation::from_ratio(1, 1_000_000));
        assert!(over.exceeds_one());
    }

    #[test]
    fn utilisation_of_paper_channel() {
        // C=3, P=100 -> 0.03 each; 33 fit under 1.0, 34 exceed it.
        let mut set = TaskSet::new();
        for _ in 0..33 {
            set.push(task(100, 3, 40));
        }
        assert!(set.utilisation().at_most_one());
        set.push(task(100, 3, 40));
        assert!(!set.utilisation().at_most_one());
        assert!((set.utilisation_f64() - 1.02).abs() < 1e-9);
    }

    #[test]
    fn hyperperiod_lcm() {
        let set = TaskSet::from_tasks(vec![task(4, 1, 4), task(6, 1, 6), task(10, 1, 10)]);
        assert_eq!(set.hyperperiod(), Some(Slots::new(60)));
        assert_eq!(TaskSet::new().hyperperiod(), None);
        // Overflow is reported as None.
        let huge = TaskSet::from_tasks(vec![
            task(u64::MAX - 1, 1, u64::MAX - 1),
            task(u64::MAX - 2, 1, u64::MAX - 2),
        ]);
        assert_eq!(huge.hyperperiod(), None);
    }

    #[test]
    fn busy_period_fixed_point() {
        // Classic example: two tasks (P=4,C=2), (P=6,C=2).
        // L0 = 4, L1 = 2*ceil(4/4) + 2*ceil(4/6) = 4 -> fixed point 4... but
        // check: ceil(4/4)=1 -> 2, ceil(4/6)=1 -> 2, total 4. Yes, 4.
        let set = TaskSet::from_tasks(vec![task(4, 2, 4), task(6, 2, 6)]);
        assert_eq!(set.busy_period(Slots::new(1000)), Some(Slots::new(4)));

        // Higher load: (P=3,C=2), (P=5,C=1): U = 2/3 + 1/5 = 13/15.
        // L0=3, L1=2*1+1*1=3 -> 3.
        let set = TaskSet::from_tasks(vec![task(3, 2, 3), task(5, 1, 5)]);
        assert_eq!(set.busy_period(Slots::new(1000)), Some(Slots::new(3)));

        // Full utilisation still converges within the hyperperiod.
        let set = TaskSet::from_tasks(vec![task(2, 1, 2), task(4, 2, 4)]);
        assert_eq!(set.busy_period(Slots::new(1000)), Some(Slots::new(4)));

        // Over-utilised sets hit the cap.
        let set = TaskSet::from_tasks(vec![task(2, 2, 2), task(3, 2, 3)]);
        assert_eq!(set.busy_period(Slots::new(10_000)), None);

        // Empty set.
        assert_eq!(
            TaskSet::new().busy_period(Slots::new(10)),
            Some(Slots::ZERO)
        );
    }

    #[test]
    fn workload_function_steps_at_deadlines() {
        let set = TaskSet::from_tasks(vec![task(100, 3, 20), task(50, 5, 30)]);
        assert_eq!(set.workload(Slots::new(19)), Slots::ZERO);
        assert_eq!(set.workload(Slots::new(20)), Slots::new(3));
        assert_eq!(set.workload(Slots::new(29)), Slots::new(3));
        assert_eq!(set.workload(Slots::new(30)), Slots::new(8));
        assert_eq!(set.workload(Slots::new(80)), Slots::new(13)); // 2nd job of task 2 at 50+30
        assert_eq!(set.workload(Slots::new(120)), Slots::new(6 + 10));
    }

    #[test]
    fn checkpoints_match_eq_18_5() {
        let set = TaskSet::from_tasks(vec![task(100, 3, 20), task(50, 5, 30)]);
        let pts = set.checkpoints(Slots::new(200));
        assert_eq!(
            pts,
            vec![
                Slots::new(20),
                Slots::new(30),
                Slots::new(80),
                Slots::new(120),
                Slots::new(130),
                Slots::new(180),
            ]
        );
        // Duplicates collapse.
        let set = TaskSet::from_tasks(vec![task(10, 1, 5), task(10, 2, 5)]);
        let pts = set.checkpoints(Slots::new(30));
        assert_eq!(pts, vec![Slots::new(5), Slots::new(15), Slots::new(25)]);
    }

    #[test]
    fn remove_one_rolls_back() {
        let mut set = TaskSet::new();
        let t1 = task(100, 3, 40);
        set.push(t1);
        set.push(t1);
        assert!(set.remove_one(&t1));
        assert_eq!(set.len(), 1);
        assert!(set.remove_one(&t1));
        assert!(!set.remove_one(&t1));
        assert!(set.is_empty());
    }

    #[test]
    fn totals() {
        let set = TaskSet::from_tasks(vec![task(10, 2, 10), task(20, 5, 15)]);
        assert_eq!(set.total_capacity(), Slots::new(7));
        assert_eq!(set.max_relative_deadline(), Some(Slots::new(15)));
        assert_eq!(TaskSet::new().max_relative_deadline(), None);
    }

    /// h(t) is non-decreasing in t.
    #[test]
    fn prop_workload_monotone() {
        let mut rng = Xoshiro256::new(0x7a5e_0001);
        for _ in 0..128 {
            let tasks = random_task_vec(&mut rng, (1, 7), (2, 49), (1, 9), (1, 59));
            let set = TaskSet::from_tasks(tasks);
            let t1 = rng.below(200);
            let dt = rng.below(200);
            let a = set.workload(Slots::new(t1));
            let b = set.workload(Slots::new(t1 + dt));
            assert!(b >= a);
        }
    }

    /// The exact utilisation agrees with the float within rounding error.
    #[test]
    fn prop_utilisation_matches_float() {
        let mut rng = Xoshiro256::new(0x7a5e_0002);
        for _ in 0..128 {
            let n = rng.range_inclusive(1, 19) as usize;
            let tasks: Vec<PeriodicTask> = (0..n)
                .map(|_| {
                    let p = rng.range_inclusive(2, 999);
                    let c = rng.range_inclusive(1, 99).min(p);
                    PeriodicTask::new(Slots::new(p), Slots::new(c), Slots::new(p)).unwrap()
                })
                .collect();
            let set = TaskSet::from_tasks(tasks);
            let exact = set.utilisation().as_f64();
            let float = set.utilisation_f64();
            assert!((exact - float).abs() < 1e-6);
        }
    }

    /// h(t) only increases at checkpoints: between consecutive checkpoints
    /// the workload is constant.
    #[test]
    fn prop_workload_constant_between_checkpoints() {
        let mut rng = Xoshiro256::new(0x7a5e_0003);
        for _ in 0..64 {
            let tasks = random_task_vec(&mut rng, (1, 5), (2, 29), (1, 4), (1, 39));
            let set = TaskSet::from_tasks(tasks);
            let limit = Slots::new(120);
            let pts = set.checkpoints(limit);
            // Walk every integer t in [0, limit] and verify changes only at
            // checkpoints.
            let mut prev = set.workload(Slots::ZERO);
            for t in 1..=limit.get() {
                let cur = set.workload(Slots::new(t));
                if cur != prev {
                    assert!(
                        pts.contains(&Slots::new(t)),
                        "workload changed at t={t} which is not a checkpoint"
                    );
                }
                prev = cur;
            }
        }
    }
}
