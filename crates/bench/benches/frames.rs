//! Criterion bench: wire-format encode/decode throughput — the per-frame
//! work the RT layer adds on the data path (deadline stamping) and the
//! control path (request/response codecs).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use rt_frames::rt_data::{DeadlineStamp, RtDataFrame};
use rt_frames::{EthernetFrame, Frame, RequestFrame, ResponseFrame};
use rt_types::{ChannelId, ConnectionRequestId, Ipv4Address, MacAddr, NodeId, Slots};

fn request_frame() -> RequestFrame {
    RequestFrame {
        src_mac: MacAddr::for_node(NodeId::new(1)),
        dst_mac: MacAddr::for_node(NodeId::new(2)),
        src_ip: Ipv4Address::for_node(NodeId::new(1)),
        dst_ip: Ipv4Address::for_node(NodeId::new(2)),
        period: Slots::new(100),
        capacity: Slots::new(3),
        deadline: Slots::new(40),
        rt_channel_id: None,
        connection_request_id: ConnectionRequestId::new(1),
    }
}

fn data_frame(payload: usize) -> RtDataFrame {
    RtDataFrame {
        eth_src: MacAddr::for_node(NodeId::new(1)),
        eth_dst: MacAddr::for_node(NodeId::new(2)),
        stamp: DeadlineStamp::new(123_456_789, ChannelId::new(7)).unwrap(),
        src_port: 5000,
        dst_port: 5001,
        payload: vec![0xa5; payload],
    }
}

fn bench_frames(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_codecs");
    group
        .sample_size(50)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("request_encode", |b| {
        let f = request_frame();
        b.iter(|| black_box(f.encode().unwrap()))
    });
    group.bench_function("request_decode", |b| {
        let bytes = request_frame().encode().unwrap();
        b.iter(|| black_box(RequestFrame::decode(&bytes).unwrap()))
    });
    group.bench_function("response_roundtrip", |b| {
        let f = ResponseFrame {
            rt_channel_id: Some(ChannelId::new(3)),
            switch_mac: MacAddr::for_switch(),
            verdict: rt_frames::rt_response::ResponseVerdict::Accepted,
            connection_request_id: ConnectionRequestId::new(1),
        };
        b.iter(|| black_box(ResponseFrame::decode(&f.encode()).unwrap()))
    });

    for payload in [64usize, 1400] {
        group.bench_function(format!("rt_data_build_{payload}B"), |b| {
            let f = data_frame(payload);
            b.iter(|| black_box(f.into_ethernet().unwrap()))
        });
        group.bench_function(format!("rt_data_classify_{payload}B"), |b| {
            let eth = data_frame(payload).into_ethernet().unwrap();
            let bytes = eth.encode();
            b.iter(|| {
                let decoded = EthernetFrame::decode(&bytes).unwrap();
                black_box(Frame::classify(decoded).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_frames);
criterion_main!(benches);
