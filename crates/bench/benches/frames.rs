//! Micro-bench: wire-format encode/decode throughput — the per-frame work
//! the RT layer adds on the data path (deadline stamping) and the control
//! path (request/response codecs).

use rt_bench::MicroBench;
use rt_frames::rt_data::{DeadlineStamp, RtDataFrame};
use rt_frames::{EthernetFrame, Frame, RequestFrame, ResponseFrame};
use rt_types::{ChannelId, ConnectionRequestId, Ipv4Address, MacAddr, NodeId, Slots};

fn request_frame() -> RequestFrame {
    RequestFrame {
        src_mac: MacAddr::for_node(NodeId::new(1)),
        dst_mac: MacAddr::for_node(NodeId::new(2)),
        src_ip: Ipv4Address::for_node(NodeId::new(1)),
        dst_ip: Ipv4Address::for_node(NodeId::new(2)),
        period: Slots::new(100),
        capacity: Slots::new(3),
        deadline: Slots::new(40),
        rt_channel_id: None,
        connection_request_id: ConnectionRequestId::new(1),
    }
}

fn data_frame(payload: usize) -> RtDataFrame {
    RtDataFrame {
        eth_src: MacAddr::for_node(NodeId::new(1)),
        eth_dst: MacAddr::for_node(NodeId::new(2)),
        stamp: DeadlineStamp::new(123_456_789, ChannelId::new(7)).unwrap(),
        src_port: 5000,
        dst_port: 5001,
        payload: vec![0xa5; payload],
    }
}

fn main() {
    let mut harness = MicroBench::new();

    let f = request_frame();
    harness.bench("request_encode", || f.encode().unwrap());
    let bytes = request_frame().encode().unwrap();
    harness.bench("request_decode", || RequestFrame::decode(&bytes).unwrap());

    let resp = ResponseFrame {
        rt_channel_id: Some(ChannelId::new(3)),
        switch_mac: MacAddr::for_switch(),
        verdict: rt_frames::rt_response::ResponseVerdict::Accepted,
        connection_request_id: ConnectionRequestId::new(1),
    };
    harness.bench("response_roundtrip", || {
        ResponseFrame::decode(&resp.encode()).unwrap()
    });

    for payload in [64usize, 1400] {
        let f = data_frame(payload);
        harness.bench(&format!("rt_data_build_{payload}B"), || {
            f.into_ethernet().unwrap()
        });
        let eth = data_frame(payload).into_ethernet().unwrap();
        let bytes = eth.encode();
        harness.bench(&format!("rt_data_classify_{payload}B"), || {
            let decoded = EthernetFrame::decode(&bytes).unwrap();
            Frame::classify(decoded).unwrap()
        });
    }
    harness.finish("frame codecs");
}
