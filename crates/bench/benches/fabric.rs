//! Micro-bench: fabric event throughput — a 1-switch star vs. a 4-switch
//! tree vs. a 4-switch ring mesh at equal node counts, at equal injected
//! frame counts.
//!
//! This is the perf baseline for the topology-driven simulator: the tree
//! routes every cross-switch frame over trunk ports (more events per frame:
//! extra TrunkTxComplete / ArriveAtSwitch pairs), so events/frame grows with
//! the hop count while events/second should stay flat.  The ring's closing
//! trunk shortens the worst routes, so its events/frame sits between star
//! and tree.
//!
//! The run always dumps its numbers as `BENCH_fabric.json` (via the in-repo
//! JSON encoder) so CI can archive the throughput baseline per PR; set
//! `BENCH_FABRIC_JSON` to override the path.

use std::path::Path;
use std::time::Instant;

use rt_bench::report::{json_object, write_json, ToJson};
use rt_bench::MicroBench;
use rt_frames::rt_data::{DeadlineStamp, RtDataFrame};
use rt_netsim::{SimConfig, Simulator};
use rt_types::{ChannelId, MacAddr, NodeId, SimTime, SwitchId, Topology};

const NODES: u32 = 16;
const FRAMES: u64 = 2000;

fn rt_eth(from: NodeId, to: NodeId, deadline_ns: u64) -> rt_frames::EthernetFrame {
    RtDataFrame {
        eth_src: MacAddr::for_node(from),
        eth_dst: MacAddr::for_node(to),
        stamp: DeadlineStamp::new(deadline_ns, ChannelId::new(1)).unwrap(),
        src_port: 1,
        dst_port: 2,
        payload: vec![0u8; 1000],
    }
    .into_ethernet()
    .unwrap()
}

/// A balanced 4-switch line with NODES/4 nodes per switch.
fn tree_topology() -> Topology {
    Topology::line(4, NODES / 4)
}

/// The same 4 switches closed into a ring (a cyclic mesh).
fn ring_topology() -> Topology {
    Topology::ring(4, NODES / 4)
}

/// A 1-switch star over the same node count.
fn star_topology() -> Topology {
    Topology::star(SwitchId::new(0), (0..NODES).map(NodeId::new))
}

/// Inject an all-pairs-ish workload: frame k goes from node k mod N to node
/// (k + N/2) mod N, which crosses switches in the tree for most pairs.
fn drive(topology: Topology) -> u64 {
    let mut sim = Simulator::with_topology(SimConfig::default(), topology).unwrap();
    for k in 0..FRAMES {
        let src = NodeId::new((k % u64::from(NODES)) as u32);
        let dst = NodeId::new(((k + u64::from(NODES / 2)) % u64::from(NODES)) as u32);
        sim.inject(
            src,
            rt_eth(src, dst, 10_000_000_000),
            SimTime::from_micros(k * 2),
        )
        .unwrap();
    }
    sim.run_to_idle();
    sim.events_processed()
}

/// One fabric's throughput numbers, encoded with the in-repo JSON encoder.
struct ThroughputRow {
    fabric: &'static str,
    events: u64,
    elapsed_ns: u64,
    events_per_second: f64,
    events_per_frame: f64,
}

impl ToJson for ThroughputRow {
    fn to_json(&self) -> String {
        json_object(&[
            ("fabric", self.fabric.to_json()),
            ("nodes", NODES.to_json()),
            ("frames", FRAMES.to_json()),
            ("events", self.events.to_json()),
            ("elapsed_ns", self.elapsed_ns.to_json()),
            ("events_per_second", self.events_per_second.to_json()),
            ("events_per_frame", self.events_per_frame.to_json()),
        ])
    }
}

fn main() {
    let mut harness = MicroBench::new();
    harness.bench(&format!("star_{NODES}_nodes_{FRAMES}_frames"), || {
        drive(star_topology())
    });
    harness.bench(&format!("tree_4sw_{NODES}_nodes_{FRAMES}_frames"), || {
        drive(tree_topology())
    });
    harness.bench(&format!("ring_4sw_{NODES}_nodes_{FRAMES}_frames"), || {
        drive(ring_topology())
    });
    harness.finish("fabric event throughput (star vs 4-switch tree vs 4-switch ring)");

    // Report events/second alongside: the useful capacity number for the
    // ROADMAP's scale goals — and the rows CI archives per PR.
    let mut rows = Vec::new();
    for (name, topo) in [
        ("star", star_topology()),
        ("tree", tree_topology()),
        ("ring", ring_topology()),
    ] {
        let start = Instant::now();
        let events = drive(topo);
        let elapsed = start.elapsed();
        println!(
            "{name}: {events} events in {:.1} ms -> {:.2} M events/s, {:.1} events/frame",
            elapsed.as_secs_f64() * 1e3,
            events as f64 / elapsed.as_secs_f64() / 1e6,
            events as f64 / FRAMES as f64,
        );
        rows.push(ThroughputRow {
            fabric: name,
            events,
            elapsed_ns: elapsed.as_nanos() as u64,
            events_per_second: events as f64 / elapsed.as_secs_f64(),
            events_per_frame: events as f64 / FRAMES as f64,
        });
    }

    // `cargo bench` runs with the package directory as cwd, so anchor the
    // default at the workspace root where CI picks the artifact up.
    let path = std::env::var("BENCH_FABRIC_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fabric.json").into());
    match write_json(Path::new(&path), &rows) {
        Ok(()) => println!("throughput baseline written to {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}
