//! Micro-bench: fabric event throughput, heap vs. calendar scheduler,
//! arena-pooled vs. owned frame store.
//!
//! Four fabrics at two scales — the 16-node star / 4-switch tree / 4-switch
//! ring baselines of the earlier PRs, plus the 64-switch / 1024-node torus
//! (`FabricScenario::torus(8, 8, 8, 8)`) that is the point of the
//! calendar-queue scheduler.  Every fabric is driven four times with the
//! *identical* pre-generated workload: {heap, calendar} × {arena, owned}.
//! The workload is injected up front (`inject_batch`), so the pending-event
//! population is proportional to the frame count — exactly the regime where
//! the heap's O(log n) cache-hostile operations dominate and the calendar
//! queue's O(1) bucket operations pay off.  Delivered-frame counts are
//! asserted equal between all four combinations, so the comparison can
//! never drift semantically.
//!
//! Row keying: the arena store is the simulator default, so its rows keep
//! the bare fabric names the trajectory has always used (`star/heap`, …) —
//! `bench_diff` keeps comparing apples to apples across the store switch.
//! The owned-store rows ride along under a `+owned` fabric suffix.
//!
//! The run closes with the routing microbench: rebuild-after-cut latency
//! and resident routing bytes on the 1280-switch `fat_tree(32)`, one row
//! per mode (from-scratch, incremental, structural), cross-checked
//! entry-for-entry before any number is reported.
//!
//! The run always dumps its numbers as `BENCH_fabric.json` (via the in-repo
//! JSON encoder) so CI can archive the throughput trajectory per PR and
//! `bench_diff` can flag regressions; set `BENCH_FABRIC_JSON` to override
//! the path.

use std::time::Instant;

use rt_bench::report::{json_object, write_artifact, ToJson};
use rt_netsim::{FrameStoreKind, SchedulerKind, ShardedSimulator, SimConfig, Simulator};
use rt_traffic::{FabricScenario, ScenarioFrameSource};
use rt_types::{Duration, NextHopCache, Topology};

/// Shard counts swept on the scaling fabric (the sharded simulator is
/// pointless on the millisecond-scale baselines).  `1` measures the pure
/// coordinator/windowing overhead against the single-thread calendar row.
const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// One fabric workload: a topology and a frame schedule.
struct Workload {
    name: &'static str,
    topology: Topology,
    nodes: u32,
    frames: u64,
    /// Injection spacing; small spacing at high frame counts is what keeps
    /// tens of thousands of events pending at once.
    spacing: Duration,
    source: ScenarioFrameSource,
}

impl Workload {
    fn new(
        name: &'static str,
        scenario: FabricScenario,
        frames: u64,
        spacing: Duration,
    ) -> Workload {
        Workload {
            name,
            topology: scenario.topology(),
            nodes: scenario.node_count(),
            frames,
            spacing,
            // Small payloads keep frame construction and delivery cloning
            // cheap, so the measurement weighs the event loop, not memcpy.
            source: ScenarioFrameSource::new(scenario, frames, spacing).payload_len(64),
        }
    }
}

fn workloads() -> Vec<Workload> {
    vec![
        // The historical baselines (star = 1 switch, tree = 4-switch line,
        // ring = the line closed), 16 nodes each.
        Workload::new(
            "star",
            FabricScenario::line(1, 8, 8),
            4_000,
            Duration::from_micros(2),
        ),
        Workload::new(
            "tree",
            FabricScenario::line(4, 2, 2),
            4_000,
            Duration::from_micros(2),
        ),
        Workload::new(
            "ring",
            FabricScenario::ring(4, 2, 2),
            4_000,
            Duration::from_micros(2),
        ),
        // The scaling fabric: 64 switches, 1024 nodes, 2M frames injected
        // up front -> a seven-figure pending-event population, which is
        // where the heap's O(log n) cache-hostile operations collapse (its
        // ~64 MB of heap array also evicts the simulator's working set)
        // while the calendar queue keeps its O(1) bucket operations.
        Workload::new(
            "torus_8x8_1024",
            FabricScenario::torus(8, 8, 8, 8),
            2_000_000,
            Duration::from_nanos(500),
        ),
    ]
}

struct DriveOutcome {
    events: u64,
    delivered: u64,
    elapsed_ns: u64,
}

/// Run one workload on one scheduler and frame store: build the fabric,
/// inject the whole pre-generated batch, drain.  Only the simulation (not
/// the frame generation) is timed.
fn drive(
    workload: &Workload,
    scheduler: SchedulerKind,
    frame_store: FrameStoreKind,
) -> DriveOutcome {
    let config = SimConfig {
        scheduler,
        frame_store,
        ..SimConfig::default()
    };
    let mut sim = Simulator::with_topology(config, workload.topology.clone())
        .expect("bench fabrics are valid");
    let batch = workload.source.clone().drain_all();
    let start = Instant::now();
    sim.inject_batch(batch).expect("bench injections are valid");
    sim.run_to_idle();
    let elapsed = start.elapsed();
    DriveOutcome {
        events: sim.events_processed(),
        delivered: sim.poll_deliveries().len() as u64,
        elapsed_ns: elapsed.as_nanos() as u64,
    }
}

/// [`drive`] on the sharded simulator: same pre-generated batch, calendar
/// scheduler, arena store, `shards` worker threads under the default
/// (BFS-regions) partition.
fn drive_sharded(workload: &Workload, shards: usize) -> DriveOutcome {
    let config = SimConfig {
        scheduler: SchedulerKind::Calendar,
        frame_store: FrameStoreKind::Arena,
        ..SimConfig::default()
    };
    let mut sim = ShardedSimulator::new(config, workload.topology.clone(), shards)
        .expect("bench fabrics satisfy the lookahead bound");
    let batch = workload.source.clone().drain_all();
    let start = Instant::now();
    sim.inject_batch(batch).expect("bench injections are valid");
    sim.run_to_idle();
    let elapsed = start.elapsed();
    DriveOutcome {
        events: sim.events_processed(),
        delivered: sim.poll_deliveries().len() as u64,
        elapsed_ns: elapsed.as_nanos() as u64,
    }
}

/// One (fabric, scheduler, store) measurement, encoded with the in-repo
/// encoder.  `fabric` carries the store suffix for non-default stores (see
/// the module docs), `store` records it explicitly either way.
struct ThroughputRow {
    fabric: String,
    scheduler: &'static str,
    store: &'static str,
    nodes: u32,
    frames: u64,
    spacing_ns: u64,
    events: u64,
    elapsed_ns: u64,
    events_per_second: f64,
    events_per_frame: f64,
}

impl ToJson for ThroughputRow {
    fn to_json(&self) -> String {
        json_object(&[
            ("fabric", self.fabric.to_json()),
            ("scheduler", self.scheduler.to_json()),
            ("store", self.store.to_json()),
            ("nodes", self.nodes.to_json()),
            ("frames", self.frames.to_json()),
            ("spacing_ns", self.spacing_ns.to_json()),
            ("events", self.events.to_json()),
            ("elapsed_ns", self.elapsed_ns.to_json()),
            ("events_per_second", self.events_per_second.to_json()),
            ("events_per_frame", self.events_per_frame.to_json()),
        ])
    }
}

/// One routing-mode measurement on the datacenter fabric: how long it takes
/// to recover a servable routing state after a single trunk cut, and how
/// many bytes of routing state stay resident at steady state.
struct RoutingRow {
    fabric: &'static str,
    /// `full` (from-scratch per-destination BFS, the pre-incremental
    /// baseline), `incremental` (single-delta column repair from the
    /// previous table) or `structural` (closed-form next hops + sparse
    /// detour overlay).
    mode: &'static str,
    switches: u32,
    rebuild_ns: u64,
    table_bytes: u64,
}

impl ToJson for RoutingRow {
    fn to_json(&self) -> String {
        json_object(&[
            ("fabric", self.fabric.to_json()),
            ("mode", self.mode.to_json()),
            ("switches", self.switches.to_json()),
            ("rebuild_ns", self.rebuild_ns.to_json()),
            ("table_bytes", self.table_bytes.to_json()),
        ])
    }
}

/// A heterogeneous artifact row: the throughput sweep and the routing
/// microbench share one `BENCH_fabric.json`, keyed apart by field presence
/// (`events_per_second` vs `rebuild_ns`).
enum Row {
    Throughput(ThroughputRow),
    Routing(RoutingRow),
}

impl ToJson for Row {
    fn to_json(&self) -> String {
        match self {
            Row::Throughput(r) => r.to_json(),
            Row::Routing(r) => r.to_json(),
        }
    }
}

/// The routing microbench: rebuild-after-cut latency and resident routing
/// bytes on `fat_tree(32)` (1280 switches), one row per mode.
///
/// All three modes are checked entry-for-entry identical on the degraded
/// fabric before any number is reported, so the speed-ups can never come
/// from answering a different routing question.  The in-binary asserts pin
/// the two claims the trajectory gates: the incremental repair beats the
/// from-scratch rebuild by >=10x, and structural steady-state routing
/// memory is O(V), orders of magnitude under the O(V^2) table.
fn routing_rows() -> Vec<Row> {
    const FABRIC: &str = "fat_tree_32";
    const RUNS: usize = 3;
    let healthy = Topology::fat_tree(32).expect("k=32 is a valid fat tree");
    let switches = healthy.switches().count() as u32;
    let (a, b) = healthy.trunks().next().expect("fat tree has trunks");
    let mut degraded = healthy.clone();
    degraded.fail_trunk(a, b).expect("trunk exists");

    // From-scratch baseline: a cold cache on the degraded fabric pays one
    // per-destination BFS sweep — exactly what every fingerprint flip cost
    // before the incremental path existed.
    let mut full_ns = u64::MAX;
    let mut full_bytes = 0u64;
    let mut full_dense = None;
    for _ in 0..RUNS {
        let cache = NextHopCache::new();
        let start = Instant::now();
        let dense = cache.get_dense(&degraded);
        full_ns = full_ns.min(start.elapsed().as_nanos() as u64);
        assert_eq!(cache.stats().full_rebuilds, 1);
        full_bytes = dense.resident_bytes() as u64;
        full_dense = Some(dense);
    }
    let full_dense = full_dense.expect("at least one run happened");

    // Incremental: prime the cache on the healthy fabric (untimed), then
    // time the single-cut repair.
    let mut incremental_ns = u64::MAX;
    let mut incremental_bytes = 0u64;
    for _ in 0..RUNS {
        let cache = NextHopCache::new();
        cache.get_dense(&healthy);
        let start = Instant::now();
        let dense = cache.get_dense(&degraded);
        incremental_ns = incremental_ns.min(start.elapsed().as_nanos() as u64);
        let stats = cache.stats();
        assert_eq!(stats.incremental_rebuilds, 1, "the cut is a single delta");
        assert_eq!(stats.full_rebuilds, 1, "only the healthy prime is full");
        incremental_bytes = dense.resident_bytes() as u64;
        for t in 0..switches {
            for s in 0..switches {
                assert_eq!(
                    dense.next_hop_index(s, t),
                    full_dense.next_hop_index(s, t),
                    "incremental repair must be byte-identical at ({s}, {t})"
                );
            }
        }
    }

    // Structural: closed-form next hops, no table at all while healthy; a
    // cut only costs the sparse detour overlay.
    let mut structural_ns = u64::MAX;
    let mut structural_bytes = 0u64;
    for _ in 0..RUNS {
        let cache = NextHopCache::structural();
        let dense = cache.get_dense(&healthy);
        structural_bytes = dense.resident_bytes() as u64;
        let start = Instant::now();
        let dense = cache.get_dense(&degraded);
        structural_ns = structural_ns.min(start.elapsed().as_nanos() as u64);
        let stats = cache.stats();
        assert_eq!(
            stats.full_rebuilds, 0,
            "structural mode never builds a table"
        );
        assert_eq!(stats.incremental_rebuilds, 0);
        for t in 0..switches {
            for s in 0..switches {
                assert_eq!(
                    dense.next_hop_index(s, t),
                    full_dense.next_hop_index(s, t),
                    "structural detour must be byte-identical at ({s}, {t})"
                );
            }
        }
    }

    assert!(
        full_ns >= 10 * incremental_ns,
        "incremental repair must beat the from-scratch rebuild >=10x \
         (full {full_ns} ns vs incremental {incremental_ns} ns)"
    );
    assert!(
        structural_bytes * 50 < full_bytes,
        "structural routing state must be O(V), far under the O(V^2) table \
         ({structural_bytes} B vs {full_bytes} B)"
    );

    println!("routing rebuild-after-cut on {FABRIC} ({switches} switches):");
    for (mode, ns, bytes) in [
        ("full", full_ns, full_bytes),
        ("incremental", incremental_ns, incremental_bytes),
        ("structural", structural_ns, structural_bytes),
    ] {
        println!(
            "{:<22} {:<12} rebuild {:>9.3} ms, resident {:>10} B ({:.1}x vs full rebuild)",
            FABRIC,
            mode,
            ns as f64 / 1e6,
            bytes,
            full_ns as f64 / ns as f64,
        );
    }
    println!();

    [
        ("full", full_ns, full_bytes),
        ("incremental", incremental_ns, incremental_bytes),
        ("structural", structural_ns, structural_bytes),
    ]
    .into_iter()
    .map(|(mode, rebuild_ns, table_bytes)| {
        Row::Routing(RoutingRow {
            fabric: FABRIC,
            mode,
            switches,
            rebuild_ns,
            table_bytes,
        })
    })
    .collect()
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();
    println!("fabric event throughput: heap vs calendar scheduler, arena vs owned store");
    println!("(workloads injected up front; identical frame sequences per fabric)\n");
    for workload in workloads() {
        // calendar-arena / heap-arena and calendar-arena / calendar-owned.
        let mut arena_per_second = [0.0f64; 2];
        let mut owned_calendar_per_second = 0.0f64;
        // Keep the fastest of several runs (the usual micro-bench "least
        // disturbed run" summary); correctness is checked on every run.
        // The millisecond-scale fabrics get extra samples because they are
        // the ones shared-CI noise can swing past the bench_diff gate; the
        // multi-second torus is dominated by its own working set and stays
        // at two.
        let runs = if workload.frames > 100_000 { 2 } else { 5 };
        for store in [FrameStoreKind::Arena, FrameStoreKind::Owned] {
            // The default (arena) rows keep the bare fabric names so the
            // bench_diff trajectory stays continuous across the store
            // switch; the owned comparison rows get an explicit suffix.
            let fabric = match store {
                FrameStoreKind::Arena => workload.name.to_string(),
                FrameStoreKind::Owned => format!("{}+owned", workload.name),
            };
            for (i, scheduler) in [SchedulerKind::Heap, SchedulerKind::Calendar]
                .into_iter()
                .enumerate()
            {
                let mut best: Option<DriveOutcome> = None;
                for _ in 0..runs {
                    let outcome = drive(&workload, scheduler, store);
                    assert_eq!(
                        outcome.delivered,
                        workload.frames,
                        "{fabric}/{}: every injected frame must be delivered",
                        scheduler.name()
                    );
                    best = match best {
                        Some(b) if b.elapsed_ns <= outcome.elapsed_ns => Some(b),
                        _ => Some(outcome),
                    };
                }
                let outcome = best.expect("at least one run happened");
                let events_per_second = outcome.events as f64 / (outcome.elapsed_ns as f64 / 1e9);
                match store {
                    FrameStoreKind::Arena => arena_per_second[i] = events_per_second,
                    FrameStoreKind::Owned if i == 1 => {
                        owned_calendar_per_second = events_per_second
                    }
                    FrameStoreKind::Owned => {}
                }
                println!(
                    "{:<22} {:<8} {:>8} events in {:>7.1} ms -> {:>6.2} M events/s, {:>5.1} events/frame",
                    fabric,
                    scheduler.name(),
                    outcome.events,
                    outcome.elapsed_ns as f64 / 1e6,
                    events_per_second / 1e6,
                    outcome.events as f64 / workload.frames as f64,
                );
                rows.push(Row::Throughput(ThroughputRow {
                    fabric: fabric.clone(),
                    scheduler: scheduler.name(),
                    store: store.name(),
                    nodes: workload.nodes,
                    frames: workload.frames,
                    spacing_ns: workload.spacing.as_nanos(),
                    events: outcome.events,
                    elapsed_ns: outcome.elapsed_ns,
                    events_per_second,
                    events_per_frame: outcome.events as f64 / workload.frames as f64,
                }));
            }
        }
        println!(
            "{:<22} calendar/heap speed-up: {:.2}x, arena/owned (calendar): {:.2}x\n",
            workload.name,
            arena_per_second[1] / arena_per_second[0],
            arena_per_second[1] / owned_calendar_per_second,
        );

        // The shard sweep: the conservative-windowed parallel simulator on
        // the scaling fabric, one row per shard count under a
        // `+shards{N}` fabric suffix (scheduler stays `calendar`, store
        // stays `arena` — the sharded path supports nothing else).
        // `bench_diff` gates the best sharded row, so a regression in the
        // parallel path fails CI even when the single-thread rows hold.
        if workload.name == "torus_8x8_1024" {
            for shards in SHARD_SWEEP {
                let fabric = format!("{}+shards{}", workload.name, shards);
                let mut best: Option<DriveOutcome> = None;
                for _ in 0..runs {
                    let outcome = drive_sharded(&workload, shards);
                    assert_eq!(
                        outcome.delivered, workload.frames,
                        "{fabric}: every injected frame must be delivered"
                    );
                    best = match best {
                        Some(b) if b.elapsed_ns <= outcome.elapsed_ns => Some(b),
                        _ => Some(outcome),
                    };
                }
                let outcome = best.expect("at least one run happened");
                let events_per_second = outcome.events as f64 / (outcome.elapsed_ns as f64 / 1e9);
                println!(
                    "{:<22} {:<8} {:>8} events in {:>7.1} ms -> {:>6.2} M events/s, {:.2}x vs calendar",
                    fabric,
                    "calendar",
                    outcome.events,
                    outcome.elapsed_ns as f64 / 1e6,
                    events_per_second / 1e6,
                    events_per_second / arena_per_second[1],
                );
                rows.push(Row::Throughput(ThroughputRow {
                    fabric,
                    scheduler: "calendar",
                    store: "arena",
                    nodes: workload.nodes,
                    frames: workload.frames,
                    spacing_ns: workload.spacing.as_nanos(),
                    events: outcome.events,
                    elapsed_ns: outcome.elapsed_ns,
                    events_per_second,
                    events_per_frame: outcome.events as f64 / workload.frames as f64,
                }));
            }
            println!();
        }
    }

    rows.extend(routing_rows());

    write_artifact("BENCH_FABRIC_JSON", "BENCH_fabric.json", &rows);
}
