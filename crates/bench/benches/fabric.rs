//! Micro-bench: fabric event throughput — a 1-switch star vs. a 4-switch
//! tree at equal node counts, at equal injected frame counts.
//!
//! This is the perf baseline for the topology-driven simulator: the tree
//! routes every cross-switch frame over trunk ports (more events per frame:
//! extra TrunkTxComplete / ArriveAtSwitch pairs), so events/frame grows with
//! the hop count while events/second should stay flat.

use std::time::Instant;

use rt_bench::MicroBench;
use rt_frames::rt_data::{DeadlineStamp, RtDataFrame};
use rt_netsim::{SimConfig, Simulator};
use rt_types::{ChannelId, MacAddr, NodeId, SimTime, SwitchId, Topology};

const NODES: u32 = 16;
const FRAMES: u64 = 2000;

fn rt_eth(from: NodeId, to: NodeId, deadline_ns: u64) -> rt_frames::EthernetFrame {
    RtDataFrame {
        eth_src: MacAddr::for_node(from),
        eth_dst: MacAddr::for_node(to),
        stamp: DeadlineStamp::new(deadline_ns, ChannelId::new(1)).unwrap(),
        src_port: 1,
        dst_port: 2,
        payload: vec![0u8; 1000],
    }
    .into_ethernet()
    .unwrap()
}

/// A balanced 4-switch line with NODES/4 nodes per switch.
fn tree_topology() -> Topology {
    Topology::line(4, NODES / 4)
}

/// A 1-switch star over the same node count.
fn star_topology() -> Topology {
    Topology::star(SwitchId::new(0), (0..NODES).map(NodeId::new))
}

/// Inject an all-pairs-ish workload: frame k goes from node k mod N to node
/// (k + N/2) mod N, which crosses switches in the tree for most pairs.
fn drive(topology: Topology) -> u64 {
    let mut sim = Simulator::with_topology(SimConfig::default(), topology).unwrap();
    for k in 0..FRAMES {
        let src = NodeId::new((k % u64::from(NODES)) as u32);
        let dst = NodeId::new(((k + u64::from(NODES / 2)) % u64::from(NODES)) as u32);
        sim.inject(
            src,
            rt_eth(src, dst, 10_000_000_000),
            SimTime::from_micros(k * 2),
        )
        .unwrap();
    }
    sim.run_to_idle();
    sim.events_processed()
}

fn main() {
    let mut harness = MicroBench::new();
    harness.bench(&format!("star_{NODES}_nodes_{FRAMES}_frames"), || {
        drive(star_topology())
    });
    harness.bench(&format!("tree_4sw_{NODES}_nodes_{FRAMES}_frames"), || {
        drive(tree_topology())
    });
    harness.finish("fabric event throughput (1-switch star vs 4-switch tree)");

    // Report events/second alongside: the useful capacity number for the
    // ROADMAP's scale goals.
    for (name, topo) in [("star", star_topology()), ("tree", tree_topology())] {
        let start = Instant::now();
        let events = drive(topo);
        let elapsed = start.elapsed();
        println!(
            "{name}: {events} events in {:.1} ms -> {:.2} M events/s, {:.1} events/frame",
            elapsed.as_secs_f64() * 1e3,
            events as f64 / elapsed.as_secs_f64() / 1e6,
            events as f64 / FRAMES as f64,
        );
    }
}
