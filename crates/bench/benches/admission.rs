//! Micro-bench: cost of the full Figure 18.5 admission sweep and of a
//! single admission decision under each DPS.

use rt_bench::experiments::run_admission;
use rt_bench::MicroBench;
use rt_core::{AdmissionController, DpsKind, RtChannelSpec, SystemState};
use rt_traffic::{RequestPattern, Scenario};

fn main() {
    let scenario = Scenario::paper_master_slave();
    let nodes = scenario.nodes();
    let spec = RtChannelSpec::paper_default();
    let requests = RequestPattern::MasterSlaveRoundRobin.generate(&scenario, 200, spec);

    let mut harness = MicroBench::new();
    for dps in [DpsKind::Symmetric, DpsKind::Asymmetric, DpsKind::Search] {
        harness.bench(&format!("sweep_{dps:?}_200_requests"), || {
            run_admission(&nodes, &requests, dps, false)
        });
    }

    // A single decision against a loaded controller (setup included in the
    // measured closure; the sweep benchmarks above isolate the request
    // path).
    let warm_requests = RequestPattern::MasterSlaveRoundRobin.generate(&scenario, 59, spec);
    for dps in [DpsKind::Symmetric, DpsKind::Asymmetric] {
        harness.bench(&format!("single_decision_{dps:?}_on_loaded_system"), || {
            let mut controller =
                AdmissionController::new(SystemState::with_nodes(scenario.nodes()), dps.build());
            for r in &warm_requests {
                let _ = controller.request(r.source, r.destination, r.spec).unwrap();
            }
            controller
                .request(scenario.master(59), scenario.slave(59), spec)
                .unwrap()
        });
    }
    harness.finish("admission control");
}
