//! Criterion bench: cost of the full Figure 18.5 admission sweep and of a
//! single admission decision under each DPS.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;

use rt_bench::experiments::run_admission;
use rt_core::{AdmissionController, DpsKind, RtChannelSpec, SystemState};
use rt_traffic::{RequestPattern, Scenario};

fn bench_admission_sweep(c: &mut Criterion) {
    let scenario = Scenario::paper_master_slave();
    let nodes = scenario.nodes();
    let spec = RtChannelSpec::paper_default();
    let requests = RequestPattern::MasterSlaveRoundRobin.generate(&scenario, 200, spec);

    let mut group = c.benchmark_group("admission_fig18_5");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for dps in [DpsKind::Symmetric, DpsKind::Asymmetric, DpsKind::Search] {
        group.bench_function(format!("{dps:?}_200_requests"), |b| {
            b.iter(|| black_box(run_admission(&nodes, &requests, dps, false)))
        });
    }
    group.finish();
}

fn bench_single_decision(c: &mut Criterion) {
    let scenario = Scenario::paper_master_slave();
    let spec = RtChannelSpec::paper_default();
    let requests = RequestPattern::MasterSlaveRoundRobin.generate(&scenario, 59, spec);

    let mut group = c.benchmark_group("admission_single_decision");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for dps in [DpsKind::Symmetric, DpsKind::Asymmetric] {
        group.bench_function(format!("{dps:?}_on_loaded_system"), |b| {
            b.iter_batched(
                || {
                    let mut controller = AdmissionController::new(
                        SystemState::with_nodes(scenario.nodes()),
                        dps.build(),
                    );
                    for r in &requests {
                        let _ = controller.request(r.source, r.destination, r.spec).unwrap();
                    }
                    controller
                },
                |mut controller| {
                    black_box(
                        controller
                            .request(scenario.master(59), scenario.slave(59), spec)
                            .unwrap(),
                    )
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_admission_sweep, bench_single_decision);
criterion_main!(benches);
