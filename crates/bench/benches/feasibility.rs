//! Micro-bench: the per-link EDF feasibility test (Constraint 1 + 2) as a
//! function of the number of channel-halves on the link, and the
//! utilisation-only shortcut for comparison.

use rt_bench::MicroBench;
use rt_edf::{FeasibilityTester, PeriodicTask, TaskSet};
use rt_types::Slots;

fn paper_half(deadline: u64) -> PeriodicTask {
    PeriodicTask::new(Slots::new(100), Slots::new(3), Slots::new(deadline)).unwrap()
}

fn mixed_set(n: usize) -> TaskSet {
    // A mix of periods/deadlines so the checkpoint set is non-trivial.
    (0..n)
        .map(|i| {
            let period = 50 + (i as u64 % 7) * 25;
            let capacity = 1 + (i as u64 % 3);
            let deadline = (capacity * 2) + (i as u64 % 5) * 10;
            PeriodicTask::new(
                Slots::new(period),
                Slots::new(capacity),
                Slots::new(deadline.min(period)),
            )
            .unwrap()
        })
        .collect()
}

fn main() {
    let mut harness = MicroBench::new();

    for n in [6usize, 11, 33] {
        let set: TaskSet = (0..n).map(|_| paper_half(20)).collect();
        let tester = FeasibilityTester::new();
        harness.bench(&format!("paper_uplink_{n}_channels"), || tester.test(&set));
    }

    for n in [10usize, 50, 200] {
        let set = mixed_set(n);
        let full = FeasibilityTester::new();
        harness.bench(&format!("mixed_full_{n}_tasks"), || full.test(&set));
        let util = FeasibilityTester::utilisation_only();
        harness.bench(&format!("mixed_utilisation_only_{n}_tasks"), || {
            util.test(&set)
        });
    }
    harness.finish("EDF feasibility test");
}
