//! Criterion bench: the per-link EDF feasibility test (Constraint 1 + 2) as
//! a function of the number of channel-halves on the link, and the
//! utilisation-only shortcut for comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use rt_edf::{FeasibilityTester, PeriodicTask, TaskSet};
use rt_types::Slots;

fn paper_half(deadline: u64) -> PeriodicTask {
    PeriodicTask::new(Slots::new(100), Slots::new(3), Slots::new(deadline)).unwrap()
}

fn mixed_set(n: usize) -> TaskSet {
    // A mix of periods/deadlines so the checkpoint set is non-trivial.
    (0..n)
        .map(|i| {
            let period = 50 + (i as u64 % 7) * 25;
            let capacity = 1 + (i as u64 % 3);
            let deadline = (capacity * 2) + (i as u64 % 5) * 10;
            PeriodicTask::new(
                Slots::new(period),
                Slots::new(capacity),
                Slots::new(deadline.min(period)),
            )
            .unwrap()
        })
        .collect()
}

fn bench_feasibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("feasibility_test");
    group
        .sample_size(50)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for n in [6usize, 11, 33] {
        let set: TaskSet = (0..n).map(|_| paper_half(20)).collect();
        group.bench_function(format!("paper_uplink_{n}_channels"), |b| {
            let tester = FeasibilityTester::new();
            b.iter(|| black_box(tester.test(&set)))
        });
    }

    for n in [10usize, 50, 200] {
        let set = mixed_set(n);
        group.bench_function(format!("mixed_full_{n}_tasks"), |b| {
            let tester = FeasibilityTester::new();
            b.iter(|| black_box(tester.test(&set)))
        });
        group.bench_function(format!("mixed_utilisation_only_{n}_tasks"), |b| {
            let tester = FeasibilityTester::utilisation_only();
            b.iter(|| black_box(tester.test(&set)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_feasibility);
criterion_main!(benches);
