//! Micro-bench: the deadline-sorted (EDF) queue and the FCFS queue that
//! every output port runs — the per-frame queueing cost of the RT layer.

use rt_bench::MicroBench;
use rt_edf::{EdfQueue, FcfsQueue};

fn main() {
    let mut harness = MicroBench::new();

    for n in [64usize, 1024] {
        // Pre-generated pseudo-random deadlines (deterministic).
        let deadlines: Vec<u64> = (0..n as u64)
            .map(|i| (i * 2_654_435_761) % 100_000)
            .collect();

        harness.bench(&format!("edf_push_pop_{n}"), || {
            let mut q = EdfQueue::new();
            for (i, d) in deadlines.iter().enumerate() {
                q.push(*d, i);
            }
            let mut last = None;
            while let Some(item) = q.pop() {
                last = Some(item);
            }
            last
        });

        harness.bench(&format!("fcfs_push_pop_{n}"), || {
            let mut q = FcfsQueue::new();
            for i in 0..n {
                q.push(i);
            }
            let mut last = None;
            while let Some(item) = q.pop() {
                last = Some(item);
            }
            last
        });
    }

    // A queue holding ~64 frames with one push+pop per iteration — the
    // switch port's steady state.
    let mut q = EdfQueue::new();
    for i in 0..64u64 {
        q.push(i * 1000, i);
    }
    let mut next = 64_000u64;
    harness.bench("edf_steady_state_push_pop", move || {
        q.push(next, next);
        next += 1000;
        q.pop()
    });
    harness.finish("output-port queues");
}
