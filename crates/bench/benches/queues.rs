//! Criterion bench: the deadline-sorted (EDF) queue and the FCFS queue that
//! every output port runs — the per-frame queueing cost of the RT layer.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;

use rt_edf::{EdfQueue, FcfsQueue};

fn bench_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("queues");
    group
        .sample_size(50)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for n in [64usize, 1024] {
        // Pre-generated pseudo-random deadlines (deterministic).
        let deadlines: Vec<u64> = (0..n as u64).map(|i| (i * 2_654_435_761) % 100_000).collect();

        group.bench_function(format!("edf_push_pop_{n}"), |b| {
            b.iter_batched(
                EdfQueue::new,
                |mut q| {
                    for (i, d) in deadlines.iter().enumerate() {
                        q.push(*d, i);
                    }
                    while let Some(item) = q.pop() {
                        black_box(item);
                    }
                },
                BatchSize::SmallInput,
            )
        });

        group.bench_function(format!("fcfs_push_pop_{n}"), |b| {
            b.iter_batched(
                FcfsQueue::new,
                |mut q| {
                    for i in 0..n {
                        q.push(i);
                    }
                    while let Some(item) = q.pop() {
                        black_box(item);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }

    group.bench_function("edf_steady_state_push_pop", |b| {
        // A queue holding ~64 frames with one push+pop per iteration — the
        // switch port's steady state.
        let mut q = EdfQueue::new();
        for i in 0..64u64 {
            q.push(i * 1000, i);
        }
        let mut next = 64_000u64;
        b.iter(|| {
            q.push(next, next);
            next += 1000;
            black_box(q.pop())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queues);
criterion_main!(benches);
