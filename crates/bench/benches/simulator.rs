//! Micro-bench: event throughput of the discrete-event simulator and
//! end-to-end cost of the channel-establishment handshake over the wire.
//!
//! Always dumps its rows as `BENCH_simulator.json` at the workspace root
//! (override with `BENCH_SIMULATOR_JSON`) so CI archives the trajectory the
//! same way it archives `BENCH_fabric.json`.

use rt_bench::report::write_artifact;
use rt_bench::MicroBench;
use rt_core::{DpsKind, RtChannelSpec, RtNetwork};
use rt_frames::rt_data::{DeadlineStamp, RtDataFrame};
use rt_netsim::{SimConfig, Simulator};
use rt_types::{ChannelId, MacAddr, NodeId, SimTime};

fn rt_eth(from: u32, to: u32, deadline_ns: u64) -> rt_frames::EthernetFrame {
    RtDataFrame {
        eth_src: MacAddr::for_node(NodeId::new(from)),
        eth_dst: MacAddr::for_node(NodeId::new(to)),
        stamp: DeadlineStamp::new(deadline_ns, ChannelId::new(1)).unwrap(),
        src_port: 1,
        dst_port: 2,
        payload: vec![0u8; 1000],
    }
    .into_ethernet()
    .unwrap()
}

fn main() {
    let mut harness = MicroBench::new();

    for frames in [100u64, 1000] {
        harness.bench(&format!("forward_{frames}_rt_frames_8_nodes"), || {
            let mut sim = Simulator::new(SimConfig::default(), (0..8).map(NodeId::new));
            for k in 0..frames {
                let src = (k % 8) as u32;
                let dst = ((k + 1) % 8) as u32;
                sim.inject(
                    NodeId::new(src),
                    rt_eth(src, dst, 1_000_000_000),
                    SimTime::from_micros(k),
                )
                .unwrap();
            }
            sim.run_to_idle();
            sim.events_processed()
        });
    }

    harness.bench("channel_establishment_handshake", || {
        let mut net = RtNetwork::builder()
            .star(8)
            .dps(DpsKind::Asymmetric)
            .build()
            .expect("a star always builds");
        net.establish_channel(
            NodeId::new(0),
            NodeId::new(1),
            RtChannelSpec::paper_default(),
        )
        .unwrap()
    });
    harness.finish("simulator");
    write_artifact(
        "BENCH_SIMULATOR_JSON",
        "BENCH_simulator.json",
        harness.results(),
    );
}
