//! Criterion bench: event throughput of the discrete-event simulator and
//! end-to-end cost of the channel-establishment handshake over the wire.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;

use rt_core::{DpsKind, RtChannelSpec, RtNetwork, RtNetworkConfig};
use rt_frames::rt_data::{DeadlineStamp, RtDataFrame};
use rt_netsim::{SimConfig, Simulator};
use rt_types::{ChannelId, MacAddr, NodeId, SimTime};

fn rt_eth(from: u32, to: u32, deadline_ns: u64) -> rt_frames::EthernetFrame {
    RtDataFrame {
        eth_src: MacAddr::for_node(NodeId::new(from)),
        eth_dst: MacAddr::for_node(NodeId::new(to)),
        stamp: DeadlineStamp::new(deadline_ns, ChannelId::new(1)).unwrap(),
        src_port: 1,
        dst_port: 2,
        payload: vec![0u8; 1000],
    }
    .into_ethernet()
    .unwrap()
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for frames in [100u64, 1000] {
        group.bench_function(format!("forward_{frames}_rt_frames_8_nodes"), |b| {
            b.iter_batched(
                || {
                    let mut sim =
                        Simulator::new(SimConfig::default(), (0..8).map(NodeId::new));
                    for k in 0..frames {
                        let src = (k % 8) as u32;
                        let dst = ((k + 1) % 8) as u32;
                        sim.inject(
                            NodeId::new(src),
                            rt_eth(src, dst, 1_000_000_000),
                            SimTime::from_micros(k),
                        )
                        .unwrap();
                    }
                    sim
                },
                |mut sim| {
                    sim.run_to_idle();
                    black_box(sim.events_processed())
                },
                BatchSize::SmallInput,
            )
        });
    }

    group.bench_function("channel_establishment_handshake", |b| {
        b.iter_batched(
            || RtNetwork::new(RtNetworkConfig::with_nodes(8, DpsKind::Asymmetric)),
            |mut net| {
                let tx = net
                    .establish_channel(
                        NodeId::new(0),
                        NodeId::new(1),
                        RtChannelSpec::paper_default(),
                    )
                    .unwrap();
                black_box(tx)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
