//! Micro-bench: event throughput of the discrete-event simulator,
//! end-to-end cost of the channel-establishment handshake over the wire,
//! and — the regression thermometer for the zero-copy frame path — heap
//! allocations per forwarded frame on the 1024-node torus.
//!
//! The allocation count comes from a counting `#[global_allocator]` that
//! wraps [`System`]: the simulator crates themselves `forbid(unsafe_code)`,
//! so the instrumentation lives here in the bench binary, outside the code
//! under test.  The count is deterministic for a deterministic simulation
//! (same workload → same `Vec` growth → same number), so `bench_diff` can
//! gate on it far more tightly than on any wall-clock number.
//!
//! Always dumps its rows as `BENCH_simulator.json` at the workspace root
//! (override with `BENCH_SIMULATOR_JSON`) so CI archives the trajectory the
//! same way it archives `BENCH_fabric.json`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rt_bench::report::{json_object, write_artifact, Table, ToJson};
use rt_bench::MicroBench;
use rt_core::{DpsKind, RtChannelSpec, RtNetwork};
use rt_frames::rt_data::{DeadlineStamp, RtDataFrame};
use rt_netsim::{FrameStoreKind, SimConfig, Simulator};
use rt_traffic::{FabricScenario, ScenarioFrameSource};
use rt_types::{ChannelId, Duration, MacAddr, NodeId, SimTime};

/// A [`System`] wrapper that counts every allocation the process makes.
/// Frees are not counted: the gated metric is allocation *pressure* per
/// frame, and every path that allocates also frees.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure delegation to `System`; the counter is a relaxed atomic add
// with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn rt_eth(from: u32, to: u32, deadline_ns: u64) -> rt_frames::EthernetFrame {
    RtDataFrame {
        eth_src: MacAddr::for_node(NodeId::new(from)),
        eth_dst: MacAddr::for_node(NodeId::new(to)),
        stamp: DeadlineStamp::new(deadline_ns, ChannelId::new(1)).unwrap(),
        src_port: 1,
        dst_port: 2,
        payload: vec![0u8; 1000],
    }
    .into_ethernet()
    .unwrap()
}

/// Injection spacing and window size of the allocation measurement: the
/// spacing keeps the torus in steady state (frames drain while later ones
/// inject), the window bounds how many frames are in flight at once.
const SPACING: Duration = Duration::from_micros(20);
const WINDOW: Duration = Duration::from_millis(5);
const WINDOW_FRAMES: u64 = WINDOW.as_nanos() / SPACING.as_nanos();

/// Serves pre-generated injections window by window, so the counted region
/// contains the simulator's own allocations (plus one batch `Vec` per
/// window), not the cost of *generating* 100k frames.
struct PrebuiltSource {
    items: std::iter::Peekable<std::vec::IntoIter<rt_netsim::FrameInjection>>,
}

impl rt_netsim::TrafficSource for PrebuiltSource {
    fn next_batch(&mut self, horizon: SimTime) -> Vec<rt_netsim::FrameInjection> {
        // Pre-sized so the window batches themselves don't show up in the
        // allocation count being measured.
        let mut batch = Vec::with_capacity(WINDOW_FRAMES as usize + 1);
        while self.items.peek().is_some_and(|f| f.at < horizon) {
            batch.push(self.items.next().expect("peeked an item"));
        }
        batch
    }

    fn is_exhausted(&self) -> bool {
        self.items.len() == 0
    }
}

/// One allocation measurement: allocations inside the windowed
/// `run_with_source` loop on the 1024-node torus, everything else (fabric
/// build, frame generation) outside the counted window.
///
/// Windowed injection matters: frames register (and pool buffers allocate)
/// at injection time, so the arena's outstanding population tracks the
/// *in-flight* frames of one window, not the whole experiment.  That is
/// the steady-state regime the zero-copy path is built for — after a brief
/// warm-up every pooled buffer is a reuse, and the only per-frame
/// allocation left is materialising the `Delivery` at the receiver.
/// Injecting the full batch up front would instead measure peak in-flight
/// frames (one fresh pool buffer each): a memory-footprint question, not
/// an allocation-pressure one.
struct AllocRow {
    name: String,
    store: &'static str,
    frames: u64,
    allocs: u64,
    allocs_per_frame: f64,
}

impl ToJson for AllocRow {
    fn to_json(&self) -> String {
        json_object(&[
            ("name", self.name.to_json()),
            ("store", self.store.to_json()),
            ("frames", self.frames.to_json()),
            ("allocs", self.allocs.to_json()),
            ("allocs_per_frame", self.allocs_per_frame.to_json()),
        ])
    }
}

/// Measure allocations per forwarded frame for one frame store.  The arena
/// row keeps the bare name (it is the simulator default — the trajectory
/// key stays stable); the owned row rides along under a `+owned` suffix.
fn measure_allocs(store: FrameStoreKind) -> AllocRow {
    const FRAMES: u64 = 100_000;
    let scenario = FabricScenario::torus(8, 8, 8, 8);
    let topology = scenario.topology();
    let batch = ScenarioFrameSource::new(scenario, FRAMES, SPACING)
        .payload_len(64)
        .drain_all();
    let config = SimConfig {
        frame_store: store,
        ..SimConfig::default()
    };
    let mut sim = Simulator::with_topology(config, topology).expect("the torus fabric is valid");
    let mut source = PrebuiltSource {
        items: batch.into_iter().peekable(),
    };
    let before = ALLOCS.load(Ordering::Relaxed);
    sim.run_with_source(&mut source, WINDOW)
        .expect("bench injections are valid");
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        sim.poll_deliveries().len() as u64,
        FRAMES,
        "{}: every injected frame must be delivered",
        store.name()
    );
    let name = match store {
        FrameStoreKind::Arena => "torus_8x8_1024_hot_path".to_string(),
        FrameStoreKind::Owned => "torus_8x8_1024_hot_path+owned".to_string(),
    };
    AllocRow {
        name,
        store: store.name(),
        frames: FRAMES,
        allocs,
        allocs_per_frame: allocs as f64 / FRAMES as f64,
    }
}

/// A pre-encoded JSON row, so timing rows and allocation rows can share one
/// artifact array.
struct RawJson(String);

impl ToJson for RawJson {
    fn to_json(&self) -> String {
        self.0.clone()
    }
}

fn main() {
    let mut harness = MicroBench::new();

    for frames in [100u64, 1000] {
        harness.bench(&format!("forward_{frames}_rt_frames_8_nodes"), || {
            let mut sim = Simulator::new(SimConfig::default(), (0..8).map(NodeId::new));
            for k in 0..frames {
                let src = (k % 8) as u32;
                let dst = ((k + 1) % 8) as u32;
                sim.inject(
                    NodeId::new(src),
                    rt_eth(src, dst, 1_000_000_000),
                    SimTime::from_micros(k),
                )
                .unwrap();
            }
            sim.run_to_idle();
            sim.events_processed()
        });
    }

    harness.bench("channel_establishment_handshake", || {
        let mut net = RtNetwork::builder()
            .star(8)
            .dps(DpsKind::Asymmetric)
            .build()
            .expect("a star always builds");
        net.establish_channel(
            NodeId::new(0),
            NodeId::new(1),
            RtChannelSpec::paper_default(),
        )
        .unwrap()
    });
    harness.finish("simulator");

    println!("\nallocations per forwarded frame (1024-node torus, 100k frames)");
    let alloc_rows: Vec<AllocRow> = [FrameStoreKind::Arena, FrameStoreKind::Owned]
        .into_iter()
        .map(measure_allocs)
        .collect();
    let mut table = Table::new(&["measurement", "store", "allocs", "allocs/frame"]);
    for row in &alloc_rows {
        table.row_strings(vec![
            row.name.clone(),
            row.store.to_string(),
            row.allocs.to_string(),
            format!("{:.2}", row.allocs_per_frame),
        ]);
    }
    table.print();

    let artifact: Vec<RawJson> = harness
        .results()
        .iter()
        .map(|r| RawJson(r.to_json()))
        .chain(alloc_rows.iter().map(|r| RawJson(r.to_json())))
        .collect();
    write_artifact("BENCH_SIMULATOR_JSON", "BENCH_simulator.json", &artifact);
}
