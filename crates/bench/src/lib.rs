//! # rt-bench
//!
//! Experiment harnesses regenerating the paper's evaluation plus the
//! ablations, and dependency-free micro-benchmarks.
//!
//! The library part holds the reusable experiment drivers so the binaries
//! (`fig18_5`, `delay_validation`, `dps_ablation`, `feasibility_ablation`,
//! `coexistence`, `multiswitch`) and the `benches/` targets share one
//! implementation; [`microbench`] is the small in-repo harness the bench
//! targets run on (the workspace carries no external crates).
//!
//! Binaries print human-readable tables to stdout and, when given a path as
//! the first CLI argument, also write the raw results as JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod microbench;
pub mod report;

pub use experiments::{
    admission_sweep, delay_validation, AdmissionRunResult, DelayValidationResult, Fig18Row,
};
pub use microbench::{BenchResult, MicroBench};
pub use report::{Histogram, Table, ToJson};
