//! Reusable experiment drivers shared by the harness binaries and the
//! Criterion benches.

use rt_core::{AdmissionController, DpsKind, RtChannelSpec, RtNetwork, SystemState};
use rt_traffic::{ChannelRequest, RequestPattern, Scenario};
use rt_types::{Duration, LinkDirection, NodeId, SimTime};

use crate::report::{json_object, ToJson};

/// Aggregate result of feeding a request sequence to one admission
/// controller configuration.
#[derive(Debug, Clone)]
pub struct AdmissionRunResult {
    /// Name of the deadline-partitioning scheme.
    pub dps: String,
    /// Number of requests submitted.
    pub requested: u64,
    /// Number of requests accepted.
    pub accepted: u64,
    /// Rejections whose bottleneck was an uplink.
    pub rejected_uplink: u64,
    /// Rejections whose bottleneck was a downlink.
    pub rejected_downlink: u64,
    /// Rejections for other reasons (invalid spec, ...).
    pub rejected_other: u64,
}

impl AdmissionRunResult {
    /// Acceptance ratio in `[0, 1]`.
    pub fn acceptance_ratio(&self) -> f64 {
        if self.requested == 0 {
            0.0
        } else {
            self.accepted as f64 / self.requested as f64
        }
    }
}

impl ToJson for AdmissionRunResult {
    fn to_json(&self) -> String {
        json_object(&[
            ("dps", self.dps.to_json()),
            ("requested", self.requested.to_json()),
            ("accepted", self.accepted.to_json()),
            ("rejected_uplink", self.rejected_uplink.to_json()),
            ("rejected_downlink", self.rejected_downlink.to_json()),
            ("rejected_other", self.rejected_other.to_json()),
        ])
    }
}

/// Feed `requests` to a fresh admission controller over `nodes` using `dps`.
///
/// `utilisation_only` switches the feasibility test to the Liu & Layland
/// utilisation bound (Constraint 1 only), which is what Ablation B compares
/// against.
pub fn run_admission(
    nodes: &[NodeId],
    requests: &[ChannelRequest],
    dps: DpsKind,
    utilisation_only: bool,
) -> AdmissionRunResult {
    let state = SystemState::with_nodes(nodes.iter().copied());
    let mut controller = if utilisation_only {
        AdmissionController::utilisation_only(state, dps.build())
    } else {
        AdmissionController::new(state, dps.build())
    };
    let mut result = AdmissionRunResult {
        dps: controller.dps_name().to_string(),
        requested: requests.len() as u64,
        accepted: 0,
        rejected_uplink: 0,
        rejected_downlink: 0,
        rejected_other: 0,
    };
    for req in requests {
        match controller
            .request(req.source, req.destination, req.spec)
            .expect("request over known nodes cannot error")
        {
            rt_core::AdmissionDecision::Accepted(_) => result.accepted += 1,
            rt_core::AdmissionDecision::Rejected { bottleneck, .. } => match bottleneck {
                Some(link) if link.direction == LinkDirection::Uplink => {
                    result.rejected_uplink += 1
                }
                Some(_) => result.rejected_downlink += 1,
                None => result.rejected_other += 1,
            },
        }
    }
    result
}

/// The controller state after running `requests`, for experiments that need
/// to inspect per-link task sets afterwards (e.g. the feasibility ablation).
pub fn run_admission_returning_controller(
    nodes: &[NodeId],
    requests: &[ChannelRequest],
    dps: DpsKind,
    utilisation_only: bool,
) -> AdmissionController {
    let state = SystemState::with_nodes(nodes.iter().copied());
    let mut controller = if utilisation_only {
        AdmissionController::utilisation_only(state, dps.build())
    } else {
        AdmissionController::new(state, dps.build())
    };
    for req in requests {
        let _ = controller
            .request(req.source, req.destination, req.spec)
            .expect("request over known nodes cannot error");
    }
    controller
}

/// One row of the Figure 18.5 reproduction.
#[derive(Debug, Clone)]
pub struct Fig18Row {
    /// Number of requested channels.
    pub requested: u64,
    /// Channels accepted under symmetric deadline partitioning.
    pub sdps_accepted: u64,
    /// Channels accepted under asymmetric deadline partitioning.
    pub adps_accepted: u64,
}

impl ToJson for Fig18Row {
    fn to_json(&self) -> String {
        json_object(&[
            ("requested", self.requested.to_json()),
            ("sdps_accepted", self.sdps_accepted.to_json()),
            ("adps_accepted", self.adps_accepted.to_json()),
        ])
    }
}

/// Reproduce Figure 18.5: for each number of requested channels, count how
/// many are accepted under SDPS and under ADPS.
///
/// The workload matches the paper: the master/slave scenario (10 masters,
/// 50 slaves), every requested channel with identical parameters
/// `C_i = 3, P_i = 100, d_i = 40`, requests issued master → slave.
pub fn admission_sweep(points: &[u64]) -> Vec<Fig18Row> {
    let scenario = Scenario::paper_master_slave();
    let nodes = scenario.nodes();
    let spec = RtChannelSpec::paper_default();
    let pattern = RequestPattern::MasterSlaveRoundRobin;
    points
        .iter()
        .map(|&requested| {
            let requests = pattern.generate(&scenario, requested, spec);
            let sdps = run_admission(&nodes, &requests, DpsKind::Symmetric, false);
            let adps = run_admission(&nodes, &requests, DpsKind::Asymmetric, false);
            Fig18Row {
                requested,
                sdps_accepted: sdps.accepted,
                adps_accepted: adps.accepted,
            }
        })
        .collect()
}

/// Result of the end-to-end delay validation experiment (Eq. 18.1).
#[derive(Debug, Clone)]
pub struct DelayValidationResult {
    /// The DPS used by the switch.
    pub dps: String,
    /// Channels the experiment asked for.
    pub channels_requested: u64,
    /// Channels actually established over the wire.
    pub channels_established: u64,
    /// Real-time frames delivered.
    pub frames_delivered: u64,
    /// Frames that arrived after their stamped deadline.
    pub deadline_misses: u64,
    /// Worst observed end-to-end latency (nanoseconds).
    pub worst_latency_ns: u64,
    /// The analytical bound `d_i + T_latency` (nanoseconds).
    pub bound_ns: u64,
    /// `true` when every frame met the bound.
    pub all_within_bound: bool,
}

impl ToJson for DelayValidationResult {
    fn to_json(&self) -> String {
        json_object(&[
            ("dps", self.dps.to_json()),
            ("channels_requested", self.channels_requested.to_json()),
            ("channels_established", self.channels_established.to_json()),
            ("frames_delivered", self.frames_delivered.to_json()),
            ("deadline_misses", self.deadline_misses.to_json()),
            ("worst_latency_ns", self.worst_latency_ns.to_json()),
            ("bound_ns", self.bound_ns.to_json()),
            ("all_within_bound", self.all_within_bound.to_json()),
        ])
    }
}

/// Establish `channels` channels (master → slave, paper parameters) over the
/// simulated network, drive `messages` periodic messages on each and check
/// the measured worst-case delay against the Eq. 18.1 bound.
pub fn delay_validation(channels: u64, messages: u64, dps: DpsKind) -> DelayValidationResult {
    let scenario = Scenario::paper_master_slave();
    let spec = RtChannelSpec::paper_default();
    let mut net = RtNetwork::builder()
        .nodes(scenario.nodes())
        .dps(dps)
        .build()
        .expect("a star always builds");
    let requests = RequestPattern::MasterSlaveRoundRobin.generate(&scenario, channels, spec);
    let mut established = Vec::new();
    for req in &requests {
        if let Some(tx) = net
            .establish_channel(req.source, req.destination, req.spec)
            .expect("establishment cannot error on a known topology")
        {
            established.push((req.source, tx));
        }
    }
    let start = net.now() + Duration::from_millis(1);
    for (source, tx) in &established {
        net.send_periodic(*source, tx.id, messages, 1400, start)
            .expect("channel was just established");
    }
    net.run_to_completion().expect("simulation completes");

    let stats = net.simulator().stats();
    let worst = stats
        .worst_case_latency()
        .unwrap_or(Duration::ZERO)
        .as_nanos();
    let bound = net.deadline_bound(&spec).as_nanos();
    DelayValidationResult {
        dps: format!("{dps:?}"),
        channels_requested: channels,
        channels_established: established.len() as u64,
        frames_delivered: stats.rt_delivered,
        deadline_misses: stats.total_deadline_misses,
        worst_latency_ns: worst,
        bound_ns: bound,
        all_within_bound: worst <= bound && stats.total_deadline_misses == 0,
    }
}

/// Result of one coexistence run (Ablation C).
#[derive(Debug, Clone)]
pub struct CoexistenceResult {
    /// Offered best-effort load as a fraction of one link's capacity.
    pub be_load_fraction: f64,
    /// Real-time frames delivered.
    pub rt_delivered: u64,
    /// Real-time deadline misses.
    pub rt_misses: u64,
    /// Worst real-time latency in nanoseconds.
    pub rt_worst_latency_ns: u64,
    /// Best-effort frames delivered.
    pub be_delivered: u64,
    /// Best-effort frames dropped at full queues.
    pub be_dropped: u64,
}

impl ToJson for CoexistenceResult {
    fn to_json(&self) -> String {
        json_object(&[
            ("be_load_fraction", self.be_load_fraction.to_json()),
            ("rt_delivered", self.rt_delivered.to_json()),
            ("rt_misses", self.rt_misses.to_json()),
            ("rt_worst_latency_ns", self.rt_worst_latency_ns.to_json()),
            ("be_delivered", self.be_delivered.to_json()),
            ("be_dropped", self.be_dropped.to_json()),
        ])
    }
}

/// Run the coexistence experiment: a handful of RT channels plus best-effort
/// cross traffic whose offered load is `be_load_fraction` of one link's
/// capacity, all sharing the same uplink/downlink pair.
pub fn coexistence_run(
    be_load_fraction: f64,
    rt_channels: u64,
    messages: u64,
) -> CoexistenceResult {
    let scenario = Scenario::new(2, 4);
    let spec = RtChannelSpec::paper_default();
    let dps = DpsKind::Asymmetric;
    let mut net = RtNetwork::builder()
        .nodes(scenario.nodes())
        .dps(dps)
        .build()
        .expect("a star always builds");
    // RT channels all from master 0 to slave 2 (same uplink and downlink).
    let mut established = Vec::new();
    for _ in 0..rt_channels {
        if let Some(tx) = net
            .establish_channel(scenario.master(0), scenario.slave(0), spec)
            .expect("establishment works")
        {
            established.push(tx);
        }
    }
    let start = net.now() + Duration::from_millis(1);
    for tx in &established {
        net.send_periodic(scenario.master(0), tx.id, messages, 1400, start)
            .expect("send periodic");
    }
    // Best-effort traffic on the same node pair.  One full-size frame takes
    // one slot; to offer `f` of the link we send a frame every slot/f.
    let slot = net.simulator().config().link_speed.slot_duration();
    let horizon = net
        .simulator()
        .config()
        .link_speed
        .slots_to_duration(rt_types::Slots::new(spec.period.get() * messages));
    if be_load_fraction > 0.0 {
        let gap =
            Duration::from_nanos(((slot.as_nanos() as f64) / be_load_fraction).round() as u64);
        let mut t = start;
        while t < start + horizon {
            net.send_best_effort(scenario.master(0), scenario.slave(0), 1400, t)
                .expect("send best effort");
            t += gap;
        }
    }
    net.run_to_completion().expect("simulation completes");
    let stats = net.simulator().stats();
    CoexistenceResult {
        be_load_fraction,
        rt_delivered: stats.rt_delivered,
        rt_misses: stats.total_deadline_misses,
        rt_worst_latency_ns: stats
            .worst_case_latency()
            .unwrap_or(Duration::ZERO)
            .as_nanos(),
        be_delivered: stats.be_delivered,
        be_dropped: stats.be_dropped,
    }
}

/// A convenient absolute start time for experiments that need one.
pub fn experiment_epoch() -> SimTime {
    SimTime::ZERO
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig18_5_shape_matches_the_paper() {
        let rows = admission_sweep(&[20, 60, 120, 200]);
        assert_eq!(rows.len(), 4);
        // Below saturation both schemes accept everything.
        assert_eq!(rows[0].sdps_accepted, 20);
        assert_eq!(rows[0].adps_accepted, 20);
        // SDPS saturates at 6 channels per master uplink = 60.
        assert_eq!(rows[2].sdps_accepted, 60);
        assert_eq!(rows[3].sdps_accepted, 60);
        // ADPS keeps accepting well beyond SDPS (paper: ~110 at 200
        // requests) — require at least 1.5x.
        assert!(
            rows[3].adps_accepted >= 90,
            "ADPS only accepted {}",
            rows[3].adps_accepted
        );
        assert!(rows[3].adps_accepted as f64 >= 1.5 * rows[3].sdps_accepted as f64);
        // Acceptance is monotone in the number of requests.
        assert!(rows
            .windows(2)
            .all(|w| w[0].adps_accepted <= w[1].adps_accepted));
    }

    #[test]
    fn run_admission_classifies_rejections() {
        let scenario = Scenario::paper_master_slave();
        let spec = RtChannelSpec::paper_default();
        let requests = RequestPattern::MasterSlaveRoundRobin.generate(&scenario, 200, spec);
        let result = run_admission(&scenario.nodes(), &requests, DpsKind::Symmetric, false);
        assert_eq!(result.requested, 200);
        assert_eq!(result.accepted, 60);
        assert_eq!(
            result.accepted
                + result.rejected_uplink
                + result.rejected_downlink
                + result.rejected_other,
            200
        );
        // With the master/slave pattern the bottleneck is the uplink.
        assert!(result.rejected_uplink > 0);
        assert_eq!(result.rejected_other, 0);
        assert!((result.acceptance_ratio() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn delay_validation_meets_the_bound() {
        // Small instance to keep the test fast: 12 channels, 5 messages.
        let result = delay_validation(12, 5, DpsKind::Asymmetric);
        assert_eq!(result.channels_established, 12);
        assert!(result.frames_delivered > 0);
        assert_eq!(result.deadline_misses, 0);
        assert!(
            result.all_within_bound,
            "worst {} > bound {}",
            result.worst_latency_ns, result.bound_ns
        );
    }

    #[test]
    fn coexistence_preserves_rt_guarantees_under_be_load() {
        let result = coexistence_run(0.9, 2, 5);
        assert!(result.rt_delivered > 0);
        assert_eq!(result.rt_misses, 0, "RT frames must not miss under BE load");
        assert!(result.be_delivered > 0);
    }
}
