//! Ablation D (future work of the paper): admission over a multi-switch
//! topology.
//!
//! Two access switches joined by a single trunk, masters on one side and
//! slaves on the other, so every channel crosses three links (uplink, trunk,
//! downlink) and the trunk is the shared bottleneck.  The experiment sweeps
//! the number of requested channels and compares the symmetric multi-hop
//! deadline split against the load-proportional (asymmetric) split.
//!
//! Usage: `cargo run -p rt-bench --bin multiswitch [results.json]`

use rt_bench::report::{maybe_write_json_from_args, Table};
use rt_core::multihop::{HopLink, MultiHopAdmission, MultiHopDps, SwitchId, Topology};
use rt_core::RtChannelSpec;
use rt_types::NodeId;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct MultiSwitchRow {
    requested: u64,
    symmetric_accepted: u64,
    asymmetric_accepted: u64,
    trunk_load_symmetric: usize,
    trunk_load_asymmetric: usize,
}

/// Two switches, `masters` nodes on switch 0 and `slaves` nodes on switch 1.
fn dumbbell(masters: u32, slaves: u32) -> Topology {
    let mut t = Topology::new();
    t.add_switch(SwitchId::new(0));
    t.add_switch(SwitchId::new(1));
    t.add_trunk(SwitchId::new(0), SwitchId::new(1))
        .expect("single trunk cannot form a cycle");
    for i in 0..masters {
        t.attach_node(NodeId::new(i), SwitchId::new(0)).expect("fresh node");
    }
    for i in 0..slaves {
        t.attach_node(NodeId::new(masters + i), SwitchId::new(1))
            .expect("fresh node");
    }
    t
}

fn run(dps: MultiHopDps, masters: u32, slaves: u32, requested: u64) -> (u64, usize) {
    let spec = RtChannelSpec::paper_default();
    let mut admission = MultiHopAdmission::new(dumbbell(masters, slaves), dps);
    for i in 0..requested {
        let source = NodeId::new((i % u64::from(masters)) as u32);
        let destination = NodeId::new(masters + (i % u64::from(slaves)) as u32);
        let _ = admission.request(source, destination, spec).expect("valid request");
    }
    let trunk_load = admission.link_load(HopLink::Trunk {
        from: SwitchId::new(0),
        to: SwitchId::new(1),
    });
    (admission.accepted_count(), trunk_load)
}

fn main() {
    let masters = 10u32;
    let slaves = 50u32;
    println!("Ablation D — multi-switch admission ({masters} masters on sw0, {slaves} slaves on sw1, one trunk)");
    println!("every channel crosses uplink + trunk + downlink; C=3, P=100, D=40\n");

    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "requested",
        "symmetric accepted",
        "asymmetric accepted",
        "trunk channels (sym)",
        "trunk channels (asym)",
    ]);
    for requested in (20..=200).step_by(20) {
        let (sym, sym_trunk) = run(MultiHopDps::Symmetric, masters, slaves, requested);
        let (asym, asym_trunk) = run(MultiHopDps::Asymmetric, masters, slaves, requested);
        table.row_strings(vec![
            requested.to_string(),
            sym.to_string(),
            asym.to_string(),
            sym_trunk.to_string(),
            asym_trunk.to_string(),
        ]);
        rows.push(MultiSwitchRow {
            requested,
            symmetric_accepted: sym,
            asymmetric_accepted: asym,
            trunk_load_symmetric: sym_trunk,
            trunk_load_asymmetric: asym_trunk,
        });
    }
    table.print();
    println!();
    println!("The single trunk carries every channel, so it saturates long before the access links;");
    println!("the load-proportional split hands the trunk most of each deadline and admits more channels,");
    println!("which is the multi-switch analogue of the paper's Figure 18.5 result.");

    maybe_write_json_from_args(&rows);
}
