//! Ablation D (future work of the paper): RT channels over a multi-switch
//! fabric — admission analysis *and* wire-level simulation, on trees and
//! meshes.
//!
//! **Part 1 — dumbbell (tree).**  Two access switches joined by a single
//! trunk, masters on one side and slaves on the other, so every channel
//! crosses three links (uplink, trunk, downlink) and the trunk is the shared
//! bottleneck.  The experiment sweeps the number of requested channels and,
//! for each point:
//!
//! 1. runs multi-hop admission analytically (symmetric vs. load-proportional
//!    deadline split), and
//! 2. replays the *asymmetric* run on the wire: the same requests are
//!    established through the simulated fabric (handshake frames crossing
//!    the trunk), periodic traffic is driven on every admitted channel, and
//!    the measured worst-case delay is checked against the multi-hop
//!    Eq. 18.1 analogue `d_i·slot + T_latency(hops)`.
//!
//! **Part 2 — mesh (ring) vs. spanning tree.**  A ring of four access
//! switches is the line plus one *redundant* closing trunk.  The same
//! cross-switch request sequence is driven twice through `RtNetworkBuilder`:
//! once over the spanning line under `TreeRouter` (the pre-mesh behaviour)
//! and once over the ring under `ShortestPathRouter`.  The redundant trunk
//! both shortens routes (fewer hops → more slack per link) and removes the
//! middle-trunk bottleneck, so the mesh admits more channels; every admitted
//! channel is again validated on the wire against its hop-aware bound.
//!
//! **Part 3 — event scheduler A/B.**  The part-2 ring run (establishment
//! handshakes + periodic traffic + bound validation) repeated under the
//! `HeapScheduler` and the `CalendarScheduler`: outcomes must be identical
//! (the scheduler may never change what happens on the wire, only how fast
//! the simulation computes it) and the per-scheduler events/s lands in the
//! JSON artifact next to the fabric baseline's rows.
//!
//! **Part 4 — survivability (1024-node torus, scripted trunk cut).**  Forty
//! channels are admitted over the 8×8×16 torus with `KShortestRouter`
//! fallback, eight of them pinned across one grid trunk.  Mid-run that
//! trunk is cut: every affected channel must be re-routed (the torus is
//! redundant — zero drops), traffic generated after re-admission must meet
//! the new hop-aware bounds with zero deadline misses, and every channel
//! whose links are disjoint from the failure and the re-routes must deliver
//! byte-for-byte identically to a fault-free reference run.  The
//! accepted / re-routed / dropped counts land in the JSON artifact as
//! admission-quality rows, which the `bench_diff` gate tracks alongside
//! events/s.
//!
//! **Part 5 — central vs distributed control plane (1024-node torus).**
//! The same request sequence — a cross-switch sweep plus a *hot-trunk*
//! block in which every request contends for the `sw0 <-> sw1` trunk's
//! slack — is driven twice over the 8×8×16 torus: once under the paper's
//! centralised manager (control frames teleport… well, forward to one
//! switch) and once under the distributed per-switch managers with
//! two-phase reservation frames hopping the fabric.  The accepted channel
//! sets must be *identical* — routes and deadline splits admission for
//! admission, ids under the admission-order remapping (raw ids differ by
//! construction: per-switch id blocks vs the central global sequencer);
//! what differs is the honest price: control-frame count, control-frame
//! link traversals ("admission hops") and admission latency in simulated
//! time all land in the artifact, and `bench_diff` fails CI if the
//! accepted sets ever diverge.  **Part 5b** cuts a trunk and establishes
//! the next batch while the link-state flood is still propagating —
//! admission against stale views — then settles and audits that no
//! reservation slack leaked; `bench_diff` gates the deterministic
//! `accepted_under_convergence` count (any decrease fails).
//!
//! **Part 6 — churn soak (fat tree + 4-D torus).**  A long-running
//! admission service: a seeded arrival/departure process (exponential
//! inter-arrivals and holding times, heterogeneous specs, uniform endpoint
//! pairs) churns establish/release through the real control protocol on
//! the k=16 fat tree (320 switches / 1024 hosts) and a 4×4×4×4 torus
//! (256 switches / 1024 hosts), under both the central and the distributed
//! manager.  Reported per run: admissions/s, steady-state acceptance
//! ratio, and p50/p99 establishment latency — all gated by `bench_diff`
//! (a >20 % admissions/s drop or *any* acceptance-ratio decrease fails
//! CI), plus a per-fabric central-vs-distributed trace-parity row.  The
//! fat-tree soak additionally runs under the table-free
//! `StructuralRouter` (the `structural` placement row) and must reproduce
//! the tabled run's trace hash bit for bit.  A
//! flapping-trunk run cuts and repairs a core trunk three times mid-churn
//! (the routing-rebuild hot path), and a fixed-size 6-switch-ring run
//! shows the repair re-optimisation recovering the acceptance ratio.
//! `RT_SOAK_REQUESTS` scales the measured window (CI smokes 50 000; a
//! full-scale 250 000-per-run artifact is over a million cumulative
//! admission decisions).
//!
//! Usage: `cargo run -p rt-bench --bin multiswitch [results.json]`.  The
//! results are additionally always written to `BENCH_multiswitch.json` at
//! the workspace root (override with `BENCH_MULTISWITCH_JSON`) so CI can
//! archive the trajectory like the fabric baseline.

use std::sync::Arc;
use std::time::Instant;

use std::collections::BTreeSet;

use rt_bench::report::{
    json_object, maybe_write_json_from_args, write_artifact, Histogram, Table, ToJson,
};
use rt_core::multihop::{HopLink, MultiHopAdmission, MultiHopDps, SwitchId, Topology};
use rt_core::{
    ChannelRoute, DistributedChannelManager, FabricChannelManager, RtChannelSpec, RtNetwork,
};
use rt_netsim::SchedulerKind;
use rt_traffic::{
    ChurnConfig, ChurnEvent, ChurnProcess, ChurnReport, FabricScenario, FailoverScenario,
};
use rt_types::{
    ChannelId, Duration, KShortestRouter, ManagerPlacement, NodeId, Router, ShortestPathRouter,
    SimTime, StructuralRouter, TreeRouter,
};

#[derive(Debug)]
struct MultiSwitchRow {
    requested: u64,
    symmetric_accepted: u64,
    asymmetric_accepted: u64,
    trunk_load_symmetric: usize,
    trunk_load_asymmetric: usize,
    // Wire-level validation of the asymmetric run.
    simulated_established: u64,
    simulated_frames: u64,
    simulated_misses: u64,
    worst_latency_ns: u64,
    worst_bound_ns: u64,
}

impl ToJson for MultiSwitchRow {
    fn to_json(&self) -> String {
        json_object(&[
            ("requested", self.requested.to_json()),
            ("symmetric_accepted", self.symmetric_accepted.to_json()),
            ("asymmetric_accepted", self.asymmetric_accepted.to_json()),
            ("trunk_load_symmetric", self.trunk_load_symmetric.to_json()),
            (
                "trunk_load_asymmetric",
                self.trunk_load_asymmetric.to_json(),
            ),
            (
                "simulated_established",
                self.simulated_established.to_json(),
            ),
            ("simulated_frames", self.simulated_frames.to_json()),
            ("simulated_misses", self.simulated_misses.to_json()),
            ("worst_latency_ns", self.worst_latency_ns.to_json()),
            ("worst_bound_ns", self.worst_bound_ns.to_json()),
        ])
    }
}

/// One router's wire-level numbers at one sweep point of the mesh
/// experiment.
#[derive(Debug, Default)]
struct WireOutcome {
    established: u64,
    frames: u64,
    misses: u64,
    worst_latency_ns: u64,
    worst_bound_ns: u64,
    /// Simulation events processed (for the scheduler A/B of part 3).
    events: u64,
}

#[derive(Debug)]
struct MeshRow {
    requested: u64,
    tree: WireOutcome,
    mesh: WireOutcome,
}

impl ToJson for MeshRow {
    fn to_json(&self) -> String {
        let enc = |o: &WireOutcome| {
            json_object(&[
                ("established", o.established.to_json()),
                ("frames", o.frames.to_json()),
                ("misses", o.misses.to_json()),
                ("worst_latency_ns", o.worst_latency_ns.to_json()),
                ("worst_bound_ns", o.worst_bound_ns.to_json()),
            ])
        };
        json_object(&[
            ("requested", self.requested.to_json()),
            ("tree_router_line", enc(&self.tree)),
            ("shortest_path_ring", enc(&self.mesh)),
        ])
    }
}

/// One scheduler's wall-clock numbers for the identical ring workload.
#[derive(Debug)]
struct SchedulerRow {
    scheduler: &'static str,
    events: u64,
    elapsed_ns: u64,
    events_per_second: f64,
}

impl ToJson for SchedulerRow {
    fn to_json(&self) -> String {
        json_object(&[
            ("fabric", "multiswitch_ring".to_json()),
            ("scheduler", self.scheduler.to_json()),
            ("events", self.events.to_json()),
            ("elapsed_ns", self.elapsed_ns.to_json()),
            ("events_per_second", self.events_per_second.to_json()),
        ])
    }
}

/// One fail-over survivability run (part 4).
#[derive(Debug)]
struct FailoverRow {
    requested: u64,
    accepted: u64,
    rerouted: u64,
    dropped: u64,
    deadline_misses: u64,
    link_failure_drops: u64,
    unaffected_identical: bool,
    events: u64,
    elapsed_ns: u64,
}

impl ToJson for FailoverRow {
    fn to_json(&self) -> String {
        // No events_per_second here on purpose: this run is dominated by
        // fixed costs (18 ms of wall clock), so a throughput gate on it
        // would be noise; the throughput trajectory lives in
        // `benches/fabric.rs`.  The admission-quality fields are the gated
        // metrics.
        json_object(&[
            ("fabric", "torus_1024_failover".to_json()),
            ("requested", self.requested.to_json()),
            ("accepted_channels", self.accepted.to_json()),
            ("rerouted_channels", self.rerouted.to_json()),
            ("dropped_channels", self.dropped.to_json()),
            ("deadline_misses", self.deadline_misses.to_json()),
            ("link_failure_drops", self.link_failure_drops.to_json()),
            ("unaffected_identical", self.unaffected_identical.to_json()),
            ("events", self.events.to_json()),
            ("elapsed_ns", self.elapsed_ns.to_json()),
        ])
    }
}

/// Per-scenario admission-quality metrics for the trajectory gate: how many
/// channels each scenario accepted (and, for fail-over scenarios, re-routed
/// / dropped).  `bench_diff` fails CI when `accepted_channels` regresses.
#[derive(Debug)]
struct AdmissionRow {
    scenario: String,
    accepted: u64,
    rerouted: u64,
    dropped: u64,
}

impl ToJson for AdmissionRow {
    fn to_json(&self) -> String {
        json_object(&[
            ("fabric", self.scenario.to_json()),
            ("accepted_channels", self.accepted.to_json()),
            ("rerouted_channels", self.rerouted.to_json()),
            ("dropped_channels", self.dropped.to_json()),
        ])
    }
}

/// One control-plane placement's numbers for the identical torus workload
/// (part 5).
#[derive(Debug)]
struct DistributedRow {
    placement: &'static str,
    requested: u64,
    accepted: u64,
    control_frames: u64,
    control_hops: u64,
    /// Link-state flood frames, counted separately from the reservation
    /// traffic (zero in a fault-free run).
    link_state_frames: u64,
    /// Simulated time consumed by all establishment handshakes.
    admission_ns: u64,
    /// Mean control-frame link traversals per *accepted* channel — the
    /// admission latency measured in real hops.
    hops_per_accepted: f64,
    events: u64,
    elapsed_ns: u64,
}

impl ToJson for DistributedRow {
    fn to_json(&self) -> String {
        json_object(&[
            ("fabric", format!("torus_1024_{}", self.placement).to_json()),
            ("placement", self.placement.to_json()),
            ("requested", self.requested.to_json()),
            ("accepted_channels", self.accepted.to_json()),
            ("rerouted_channels", 0u64.to_json()),
            ("dropped_channels", 0u64.to_json()),
            ("control_frames", self.control_frames.to_json()),
            ("control_hops", self.control_hops.to_json()),
            ("link_state_frames", self.link_state_frames.to_json()),
            ("admission_ns", self.admission_ns.to_json()),
            ("hops_per_accepted", self.hops_per_accepted.to_json()),
            ("events", self.events.to_json()),
            ("elapsed_ns", self.elapsed_ns.to_json()),
        ])
    }
}

/// The central-vs-distributed parity verdict (part 5), gated in-artifact by
/// `bench_diff`: the two accepted counts must be equal, and the admitted
/// routes and deadline splits must match admission for admission (raw ids
/// differ by construction — the distributed manager allocates from
/// per-switch id blocks — so `identical_channel_set` is checked under the
/// admission-order id remapping).
#[derive(Debug)]
struct ParityRow {
    central_accepted: u64,
    distributed_accepted: u64,
    identical_channel_set: bool,
}

/// Part 5b — admission *during* the link-state convergence window (the cut
/// has been announced but the flood is still propagating, so per-switch
/// views disagree).  `bench_diff` gates `accepted_under_convergence`: the
/// run is seeded and deterministic, so any decrease fails CI.
#[derive(Debug)]
struct ConvergenceRow {
    requested: u64,
    accepted_under_convergence: u64,
    rerouted_by_cut: u64,
    control_frames: u64,
    link_state_frames: u64,
    link_state_hops: u64,
}

impl ToJson for ConvergenceRow {
    fn to_json(&self) -> String {
        json_object(&[
            ("fabric", "torus_1024_convergence".to_json()),
            ("requested", self.requested.to_json()),
            (
                "accepted_under_convergence",
                self.accepted_under_convergence.to_json(),
            ),
            ("rerouted_by_cut", self.rerouted_by_cut.to_json()),
            ("control_frames", self.control_frames.to_json()),
            ("link_state_frames", self.link_state_frames.to_json()),
            ("link_state_hops", self.link_state_hops.to_json()),
        ])
    }
}

impl ToJson for ParityRow {
    fn to_json(&self) -> String {
        json_object(&[
            ("fabric", "torus_1024_parity".to_json()),
            ("accepted_channels_central", self.central_accepted.to_json()),
            (
                "accepted_channels_distributed",
                self.distributed_accepted.to_json(),
            ),
            (
                "identical_channel_set",
                self.identical_channel_set.to_json(),
            ),
        ])
    }
}

/// One churn-soak run's metrics (part 6): the long-running admission
/// service under a seeded arrival/departure process.  `bench_diff` gates
/// `admissions_per_second` (a >20 % drop fails) and `acceptance_ratio`
/// (any decrease fails — the workload is seeded, so the ratio is exactly
/// reproducible run to run).
#[derive(Debug)]
struct ChurnRow {
    fabric: String,
    placement: &'static str,
    attempts: u64,
    admitted: u64,
    acceptance_ratio: f64,
    admissions_per_second: f64,
    p50_establish_ns: u64,
    p99_establish_ns: u64,
    peak_active: u64,
    dropped_by_faults: u64,
    trace_hash: String,
}

impl ToJson for ChurnRow {
    fn to_json(&self) -> String {
        json_object(&[
            ("fabric", self.fabric.to_json()),
            ("placement", self.placement.to_json()),
            ("attempts", self.attempts.to_json()),
            ("admitted", self.admitted.to_json()),
            ("acceptance_ratio", self.acceptance_ratio.to_json()),
            (
                "admissions_per_second",
                self.admissions_per_second.to_json(),
            ),
            ("p50_establish_ns", self.p50_establish_ns.to_json()),
            ("p99_establish_ns", self.p99_establish_ns.to_json()),
            ("peak_active", self.peak_active.to_json()),
            ("dropped_by_faults", self.dropped_by_faults.to_json()),
            ("trace_hash", self.trace_hash.to_json()),
        ])
    }
}

/// The per-fabric churn parity verdict (part 6): central and distributed
/// placements driven by the identical seeded process must produce the
/// byte-identical admission trace.  Reuses the parity field names so the
/// in-artifact `bench_diff` gate applies with no baseline needed.
#[derive(Debug)]
struct ChurnParityRow {
    fabric: String,
    central_admitted: u64,
    distributed_admitted: u64,
    identical_trace: bool,
}

impl ToJson for ChurnParityRow {
    fn to_json(&self) -> String {
        json_object(&[
            ("fabric", format!("{}_churn_parity", self.fabric).to_json()),
            ("accepted_channels_central", self.central_admitted.to_json()),
            (
                "accepted_channels_distributed",
                self.distributed_admitted.to_json(),
            ),
            ("identical_channel_set", self.identical_trace.to_json()),
        ])
    }
}

/// The churn-with-faults recovery row (part 6): acceptance ratio before the
/// cut, while degraded, and after the repair re-optimisation.
#[derive(Debug)]
struct ChurnRecoveryRow {
    acceptance_pre_cut: f64,
    acceptance_degraded: f64,
    acceptance_recovered: f64,
    rerouted_by_cut: u64,
    rerouted_by_repair: u64,
    dropped_by_faults: u64,
}

impl ToJson for ChurnRecoveryRow {
    fn to_json(&self) -> String {
        json_object(&[
            ("fabric", "ring_6_churn_recovery".to_json()),
            ("acceptance_pre_cut", self.acceptance_pre_cut.to_json()),
            ("acceptance_degraded", self.acceptance_degraded.to_json()),
            ("acceptance_recovered", self.acceptance_recovered.to_json()),
            ("rerouted_by_cut", self.rerouted_by_cut.to_json()),
            ("rerouted_by_repair", self.rerouted_by_repair.to_json()),
            ("dropped_by_faults", self.dropped_by_faults.to_json()),
        ])
    }
}

/// The whole experiment, for the JSON dump.
#[derive(Debug)]
struct Results {
    dumbbell: Vec<MultiSwitchRow>,
    mesh: Vec<MeshRow>,
    schedulers: Vec<SchedulerRow>,
    failover: Vec<FailoverRow>,
    distributed: Vec<DistributedRow>,
    parity: Vec<ParityRow>,
    convergence: Vec<ConvergenceRow>,
    admission_quality: Vec<AdmissionRow>,
    churn: Vec<ChurnRow>,
    churn_parity: Vec<ChurnParityRow>,
    churn_recovery: Vec<ChurnRecoveryRow>,
}

impl ToJson for Results {
    fn to_json(&self) -> String {
        json_object(&[
            ("dumbbell", self.dumbbell.to_json()),
            ("mesh_vs_tree", self.mesh.to_json()),
            ("scheduler_comparison", self.schedulers.to_json()),
            ("failover", self.failover.to_json()),
            ("distributed_admission", self.distributed.to_json()),
            ("distributed_parity", self.parity.to_json()),
            ("convergence_admission", self.convergence.to_json()),
            ("admission_quality", self.admission_quality.to_json()),
            ("churn_soak", self.churn.to_json()),
            ("churn_parity", self.churn_parity.to_json()),
            ("churn_recovery", self.churn_recovery.to_json()),
        ])
    }
}

/// Two switches, `masters` nodes on switch 0 and `slaves` nodes on switch 1.
fn dumbbell(masters: u32, slaves: u32) -> Topology {
    let mut t = Topology::new();
    t.add_switch(SwitchId::new(0));
    t.add_switch(SwitchId::new(1));
    t.add_trunk(SwitchId::new(0), SwitchId::new(1))
        .expect("single fresh trunk");
    for i in 0..masters {
        t.attach_node(NodeId::new(i), SwitchId::new(0))
            .expect("fresh node");
    }
    for i in 0..slaves {
        t.attach_node(NodeId::new(masters + i), SwitchId::new(1))
            .expect("fresh node");
    }
    t
}

fn request_pair(i: u64, masters: u32, slaves: u32) -> (NodeId, NodeId) {
    (
        NodeId::new((i % u64::from(masters)) as u32),
        NodeId::new(masters + (i % u64::from(slaves)) as u32),
    )
}

/// Analytical admission only.
fn analyse(dps: MultiHopDps, masters: u32, slaves: u32, requested: u64) -> (u64, usize) {
    let spec = RtChannelSpec::paper_default();
    let mut admission = MultiHopAdmission::new(dumbbell(masters, slaves), dps);
    for i in 0..requested {
        let (source, destination) = request_pair(i, masters, slaves);
        let _ = admission
            .request(source, destination, spec)
            .expect("valid request");
    }
    let trunk_load = admission.link_load(HopLink::Trunk {
        from: SwitchId::new(0),
        to: SwitchId::new(1),
    });
    (admission.accepted_count(), trunk_load)
}

/// Establish a request sequence over the wire, drive periodic traffic and
/// validate every admitted channel against its hop-aware bound.
fn drive_on_the_wire(
    mut net: RtNetwork,
    requests: &[(NodeId, NodeId)],
    messages: u64,
) -> WireOutcome {
    let spec = RtChannelSpec::paper_default();
    let mut established = Vec::new();
    for &(source, destination) in requests {
        if let Some(tx) = net
            .establish_channel(source, destination, spec)
            .expect("establishment cannot error on a known topology")
        {
            established.push((source, tx));
        }
    }
    let start = net.now() + Duration::from_millis(1);
    for (source, tx) in &established {
        net.send_periodic(*source, tx.id, messages, 1400, start)
            .expect("channel was just established");
    }
    net.run_to_completion().expect("simulation completes");

    let stats = net.simulator().stats();
    let mut outcome = WireOutcome {
        established: established.len() as u64,
        frames: stats.rt_delivered,
        misses: stats.total_deadline_misses,
        events: net.simulator().events_processed(),
        ..WireOutcome::default()
    };
    for (_, tx) in &established {
        let Some(ch) = stats.channel(tx.id) else {
            continue;
        };
        let bound = net
            .channel_deadline_bound(tx.id)
            .expect("established channel has a bound")
            .as_nanos();
        let latency = ch.max_latency.as_nanos();
        outcome.worst_latency_ns = outcome.worst_latency_ns.max(latency);
        outcome.worst_bound_ns = outcome.worst_bound_ns.max(bound);
        assert!(
            latency <= bound,
            "channel {} measured {latency} ns > bound {bound} ns",
            tx.id
        );
    }
    outcome
}

/// The same dumbbell request sequence, run over the simulated wire with the
/// asymmetric split.
fn simulate_dumbbell(masters: u32, slaves: u32, requested: u64, messages: u64) -> WireOutcome {
    let net = RtNetwork::builder()
        .topology(dumbbell(masters, slaves))
        .multihop_dps(MultiHopDps::Asymmetric)
        .build()
        .expect("the dumbbell is a valid fabric");
    let requests: Vec<_> = (0..requested)
        .map(|i| request_pair(i, masters, slaves))
        .collect();
    drive_on_the_wire(net, &requests, messages)
}

fn part1_dumbbell(masters: u32, slaves: u32, messages: u64) -> Vec<MultiSwitchRow> {
    println!(
        "Part 1 — dumbbell fabric ({masters} masters on sw0, {slaves} slaves on sw1, one trunk)"
    );
    println!("every channel crosses uplink + trunk + downlink; C=3, P=100, D=40");
    println!("analysis: symmetric vs load-proportional multi-hop split; simulation: asymmetric run on the wire\n");

    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "requested",
        "sym accepted",
        "asym accepted",
        "trunk ch (sym/asym)",
        "sim established",
        "sim frames",
        "sim misses",
        "worst lat (us)",
        "bound (us)",
    ]);
    for requested in (20..=200).step_by(20) {
        let (sym, sym_trunk) = analyse(MultiHopDps::Symmetric, masters, slaves, requested);
        let (asym, asym_trunk) = analyse(MultiHopDps::Asymmetric, masters, slaves, requested);
        let wire = simulate_dumbbell(masters, slaves, requested, messages);
        assert_eq!(
            wire.established, asym,
            "wire-level admission must match the analytical run"
        );
        table.row_strings(vec![
            requested.to_string(),
            sym.to_string(),
            asym.to_string(),
            format!("{sym_trunk}/{asym_trunk}"),
            wire.established.to_string(),
            wire.frames.to_string(),
            wire.misses.to_string(),
            format!("{:.1}", wire.worst_latency_ns as f64 / 1000.0),
            format!("{:.1}", wire.worst_bound_ns as f64 / 1000.0),
        ]);
        rows.push(MultiSwitchRow {
            requested,
            symmetric_accepted: sym,
            asymmetric_accepted: asym,
            trunk_load_symmetric: sym_trunk,
            trunk_load_asymmetric: asym_trunk,
            simulated_established: wire.established,
            simulated_frames: wire.frames,
            simulated_misses: wire.misses,
            worst_latency_ns: wire.worst_latency_ns,
            worst_bound_ns: wire.worst_bound_ns,
        });
    }
    table.print();
    println!();
    let all_met = rows.iter().all(|r| r.simulated_misses == 0);
    println!(
        "The single trunk carries every channel, so it saturates long before the access links;"
    );
    println!("the load-proportional split hands the trunk most of each deadline and admits more channels.");
    println!(
        "Wire-level validation: every admitted channel met its hop-aware Eq. 18.1 bound: {}",
        if all_met { "YES" } else { "NO" }
    );
    rows
}

fn part2_mesh(messages: u64) -> Vec<MeshRow> {
    const SWITCHES: u32 = 4;
    const MASTERS: u32 = 2;
    const SLAVES: u32 = 2;
    let line = FabricScenario::line(SWITCHES, MASTERS, SLAVES);
    let ring = FabricScenario::ring(SWITCHES, MASTERS, SLAVES);
    println!("\nPart 2 — mesh vs spanning tree ({SWITCHES} access switches, {MASTERS} masters + {SLAVES} slaves each)");
    println!("identical cross-switch request sequences; TreeRouter over the line vs ShortestPathRouter over the ring");
    println!("(the ring = the line + one redundant closing trunk)\n");

    let spec = RtChannelSpec::paper_default();
    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "requested",
        "tree accepted",
        "mesh accepted",
        "tree worst/bound (us)",
        "mesh worst/bound (us)",
        "misses (tree/mesh)",
    ]);
    for requested in (8..=48).step_by(8) {
        // The scenarios share node allocation, so one request list serves
        // both fabrics.
        let requests: Vec<(NodeId, NodeId)> = line
            .cross_switch_requests(requested, spec)
            .iter()
            .map(|r| (r.source, r.destination))
            .collect();
        let tree_router: Arc<dyn Router> = Arc::new(TreeRouter::new());
        let tree = drive_on_the_wire(
            RtNetwork::builder()
                .topology(line.topology())
                .router_arc(tree_router)
                .multihop_dps(MultiHopDps::Asymmetric)
                .build()
                .expect("TreeRouter accepts the line"),
            &requests,
            messages,
        );
        let mesh = drive_on_the_wire(
            RtNetwork::builder()
                .topology(ring.topology())
                .router(ShortestPathRouter::new())
                .multihop_dps(MultiHopDps::Asymmetric)
                .build()
                .expect("ShortestPathRouter accepts the ring"),
            &requests,
            messages,
        );
        assert!(
            mesh.established >= tree.established,
            "the redundant trunk must never admit fewer channels"
        );
        table.row_strings(vec![
            requested.to_string(),
            tree.established.to_string(),
            mesh.established.to_string(),
            format!(
                "{:.1}/{:.1}",
                tree.worst_latency_ns as f64 / 1000.0,
                tree.worst_bound_ns as f64 / 1000.0
            ),
            format!(
                "{:.1}/{:.1}",
                mesh.worst_latency_ns as f64 / 1000.0,
                mesh.worst_bound_ns as f64 / 1000.0
            ),
            format!("{}/{}", tree.misses, mesh.misses),
        ]);
        rows.push(MeshRow {
            requested,
            tree,
            mesh,
        });
    }
    table.print();
    println!();
    let gained: u64 = rows
        .iter()
        .map(|r| r.mesh.established - r.tree.established)
        .sum();
    println!("The closing trunk shortens end-of-line routes and bypasses the middle trunks,");
    println!("admitting {gained} extra channels over the sweep; every admitted channel still met");
    println!("its hop-aware Eq. 18.1 bound on the wire, under both routers.");
    rows
}

/// Part 3: the identical ring workload under both event schedulers —
/// outcomes must match exactly, only the wall clock may differ.
fn part3_schedulers(messages: u64) -> Vec<SchedulerRow> {
    let ring = FabricScenario::ring(4, 2, 2);
    let spec = RtChannelSpec::paper_default();
    let requests: Vec<(NodeId, NodeId)> = ring
        .cross_switch_requests(32, spec)
        .iter()
        .map(|r| (r.source, r.destination))
        .collect();
    println!("\nPart 3 — event scheduler A/B (ring fabric, identical workload)");
    let mut rows = Vec::new();
    let mut reference: Option<(u64, u64, u64, u64, u64)> = None;
    for scheduler in [SchedulerKind::Heap, SchedulerKind::Calendar] {
        let net = RtNetwork::builder()
            .topology(ring.topology())
            .router(ShortestPathRouter::new())
            .scheduler(scheduler)
            .multihop_dps(MultiHopDps::Asymmetric)
            .build()
            .expect("the ring builds under shortest-path routing");
        let start = Instant::now();
        let wire = drive_on_the_wire(net, &requests, messages);
        let elapsed_ns = start.elapsed().as_nanos() as u64;
        let signature = (
            wire.established,
            wire.frames,
            wire.misses,
            wire.worst_latency_ns,
            wire.events,
        );
        match reference {
            None => reference = Some(signature),
            Some(expected) => assert_eq!(
                signature, expected,
                "schedulers must produce identical wire-level outcomes"
            ),
        }
        let events_per_second = wire.events as f64 / (elapsed_ns as f64 / 1e9);
        println!(
            "  {:<8} {:>7} events in {:>6.1} ms -> {:>5.2} M events/s (outcomes identical)",
            scheduler.name(),
            wire.events,
            elapsed_ns as f64 / 1e6,
            events_per_second / 1e6,
        );
        rows.push(SchedulerRow {
            scheduler: scheduler.name(),
            events: wire.events,
            elapsed_ns,
            events_per_second,
        });
    }
    rows
}

/// The links of a route, as a set for disjointness checks.
fn link_set(route: &ChannelRoute) -> BTreeSet<HopLink> {
    route.path.iter().copied().collect()
}

/// Part 4: scripted mid-run trunk cut on the 1024-node torus with
/// k-shortest fail-over — the survivability experiment of the fail-over PR.
fn part4_survivability(messages: u64) -> FailoverRow {
    let scenario = FailoverScenario::torus_link_cut(8, 8, 8, 8);
    let (cut_from, cut_to) = scenario.cut_trunk();
    let spec = RtChannelSpec::paper_default();
    println!("\nPart 4 — survivability (8x8 torus, 1024 nodes; cut trunk {cut_from} <-> {cut_to} mid-run)");
    println!(
        "40 channels admitted with KShortestRouter fallback, 8 pinned across the doomed trunk"
    );

    // Eight channels guaranteed to cross the doomed trunk (masters on sw0
    // -> slaves on sw1) plus 32 background neighbour-to-neighbour channels
    // that stay clear of it (switches 1..33, each to its successor — the
    // direct trunk, never via sw0).  The pinned channels get a roomier
    // deadline (60 slots): after the cut, their 3-trunk detours have two
    // more hops than the direct route, and the experiment's contract is
    // that *every* one of them re-admits.
    let pinned_spec = RtChannelSpec::new(spec.period, spec.capacity, rt_types::Slots::new(60))
        .expect("valid pinned spec");
    let mut pairs: Vec<(NodeId, NodeId, RtChannelSpec)> = (0..8u64)
        .map(|i| {
            (
                scenario.fabric().master(0, i),
                scenario.fabric().slave(1, i),
                pinned_spec,
            )
        })
        .collect();
    pairs.extend((1..33u32).map(|s| {
        (
            scenario.fabric().master(s, u64::from(s)),
            scenario.fabric().slave(s + 1, u64::from(s)),
            spec,
        )
    }));
    let requested = pairs.len() as u64;

    // Drive one run; `cut` selects the failure world.  Both worlds use the
    // same fixed timeline so their traces are comparable.
    type ChannelTrace = Vec<(u32, u64, bool)>;
    struct RunOutcome {
        traces: std::collections::BTreeMap<u16, ChannelTrace>,
        routes_before: Vec<ChannelRoute>,
        rerouted: Vec<ChannelRoute>,
        dropped: Vec<ChannelRoute>,
        misses: u64,
        link_drops: u64,
        events: u64,
    }
    let drive = |cut: bool| -> RunOutcome {
        let mut net = RtNetwork::builder()
            .topology(scenario.fabric().topology())
            .router(KShortestRouter::new(4))
            .multihop_dps(MultiHopDps::Asymmetric)
            .build()
            .expect("the torus builds under k-shortest routing");
        let mut established: Vec<(NodeId, ChannelId)> = Vec::new();
        for &(src, dst, pair_spec) in &pairs {
            if let Some(tx) = net
                .establish_channel(src, dst, pair_spec)
                .expect("establishment cannot error on a known topology")
            {
                established.push((src, tx.id));
            }
        }
        let routes_before: Vec<ChannelRoute> = established
            .iter()
            .filter_map(|&(_, id)| net.manager().channel_route(id))
            .collect();
        // Fixed timeline: batch 1 well after establishment, the cut lands
        // mid-flight of its first messages, batch 2 after re-admission.
        let start1 = SimTime::from_millis(100);
        assert!(
            net.now() < start1,
            "establishment must finish before batch 1"
        );
        for &(src, id) in &established {
            net.send_periodic(src, id, messages, 1000, start1)
                .expect("channel was just established");
        }
        let cut_at = start1 + Duration::from_micros(400);
        net.run_until(cut_at).expect("pre-cut traffic dispatches");
        let (rerouted, dropped) = if cut {
            let report = net
                .fail_trunk(cut_from, cut_to)
                .expect("the doomed trunk exists");
            (report.rerouted, report.dropped)
        } else {
            (Vec::new(), Vec::new())
        };
        let start2 = cut_at + Duration::from_millis(5);
        for &(src, id) in &established {
            if net.manager().channel_route(id).is_some() {
                net.send_periodic(src, id, messages, 1000, start2)
                    .expect("channel is still admitted");
            }
        }
        net.run_to_completion().expect("simulation completes");
        let stats = net.simulator().stats();
        assert_eq!(
            net.simulator().injected_count(),
            stats.total_delivered() + stats.total_dropped(),
            "frame conservation must hold, cut={cut}"
        );
        let mut traces: std::collections::BTreeMap<u16, ChannelTrace> =
            std::collections::BTreeMap::new();
        for m in net.received_messages() {
            traces.entry(m.message.channel.get()).or_default().push((
                m.receiver.get(),
                m.delivered_at.as_nanos(),
                m.missed_deadline,
            ));
        }
        RunOutcome {
            traces,
            routes_before,
            rerouted,
            dropped,
            misses: stats.total_deadline_misses,
            link_drops: stats.failed_link_dropped,
            events: net.simulator().events_processed(),
        }
    };

    let started = Instant::now();
    let with_cut = drive(true);
    let elapsed_ns = started.elapsed().as_nanos() as u64;
    let reference = drive(false);

    let accepted = with_cut.routes_before.len() as u64;
    // Every affected channel must have been re-routed: the torus is
    // redundant, so nothing may be dropped.
    assert!(
        with_cut.dropped.is_empty(),
        "the torus must re-route every affected channel, dropped {:?}",
        with_cut.dropped.iter().map(|r| r.id).collect::<Vec<_>>()
    );
    assert_eq!(
        with_cut.rerouted.len(),
        8,
        "exactly the eight pinned channels cross the doomed trunk"
    );
    // Zero deadline misses — including the frames generated after
    // re-admission, which are stamped and scheduled against the new routes.
    assert_eq!(
        with_cut.misses, 0,
        "fail-over must not cause a single deadline miss"
    );

    // Byte-for-byte: channels whose links are disjoint from every affected
    // channel's old and new route cannot tell the two worlds apart.
    let affected_ids: BTreeSet<u16> = with_cut.rerouted.iter().map(|r| r.id.get()).collect();
    let mut excluded_links: BTreeSet<HopLink> = BTreeSet::new();
    for route in with_cut
        .routes_before
        .iter()
        .filter(|r| affected_ids.contains(&r.id.get()))
        .chain(with_cut.rerouted.iter())
    {
        excluded_links.extend(link_set(route));
    }
    let mut compared = 0u64;
    let mut identical = true;
    for route in &with_cut.routes_before {
        if affected_ids.contains(&route.id.get()) || !link_set(route).is_disjoint(&excluded_links) {
            continue;
        }
        compared += 1;
        if with_cut.traces.get(&route.id.get()) != reference.traces.get(&route.id.get()) {
            identical = false;
        }
    }
    assert!(
        compared > 0,
        "the workload must contain unaffected channels"
    );
    assert!(
        identical,
        "channels off the failed path must deliver byte-for-byte identically"
    );

    println!(
        "  accepted {accepted}/{requested}, re-routed {}, dropped 0, misses 0, \
         {} frames lost on the dead trunk, {compared} unaffected channels byte-for-byte identical",
        with_cut.rerouted.len(),
        with_cut.link_drops,
    );
    println!(
        "  {} events in {:.1} ms",
        with_cut.events,
        elapsed_ns as f64 / 1e6,
    );
    FailoverRow {
        requested,
        accepted,
        rerouted: with_cut.rerouted.len() as u64,
        dropped: with_cut.dropped.len() as u64,
        deadline_misses: with_cut.misses,
        link_failure_drops: with_cut.link_drops,
        unaffected_identical: identical,
        events: with_cut.events,
        elapsed_ns,
    }
}

/// Part 5: central vs distributed admission on the 1024-node torus — same
/// request sequence, identical accepted channel set, honestly-priced
/// control plane.
fn part5_distributed() -> (Vec<DistributedRow>, ParityRow) {
    let fabric = FabricScenario::torus(8, 8, 8, 8);
    let spec = RtChannelSpec::paper_default();
    // A cross-switch sweep over the whole torus plus a hot-trunk block:
    // sixteen requests all contending for the sw0 <-> sw1 trunk's slack,
    // sized beyond its capacity so the later ones must detour (k-shortest)
    // or be rejected — with their partial reservations rolled back.
    let mut requests: Vec<(NodeId, NodeId)> = fabric
        .cross_switch_requests(32, spec)
        .iter()
        .map(|r| (r.source, r.destination))
        .collect();
    requests.extend(
        fabric
            .hot_trunk_requests(16, spec)
            .iter()
            .map(|r| (r.source, r.destination)),
    );
    let requested = requests.len() as u64;
    println!(
        "\nPart 5 — central vs distributed control plane (8x8 torus, 1024 nodes, {requested} requests)"
    );
    println!("32 spread across the fabric + 16 contending for the sw0<->sw1 trunk's slack");

    type ChannelSig = (u16, Vec<HopLink>, Vec<u64>);
    let drive = |placement: ManagerPlacement| -> (Vec<ChannelSig>, DistributedRow) {
        let mut net = RtNetwork::builder()
            .topology(fabric.topology())
            .router(KShortestRouter::new(3))
            .multihop_dps(MultiHopDps::Asymmetric)
            .manager_placement(placement)
            .build()
            .expect("the torus builds under k-shortest routing");
        let started = Instant::now();
        let mut admitted: Vec<ChannelSig> = Vec::new();
        for &(src, dst) in &requests {
            if let Some(tx) = net
                .establish_channel(src, dst, spec)
                .expect("establishment cannot error on a known topology")
            {
                let route = net
                    .manager()
                    .channel_route(tx.id)
                    .expect("admitted channel has a route");
                admitted.push((
                    tx.id.get(),
                    route.path.iter().copied().collect(),
                    route.link_deadlines.iter().map(|s| s.get()).collect(),
                ));
            }
        }
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        let stats = net.simulator().stats();
        let accepted = admitted.len() as u64;
        let row = DistributedRow {
            placement: match placement {
                ManagerPlacement::Central => "central",
                ManagerPlacement::Distributed => "distributed",
            },
            requested,
            accepted,
            control_frames: stats.control_frames,
            control_hops: stats.control_hops,
            link_state_frames: stats.link_state_frames,
            admission_ns: net.now().as_nanos(),
            hops_per_accepted: if accepted == 0 {
                0.0
            } else {
                stats.control_hops as f64 / accepted as f64
            },
            events: net.simulator().events_processed(),
            elapsed_ns,
        };
        (admitted, row)
    };

    let (central_set, central_row) = drive(ManagerPlacement::Central);
    let (dist_set, dist_row) = drive(ManagerPlacement::Distributed);
    assert!(central_row.accepted > 0, "the torus must admit channels");
    assert!(
        central_row.accepted < requested,
        "the hot trunk must reject some requests"
    );
    // Raw ids differ by construction (per-switch id blocks vs the central
    // global sequencer), so parity is routes + deadline splits admission
    // for admission, and the admission-order id pairing must be a
    // bijection on both sides.
    let placement_free = |set: &[ChannelSig]| -> Vec<(Vec<HopLink>, Vec<u64>)> {
        set.iter().map(|(_, p, d)| (p.clone(), d.clone())).collect()
    };
    let distinct_ids = |set: &[ChannelSig]| {
        set.iter()
            .map(|(id, _, _)| *id)
            .collect::<BTreeSet<_>>()
            .len()
    };
    let identical = placement_free(&central_set) == placement_free(&dist_set)
        && distinct_ids(&central_set) == central_set.len()
        && distinct_ids(&dist_set) == dist_set.len();
    assert!(
        identical,
        "the distributed manager must admit the oracle's exact channel set \
         (routes and splits under id remapping)"
    );
    let mut table = Table::new(&[
        "placement",
        "accepted",
        "control frames",
        "control hops",
        "hops/accepted",
        "admission (sim ms)",
    ]);
    for row in [&central_row, &dist_row] {
        table.row_strings(vec![
            row.placement.to_string(),
            format!("{}/{}", row.accepted, row.requested),
            row.control_frames.to_string(),
            row.control_hops.to_string(),
            format!("{:.1}", row.hops_per_accepted),
            format!("{:.2}", row.admission_ns as f64 / 1e6),
        ]);
    }
    table.print();
    println!(
        "identical accepted channel set: YES ({} channels, routes/deadline splits equal, \
         ids equal under admission-order remapping)",
        central_row.accepted
    );
    println!(
        "the distributed control plane pays its admission latency in real store-and-forward hops;"
    );
    println!("bench_diff gates the parity (and the accepted counts) in CI.");
    let parity = ParityRow {
        central_accepted: central_row.accepted,
        distributed_accepted: dist_row.accepted,
        identical_channel_set: identical,
    };
    (vec![central_row, dist_row], parity)
}

/// Part 5b: admission during the convergence window.  A trunk is cut and
/// the link-state flood is injected onto the wire *without* being pumped to
/// quiescence, so the next batch of establishment handshakes genuinely
/// races the announcement through the fabric: some coordinators still hold
/// the pre-cut view and probe routes over the dead trunk.  Those attempts
/// abort mid-handshake and their leased partial reservations are reclaimed
/// — after settling, the manager's quiescence audit proves zero slack
/// leaked.  The accepted count is seeded-deterministic; `bench_diff` gates
/// it as `accepted_under_convergence` (any decrease fails).
fn part5b_convergence() -> ConvergenceRow {
    let fabric = FabricScenario::torus(8, 8, 8, 8);
    let spec = RtChannelSpec::paper_default();
    let mut net = RtNetwork::builder()
        .topology(fabric.topology())
        .router(KShortestRouter::new(3))
        .multihop_dps(MultiHopDps::Asymmetric)
        .manager_placement(ManagerPlacement::Distributed)
        .build()
        .expect("the torus builds under k-shortest routing");
    // Warm channels pinned across the doomed trunk, so the cut also walks
    // the fail-over path of the per-switch ledgers.
    let warm: Vec<(NodeId, NodeId)> = fabric
        .hot_trunk_requests(4, spec)
        .iter()
        .map(|r| (r.source, r.destination))
        .collect();
    for &(src, dst) in &warm {
        net.establish_channel(src, dst, spec)
            .expect("establishment cannot error on a known topology");
    }
    let report = net
        .fail_trunk(SwitchId::new(0), SwitchId::new(1))
        .expect("the hot trunk exists");
    // The LinkState flood is now in flight but NOT yet converged; this
    // batch contends for the dead trunk's slack against stale views.
    let mut accepted = 0u64;
    let requests: Vec<(NodeId, NodeId)> = fabric
        .hot_trunk_requests(16, spec)
        .iter()
        .map(|r| (r.source, r.destination))
        .collect();
    let requested = requests.len() as u64;
    for &(src, dst) in &requests {
        if net
            .establish_channel(src, dst, spec)
            .expect("establishment cannot error on a known topology")
            .is_some()
        {
            accepted += 1;
        }
    }
    net.settle().expect("the fabric settles to quiescence");
    net.manager()
        .audit_quiescent()
        .expect("no reservation slack may survive the settle");
    let stats = net.simulator().stats();
    println!(
        "\nPart 5b — admission under convergence (trunk sw0<->sw1 cut, flood still propagating)"
    );
    println!(
        "  {accepted}/{requested} accepted while views disagreed; {} re-routed by the cut; \
         {} link-state frames ({} hops) vs {} reservation frames; zero slack leaked (audited)",
        report.rerouted.len(),
        stats.link_state_frames,
        stats.link_state_hops,
        stats.control_frames,
    );
    assert!(
        accepted > 0,
        "the redundant torus must admit channels even mid-convergence"
    );
    ConvergenceRow {
        requested,
        accepted_under_convergence: accepted,
        rerouted_by_cut: report.rerouted.len() as u64,
        control_frames: stats.control_frames,
        link_state_frames: stats.link_state_frames,
        link_state_hops: stats.link_state_hops,
    }
}

/// The churn soak seed — every random stream of part 6 derives from it.
const SOAK_SEED: u64 = 0x50a4;

/// Run one churn soak on one fabric under one placement.
fn churn_run(topology: &Topology, distributed: bool, config: ChurnConfig) -> ChurnReport {
    churn_run_with(
        topology,
        distributed,
        config,
        Arc::new(ShortestPathRouter::new()),
    )
}

/// [`churn_run`] with an explicit router (the structural-routing smoke
/// drives the identical soak through [`StructuralRouter`]).
fn churn_run_with(
    topology: &Topology,
    distributed: bool,
    config: ChurnConfig,
    router: Arc<dyn Router>,
) -> ChurnReport {
    let process = ChurnProcess::new(config, topology).expect("soak fabric carries churn");
    if distributed {
        let mut manager =
            DistributedChannelManager::new(topology.clone(), MultiHopDps::Asymmetric, router);
        process.run(&mut manager).expect("churn drives the manager")
    } else {
        let mut manager = FabricChannelManager::new(MultiHopAdmission::with_router(
            topology.clone(),
            MultiHopDps::Asymmetric,
            router,
        ));
        process.run(&mut manager).expect("churn drives the manager")
    }
}

/// Fold a churn report into its gated artifact row.
fn churn_row(fabric: &str, placement: &'static str, report: &ChurnReport) -> ChurnRow {
    let mut histogram = Histogram::new(2_000, 2_048);
    for &latency in &report.measured_latencies {
        histogram.record(latency);
    }
    ChurnRow {
        fabric: fabric.to_string(),
        placement,
        attempts: report.attempts,
        admitted: report.admitted,
        acceptance_ratio: report.acceptance_ratio(),
        admissions_per_second: report.admissions_per_second(),
        p50_establish_ns: histogram.p50(),
        p99_establish_ns: histogram.p99(),
        peak_active: report.peak_active as u64,
        dropped_by_faults: report.dropped_by_faults,
        trace_hash: format!("{:016x}", report.trace_hash),
    }
}

/// Part 6: the churn soak — a long-running admission service on the k=16
/// fat tree (320 switches, 1024 hosts) and a 4-D torus (256 switches, 1024
/// hosts), central and distributed placements, plus a churn-with-faults run
/// that shows repair re-optimisation recovering the acceptance ratio.
fn part6_churn_soak() -> (Vec<ChurnRow>, Vec<ChurnParityRow>, Vec<ChurnRecoveryRow>) {
    let measured: u64 = std::env::var("RT_SOAK_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let warmup = (measured / 10).max(1_000);
    println!(
        "\nPart 6 — churn soak: long-running admission service, seeded arrival/departure process"
    );
    println!(
        "  {warmup} warm-up + {measured} measured arrivals per run (RT_SOAK_REQUESTS overrides);"
    );
    println!("  offered load near each fabric's capacity knee; heterogeneous spec sweep, uniform endpoint pairs");

    let fat_tree = Topology::fat_tree(16).expect("the k=16 fat tree builds");
    let torus = Topology::torus_nd(&[4, 4, 4, 4], 4).expect("the 4-D torus builds");

    let mut rows = Vec::new();
    let mut parity = Vec::new();
    let mut table = Table::new(&[
        "fabric",
        "placement",
        "admitted",
        "acceptance",
        "admissions/s",
        "p50 (us)",
        "p99 (us)",
        "peak active",
    ]);
    // Offered load (steady-state concurrent channels, Little's law) tuned
    // to each fabric's capacity knee under the heterogeneous spec sweep,
    // so the acceptance ratio is a sensitive gate: well below 1.0, well
    // above saturation collapse.
    const FAT_TREE_HOLDING: f64 = 1_000.0;
    const TORUS_HOLDING: f64 = 2_500.0;
    let fabrics = [
        ("fat_tree_16", &fat_tree, FAT_TREE_HOLDING),
        ("torus_4d", &torus, TORUS_HOLDING),
    ];
    for (name, topology, holding) in fabrics {
        let config = ChurnConfig::new(SOAK_SEED)
            .windows(warmup, measured)
            .load(1.0, holding)
            .without_trace();
        let central = churn_run(topology, false, config.clone());
        let distributed = churn_run(topology, true, config.clone());
        // The two placements saw the identical arrival sequence, so their
        // admission traces must match event for event — under the
        // admission-order id renumbering, since raw ids come from
        // per-switch blocks on one side and a global sequencer on the
        // other.
        assert_eq!(
            central.normalized_trace_hash, distributed.normalized_trace_hash,
            "{name}: central and distributed churn traces diverge"
        );
        // The structural-routing smoke: the identical fat-tree soak through
        // the table-free StructuralRouter.  On a healthy structure-tagged
        // fabric its closed-form next hops are byte-identical to the
        // ShortestPathRouter table, so the *raw* trace hash must match —
        // every admission decision, id and release, at full soak scale.
        let structural = (name == "fat_tree_16").then(|| {
            let report = churn_run_with(topology, false, config, Arc::new(StructuralRouter::new()));
            assert_eq!(
                central.trace_hash, report.trace_hash,
                "{name}: structural routing diverged from the tabled soak"
            );
            report
        });
        for (placement, report) in [("central", &central), ("distributed", &distributed)]
            .into_iter()
            .chain(structural.iter().map(|r| ("structural", r)))
        {
            let row = churn_row(name, placement, report);
            table.row_strings(vec![
                name.to_string(),
                placement.to_string(),
                format!("{}/{}", row.admitted, row.attempts),
                format!("{:.4}", row.acceptance_ratio),
                format!("{:.0}", row.admissions_per_second),
                format!("{:.1}", row.p50_establish_ns as f64 / 1000.0),
                format!("{:.1}", row.p99_establish_ns as f64 / 1000.0),
                row.peak_active.to_string(),
            ]);
            rows.push(row);
        }
        parity.push(ChurnParityRow {
            fabric: name.to_string(),
            central_admitted: central.admitted,
            distributed_admitted: distributed.admitted,
            identical_trace: central.normalized_trace_hash == distributed.normalized_trace_hash,
        });
    }
    table.print();

    // Churn with faults on the fat tree: a core<->aggregation trunk
    // *flaps* — three cut/repair pairs spread across the measured window —
    // while the soak keeps churning.  The fat tree is redundant, so each
    // cut re-routes, and every flap flips the topology fingerprint between
    // the healthy and degraded graphs: the admissions/s of this row is the
    // routing-rebuild hot path the memoized next-hop cache protects (a
    // single-entry cache recomputes the full table on every flip).
    let (trunk_a, trunk_b) = fat_tree.trunks().next().expect("the fat tree has trunks");
    let mut config = ChurnConfig::new(SOAK_SEED)
        .windows(warmup, measured)
        .load(1.0, FAT_TREE_HOLDING)
        .without_trace();
    let mut flips = 0u64;
    for flap in 0..3u64 {
        let cut_at = warmup + measured * (2 * flap + 1) / 8;
        let repair_at = warmup + measured * (2 * flap + 2) / 8;
        config = config
            .cut_at(cut_at, trunk_a, trunk_b)
            .repair_at(repair_at, trunk_a, trunk_b);
        flips += 2;
    }
    let faulted = churn_run(&fat_tree, false, config);
    // The fat tree is path-redundant, but at knee load an alternate path
    // can lack slack, so a handful of drops under the cuts is legitimate.
    println!(
        "  fault flaps: trunk {trunk_a}<->{trunk_b} cut/repaired {flips} times across the window; \
         {} dropped, {:.0} admissions/s under fault churn",
        faulted.dropped_by_faults,
        faulted.admissions_per_second(),
    );
    let mut faulted_row = churn_row("fat_tree_16", "central", &faulted);
    faulted_row.fabric = "fat_tree_16_churn_faults".into();
    rows.push(faulted_row);

    let recovery = churn_recovery();
    (rows, parity, vec![recovery])
}

/// The recovery experiment: on a small ring every trunk carries a large
/// fraction of the fabric's capacity and the only detour is the long way
/// round, so cutting one visibly depresses the steady-state acceptance
/// ratio and the repair re-optimisation visibly restores it.  Fixed window
/// sizes keep the three ratios exactly reproducible run to run.
fn churn_recovery() -> ChurnRecoveryRow {
    let small = Topology::ring(6, 4);
    let warmup = 2_000u64;
    let measured = 9_000u64;
    let cut_at = warmup + measured / 3;
    let repair_at = warmup + (measured * 2) / 3;
    let (trunk_a, trunk_b) = small.trunks().next().expect("the ring has trunks");
    let config = ChurnConfig::new(SOAK_SEED)
        .windows(warmup, measured)
        .load(1.0, 250.0)
        .cut_at(cut_at, trunk_a, trunk_b)
        .repair_at(repair_at, trunk_a, trunk_b);
    let report = churn_run(&small, false, config);

    // Windowed acceptance from the trace: arrivals are the Admitted /
    // Rejected events in process order.
    let mut segments = [(0u64, 0u64); 3];
    let mut rerouted_by_cut = 0u64;
    let mut rerouted_by_repair = 0u64;
    let mut arrival = 0u64;
    for event in &report.trace {
        match event {
            ChurnEvent::Admitted(_) | ChurnEvent::Rejected => {
                if arrival >= warmup {
                    let segment = if arrival < cut_at {
                        0
                    } else if arrival < repair_at {
                        1
                    } else {
                        2
                    };
                    segments[segment].0 += 1;
                    if matches!(event, ChurnEvent::Admitted(_)) {
                        segments[segment].1 += 1;
                    }
                }
                arrival += 1;
            }
            ChurnEvent::TrunkCut { rerouted, .. } => rerouted_by_cut += u64::from(*rerouted),
            ChurnEvent::TrunkRepaired { rerouted } => rerouted_by_repair += u64::from(*rerouted),
            ChurnEvent::Released(_) => {}
        }
    }
    let ratio = |(attempts, admitted): (u64, u64)| {
        if attempts == 0 {
            0.0
        } else {
            admitted as f64 / attempts as f64
        }
    };
    let recovery = ChurnRecoveryRow {
        acceptance_pre_cut: ratio(segments[0]),
        acceptance_degraded: ratio(segments[1]),
        acceptance_recovered: ratio(segments[2]),
        rerouted_by_cut,
        rerouted_by_repair,
        dropped_by_faults: report.dropped_by_faults,
    };
    println!(
        "  recovery (6-switch ring, trunk {trunk_a}<->{trunk_b}): acceptance pre-cut {:.4} -> \
         degraded {:.4} -> recovered {:.4} ({} re-routed by the cut, {} migrated back by the repair)",
        recovery.acceptance_pre_cut,
        recovery.acceptance_degraded,
        recovery.acceptance_recovered,
        rerouted_by_cut,
        rerouted_by_repair,
    );
    assert!(
        recovery.acceptance_degraded < recovery.acceptance_pre_cut,
        "losing a trunk must depress the steady-state acceptance ratio"
    );
    assert!(
        recovery.acceptance_recovered > recovery.acceptance_degraded,
        "the repair re-optimisation must lift acceptance back off the degraded level"
    );
    recovery
}

fn main() {
    let messages = 10u64;
    let dumbbell_rows = part1_dumbbell(10, 50, messages);
    let mesh_rows = part2_mesh(messages);
    let scheduler_rows = part3_schedulers(messages);
    let failover_row = part4_survivability(3);
    let (distributed_rows, parity_row) = part5_distributed();
    let convergence_row = part5b_convergence();
    let (churn_rows, churn_parity_rows, churn_recovery_rows) = part6_churn_soak();
    // Admission-quality trajectory: one row per scenario, gated by
    // bench_diff (an accepted-channel regression fails CI).  The torus
    // fail-over run is NOT duplicated here — its FailoverRow already
    // carries the gated fields under the "torus_1024_failover" key, and
    // two rows with one key would shadow each other in the gate.
    let last_dumbbell = dumbbell_rows.last().expect("part 1 sweeps at least once");
    let last_mesh = mesh_rows.last().expect("part 2 sweeps at least once");
    let admission_quality = vec![
        AdmissionRow {
            scenario: "dumbbell_asymmetric".into(),
            accepted: last_dumbbell.asymmetric_accepted,
            rerouted: 0,
            dropped: 0,
        },
        AdmissionRow {
            scenario: "line_tree_router".into(),
            accepted: last_mesh.tree.established,
            rerouted: 0,
            dropped: 0,
        },
        AdmissionRow {
            scenario: "ring_shortest_path".into(),
            accepted: last_mesh.mesh.established,
            rerouted: 0,
            dropped: 0,
        },
    ];
    let results = Results {
        dumbbell: dumbbell_rows,
        mesh: mesh_rows,
        schedulers: scheduler_rows,
        failover: vec![failover_row],
        distributed: distributed_rows,
        parity: vec![parity_row],
        convergence: vec![convergence_row],
        admission_quality,
        churn: churn_rows,
        churn_parity: churn_parity_rows,
        churn_recovery: churn_recovery_rows,
    };
    println!();
    write_artifact("BENCH_MULTISWITCH_JSON", "BENCH_multiswitch.json", &results);
    maybe_write_json_from_args(&results);
}
