//! Ablation D (future work of the paper): RT channels over a multi-switch
//! fabric — admission analysis *and* wire-level simulation.
//!
//! Two access switches joined by a single trunk, masters on one side and
//! slaves on the other, so every channel crosses three links (uplink, trunk,
//! downlink) and the trunk is the shared bottleneck.  The experiment sweeps
//! the number of requested channels and, for each point:
//!
//! 1. runs multi-hop admission analytically (symmetric vs. load-proportional
//!    deadline split), and
//! 2. replays the *asymmetric* run on the wire: the same requests are
//!    established through the simulated fabric (handshake frames crossing
//!    the trunk), periodic traffic is driven on every admitted channel, and
//!    the measured worst-case delay is checked against the multi-hop
//!    Eq. 18.1 analogue `d_i·slot + T_latency(hops)`.
//!
//! Usage: `cargo run -p rt-bench --bin multiswitch [results.json]`

use rt_bench::report::{json_object, maybe_write_json_from_args, Table, ToJson};
use rt_core::multihop::{HopLink, MultiHopAdmission, MultiHopDps, SwitchId, Topology};
use rt_core::{RtChannelSpec, RtNetwork, RtNetworkConfig};
use rt_types::{Duration, NodeId};

#[derive(Debug)]
struct MultiSwitchRow {
    requested: u64,
    symmetric_accepted: u64,
    asymmetric_accepted: u64,
    trunk_load_symmetric: usize,
    trunk_load_asymmetric: usize,
    // Wire-level validation of the asymmetric run.
    simulated_established: u64,
    simulated_frames: u64,
    simulated_misses: u64,
    worst_latency_ns: u64,
    worst_bound_ns: u64,
}

impl ToJson for MultiSwitchRow {
    fn to_json(&self) -> String {
        json_object(&[
            ("requested", self.requested.to_json()),
            ("symmetric_accepted", self.symmetric_accepted.to_json()),
            ("asymmetric_accepted", self.asymmetric_accepted.to_json()),
            ("trunk_load_symmetric", self.trunk_load_symmetric.to_json()),
            (
                "trunk_load_asymmetric",
                self.trunk_load_asymmetric.to_json(),
            ),
            (
                "simulated_established",
                self.simulated_established.to_json(),
            ),
            ("simulated_frames", self.simulated_frames.to_json()),
            ("simulated_misses", self.simulated_misses.to_json()),
            ("worst_latency_ns", self.worst_latency_ns.to_json()),
            ("worst_bound_ns", self.worst_bound_ns.to_json()),
        ])
    }
}

/// Two switches, `masters` nodes on switch 0 and `slaves` nodes on switch 1.
fn dumbbell(masters: u32, slaves: u32) -> Topology {
    let mut t = Topology::new();
    t.add_switch(SwitchId::new(0));
    t.add_switch(SwitchId::new(1));
    t.add_trunk(SwitchId::new(0), SwitchId::new(1))
        .expect("single trunk cannot form a cycle");
    for i in 0..masters {
        t.attach_node(NodeId::new(i), SwitchId::new(0))
            .expect("fresh node");
    }
    for i in 0..slaves {
        t.attach_node(NodeId::new(masters + i), SwitchId::new(1))
            .expect("fresh node");
    }
    t
}

fn request_pair(i: u64, masters: u32, slaves: u32) -> (NodeId, NodeId) {
    (
        NodeId::new((i % u64::from(masters)) as u32),
        NodeId::new(masters + (i % u64::from(slaves)) as u32),
    )
}

/// Analytical admission only.
fn analyse(dps: MultiHopDps, masters: u32, slaves: u32, requested: u64) -> (u64, usize) {
    let spec = RtChannelSpec::paper_default();
    let mut admission = MultiHopAdmission::new(dumbbell(masters, slaves), dps);
    for i in 0..requested {
        let (source, destination) = request_pair(i, masters, slaves);
        let _ = admission
            .request(source, destination, spec)
            .expect("valid request");
    }
    let trunk_load = admission.link_load(HopLink::Trunk {
        from: SwitchId::new(0),
        to: SwitchId::new(1),
    });
    (admission.accepted_count(), trunk_load)
}

/// The same request sequence, but run over the simulated wire: handshakes,
/// periodic traffic, measured delays vs. the hop-aware bound.
fn simulate(
    dps: MultiHopDps,
    masters: u32,
    slaves: u32,
    requested: u64,
    messages: u64,
) -> (u64, u64, u64, u64, u64) {
    let spec = RtChannelSpec::paper_default();
    let mut net = RtNetwork::new(RtNetworkConfig::with_topology(
        dumbbell(masters, slaves),
        dps,
    ));
    let mut established = Vec::new();
    for i in 0..requested {
        let (source, destination) = request_pair(i, masters, slaves);
        if let Some(tx) = net
            .establish_channel(source, destination, spec)
            .expect("establishment cannot error on a known topology")
        {
            established.push((source, tx));
        }
    }
    let start = net.now() + Duration::from_millis(1);
    for (source, tx) in &established {
        net.send_periodic(*source, tx.id, messages, 1400, start)
            .expect("channel was just established");
    }
    net.run_to_completion().expect("simulation completes");

    let stats = net.simulator().stats();
    let mut worst_latency = 0u64;
    let mut worst_bound = 0u64;
    for (_, tx) in &established {
        let Some(ch) = stats.channel(tx.id) else {
            continue;
        };
        let bound = net
            .channel_deadline_bound(tx.id)
            .expect("established channel has a bound")
            .as_nanos();
        let latency = ch.max_latency.as_nanos();
        if latency > worst_latency {
            worst_latency = latency;
        }
        if bound > worst_bound {
            worst_bound = bound;
        }
        assert!(
            latency <= bound,
            "channel {} measured {latency} ns > bound {bound} ns",
            tx.id
        );
    }
    (
        established.len() as u64,
        stats.rt_delivered,
        stats.total_deadline_misses,
        worst_latency,
        worst_bound,
    )
}

fn main() {
    let masters = 10u32;
    let slaves = 50u32;
    let messages = 10u64;
    println!("Ablation D — multi-switch fabric ({masters} masters on sw0, {slaves} slaves on sw1, one trunk)");
    println!("every channel crosses uplink + trunk + downlink; C=3, P=100, D=40");
    println!("analysis: symmetric vs load-proportional multi-hop split; simulation: asymmetric run on the wire\n");

    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "requested",
        "sym accepted",
        "asym accepted",
        "trunk ch (sym/asym)",
        "sim established",
        "sim frames",
        "sim misses",
        "worst lat (us)",
        "bound (us)",
    ]);
    for requested in (20..=200).step_by(20) {
        let (sym, sym_trunk) = analyse(MultiHopDps::Symmetric, masters, slaves, requested);
        let (asym, asym_trunk) = analyse(MultiHopDps::Asymmetric, masters, slaves, requested);
        let (sim_est, sim_frames, sim_misses, worst_ns, bound_ns) = simulate(
            MultiHopDps::Asymmetric,
            masters,
            slaves,
            requested,
            messages,
        );
        assert_eq!(
            sim_est, asym,
            "wire-level admission must match the analytical run"
        );
        table.row_strings(vec![
            requested.to_string(),
            sym.to_string(),
            asym.to_string(),
            format!("{sym_trunk}/{asym_trunk}"),
            sim_est.to_string(),
            sim_frames.to_string(),
            sim_misses.to_string(),
            format!("{:.1}", worst_ns as f64 / 1000.0),
            format!("{:.1}", bound_ns as f64 / 1000.0),
        ]);
        rows.push(MultiSwitchRow {
            requested,
            symmetric_accepted: sym,
            asymmetric_accepted: asym,
            trunk_load_symmetric: sym_trunk,
            trunk_load_asymmetric: asym_trunk,
            simulated_established: sim_est,
            simulated_frames: sim_frames,
            simulated_misses: sim_misses,
            worst_latency_ns: worst_ns,
            worst_bound_ns: bound_ns,
        });
    }
    table.print();
    println!();
    let all_met = rows.iter().all(|r| r.simulated_misses == 0);
    println!(
        "The single trunk carries every channel, so it saturates long before the access links;"
    );
    println!("the load-proportional split hands the trunk most of each deadline and admits more channels.");
    println!(
        "Wire-level validation: every admitted channel met its hop-aware Eq. 18.1 bound: {}",
        if all_met { "YES" } else { "NO" }
    );

    maybe_write_json_from_args(&rows);
}
