//! Benchmark-trajectory gate: compare a fresh `BENCH_fabric.json` /
//! `BENCH_multiswitch.json` (or any artifact of the same row shapes)
//! against the previous run's artifact and fail on regressions.
//!
//! Six checks are gated:
//!
//! * **throughput** — rows carrying `events_per_second`, matched by
//!   `(fabric, scheduler)` (falling back to `fabric`, then `name`);
//!   a drop beyond the threshold (default 20 %) fails the run,
//! * **sharded throughput** — among the throughput rows whose fabric
//!   carries a `+shards{N}` suffix (the parallel fabric sweep), the *best*
//!   current row is compared against the *best* baseline row and gated at
//!   a fixed 20 % regardless of the CLI threshold: which shard count wins
//!   may shift with the host, so the winners are compared — and relaxing
//!   the single-thread gate must never relax the parallel path,
//! * **churn admission rate** — rows carrying `admissions_per_second`
//!   (the multiswitch part-6 churn soak, matched by `(fabric,
//!   placement)`); a drop beyond a *fixed* 20 % fails the run regardless
//!   of the CLI threshold, so relaxing the wire-level throughput gate
//!   never relaxes the admission hot path,
//! * **steady-state acceptance** — rows carrying `acceptance_ratio`;
//!   the churn process is seeded, so the ratio is deterministic and *any*
//!   decrease against the baseline fails the run,
//! * **allocation pressure** — rows carrying `allocs_per_frame` (the
//!   counting-allocator rows of `BENCH_simulator.json`); the gate is
//!   *inverted* — lower is better — so an **increase** beyond the same
//!   threshold fails the run (an alloc-count regression means the
//!   zero-copy frame path grew a per-frame allocation back),
//! * **admission quality** — rows carrying `accepted_channels`; these are
//!   deterministic integers, so *any* decrease against the baseline fails
//!   the run (fewer admitted channels means the admission control or the
//!   fail-over path lost capacity, which no throughput number excuses),
//! * **convergence admission** — rows carrying
//!   `accepted_under_convergence` (the multiswitch part-5b stale-view
//!   run); seeded and deterministic, so *any* decrease fails — losing
//!   admissions inside the link-state convergence window means the
//!   distributed control plane got more conservative (or less correct)
//!   about disagreement,
//! * **routing rebuild latency** — rows carrying `rebuild_ns` (the fabric
//!   routing microbench, matched by `(fabric, mode)`); the gate is
//!   *inverted* and fixed at a generous 50 % — only an order-of-change
//!   regression, i.e. the incremental or structural path silently falling
//!   back to a from-scratch sweep, should trip it,
//! * **resident routing bytes** — rows carrying `table_bytes`; inverted
//!   and fixed at 10 % — the byte counts are deterministic, so a
//!   regression means a routing mode started materialising state it
//!   promised not to hold (e.g. the table-free structural mode growing an
//!   O(V²) table back),
//! * **central-vs-distributed parity** — rows carrying both
//!   `accepted_channels_central` and `accepted_channels_distributed` (the
//!   multiswitch part-5 parity row) are checked *within the current
//!   artifact*, no baseline needed: the distributed control plane must
//!   admit exactly the central oracle's channel count, and an
//!   `identical_channel_set: false` flag fails outright.
//!
//! An artifact may be a top-level array of rows or an object whose
//! top-level values are arrays of rows (the `multiswitch` shape); new rows
//! (no baseline counterpart) and removed rows only warn.  A missing
//! baseline file is not an error — the first run of a trajectory has
//! nothing to compare against.
//!
//! Usage: `cargo run -p rt-bench --bin bench_diff -- <baseline.json>
//! <current.json> [threshold]`, threshold as a fraction (e.g. `0.2`).

use std::collections::BTreeMap;
use std::process::ExitCode;

use rt_bench::report::{parse_json, JsonValue, Table};

/// The comparison key of one row: whatever identity fields it carries.
fn row_key(row: &JsonValue) -> String {
    let fabric = row
        .get("fabric")
        .or_else(|| row.get("name"))
        .and_then(|v| v.as_str())
        .unwrap_or("?");
    let qualifier = row
        .get("scheduler")
        .or_else(|| row.get("placement"))
        .or_else(|| row.get("mode"))
        .and_then(|v| v.as_str());
    match qualifier {
        Some(qualifier) => format!("{fabric}/{qualifier}"),
        None => fabric.to_string(),
    }
}

/// The shard count a comparison key carries, parsed from the `+shards{N}`
/// fabric suffix the sharded fabric-bench rows use
/// (`torus_8x8_1024+shards4/calendar` → `Some(4)`); `None` for every
/// single-thread row, including other `+`-suffixed variants like `+owned`.
fn shard_count_of(key: &str) -> Option<usize> {
    let rest = &key[key.find("+shards")? + "+shards".len()..];
    let digits: &str = &rest[..rest.find('/').unwrap_or(rest.len())];
    (!digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()))
        .then(|| digits.parse().ok())
        .flatten()
}

/// The best (highest events/s) sharded throughput row of a metric table —
/// the number the parallel simulator is judged by: which shard count wins
/// may shift with the host's core count, so the gate compares the winners,
/// not each shard count in isolation.
fn best_sharded(throughput: &BTreeMap<String, f64>) -> Option<(&str, f64)> {
    throughput
        .iter()
        .filter(|(key, _)| shard_count_of(key).is_some())
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(key, &eps)| (key.as_str(), eps))
}

/// Fixed fractional threshold for the best-sharded-row gate.  Like the
/// churn admissions/s gate it is *not* CLI-tunable: CI relaxes the
/// single-thread events/s gate on noisy shared runners, and that must
/// never also relax the parallel path.
const SHARDED_THRESHOLD: f64 = 0.20;

/// The sharded-throughput gate: compare the best sharded row of the
/// current artifact against the best sharded row of the baseline and fail
/// beyond [`SHARDED_THRESHOLD`].  Returns the regression messages.
fn sharded_regressions(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
) -> Vec<String> {
    let (Some((base_key, before)), Some((now_key, now))) =
        (best_sharded(baseline), best_sharded(current))
    else {
        return Vec::new();
    };
    let change = now / before - 1.0;
    if before > 0.0 && change < -SHARDED_THRESHOLD {
        vec![format!(
            "best sharded row dropped {:.1}% ({base_key} {before:.0} -> {now_key} {now:.0}, \
             > {:.0}% fixed threshold)",
            -change * 100.0,
            SHARDED_THRESHOLD * 100.0
        )]
    } else {
        Vec::new()
    }
}

/// The rows of an artifact: a top-level array, or every element of every
/// array value of a top-level object (the `multiswitch` results shape).
fn rows_of(doc: &JsonValue) -> Vec<&JsonValue> {
    match doc {
        JsonValue::Array(rows) => rows.iter().collect(),
        JsonValue::Object(map) => map
            .values()
            .filter_map(|v| v.as_array())
            .flatten()
            .collect(),
        _ => Vec::new(),
    }
}

/// The gated metric tables of one artifact.
#[derive(Debug, Default)]
struct Metrics {
    /// `key → events_per_second`.
    throughput: BTreeMap<String, f64>,
    /// `key → accepted_channels`.
    accepted: BTreeMap<String, f64>,
    /// `key → allocs_per_frame` (gated inverted: an increase fails).
    allocs: BTreeMap<String, f64>,
    /// `key → admissions_per_second` (gated at a fixed 20 %).
    admissions: BTreeMap<String, f64>,
    /// `key → acceptance_ratio` (deterministic: any decrease fails).
    acceptance: BTreeMap<String, f64>,
    /// `key → accepted_under_convergence` (deterministic: any decrease
    /// fails).
    convergence: BTreeMap<String, f64>,
    /// `key → rebuild_ns` (routing rebuild-after-cut latency, gated
    /// inverted at a fixed generous threshold: an increase fails).
    rebuild: BTreeMap<String, f64>,
    /// `key → table_bytes` (resident routing bytes, gated inverted: an
    /// increase fails — a blow-up here means a mode started materialising
    /// state it promised not to hold).
    table_bytes: BTreeMap<String, f64>,
}

fn metrics(doc: &JsonValue) -> Result<Metrics, String> {
    let mut out = Metrics::default();
    for row in rows_of(doc) {
        if let Some(eps) = row.get("events_per_second").and_then(|v| v.as_f64()) {
            out.throughput.insert(row_key(row), eps);
        }
        if let Some(accepted) = row.get("accepted_channels").and_then(|v| v.as_f64()) {
            out.accepted.insert(row_key(row), accepted);
        }
        if let Some(apf) = row.get("allocs_per_frame").and_then(|v| v.as_f64()) {
            out.allocs.insert(row_key(row), apf);
        }
        if let Some(aps) = row.get("admissions_per_second").and_then(|v| v.as_f64()) {
            out.admissions.insert(row_key(row), aps);
        }
        if let Some(ratio) = row.get("acceptance_ratio").and_then(|v| v.as_f64()) {
            out.acceptance.insert(row_key(row), ratio);
        }
        if let Some(accepted) = row
            .get("accepted_under_convergence")
            .and_then(|v| v.as_f64())
        {
            out.convergence.insert(row_key(row), accepted);
        }
        if let Some(ns) = row.get("rebuild_ns").and_then(|v| v.as_f64()) {
            out.rebuild.insert(row_key(row), ns);
        }
        if let Some(bytes) = row.get("table_bytes").and_then(|v| v.as_f64()) {
            out.table_bytes.insert(row_key(row), bytes);
        }
    }
    if out.throughput.is_empty()
        && out.accepted.is_empty()
        && out.allocs.is_empty()
        && out.admissions.is_empty()
        && out.acceptance.is_empty()
        && out.convergence.is_empty()
        && out.rebuild.is_empty()
        && out.table_bytes.is_empty()
    {
        return Err(
            "no rows with an events_per_second, accepted_channels, allocs_per_frame, \
             admissions_per_second, acceptance_ratio, accepted_under_convergence, \
             rebuild_ns or table_bytes field"
                .into(),
        );
    }
    Ok(out)
}

/// Fixed fractional threshold for the churn admissions/s gate.  Unlike the
/// wire-level events/s gate this one is *not* tunable from the CLI: CI runs
/// the multiswitch comparison with the events/s gate effectively disabled
/// (the simulated wire rate is noisy on shared runners), and relaxing that
/// must never also relax the admission hot path.
const ADMISSIONS_THRESHOLD: f64 = 0.20;

/// The churn admission-rate gate: fail any `admissions_per_second` that
/// dropped beyond [`ADMISSIONS_THRESHOLD`] against its baseline row.
/// Returns `(table rows, regressions)`.
fn admission_rate_regressions(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
) -> (Vec<Vec<String>>, Vec<String>) {
    let mut rows = Vec::new();
    let mut regressions = Vec::new();
    for (key, &now) in current {
        match baseline.get(key) {
            Some(&before) if before > 0.0 => {
                let change = now / before - 1.0;
                rows.push(vec![
                    key.clone(),
                    format!("{before:.0}"),
                    format!("{now:.0}"),
                    format!("{:+.1}%", change * 100.0),
                ]);
                if change < -ADMISSIONS_THRESHOLD {
                    regressions.push(format!(
                        "{key} admissions/s dropped {:.1}% (> {:.0}% fixed threshold)",
                        -change * 100.0,
                        ADMISSIONS_THRESHOLD * 100.0
                    ));
                }
            }
            _ => {
                rows.push(vec![
                    key.clone(),
                    "(new)".into(),
                    format!("{now:.0}"),
                    "-".into(),
                ]);
            }
        }
    }
    (rows, regressions)
}

/// The steady-state acceptance gate: the churn process is seeded, so the
/// ratio is exactly reproducible and *any* decrease fails (beyond a 1e-9
/// epsilon absorbing JSON round-trip formatting).  Returns `(table rows,
/// regressions)`.
fn acceptance_regressions(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
) -> (Vec<Vec<String>>, Vec<String>) {
    let mut rows = Vec::new();
    let mut regressions = Vec::new();
    for (key, &now) in current {
        match baseline.get(key) {
            Some(&before) => {
                rows.push(vec![
                    key.clone(),
                    format!("{before:.4}"),
                    format!("{now:.4}"),
                    format!("{:+.4}", now - before),
                ]);
                if now < before - 1e-9 {
                    regressions.push(format!(
                        "{key} acceptance ratio dropped {before:.4} -> {now:.4}"
                    ));
                }
            }
            None => {
                rows.push(vec![
                    key.clone(),
                    "(new)".into(),
                    format!("{now:.4}"),
                    "-".into(),
                ]);
            }
        }
    }
    (rows, regressions)
}

/// The convergence-admission gate: `accepted_under_convergence` counts the
/// channels admitted while a link-state flood was still propagating (the
/// multiswitch part-5b run).  The run is seeded, so the count is exactly
/// reproducible and *any* decrease fails.  Returns `(table rows,
/// regressions)`.
fn convergence_regressions(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
) -> (Vec<Vec<String>>, Vec<String>) {
    let mut rows = Vec::new();
    let mut regressions = Vec::new();
    for (key, &now) in current {
        match baseline.get(key) {
            Some(&before) => {
                rows.push(vec![
                    key.clone(),
                    format!("{before:.0}"),
                    format!("{now:.0}"),
                    format!("{:+.0}", now - before),
                ]);
                if now < before {
                    regressions.push(format!(
                        "{key} accepted-under-convergence dropped {before:.0} -> {now:.0}"
                    ));
                }
            }
            None => {
                rows.push(vec![
                    key.clone(),
                    "(new)".into(),
                    format!("{now:.0}"),
                    "-".into(),
                ]);
            }
        }
    }
    (rows, regressions)
}

/// The inverted allocation-pressure gate: fail any `allocs_per_frame` that
/// *rose* beyond the fractional threshold against its baseline row.
/// Returns `(table rows, regressions)`.
fn alloc_regressions(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    threshold: f64,
) -> (Vec<Vec<String>>, Vec<String>) {
    let mut rows = Vec::new();
    let mut regressions = Vec::new();
    for (key, &now) in current {
        match baseline.get(key) {
            Some(&before) if before > 0.0 => {
                let change = now / before - 1.0;
                rows.push(vec![
                    key.clone(),
                    format!("{before:.2}"),
                    format!("{now:.2}"),
                    format!("{:+.1}%", change * 100.0),
                ]);
                if change > threshold {
                    regressions.push(format!(
                        "{key} allocs/frame rose {:.1}% (> {:.0}% threshold)",
                        change * 100.0,
                        threshold * 100.0
                    ));
                }
            }
            _ => {
                rows.push(vec![
                    key.clone(),
                    "(new)".into(),
                    format!("{now:.2}"),
                    "-".into(),
                ]);
            }
        }
    }
    (rows, regressions)
}

/// Fixed fractional threshold for the routing rebuild-latency gate.
/// Deliberately generous: the absolute numbers are micro/milliseconds on a
/// shared runner, so only an order-of-change regression — the incremental
/// path silently falling back to a from-scratch sweep — should trip it.
/// Not CLI-tunable for the same reason as the admissions gate: relaxing
/// the wire-level throughput gate must never relax the rebuild path.
const REBUILD_THRESHOLD: f64 = 0.50;

/// Fixed fractional threshold for the resident-routing-bytes gate.  The
/// byte counts are deterministic (same fabric, same layout, run over run),
/// so the margin only absorbs intentional small bookkeeping changes; a
/// structural row regressing past it means the table-free mode started
/// materialising the O(V²) table it exists to avoid.
const TABLE_BYTES_THRESHOLD: f64 = 0.10;

/// The inverted routing rebuild-latency gate: fail any `rebuild_ns` that
/// *rose* beyond [`REBUILD_THRESHOLD`] against its baseline row.  Returns
/// `(table rows, regressions)`.
fn rebuild_regressions(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
) -> (Vec<Vec<String>>, Vec<String>) {
    let mut rows = Vec::new();
    let mut regressions = Vec::new();
    for (key, &now) in current {
        match baseline.get(key) {
            Some(&before) if before > 0.0 => {
                let change = now / before - 1.0;
                rows.push(vec![
                    key.clone(),
                    format!("{:.3}", before / 1e6),
                    format!("{:.3}", now / 1e6),
                    format!("{:+.1}%", change * 100.0),
                ]);
                if change > REBUILD_THRESHOLD {
                    regressions.push(format!(
                        "{key} rebuild latency rose {:.1}% (> {:.0}% fixed threshold)",
                        change * 100.0,
                        REBUILD_THRESHOLD * 100.0
                    ));
                }
            }
            _ => {
                rows.push(vec![
                    key.clone(),
                    "(new)".into(),
                    format!("{:.3}", now / 1e6),
                    "-".into(),
                ]);
            }
        }
    }
    (rows, regressions)
}

/// The inverted resident-routing-bytes gate: fail any `table_bytes` that
/// *rose* beyond [`TABLE_BYTES_THRESHOLD`] against its baseline row.
/// Returns `(table rows, regressions)`.
fn table_bytes_regressions(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
) -> (Vec<Vec<String>>, Vec<String>) {
    let mut rows = Vec::new();
    let mut regressions = Vec::new();
    for (key, &now) in current {
        match baseline.get(key) {
            Some(&before) if before > 0.0 => {
                let change = now / before - 1.0;
                rows.push(vec![
                    key.clone(),
                    format!("{before:.0}"),
                    format!("{now:.0}"),
                    format!("{:+.1}%", change * 100.0),
                ]);
                if change > TABLE_BYTES_THRESHOLD {
                    regressions.push(format!(
                        "{key} resident routing bytes rose {:.1}% (> {:.0}% fixed threshold)",
                        change * 100.0,
                        TABLE_BYTES_THRESHOLD * 100.0
                    ));
                }
            }
            _ => {
                rows.push(vec![
                    key.clone(),
                    "(new)".into(),
                    format!("{now:.0}"),
                    "-".into(),
                ]);
            }
        }
    }
    (rows, regressions)
}

fn load(path: &str) -> Result<Metrics, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    metrics(&parse_json(&text).map_err(|e| format!("parse {path}: {e}"))?)
}

/// In-artifact parity check: every row that reports both a central and a
/// distributed accepted-channel count must agree (and must not carry an
/// explicit `identical_channel_set: false`).  Returns the violations.
fn parity_violations(doc: &JsonValue) -> Vec<String> {
    let mut violations = Vec::new();
    for row in rows_of(doc) {
        let central = row
            .get("accepted_channels_central")
            .and_then(|v| v.as_f64());
        let distributed = row
            .get("accepted_channels_distributed")
            .and_then(|v| v.as_f64());
        if let (Some(c), Some(d)) = (central, distributed) {
            if c != d {
                violations.push(format!(
                    "{}: distributed accepted {d:.0} != central accepted {c:.0}",
                    row_key(row)
                ));
            }
        }
        if let Some(JsonValue::Bool(false)) = row.get("identical_channel_set") {
            violations.push(format!(
                "{}: accepted counts match but the channel sets differ",
                row_key(row)
            ));
        }
    }
    violations
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(baseline_path), Some(current_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: bench_diff <baseline.json> <current.json> [threshold]");
        return ExitCode::from(2);
    };
    let threshold: f64 = args
        .get(2)
        .map(|t| t.parse().expect("threshold must be a number"))
        .unwrap_or(0.20);

    // Central-vs-distributed parity: checked within the current artifact —
    // deterministic, so no baseline is involved and it gates even the
    // first run of a trajectory.
    let parity_regressions = match std::fs::read_to_string(current_path)
        .map_err(|e| e.to_string())
        .and_then(|text| parse_json(&text).map_err(|e| e.to_string()))
    {
        Ok(doc) => parity_violations(&doc),
        Err(e) => {
            eprintln!("error: unusable current artifact ({e})");
            return ExitCode::FAILURE;
        }
    };

    if !std::path::Path::new(baseline_path).exists() {
        println!(
            "no baseline at {baseline_path}: nothing to compare (first run of the trajectory)"
        );
        if parity_regressions.is_empty() {
            return ExitCode::SUCCESS;
        }
        for regression in &parity_regressions {
            eprintln!("REGRESSION: {regression}");
        }
        return ExitCode::FAILURE;
    }
    let baseline = match load(baseline_path) {
        Ok(b) => b,
        Err(e) => {
            // A corrupt baseline must not wedge the pipeline forever
            // (parity, being baseline-free, still gates).
            eprintln!("warning: unusable baseline ({e}); skipping comparison");
            if parity_regressions.is_empty() {
                return ExitCode::SUCCESS;
            }
            for regression in &parity_regressions {
                eprintln!("REGRESSION: {regression}");
            }
            return ExitCode::FAILURE;
        }
    };
    let current = match load(current_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: unusable current artifact ({e})");
            return ExitCode::FAILURE;
        }
    };

    let mut regressions = parity_regressions;

    // Throughput: fail beyond the fractional threshold.
    let mut table = Table::new(&["benchmark", "baseline ev/s", "current ev/s", "change"]);
    for (key, &now) in &current.throughput {
        match baseline.throughput.get(key) {
            Some(&before) if before > 0.0 => {
                let change = now / before - 1.0;
                table.row_strings(vec![
                    key.clone(),
                    format!("{before:.0}"),
                    format!("{now:.0}"),
                    format!("{:+.1}%", change * 100.0),
                ]);
                if change < -threshold {
                    regressions.push(format!(
                        "{key} events/s dropped {:.1}% (> {:.0}% threshold)",
                        -change * 100.0,
                        threshold * 100.0
                    ));
                }
            }
            _ => {
                table.row_strings(vec![
                    key.clone(),
                    "(new)".into(),
                    format!("{now:.0}"),
                    "-".into(),
                ]);
            }
        }
    }
    table.print();

    // Sharded throughput: the best `+shards{N}` row carries the parallel
    // simulator's headline number; gated at a fixed 20 % independent of
    // the CLI threshold (per-row noise at one shard count must not hide a
    // regression of the winner, and a relaxed single-thread gate must not
    // relax the parallel path).
    regressions.extend(sharded_regressions(
        &baseline.throughput,
        &current.throughput,
    ));

    // Allocation pressure: inverted gate, an increase beyond the threshold
    // fails.
    if !current.allocs.is_empty() || !baseline.allocs.is_empty() {
        let mut table = Table::new(&[
            "measurement",
            "baseline allocs/frame",
            "current allocs/frame",
            "change",
        ]);
        let (rows, alloc_failures) =
            alloc_regressions(&baseline.allocs, &current.allocs, threshold);
        for row in rows {
            table.row_strings(row);
        }
        table.print();
        regressions.extend(alloc_failures);
    }

    // Churn admission rate: fixed 20 % gate, independent of the CLI
    // threshold.
    if !current.admissions.is_empty() || !baseline.admissions.is_empty() {
        let mut table = Table::new(&[
            "churn run",
            "baseline admissions/s",
            "current admissions/s",
            "change",
        ]);
        let (rows, failures) =
            admission_rate_regressions(&baseline.admissions, &current.admissions);
        for row in rows {
            table.row_strings(row);
        }
        table.print();
        regressions.extend(failures);
    }

    // Steady-state acceptance: deterministic ratios, any decrease fails.
    if !current.acceptance.is_empty() || !baseline.acceptance.is_empty() {
        let mut table = Table::new(&[
            "churn run",
            "baseline acceptance",
            "current acceptance",
            "change",
        ]);
        let (rows, failures) = acceptance_regressions(&baseline.acceptance, &current.acceptance);
        for row in rows {
            table.row_strings(row);
        }
        table.print();
        regressions.extend(failures);
    }

    // Convergence admission: deterministic counts, any decrease fails.
    if !current.convergence.is_empty() || !baseline.convergence.is_empty() {
        let mut table = Table::new(&[
            "stale-view run",
            "baseline accepted",
            "current accepted",
            "change",
        ]);
        let (rows, failures) = convergence_regressions(&baseline.convergence, &current.convergence);
        for row in rows {
            table.row_strings(row);
        }
        table.print();
        regressions.extend(failures);
    }

    // Routing rebuild-after-cut latency: inverted gate at a fixed generous
    // threshold.
    if !current.rebuild.is_empty() || !baseline.rebuild.is_empty() {
        let mut table = Table::new(&[
            "routing mode",
            "baseline rebuild ms",
            "current rebuild ms",
            "change",
        ]);
        let (rows, failures) = rebuild_regressions(&baseline.rebuild, &current.rebuild);
        for row in rows {
            table.row_strings(row);
        }
        table.print();
        regressions.extend(failures);
    }

    // Resident routing bytes: inverted gate; the counts are deterministic,
    // so the margin only absorbs intentional bookkeeping changes.
    if !current.table_bytes.is_empty() || !baseline.table_bytes.is_empty() {
        let mut table = Table::new(&["routing mode", "baseline bytes", "current bytes", "change"]);
        let (rows, failures) = table_bytes_regressions(&baseline.table_bytes, &current.table_bytes);
        for row in rows {
            table.row_strings(row);
        }
        table.print();
        regressions.extend(failures);
    }

    // Admission quality: deterministic counts, any decrease fails.
    if !current.accepted.is_empty() || !baseline.accepted.is_empty() {
        let mut table = Table::new(&[
            "scenario",
            "baseline accepted",
            "current accepted",
            "change",
        ]);
        for (key, &now) in &current.accepted {
            match baseline.accepted.get(key) {
                Some(&before) => {
                    table.row_strings(vec![
                        key.clone(),
                        format!("{before:.0}"),
                        format!("{now:.0}"),
                        format!("{:+.0}", now - before),
                    ]);
                    if now < before {
                        regressions.push(format!(
                            "{key} accepted channels dropped {before:.0} -> {now:.0}"
                        ));
                    }
                }
                None => {
                    table.row_strings(vec![
                        key.clone(),
                        "(new)".into(),
                        format!("{now:.0}"),
                        "-".into(),
                    ]);
                }
            }
        }
        table.print();
    }

    for key in baseline
        .throughput
        .keys()
        .filter(|k| !current.throughput.contains_key(*k))
        .chain(
            baseline
                .accepted
                .keys()
                .filter(|k| !current.accepted.contains_key(*k)),
        )
        .chain(
            baseline
                .allocs
                .keys()
                .filter(|k| !current.allocs.contains_key(*k)),
        )
        .chain(
            baseline
                .admissions
                .keys()
                .filter(|k| !current.admissions.contains_key(*k)),
        )
        .chain(
            baseline
                .acceptance
                .keys()
                .filter(|k| !current.acceptance.contains_key(*k)),
        )
        .chain(
            baseline
                .convergence
                .keys()
                .filter(|k| !current.convergence.contains_key(*k)),
        )
        .chain(
            baseline
                .rebuild
                .keys()
                .filter(|k| !current.rebuild.contains_key(*k)),
        )
        .chain(
            baseline
                .table_bytes
                .keys()
                .filter(|k| !current.table_bytes.contains_key(*k)),
        )
    {
        println!("note: baseline row '{key}' has no current counterpart");
    }

    if regressions.is_empty() {
        println!(
            "\nno throughput or allocs/frame regression beyond {:.0}%, no admissions/s regression \
             beyond the fixed {:.0}%, and no accepted-channel or acceptance-ratio regression \
             against {baseline_path}",
            threshold * 100.0,
            ADMISSIONS_THRESHOLD * 100.0
        );
        ExitCode::SUCCESS
    } else {
        for regression in &regressions {
            eprintln!("REGRESSION: {regression}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: &[(&str, &str, f64)]) -> JsonValue {
        JsonValue::Array(
            rows.iter()
                .map(|(fabric, scheduler, eps)| {
                    let mut m = BTreeMap::new();
                    m.insert("fabric".into(), JsonValue::String(fabric.to_string()));
                    m.insert("scheduler".into(), JsonValue::String(scheduler.to_string()));
                    m.insert("events_per_second".into(), JsonValue::Number(*eps));
                    JsonValue::Object(m)
                })
                .collect(),
        )
    }

    fn admission_doc(rows: &[(&str, f64)]) -> JsonValue {
        let rows: Vec<JsonValue> = rows
            .iter()
            .map(|(fabric, accepted)| {
                let mut m = BTreeMap::new();
                m.insert("fabric".into(), JsonValue::String(fabric.to_string()));
                m.insert("accepted_channels".into(), JsonValue::Number(*accepted));
                JsonValue::Object(m)
            })
            .collect();
        let mut top = BTreeMap::new();
        top.insert("admission_quality".into(), JsonValue::Array(rows));
        JsonValue::Object(top)
    }

    fn parity_doc(central: f64, distributed: f64, identical: bool) -> JsonValue {
        let mut m = BTreeMap::new();
        m.insert(
            "fabric".into(),
            JsonValue::String("torus_1024_parity".into()),
        );
        m.insert(
            "accepted_channels_central".into(),
            JsonValue::Number(central),
        );
        m.insert(
            "accepted_channels_distributed".into(),
            JsonValue::Number(distributed),
        );
        m.insert("identical_channel_set".into(), JsonValue::Bool(identical));
        let mut top = BTreeMap::new();
        top.insert(
            "distributed_parity".into(),
            JsonValue::Array(vec![JsonValue::Object(m)]),
        );
        JsonValue::Object(top)
    }

    #[test]
    fn parity_passes_when_counts_and_sets_match() {
        assert!(parity_violations(&parity_doc(40.0, 40.0, true)).is_empty());
        // Rows without parity fields are ignored.
        assert!(parity_violations(&admission_doc(&[("ring", 24.0)])).is_empty());
    }

    #[test]
    fn parity_fails_on_count_mismatch_or_divergent_sets() {
        let v = parity_violations(&parity_doc(40.0, 38.0, true));
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("38 != central accepted 40"), "{v:?}");
        // Equal counts but different channel sets is still a failure.
        let v = parity_violations(&parity_doc(40.0, 40.0, false));
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("channel sets differ"), "{v:?}");
    }

    fn alloc_doc(rows: &[(&str, f64)]) -> JsonValue {
        JsonValue::Array(
            rows.iter()
                .map(|(name, apf)| {
                    let mut m = BTreeMap::new();
                    m.insert("name".into(), JsonValue::String(name.to_string()));
                    m.insert("allocs_per_frame".into(), JsonValue::Number(*apf));
                    JsonValue::Object(m)
                })
                .collect(),
        )
    }

    #[test]
    fn allocs_per_frame_rows_are_collected() {
        let m = metrics(&alloc_doc(&[("torus_hot_path", 1.1), ("torus+owned", 1.4)])).unwrap();
        assert_eq!(m.allocs.len(), 2);
        assert_eq!(m.allocs["torus_hot_path"], 1.1);
        assert!(m.throughput.is_empty() && m.accepted.is_empty());
    }

    #[test]
    fn alloc_gate_is_inverted() {
        let base = metrics(&alloc_doc(&[("torus", 1.0)])).unwrap().allocs;
        // A decrease (improvement) passes, however large.
        let better = metrics(&alloc_doc(&[("torus", 0.2)])).unwrap().allocs;
        assert!(alloc_regressions(&base, &better, 0.2).1.is_empty());
        // An increase within the threshold passes.
        let close = metrics(&alloc_doc(&[("torus", 1.15)])).unwrap().allocs;
        assert!(alloc_regressions(&base, &close, 0.2).1.is_empty());
        // An increase beyond the threshold fails.
        let worse = metrics(&alloc_doc(&[("torus", 1.3)])).unwrap().allocs;
        let (rows, failures) = alloc_regressions(&base, &worse, 0.2);
        assert_eq!(rows.len(), 1);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("rose 30.0%"), "{failures:?}");
        // New rows (no baseline) only report, never fail.
        let fresh = metrics(&alloc_doc(&[("ring", 9.0)])).unwrap().allocs;
        let (rows, failures) = alloc_regressions(&base, &fresh, 0.2);
        assert_eq!(rows[0][1], "(new)");
        assert!(failures.is_empty());
    }

    fn churn_doc(rows: &[(&str, &str, f64, f64)]) -> JsonValue {
        let rows: Vec<JsonValue> = rows
            .iter()
            .map(|(fabric, placement, aps, ratio)| {
                let mut m = BTreeMap::new();
                m.insert("fabric".into(), JsonValue::String(fabric.to_string()));
                m.insert("placement".into(), JsonValue::String(placement.to_string()));
                m.insert("admissions_per_second".into(), JsonValue::Number(*aps));
                m.insert("acceptance_ratio".into(), JsonValue::Number(*ratio));
                JsonValue::Object(m)
            })
            .collect();
        let mut top = BTreeMap::new();
        top.insert("churn_soak".into(), JsonValue::Array(rows));
        JsonValue::Object(top)
    }

    #[test]
    fn churn_rows_key_on_fabric_and_placement() {
        let m = metrics(&churn_doc(&[
            ("fat_tree_16", "central", 17_000.0, 0.55),
            ("fat_tree_16", "distributed", 4_000.0, 0.55),
        ]))
        .unwrap();
        // Central and distributed rows of the same fabric must not collide.
        assert_eq!(m.admissions.len(), 2);
        assert_eq!(m.admissions["fat_tree_16/central"], 17_000.0);
        assert_eq!(m.admissions["fat_tree_16/distributed"], 4_000.0);
        assert_eq!(m.acceptance["fat_tree_16/central"], 0.55);
    }

    #[test]
    fn admission_rate_gate_uses_the_fixed_threshold() {
        let base = metrics(&churn_doc(&[("fat_tree_16", "central", 10_000.0, 0.5)]))
            .unwrap()
            .admissions;
        // A drop within 20 % passes.
        let close = metrics(&churn_doc(&[("fat_tree_16", "central", 8_500.0, 0.5)]))
            .unwrap()
            .admissions;
        assert!(admission_rate_regressions(&base, &close).1.is_empty());
        // A drop beyond 20 % fails.
        let worse = metrics(&churn_doc(&[("fat_tree_16", "central", 7_000.0, 0.5)]))
            .unwrap()
            .admissions;
        let (rows, failures) = admission_rate_regressions(&base, &worse);
        assert_eq!(rows.len(), 1);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("dropped 30.0%"), "{failures:?}");
        // An improvement passes, and new rows only report.
        let better = metrics(&churn_doc(&[
            ("fat_tree_16", "central", 14_000.0, 0.5),
            ("torus_4d", "central", 9_000.0, 0.7),
        ]))
        .unwrap()
        .admissions;
        let (rows, failures) = admission_rate_regressions(&base, &better);
        assert_eq!(rows.len(), 2);
        assert!(failures.is_empty());
    }

    #[test]
    fn any_acceptance_ratio_decrease_fails() {
        let base = metrics(&churn_doc(&[("torus_4d", "central", 9_000.0, 0.7550)]))
            .unwrap()
            .acceptance;
        // Equal ratio passes (the process is seeded, equal is the norm).
        let same = base.clone();
        assert!(acceptance_regressions(&base, &same).1.is_empty());
        // An increase passes.
        let better = metrics(&churn_doc(&[("torus_4d", "central", 9_000.0, 0.7600)]))
            .unwrap()
            .acceptance;
        assert!(acceptance_regressions(&base, &better).1.is_empty());
        // Any decrease fails, even a tiny one.
        let worse = metrics(&churn_doc(&[("torus_4d", "central", 9_000.0, 0.7549)]))
            .unwrap()
            .acceptance;
        let (_, failures) = acceptance_regressions(&base, &worse);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("0.7550 -> 0.7549"), "{failures:?}");
    }

    fn convergence_doc(rows: &[(&str, f64)]) -> JsonValue {
        let rows: Vec<JsonValue> = rows
            .iter()
            .map(|(fabric, accepted)| {
                let mut m = BTreeMap::new();
                m.insert("fabric".into(), JsonValue::String(fabric.to_string()));
                m.insert(
                    "accepted_under_convergence".into(),
                    JsonValue::Number(*accepted),
                );
                JsonValue::Object(m)
            })
            .collect();
        let mut top = BTreeMap::new();
        top.insert("convergence_admission".into(), JsonValue::Array(rows));
        JsonValue::Object(top)
    }

    #[test]
    fn any_convergence_admission_decrease_fails() {
        let base = metrics(&convergence_doc(&[("torus_1024_convergence", 12.0)]))
            .unwrap()
            .convergence;
        assert_eq!(base["torus_1024_convergence"], 12.0);
        // Equal passes (the run is seeded, equal is the norm).
        assert!(convergence_regressions(&base, &base.clone()).1.is_empty());
        // An increase passes.
        let better = metrics(&convergence_doc(&[("torus_1024_convergence", 14.0)]))
            .unwrap()
            .convergence;
        assert!(convergence_regressions(&base, &better).1.is_empty());
        // Any decrease fails, even by one channel.
        let worse = metrics(&convergence_doc(&[("torus_1024_convergence", 11.0)]))
            .unwrap()
            .convergence;
        let (rows, failures) = convergence_regressions(&base, &worse);
        assert_eq!(rows.len(), 1);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("dropped 12 -> 11"), "{failures:?}");
        // New rows (no baseline) only report, never fail.
        let fresh = metrics(&convergence_doc(&[("ring_convergence", 5.0)]))
            .unwrap()
            .convergence;
        let (rows, failures) = convergence_regressions(&base, &fresh);
        assert_eq!(rows[0][1], "(new)");
        assert!(failures.is_empty());
    }

    fn routing_doc(rows: &[(&str, &str, f64, f64)]) -> JsonValue {
        JsonValue::Array(
            rows.iter()
                .map(|(fabric, mode, rebuild_ns, table_bytes)| {
                    let mut m = BTreeMap::new();
                    m.insert("fabric".into(), JsonValue::String(fabric.to_string()));
                    m.insert("mode".into(), JsonValue::String(mode.to_string()));
                    m.insert("rebuild_ns".into(), JsonValue::Number(*rebuild_ns));
                    m.insert("table_bytes".into(), JsonValue::Number(*table_bytes));
                    JsonValue::Object(m)
                })
                .collect(),
        )
    }

    #[test]
    fn routing_rows_key_on_fabric_and_mode() {
        let m = metrics(&routing_doc(&[
            ("fat_tree_32", "full", 80e6, 6.5e6),
            ("fat_tree_32", "incremental", 0.9e6, 6.5e6),
            ("fat_tree_32", "structural", 1.1e6, 11e3),
        ]))
        .unwrap();
        // The three modes of one fabric must not collide.
        assert_eq!(m.rebuild.len(), 3);
        assert_eq!(m.rebuild["fat_tree_32/full"], 80e6);
        assert_eq!(m.rebuild["fat_tree_32/incremental"], 0.9e6);
        assert_eq!(m.table_bytes["fat_tree_32/structural"], 11e3);
        assert!(m.throughput.is_empty() && m.allocs.is_empty());
    }

    #[test]
    fn rebuild_gate_is_inverted_at_the_fixed_threshold() {
        let base = metrics(&routing_doc(&[(
            "fat_tree_32",
            "incremental",
            1.0e6,
            6.5e6,
        )]))
        .unwrap()
        .rebuild;
        // A speed-up passes, however large, as does noise within 50 %.
        let better = metrics(&routing_doc(&[(
            "fat_tree_32",
            "incremental",
            0.2e6,
            6.5e6,
        )]))
        .unwrap()
        .rebuild;
        assert!(rebuild_regressions(&base, &better).1.is_empty());
        let close = metrics(&routing_doc(&[(
            "fat_tree_32",
            "incremental",
            1.4e6,
            6.5e6,
        )]))
        .unwrap()
        .rebuild;
        assert!(rebuild_regressions(&base, &close).1.is_empty());
        // A rise beyond 50 % — the incremental path degenerating — fails.
        let worse = metrics(&routing_doc(&[(
            "fat_tree_32",
            "incremental",
            1.8e6,
            6.5e6,
        )]))
        .unwrap()
        .rebuild;
        let (rows, failures) = rebuild_regressions(&base, &worse);
        assert_eq!(rows.len(), 1);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("rose 80.0%"), "{failures:?}");
        // New rows (no baseline) only report, never fail.
        let fresh = metrics(&routing_doc(&[("torus_4d", "incremental", 2.0e6, 1e6)]))
            .unwrap()
            .rebuild;
        let (rows, failures) = rebuild_regressions(&base, &fresh);
        assert_eq!(rows[0][1], "(new)");
        assert!(failures.is_empty());
    }

    #[test]
    fn table_bytes_gate_catches_a_rematerialised_table() {
        let base = metrics(&routing_doc(&[(
            "fat_tree_32",
            "structural",
            1.0e6,
            11_000.0,
        )]))
        .unwrap()
        .table_bytes;
        // Equal (the deterministic norm) and small bookkeeping drift pass.
        assert!(table_bytes_regressions(&base, &base.clone()).1.is_empty());
        let drift = metrics(&routing_doc(&[(
            "fat_tree_32",
            "structural",
            1.0e6,
            11_500.0,
        )]))
        .unwrap()
        .table_bytes;
        assert!(table_bytes_regressions(&base, &drift).1.is_empty());
        // The structural mode growing a table back fails loudly.
        let blown = metrics(&routing_doc(&[("fat_tree_32", "structural", 1.0e6, 6.5e6)]))
            .unwrap()
            .table_bytes;
        let (rows, failures) = table_bytes_regressions(&base, &blown);
        assert_eq!(rows.len(), 1);
        assert_eq!(failures.len(), 1);
        assert!(
            failures[0].contains("resident routing bytes rose"),
            "{failures:?}"
        );
    }

    #[test]
    fn shard_counts_parse_from_the_fabric_suffix() {
        assert_eq!(shard_count_of("torus_8x8_1024+shards4/calendar"), Some(4));
        assert_eq!(shard_count_of("torus_8x8_1024+shards16/calendar"), Some(16));
        // Bare fabric (no scheduler qualifier) parses too.
        assert_eq!(shard_count_of("torus_8x8_1024+shards2"), Some(2));
        // Single-thread rows — bare, store-suffixed, schedulers — do not.
        assert_eq!(shard_count_of("torus_8x8_1024/calendar"), None);
        assert_eq!(shard_count_of("torus_8x8_1024+owned/heap"), None);
        assert_eq!(shard_count_of("star/heap"), None);
        // A malformed suffix is not a sharded row.
        assert_eq!(shard_count_of("torus+shards/calendar"), None);
        assert_eq!(shard_count_of("torus+shardsx4/calendar"), None);
    }

    #[test]
    fn the_best_sharded_row_wins_regardless_of_shard_count() {
        let m = metrics(&doc(&[
            ("torus_8x8_1024", "calendar", 9e6),
            ("torus_8x8_1024+shards2", "calendar", 12e6),
            ("torus_8x8_1024+shards8", "calendar", 11e6),
            ("torus_8x8_1024+shards4", "calendar", 21e6),
        ]))
        .unwrap();
        let (key, eps) = best_sharded(&m.throughput).expect("sharded rows exist");
        assert_eq!(key, "torus_8x8_1024+shards4/calendar");
        assert_eq!(eps, 21e6);
        // No sharded rows -> no winner, and the gate stays silent.
        let single = metrics(&doc(&[("star", "heap", 1e6)])).unwrap();
        assert!(best_sharded(&single.throughput).is_none());
        assert!(sharded_regressions(&m.throughput, &single.throughput).is_empty());
        assert!(sharded_regressions(&single.throughput, &m.throughput).is_empty());
    }

    #[test]
    fn the_sharded_gate_compares_winners_at_the_fixed_threshold() {
        let base = metrics(&doc(&[
            ("torus_8x8_1024+shards4", "calendar", 20e6),
            ("torus_8x8_1024+shards8", "calendar", 18e6),
        ]))
        .unwrap()
        .throughput;
        // A drop within 20 % of the winner passes...
        let close = metrics(&doc(&[("torus_8x8_1024+shards4", "calendar", 17e6)]))
            .unwrap()
            .throughput;
        assert!(sharded_regressions(&base, &close).is_empty());
        // ...as does the winner moving to a different shard count.
        let moved = metrics(&doc(&[
            ("torus_8x8_1024+shards4", "calendar", 10e6),
            ("torus_8x8_1024+shards8", "calendar", 19e6),
        ]))
        .unwrap()
        .throughput;
        assert!(sharded_regressions(&base, &moved).is_empty());
        // A drop of the winner beyond 20 % fails.
        let worse = metrics(&doc(&[
            ("torus_8x8_1024+shards4", "calendar", 15e6),
            ("torus_8x8_1024+shards8", "calendar", 14e6),
        ]))
        .unwrap()
        .throughput;
        let failures = sharded_regressions(&base, &worse);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("dropped 25.0%"), "{failures:?}");
    }

    #[test]
    fn keys_combine_fabric_and_scheduler() {
        let m = metrics(&doc(&[("star", "heap", 1e6), ("star", "calendar", 2e6)])).unwrap();
        assert_eq!(m.throughput.len(), 2);
        assert_eq!(m.throughput["star/heap"], 1e6);
        assert_eq!(m.throughput["star/calendar"], 2e6);
        assert!(m.accepted.is_empty());
    }

    #[test]
    fn rows_without_gated_metrics_are_skipped() {
        let mut m = BTreeMap::new();
        m.insert("name".into(), JsonValue::String("x".into()));
        let only_named = JsonValue::Array(vec![JsonValue::Object(m)]);
        assert!(metrics(&only_named).is_err());
        assert!(metrics(&JsonValue::Array(vec![])).is_err());
        assert!(metrics(&JsonValue::Null).is_err());
    }

    #[test]
    fn object_docs_flatten_their_arrays() {
        let m = metrics(&admission_doc(&[
            ("ring_shortest_path", 24.0),
            ("torus_1024_failover", 40.0),
        ]))
        .unwrap();
        assert!(m.throughput.is_empty());
        assert_eq!(m.accepted.len(), 2);
        assert_eq!(m.accepted["ring_shortest_path"], 24.0);
        assert_eq!(m.accepted["torus_1024_failover"], 40.0);
    }

    #[test]
    fn mixed_docs_carry_both_metric_tables() {
        // One object with a throughput array and an admission array, as the
        // multiswitch artifact emits.
        let mut top = BTreeMap::new();
        let JsonValue::Array(sched) = doc(&[("multiswitch_ring", "heap", 3e6)]) else {
            unreachable!()
        };
        top.insert("scheduler_comparison".into(), JsonValue::Array(sched));
        let JsonValue::Object(adm) = admission_doc(&[("dumbbell_asymmetric", 60.0)]) else {
            unreachable!()
        };
        top.extend(adm);
        let m = metrics(&JsonValue::Object(top)).unwrap();
        assert_eq!(m.throughput["multiswitch_ring/heap"], 3e6);
        assert_eq!(m.accepted["dumbbell_asymmetric"], 60.0);
    }
}
