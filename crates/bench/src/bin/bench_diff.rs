//! Benchmark-trajectory gate: compare a fresh `BENCH_fabric.json` (or any
//! artifact of the same row shape) against the previous run's artifact and
//! fail on throughput regressions.
//!
//! Rows are matched by `(fabric, scheduler)` (falling back to `fabric`, then
//! `name`, when a key is absent) and compared on `events_per_second`.  A row
//! whose throughput drops by more than the threshold (default 20 %) fails
//! the run; new rows (no baseline counterpart) and removed rows only warn.
//! A missing baseline file is not an error — the first run of a trajectory
//! has nothing to compare against.
//!
//! Usage: `cargo run -p rt-bench --bin bench_diff -- <baseline.json>
//! <current.json> [threshold]`, threshold as a fraction (e.g. `0.2`).

use std::collections::BTreeMap;
use std::process::ExitCode;

use rt_bench::report::{parse_json, JsonValue, Table};

/// The comparison key of one row: whatever identity fields it carries.
fn row_key(row: &JsonValue) -> String {
    let fabric = row
        .get("fabric")
        .or_else(|| row.get("name"))
        .and_then(|v| v.as_str())
        .unwrap_or("?");
    match row.get("scheduler").and_then(|v| v.as_str()) {
        Some(scheduler) => format!("{fabric}/{scheduler}"),
        None => fabric.to_string(),
    }
}

/// Extract `key → events_per_second` from a parsed artifact (an array of
/// row objects).
fn throughputs(doc: &JsonValue) -> Result<BTreeMap<String, f64>, String> {
    let rows = doc
        .as_array()
        .ok_or_else(|| "expected a top-level JSON array of rows".to_string())?;
    let mut out = BTreeMap::new();
    for row in rows {
        if let Some(eps) = row.get("events_per_second").and_then(|v| v.as_f64()) {
            out.insert(row_key(row), eps);
        }
    }
    if out.is_empty() {
        return Err("no rows with an events_per_second field".into());
    }
    Ok(out)
}

fn load(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    throughputs(&parse_json(&text).map_err(|e| format!("parse {path}: {e}"))?)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(baseline_path), Some(current_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: bench_diff <baseline.json> <current.json> [threshold]");
        return ExitCode::from(2);
    };
    let threshold: f64 = args
        .get(2)
        .map(|t| t.parse().expect("threshold must be a number"))
        .unwrap_or(0.20);

    if !std::path::Path::new(baseline_path).exists() {
        println!(
            "no baseline at {baseline_path}: nothing to compare (first run of the trajectory)"
        );
        return ExitCode::SUCCESS;
    }
    let baseline = match load(baseline_path) {
        Ok(b) => b,
        Err(e) => {
            // A corrupt baseline must not wedge the pipeline forever.
            eprintln!("warning: unusable baseline ({e}); skipping comparison");
            return ExitCode::SUCCESS;
        }
    };
    let current = match load(current_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: unusable current artifact ({e})");
            return ExitCode::FAILURE;
        }
    };

    let mut table = Table::new(&["benchmark", "baseline ev/s", "current ev/s", "change"]);
    let mut regressions = Vec::new();
    for (key, &now) in &current {
        match baseline.get(key) {
            Some(&before) if before > 0.0 => {
                let change = now / before - 1.0;
                table.row_strings(vec![
                    key.clone(),
                    format!("{before:.0}"),
                    format!("{now:.0}"),
                    format!("{:+.1}%", change * 100.0),
                ]);
                if change < -threshold {
                    regressions.push((key.clone(), change));
                }
            }
            _ => {
                table.row_strings(vec![
                    key.clone(),
                    "(new)".into(),
                    format!("{now:.0}"),
                    "-".into(),
                ]);
            }
        }
    }
    for key in baseline.keys() {
        if !current.contains_key(key) {
            println!("note: baseline row '{key}' has no current counterpart");
        }
    }
    table.print();

    if regressions.is_empty() {
        println!(
            "\nno regression beyond {:.0}% against {baseline_path}",
            threshold * 100.0
        );
        ExitCode::SUCCESS
    } else {
        for (key, change) in &regressions {
            eprintln!(
                "REGRESSION: {key} dropped {:.1}% (> {:.0}% threshold)",
                -change * 100.0,
                threshold * 100.0
            );
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: &[(&str, &str, f64)]) -> JsonValue {
        JsonValue::Array(
            rows.iter()
                .map(|(fabric, scheduler, eps)| {
                    let mut m = BTreeMap::new();
                    m.insert("fabric".into(), JsonValue::String(fabric.to_string()));
                    m.insert("scheduler".into(), JsonValue::String(scheduler.to_string()));
                    m.insert("events_per_second".into(), JsonValue::Number(*eps));
                    JsonValue::Object(m)
                })
                .collect(),
        )
    }

    #[test]
    fn keys_combine_fabric_and_scheduler() {
        let t = throughputs(&doc(&[("star", "heap", 1e6), ("star", "calendar", 2e6)])).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t["star/heap"], 1e6);
        assert_eq!(t["star/calendar"], 2e6);
    }

    #[test]
    fn rows_without_throughput_are_skipped() {
        let mut m = BTreeMap::new();
        m.insert("name".into(), JsonValue::String("x".into()));
        let only_named = JsonValue::Array(vec![JsonValue::Object(m)]);
        assert!(throughputs(&only_named).is_err());
        assert!(throughputs(&JsonValue::Array(vec![])).is_err());
        assert!(throughputs(&JsonValue::Null).is_err());
    }
}
