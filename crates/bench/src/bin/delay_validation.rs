//! Validation of the delay bound of **Eq. 18.1**: every message on an
//! admitted RT channel must be delivered within `d_i + T_latency`.
//!
//! The experiment establishes channels over the simulated network (full
//! request/response handshake on the wire), drives periodic traffic on each
//! and compares the measured worst-case end-to-end delay per channel against
//! the analytical bound.
//!
//! Usage: `cargo run -p rt-bench --bin delay_validation [results.json]`

use rt_bench::experiments::delay_validation;
use rt_bench::report::{maybe_write_json_from_args, Table};
use rt_core::DpsKind;

fn main() {
    let mut results = Vec::new();
    println!("Delay-bound validation (Eq. 18.1): worst measured latency vs d_i + T_latency\n");
    let mut table = Table::new(&[
        "DPS",
        "channels",
        "frames",
        "misses",
        "worst latency (us)",
        "bound (us)",
        "within bound",
    ]);
    for (dps, channels) in [
        (DpsKind::Symmetric, 40u64),
        (DpsKind::Asymmetric, 40),
        (DpsKind::Asymmetric, 100),
    ] {
        let r = delay_validation(channels, 20, dps);
        table.row_strings(vec![
            r.dps.clone(),
            format!("{}/{}", r.channels_established, r.channels_requested),
            r.frames_delivered.to_string(),
            r.deadline_misses.to_string(),
            format!("{:.1}", r.worst_latency_ns as f64 / 1000.0),
            format!("{:.1}", r.bound_ns as f64 / 1000.0),
            r.all_within_bound.to_string(),
        ]);
        results.push(r);
    }
    table.print();

    let all_ok = results.iter().all(|r| r.all_within_bound);
    println!();
    println!(
        "All admitted channels met the Eq. 18.1 bound: {}",
        if all_ok { "YES" } else { "NO" }
    );
    maybe_write_json_from_args(&results);
}
