//! Ablation C: coexistence of real-time channels with best-effort traffic.
//!
//! The paper's architecture serves best-effort (TCP) traffic from a FCFS
//! queue that is strictly lower priority than the deadline-sorted RT queue.
//! This experiment sweeps the offered best-effort load on a link shared with
//! admitted RT channels and shows that RT deadline misses stay at zero while
//! best-effort throughput degrades gracefully (drops appear once its queue
//! overflows).
//!
//! Usage: `cargo run -p rt-bench --bin coexistence [results.json]`

use rt_bench::report::{maybe_write_json_from_args, Table};

fn main() {
    println!("Ablation C — RT guarantees vs offered best-effort load on a shared link\n");
    let mut results = Vec::new();
    let mut table = Table::new(&[
        "BE load (fraction of link)",
        "RT frames",
        "RT misses",
        "RT worst latency (us)",
        "BE delivered",
        "BE dropped",
    ]);
    for load in [0.0, 0.25, 0.5, 0.75, 0.9, 1.1] {
        let r = rt_bench::experiments::coexistence_run(load, 3, 10);
        table.row_strings(vec![
            format!("{load:.2}"),
            r.rt_delivered.to_string(),
            r.rt_misses.to_string(),
            format!("{:.1}", r.rt_worst_latency_ns as f64 / 1000.0),
            r.be_delivered.to_string(),
            r.be_dropped.to_string(),
        ]);
        results.push(r);
    }
    table.print();
    println!();
    let rt_ok = results.iter().all(|r| r.rt_misses == 0);
    println!(
        "RT deadline misses across all load levels: {}",
        if rt_ok {
            "none (guarantees hold)"
        } else {
            "PRESENT (guarantee violated)"
        }
    );
    maybe_write_json_from_args(&results);
}
