//! Reproduction of **Figure 18.5**: number of accepted channels vs. number
//! of requested channels, SDPS vs. ADPS.
//!
//! Workload (as in the paper): 10 master nodes, 50 slave nodes, every
//! requested channel has the same parameters `C_i = 3`, `P_i = 100`,
//! `d_i = 40`; requests go master → slave.
//!
//! Usage: `cargo run -p rt-bench --bin fig18_5 [results.json]`

use rt_bench::experiments::admission_sweep;
use rt_bench::report::{maybe_write_json_from_args, Table};

fn main() {
    // The figure's x axis: 20 to 200 requested channels.
    let points: Vec<u64> = (1..=10).map(|k| k * 20).collect();
    let rows = admission_sweep(&points);

    println!(
        "Figure 18.5 — accepted vs requested channels (C=3, P=100, D=40; 10 masters, 50 slaves)\n"
    );
    let mut table = Table::new(&["requested", "SDPS accepted", "ADPS accepted", "ADPS/SDPS"]);
    for row in &rows {
        let ratio = if row.sdps_accepted == 0 {
            0.0
        } else {
            row.adps_accepted as f64 / row.sdps_accepted as f64
        };
        table.row_strings(vec![
            row.requested.to_string(),
            row.sdps_accepted.to_string(),
            row.adps_accepted.to_string(),
            format!("{ratio:.2}"),
        ]);
    }
    table.print();

    let sdps_max = rows.iter().map(|r| r.sdps_accepted).max().unwrap_or(0);
    let adps_max = rows.iter().map(|r| r.adps_accepted).max().unwrap_or(0);
    println!();
    println!("SDPS saturates at {sdps_max} accepted channels (paper: ~60).");
    println!("ADPS saturates at {adps_max} accepted channels (paper: ~110-120).");

    maybe_write_json_from_args(&rows);
}
