//! Ablation B: the exact two-constraint feasibility test vs the
//! utilisation-only (Liu & Layland) shortcut.
//!
//! With constrained deadlines (`d < P`, as in the paper's parameters) the
//! utilisation bound alone over-admits: it accepts channels whose frames
//! then miss deadlines.  The experiment quantifies both the over-admission
//! and its consequence (per-link deadline misses in a slot-accurate EDF
//! schedule), plus the admission-decision cost of the exact test.
//!
//! Usage: `cargo run -p rt-bench --bin feasibility_ablation [results.json]`

use std::time::Instant;

use rt_bench::experiments::{run_admission, run_admission_returning_controller};
use rt_bench::report::{json_object, maybe_write_json_from_args, Table, ToJson};
use rt_core::{DpsKind, RtChannelSpec};
use rt_edf::schedule::simulate_over_hyperperiod;
use rt_traffic::{RequestPattern, Scenario};
use rt_types::Slots;

#[derive(Debug)]
struct FeasibilityRow {
    test: String,
    requested: u64,
    accepted: u64,
    links_with_misses: u64,
    total_misses: u64,
    admission_time_us: u128,
}

impl ToJson for FeasibilityRow {
    fn to_json(&self) -> String {
        json_object(&[
            ("test", self.test.to_json()),
            ("requested", self.requested.to_json()),
            ("accepted", self.accepted.to_json()),
            ("links_with_misses", self.links_with_misses.to_json()),
            ("total_misses", self.total_misses.to_json()),
            ("admission_time_us", self.admission_time_us.to_json()),
        ])
    }
}

fn run_case(utilisation_only: bool, requested: u64) -> FeasibilityRow {
    let scenario = Scenario::paper_master_slave();
    let nodes = scenario.nodes();
    let spec = RtChannelSpec::paper_default();
    let requests = RequestPattern::MasterSlaveRoundRobin.generate(&scenario, requested, spec);

    let start = Instant::now();
    let result = run_admission(&nodes, &requests, DpsKind::Symmetric, utilisation_only);
    let elapsed = start.elapsed().as_micros();

    // Re-run keeping the controller so the per-link task sets can be
    // simulated slot-by-slot over their hyperperiod.
    let controller =
        run_admission_returning_controller(&nodes, &requests, DpsKind::Symmetric, utilisation_only);
    let mut links_with_misses = 0u64;
    let mut total_misses = 0u64;
    for (link, _load) in controller.state().loaded_links() {
        let set = controller.state().link_taskset(link);
        let outcome = simulate_over_hyperperiod(&set, Slots::new(100_000));
        if !outcome.is_miss_free() {
            links_with_misses += 1;
            total_misses += outcome.misses.len() as u64;
        }
    }

    FeasibilityRow {
        test: if utilisation_only {
            "utilisation-only".to_string()
        } else {
            "exact (h(t) <= t)".to_string()
        },
        requested,
        accepted: result.accepted,
        links_with_misses,
        total_misses,
        admission_time_us: elapsed,
    }
}

fn main() {
    println!("Ablation B — exact feasibility test vs utilisation-only admission");
    println!("(paper parameters C=3, P=100, D=40 => d << P, SDPS, master/slave)\n");

    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "admission test",
        "requested",
        "accepted",
        "links with misses",
        "total misses",
        "admission time (us)",
    ]);
    for requested in [60u64, 120, 200] {
        for utilisation_only in [false, true] {
            let row = run_case(utilisation_only, requested);
            table.row_strings(vec![
                row.test.clone(),
                row.requested.to_string(),
                row.accepted.to_string(),
                row.links_with_misses.to_string(),
                row.total_misses.to_string(),
                row.admission_time_us.to_string(),
            ]);
            rows.push(row);
        }
    }
    table.print();
    println!();
    println!("The exact test accepts fewer channels but every accepted set is schedulable;");
    println!("the utilisation-only test over-admits and the resulting per-link EDF schedules miss deadlines.");

    maybe_write_json_from_args(&rows);
}
