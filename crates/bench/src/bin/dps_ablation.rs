//! Ablation A: deadline-partitioning schemes beyond the paper's comparison.
//!
//! Compares SDPS, ADPS, utilisation-weighted ADPS and the feasibility-guided
//! search DPS across several request patterns (master→slave round-robin and
//! random, slave→master, uniform, hotspot) and across homogeneous
//! (paper parameters) vs heterogeneous channel specs.
//!
//! Usage: `cargo run -p rt-bench --bin dps_ablation [results.json]`

use rt_bench::experiments::run_admission;
use rt_bench::report::{json_object, maybe_write_json_from_args, Table, ToJson};
use rt_core::{DpsKind, RtChannelSpec};
use rt_traffic::{HeterogeneousSpecs, RequestPattern, Scenario};

#[derive(Debug)]
struct AblationRow {
    pattern: String,
    specs: String,
    dps: String,
    requested: u64,
    accepted: u64,
}

impl ToJson for AblationRow {
    fn to_json(&self) -> String {
        json_object(&[
            ("pattern", self.pattern.to_json()),
            ("specs", self.specs.to_json()),
            ("dps", self.dps.to_json()),
            ("requested", self.requested.to_json()),
            ("accepted", self.accepted.to_json()),
        ])
    }
}

fn main() {
    let scenario = Scenario::paper_master_slave();
    let nodes = scenario.nodes();
    let requested = 200u64;

    let patterns: Vec<(&str, RequestPattern)> = vec![
        ("master->slave RR", RequestPattern::MasterSlaveRoundRobin),
        (
            "master->slave rand",
            RequestPattern::MasterSlaveRandom { seed: 7 },
        ),
        ("slave->master RR", RequestPattern::SlaveToMasterRoundRobin),
        ("uniform", RequestPattern::Uniform { seed: 7 }),
        ("hotspot", RequestPattern::Hotspot),
    ];

    let mut rows = Vec::new();
    println!("Ablation A — accepted channels out of {requested} requested, per DPS and request pattern\n");
    let mut table = Table::new(&[
        "pattern",
        "specs",
        "SDPS",
        "ADPS",
        "ADPS-util",
        "Search-DPS",
    ]);

    for (pattern_name, pattern) in &patterns {
        for specs_kind in ["paper", "heterogeneous"] {
            let requests = match specs_kind {
                "paper" => pattern.generate(&scenario, requested, RtChannelSpec::paper_default()),
                _ => {
                    let mut gen = HeterogeneousSpecs::new(42);
                    pattern.generate_with(&scenario, requested, |_| gen.next_spec())
                }
            };
            let mut accepted = Vec::new();
            for dps in DpsKind::ALL {
                let result = run_admission(&nodes, &requests, dps, false);
                rows.push(AblationRow {
                    pattern: pattern_name.to_string(),
                    specs: specs_kind.to_string(),
                    dps: result.dps.clone(),
                    requested,
                    accepted: result.accepted,
                });
                accepted.push(result.accepted);
            }
            table.row_strings(vec![
                pattern_name.to_string(),
                specs_kind.to_string(),
                accepted[0].to_string(),
                accepted[1].to_string(),
                accepted[2].to_string(),
                accepted[3].to_string(),
            ]);
        }
    }
    table.print();
    println!();
    println!("Reading guide: ADPS >= SDPS whenever load is asymmetric (master/slave, hotspot);");
    println!("the utilisation-weighted variant matters when channel specs are heterogeneous;");
    println!("Search-DPS is the per-request upper bound any partitioning scheme can reach.");

    maybe_write_json_from_args(&rows);
}
