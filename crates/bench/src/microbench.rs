//! A tiny, dependency-free micro-benchmark harness.
//!
//! The workspace carries no external crates, so the `benches/` targets are
//! plain `harness = false` binaries built on this module instead of a
//! benchmarking framework.  The design goals are modest and explicit:
//!
//! * **calibrated sampling** — each benchmark first estimates the cost of
//!   one iteration, then sizes its samples so a sample runs long enough to
//!   be measurable above timer noise,
//! * **robust summary** — several samples are taken and the *minimum* (the
//!   least-disturbed run), median and mean ns/iteration are reported,
//! * **machine-readable output** — results can be dumped as JSON through
//!   [`crate::report::ToJson`] for the benchmark-trajectory tooling.
//!
//! This intentionally does not do statistical outlier analysis; it is a
//! regression thermometer, not a laboratory instrument.

use std::time::{Duration as StdDuration, Instant};

use crate::report::{json_object, Table, ToJson};

/// One benchmark's summarised timing.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
    /// Fastest observed ns/iteration.
    pub min_ns: f64,
    /// Median ns/iteration across samples.
    pub median_ns: f64,
    /// Mean ns/iteration across samples.
    pub mean_ns: f64,
}

impl ToJson for BenchResult {
    fn to_json(&self) -> String {
        json_object(&[
            ("name", self.name.to_json()),
            ("iters_per_sample", self.iters_per_sample.to_json()),
            ("samples", self.samples.to_json()),
            ("min_ns", self.min_ns.to_json()),
            ("median_ns", self.median_ns.to_json()),
            ("mean_ns", self.mean_ns.to_json()),
        ])
    }
}

/// A group of benchmarks sharing configuration, collecting results as they
/// run.
#[derive(Debug)]
pub struct MicroBench {
    /// Minimum wall-clock time one sample should take.
    pub min_sample_time: StdDuration,
    /// Number of samples per benchmark.
    pub samples: usize,
    /// Hard cap on iterations per sample (guards against free functions).
    pub max_iters_per_sample: u64,
    results: Vec<BenchResult>,
}

impl Default for MicroBench {
    fn default() -> Self {
        MicroBench {
            min_sample_time: StdDuration::from_millis(40),
            samples: 7,
            max_iters_per_sample: 10_000_000,
            results: Vec::new(),
        }
    }
}

impl MicroBench {
    /// A harness with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// A quick harness for CI smoke runs (shorter samples, fewer of them).
    pub fn quick() -> Self {
        MicroBench {
            min_sample_time: StdDuration::from_millis(10),
            samples: 3,
            ..Self::default()
        }
    }

    /// Run one benchmark: `f` is called repeatedly; its return value is
    /// black-boxed so the work is not optimised away.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &BenchResult {
        // Calibrate: time a single iteration (re-timing a few times for very
        // fast functions so the estimate is not pure timer noise).
        let mut calibration_iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..calibration_iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= StdDuration::from_millis(1)
                || calibration_iters >= self.max_iters_per_sample
            {
                break elapsed.as_nanos().max(1) / u128::from(calibration_iters);
            }
            calibration_iters = (calibration_iters * 10).min(self.max_iters_per_sample);
        };
        let iters_per_sample = ((self.min_sample_time.as_nanos() / per_iter.max(1)).max(1) as u64)
            .min(self.max_iters_per_sample);

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            per_iter_ns.push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let min_ns = per_iter_ns[0];
        let median_ns = per_iter_ns[per_iter_ns.len() / 2];
        let mean_ns = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        self.results.push(BenchResult {
            name: name.to_string(),
            iters_per_sample,
            samples: self.samples,
            min_ns,
            median_ns,
            mean_ns,
        });
        self.results.last().expect("just pushed")
    }

    /// All results collected so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Print a results table and, if the process received a CLI argument,
    /// also dump the results there as JSON.
    pub fn finish(&self, title: &str) {
        println!("\n{title}");
        let mut table = Table::new(&["benchmark", "min ns/iter", "median ns/iter", "mean ns/iter"]);
        for r in &self.results {
            table.row_strings(vec![
                r.name.clone(),
                format!("{:.1}", r.min_ns),
                format!("{:.1}", r.median_ns),
                format!("{:.1}", r.mean_ns),
            ]);
        }
        table.print();
        crate::report::maybe_write_json_from_args(&self.results);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something_plausible() {
        let mut harness = MicroBench {
            min_sample_time: StdDuration::from_micros(200),
            samples: 3,
            ..MicroBench::default()
        };
        let r = harness.bench("sum", || (0..100u64).sum::<u64>()).clone();
        assert_eq!(r.samples, 3);
        assert!(r.min_ns > 0.0);
        assert!(r.min_ns <= r.mean_ns * 1.0001);
        assert_eq!(harness.results().len(), 1);
        assert!(r.to_json().contains("\"name\": \"sum\""));
    }

    #[test]
    fn quick_profile_is_cheaper() {
        let q = MicroBench::quick();
        assert!(q.samples < MicroBench::default().samples);
    }
}
