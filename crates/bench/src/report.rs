//! Small reporting helpers: aligned text tables, JSON result dumps, and a
//! matching JSON reader.
//!
//! The JSON side is a deliberately tiny, dependency-free encoder: result
//! rows implement [`ToJson`] by hand (usually one [`json_object`] call), so
//! benchmark outputs stay machine-readable without pulling a serialisation
//! framework into the workspace.  [`parse_json`] is the other direction — a
//! ~100-line recursive-descent reader used by the benchmark-trajectory
//! tooling (`bench_diff`) to compare a run against the previous artifact.

use std::collections::BTreeMap;
use std::fmt::Display;
use std::fs;
use std::path::Path;

/// A value that can render itself as a JSON document.
pub trait ToJson {
    /// The JSON text of this value.
    fn to_json(&self) -> String;
}

macro_rules! impl_tojson_display {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> String {
                self.to_string()
            }
        })*
    };
}

impl_tojson_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

impl ToJson for f64 {
    fn to_json(&self) -> String {
        if self.is_finite() {
            self.to_string()
        } else {
            // JSON has no NaN/Infinity; null is the conventional stand-in.
            "null".to_string()
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> String {
        json_string(self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> String {
        json_string(self)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> String {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> String {
        let items: Vec<String> = self.iter().map(|v| v.to_json()).collect();
        format!("[\n  {}\n]", items.join(",\n  "))
    }
}

/// Escape and quote a string for JSON.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Build a JSON object from already-encoded field values.
pub fn json_object(fields: &[(&str, String)]) -> String {
    let parts: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("{}: {}", json_string(k), v))
        .collect();
    format!("{{{}}}", parts.join(", "))
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers the encoder's
    /// output range).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (sorted keys; duplicate keys keep the last value).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// A member of an object, if this is an object and the key exists.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }
}

/// Parse a JSON document (the full grammar the in-repo encoder emits:
/// objects, arrays, strings with the common escapes, numbers, booleans,
/// null).  Returns a readable error with a byte offset on malformed input.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected '{literal}' at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Number)
        .ok_or_else(|| format!("malformed number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (the input came from &str, so the
                // boundaries are valid).
                let s = &bytes[*pos..];
                let ch = std::str::from_utf8(s)
                    .map_err(|_| "invalid UTF-8".to_string())?
                    .chars()
                    .next()
                    .expect("non-empty remainder");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// A fixed-bucket histogram for latency-style samples, sized once at
/// construction: `bucket_count` buckets of `bucket_width` each, with
/// everything past the last edge clamped into the final (overflow) bucket.
///
/// Recording is a single array increment, so the soak harness can feed it
/// one sample per admission without perturbing what it measures; percentiles
/// are read at the end.  Resolution is the bucket width — good enough for
/// p50/p99 reporting, deliberately not a full streaming-quantile sketch.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    bucket_width: u64,
    total: u64,
}

impl Histogram {
    /// A histogram with `bucket_count` buckets of `bucket_width` units each
    /// (both must be non-zero).
    pub fn new(bucket_width: u64, bucket_count: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be non-zero");
        assert!(bucket_count > 0, "bucket count must be non-zero");
        Histogram {
            counts: vec![0; bucket_count],
            bucket_width,
            total: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = ((value / self.bucket_width) as usize).min(self.counts.len() - 1);
        self.counts[bucket] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The value at quantile `q` (0.0 ..= 1.0), reported as the inclusive
    /// upper edge of the bucket holding that rank — so `percentile(0.5)` is
    /// an upper bound on the true median, tight to one bucket width.
    /// Returns 0 on an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (i as u64 + 1) * self.bucket_width;
            }
        }
        self.counts.len() as u64 * self.bucket_width
    }

    /// Convenience: the p50 (median) upper bound.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// Convenience: the p99 upper bound.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

/// A simple aligned text table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must have as many cells as the header).
    pub fn row(&mut self, cells: &[&dyn Display]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row has {} cells, header has {}",
            cells.len(),
            self.header.len()
        );
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Append a row of already-formatted strings.
    pub fn row_strings(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numerics, left-align text, by simple heuristic.
                if cell.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                    line.push_str(&format!("{cell:>width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("{cell:<width$}", width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Write `value` as JSON to `path` (creating parent directories).
pub fn write_json<T: ToJson + ?Sized>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, value.to_json())
}

/// Write a benchmark artifact to `<workspace root>/<default_name>` — the
/// place CI picks artifacts up — unless the environment variable `env_var`
/// overrides the path.  Prints the outcome; an unwritable path is reported,
/// not fatal (the numbers were already printed).
pub fn write_artifact<T: ToJson + ?Sized>(env_var: &str, default_name: &str, value: &T) {
    let path = std::env::var(env_var)
        .unwrap_or_else(|_| format!("{}/../../{default_name}", env!("CARGO_MANIFEST_DIR")));
    match write_json(Path::new(&path), value) {
        Ok(()) => println!("{default_name} rows written to {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// If the process was given a path argument, write the JSON results there.
/// Flag-style arguments (leading `-`) are ignored — `cargo bench` passes
/// `--bench` to every bench binary.
pub fn maybe_write_json_from_args<T: ToJson + ?Sized>(value: &T) {
    if let Some(path) = std::env::args().skip(1).find(|a| !a.starts_with('-')) {
        match write_json(Path::new(&path), value) {
            Ok(()) => println!("\nresults written to {path}"),
            Err(e) => eprintln!("\nfailed to write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&[&"alpha", &42u32]);
        t.row(&[&"b", &7u32]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("alpha"));
        // Numeric column is right-aligned: "42" and " 7" end at same column.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&[&1u32]);
    }

    #[test]
    fn write_json_round_trip() {
        let dir = std::env::temp_dir().join("rt_bench_report_test");
        let path = dir.join("out.json");
        write_json(&path, &vec![1u32, 2, 3]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let compact: String = text.chars().filter(|c| !c.is_whitespace()).collect();
        assert_eq!(compact, "[1,2,3]");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn parse_json_round_trips_the_encoder_output() {
        let rows = [
            json_object(&[
                ("fabric", "star".to_json()),
                ("events_per_second", 1234.5f64.to_json()),
                ("ok", true.to_json()),
                ("note", "a \"quoted\"\nline".to_json()),
            ]),
            json_object(&[("fabric", "ring".to_json()), ("nested", "[1, 2]".to_json())]),
        ];
        let text = format!("[\n  {}\n]", rows.join(",\n  "));
        let parsed = parse_json(&text).unwrap();
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("fabric").unwrap().as_str(), Some("star"));
        assert_eq!(
            arr[0].get("events_per_second").unwrap().as_f64(),
            Some(1234.5)
        );
        assert_eq!(arr[0].get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(
            arr[0].get("note").unwrap().as_str(),
            Some("a \"quoted\"\nline")
        );
        assert_eq!(arr[1].get("nested").unwrap().as_str(), Some("[1, 2]"));
    }

    #[test]
    fn parse_json_handles_the_full_grammar() {
        let v =
            parse_json(r#"{"a": [1, -2.5, 1e3], "b": null, "c": {}, "d": [], "e": "A"}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(1000.0)
        );
        assert_eq!(v.get("b"), Some(&JsonValue::Null));
        assert_eq!(v.get("c"), Some(&JsonValue::Object(BTreeMap::new())));
        assert_eq!(v.get("d").unwrap().as_array().unwrap().len(), 0);
        assert_eq!(v.get("e").unwrap().as_str(), Some("A"));
        // Non-values on accessor mismatches.
        assert!(v.get("a").unwrap().as_str().is_none());
        assert!(v.get("missing").is_none());
        assert!(JsonValue::Null.get("x").is_none());
    }

    #[test]
    fn parse_json_rejects_malformed_input() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("123 456").is_err());
        assert!(parse_json("nul").is_err());
    }

    #[test]
    fn histogram_percentiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new(10, 100);
        for v in 0..100u64 {
            h.record(v); // one sample per unit: buckets 0..10 hold 10 each
        }
        assert_eq!(h.count(), 100);
        assert!(!h.is_empty());
        // Rank 50 falls in bucket 4 (values 40..50) -> upper edge 50.
        assert_eq!(h.p50(), 50);
        // Rank 99 falls in bucket 9 (values 90..100) -> upper edge 100.
        assert_eq!(h.p99(), 100);
        assert_eq!(h.percentile(0.0), 10, "lowest rank is the first bucket");
        assert_eq!(h.percentile(1.0), 100);
    }

    #[test]
    fn histogram_clamps_overflow_into_the_last_bucket() {
        let mut h = Histogram::new(5, 4); // edges 5, 10, 15, 20+
        h.record(3);
        h.record(1_000_000);
        assert_eq!(h.count(), 2);
        assert_eq!(h.p50(), 5);
        assert_eq!(h.percentile(1.0), 20, "overflow clamps to the last edge");
    }

    #[test]
    fn histogram_empty_and_skew() {
        let h = Histogram::new(10, 10);
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), 0);

        let mut h = Histogram::new(1, 1000);
        for _ in 0..99 {
            h.record(2);
        }
        h.record(500);
        assert_eq!(h.p50(), 3);
        assert_eq!(h.p99(), 3, "rank 99 of 100 is still the common value");
        assert_eq!(h.percentile(1.0), 501, "the outlier sits at the tail");
    }

    #[test]
    fn json_values_encode_correctly() {
        assert_eq!(42u64.to_json(), "42");
        assert_eq!(true.to_json(), "true");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!("a\"b\\c\nd".to_json(), r#""a\"b\\c\nd""#);
        assert_eq!(
            json_object(&[("x", 1u64.to_json()), ("name", "hi".to_json())]),
            r#"{"x": 1, "name": "hi"}"#
        );
    }
}
