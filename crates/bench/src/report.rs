//! Small reporting helpers: aligned text tables and JSON result dumps.

use std::fmt::Display;
use std::fs;
use std::path::Path;

use serde::Serialize;

/// A simple aligned text table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must have as many cells as the header).
    pub fn row(&mut self, cells: &[&dyn Display]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row has {} cells, header has {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Append a row of already-formatted strings.
    pub fn row_strings(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numerics, left-align text, by simple heuristic.
                if cell.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                    line.push_str(&format!("{cell:>width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("{cell:<width$}", width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Write `value` as pretty JSON to `path` (creating parent directories).
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(value).expect("results are serialisable");
    fs::write(path, json)
}

/// If the process was given a CLI argument, interpret it as an output path
/// and write the JSON results there.
pub fn maybe_write_json_from_args<T: Serialize>(value: &T) {
    if let Some(path) = std::env::args().nth(1) {
        match write_json(Path::new(&path), value) {
            Ok(()) => println!("\nresults written to {path}"),
            Err(e) => eprintln!("\nfailed to write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&[&"alpha", &42u32]);
        t.row(&[&"b", &7u32]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("alpha"));
        // Numeric column is right-aligned: "42" and " 7" end at same column.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&[&1u32]);
    }

    #[test]
    fn write_json_round_trip() {
        let dir = std::env::temp_dir().join("rt_bench_report_test");
        let path = dir.join("out.json");
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let back: Vec<u32> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let _ = std::fs::remove_dir_all(dir);
    }
}
