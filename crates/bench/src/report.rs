//! Small reporting helpers: aligned text tables and JSON result dumps.
//!
//! The JSON side is a deliberately tiny, dependency-free encoder: result
//! rows implement [`ToJson`] by hand (usually one [`json_object`] call), so
//! benchmark outputs stay machine-readable without pulling a serialisation
//! framework into the workspace.

use std::fmt::Display;
use std::fs;
use std::path::Path;

/// A value that can render itself as a JSON document.
pub trait ToJson {
    /// The JSON text of this value.
    fn to_json(&self) -> String;
}

macro_rules! impl_tojson_display {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> String {
                self.to_string()
            }
        })*
    };
}

impl_tojson_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

impl ToJson for f64 {
    fn to_json(&self) -> String {
        if self.is_finite() {
            self.to_string()
        } else {
            // JSON has no NaN/Infinity; null is the conventional stand-in.
            "null".to_string()
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> String {
        json_string(self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> String {
        json_string(self)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> String {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> String {
        let items: Vec<String> = self.iter().map(|v| v.to_json()).collect();
        format!("[\n  {}\n]", items.join(",\n  "))
    }
}

/// Escape and quote a string for JSON.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Build a JSON object from already-encoded field values.
pub fn json_object(fields: &[(&str, String)]) -> String {
    let parts: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("{}: {}", json_string(k), v))
        .collect();
    format!("{{{}}}", parts.join(", "))
}

/// A simple aligned text table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must have as many cells as the header).
    pub fn row(&mut self, cells: &[&dyn Display]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row has {} cells, header has {}",
            cells.len(),
            self.header.len()
        );
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Append a row of already-formatted strings.
    pub fn row_strings(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numerics, left-align text, by simple heuristic.
                if cell.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                    line.push_str(&format!("{cell:>width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("{cell:<width$}", width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Write `value` as JSON to `path` (creating parent directories).
pub fn write_json<T: ToJson + ?Sized>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, value.to_json())
}

/// If the process was given a path argument, write the JSON results there.
/// Flag-style arguments (leading `-`) are ignored — `cargo bench` passes
/// `--bench` to every bench binary.
pub fn maybe_write_json_from_args<T: ToJson + ?Sized>(value: &T) {
    if let Some(path) = std::env::args().skip(1).find(|a| !a.starts_with('-')) {
        match write_json(Path::new(&path), value) {
            Ok(()) => println!("\nresults written to {path}"),
            Err(e) => eprintln!("\nfailed to write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&[&"alpha", &42u32]);
        t.row(&[&"b", &7u32]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("alpha"));
        // Numeric column is right-aligned: "42" and " 7" end at same column.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&[&1u32]);
    }

    #[test]
    fn write_json_round_trip() {
        let dir = std::env::temp_dir().join("rt_bench_report_test");
        let path = dir.join("out.json");
        write_json(&path, &vec![1u32, 2, 3]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let compact: String = text.chars().filter(|c| !c.is_whitespace()).collect();
        assert_eq!(compact, "[1,2,3]");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn json_values_encode_correctly() {
        assert_eq!(42u64.to_json(), "42");
        assert_eq!(true.to_json(), "true");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!("a\"b\\c\nd".to_json(), r#""a\"b\\c\nd""#);
        assert_eq!(
            json_object(&[("x", 1u64.to_json()), ("name", "hi".to_json())]),
            r#"{"x": 1, "name": "hi"}"#
        );
    }
}
