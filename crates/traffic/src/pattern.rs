//! Channel-request patterns.
//!
//! A pattern produces the sequence of channel requests an experiment feeds
//! to the admission controller.  The paper's Figure 18.5 experiment requests
//! between 20 and 200 channels with identical parameters (`C=3, P=100,
//! D=40`) in a master/slave configuration; the ablations also use uniform
//! and hotspot patterns and heterogeneous channel parameters.

use rt_core::RtChannelSpec;
use rt_types::{NodeId, Slots};

use crate::rng::SeededRng;
use crate::scenario::Scenario;

/// One channel request an experiment will submit to admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelRequest {
    /// Requesting (source) node.
    pub source: NodeId,
    /// Destination node.
    pub destination: NodeId,
    /// The requested traffic contract.
    pub spec: RtChannelSpec,
}

/// The built-in request patterns.
#[derive(Debug, Clone)]
pub enum RequestPattern {
    /// The paper's pattern: request `i` goes from master `i mod M` to a
    /// slave chosen round-robin, so load spreads evenly over the master
    /// uplinks (which then become the bottlenecks).
    MasterSlaveRoundRobin,
    /// Master→slave with the slave chosen uniformly at random.
    MasterSlaveRandom {
        /// RNG seed.
        seed: u64,
    },
    /// Slaves answer back: request `i` goes from a slave to a master,
    /// loading the master *downlinks* instead.
    SlaveToMasterRoundRobin,
    /// Any node to any other node, uniformly at random.
    Uniform {
        /// RNG seed.
        seed: u64,
    },
    /// All requests target one hotspot destination (the first slave), so its
    /// downlink is the single bottleneck.
    Hotspot,
}

impl RequestPattern {
    /// Generate `count` requests with identical `spec` for `scenario`.
    pub fn generate(
        &self,
        scenario: &Scenario,
        count: u64,
        spec: RtChannelSpec,
    ) -> Vec<ChannelRequest> {
        self.generate_with(scenario, count, |_| spec)
    }

    /// Generate `count` requests with per-request specs supplied by
    /// `spec_for` (called with the request index).
    pub fn generate_with(
        &self,
        scenario: &Scenario,
        count: u64,
        mut spec_for: impl FnMut(u64) -> RtChannelSpec,
    ) -> Vec<ChannelRequest> {
        let mut out = Vec::with_capacity(count as usize);
        match self {
            RequestPattern::MasterSlaveRoundRobin => {
                for i in 0..count {
                    out.push(ChannelRequest {
                        source: scenario.master(i),
                        destination: scenario.slave(i),
                        spec: spec_for(i),
                    });
                }
            }
            RequestPattern::MasterSlaveRandom { seed } => {
                let mut rng = SeededRng::new(*seed);
                for i in 0..count {
                    let slave = rng.below(u64::from(scenario.slave_count()));
                    out.push(ChannelRequest {
                        source: scenario.master(i),
                        destination: scenario.slave(slave),
                        spec: spec_for(i),
                    });
                }
            }
            RequestPattern::SlaveToMasterRoundRobin => {
                for i in 0..count {
                    out.push(ChannelRequest {
                        source: scenario.slave(i),
                        destination: scenario.master(i),
                        spec: spec_for(i),
                    });
                }
            }
            RequestPattern::Uniform { seed } => {
                let mut rng = SeededRng::new(*seed);
                let n = u64::from(scenario.node_count());
                for i in 0..count {
                    let source = rng.below(n);
                    let mut destination = rng.below(n);
                    while destination == source {
                        destination = rng.below(n);
                    }
                    out.push(ChannelRequest {
                        source: NodeId::new(source as u32),
                        destination: NodeId::new(destination as u32),
                        spec: spec_for(i),
                    });
                }
            }
            RequestPattern::Hotspot => {
                let hotspot = scenario.slave(0);
                for i in 0..count {
                    // Sources rotate over every node except the hotspot.
                    let mut source =
                        scenario.nodes()[(i % u64::from(scenario.node_count() - 1)) as usize];
                    if source == hotspot {
                        source = *scenario.nodes().last().expect("non-empty scenario");
                    }
                    out.push(ChannelRequest {
                        source,
                        destination: hotspot,
                        spec: spec_for(i),
                    });
                }
            }
        }
        out
    }
}

/// A generator of heterogeneous (randomised) channel specs for the ablation
/// experiments: periods, capacities and deadlines drawn uniformly from
/// configurable ranges, always respecting `C ≤ P` and `d ≥ 2C`.
#[derive(Debug, Clone)]
pub struct HeterogeneousSpecs {
    rng: SeededRng,
    /// Inclusive period range in slots.
    pub period: (u64, u64),
    /// Inclusive capacity range in slots.
    pub capacity: (u64, u64),
    /// Deadline as a fraction of the period, inclusive range (values below
    /// `2C/P` are clamped up so the spec stays valid).
    pub deadline_fraction: (f64, f64),
}

impl HeterogeneousSpecs {
    /// A generator with the given seed and default ranges loosely centred on
    /// the paper's parameters.
    pub fn new(seed: u64) -> Self {
        HeterogeneousSpecs {
            rng: SeededRng::new(seed),
            period: (50, 400),
            capacity: (1, 8),
            deadline_fraction: (0.2, 1.0),
        }
    }

    /// Draw the next spec.
    pub fn next_spec(&mut self) -> RtChannelSpec {
        let period = self.rng.range_inclusive(self.period.0, self.period.1);
        let capacity = self
            .rng
            .range_inclusive(self.capacity.0, self.capacity.1)
            .min(period);
        let frac = self.deadline_fraction.0
            + self.rng.unit() * (self.deadline_fraction.1 - self.deadline_fraction.0);
        let deadline = ((period as f64 * frac).round() as u64).max(2 * capacity);
        RtChannelSpec::new(
            Slots::new(period),
            Slots::new(capacity),
            Slots::new(deadline),
        )
        .expect("generated spec must be valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario::paper_master_slave()
    }

    #[test]
    fn round_robin_pattern_spreads_over_masters_and_slaves() {
        let reqs = RequestPattern::MasterSlaveRoundRobin.generate(
            &scenario(),
            100,
            RtChannelSpec::paper_default(),
        );
        assert_eq!(reqs.len(), 100);
        // Each of the 10 masters appears exactly 10 times.
        for m in scenario().masters() {
            assert_eq!(reqs.iter().filter(|r| r.source == m).count(), 10);
        }
        // Every request is master -> slave.
        for r in &reqs {
            assert!(scenario().is_master(r.source));
            assert!(scenario().is_slave(r.destination));
        }
    }

    #[test]
    fn random_master_slave_is_reproducible() {
        let a = RequestPattern::MasterSlaveRandom { seed: 9 }.generate(
            &scenario(),
            50,
            RtChannelSpec::paper_default(),
        );
        let b = RequestPattern::MasterSlaveRandom { seed: 9 }.generate(
            &scenario(),
            50,
            RtChannelSpec::paper_default(),
        );
        let c = RequestPattern::MasterSlaveRandom { seed: 10 }.generate(
            &scenario(),
            50,
            RtChannelSpec::paper_default(),
        );
        assert_eq!(a, b);
        assert_ne!(a, c);
        for r in &a {
            assert!(scenario().is_master(r.source));
            assert!(scenario().is_slave(r.destination));
        }
    }

    #[test]
    fn slave_to_master_pattern_reverses_direction() {
        let reqs = RequestPattern::SlaveToMasterRoundRobin.generate(
            &scenario(),
            60,
            RtChannelSpec::paper_default(),
        );
        for r in &reqs {
            assert!(scenario().is_slave(r.source));
            assert!(scenario().is_master(r.destination));
        }
    }

    #[test]
    fn uniform_pattern_never_self_loops() {
        let reqs = RequestPattern::Uniform { seed: 3 }.generate(
            &scenario(),
            500,
            RtChannelSpec::paper_default(),
        );
        assert!(reqs.iter().all(|r| r.source != r.destination));
    }

    #[test]
    fn hotspot_pattern_targets_one_destination() {
        let s = scenario();
        let reqs = RequestPattern::Hotspot.generate(&s, 80, RtChannelSpec::paper_default());
        let hotspot = s.slave(0);
        assert!(reqs.iter().all(|r| r.destination == hotspot));
        assert!(reqs.iter().all(|r| r.source != hotspot));
    }

    #[test]
    fn generate_with_allows_per_request_specs() {
        let mut gen = HeterogeneousSpecs::new(1);
        let reqs = RequestPattern::MasterSlaveRoundRobin
            .generate_with(&scenario(), 30, |_| gen.next_spec());
        assert_eq!(reqs.len(), 30);
        // Not all specs identical (overwhelmingly likely with this seed).
        assert!(reqs.windows(2).any(|w| w[0].spec != w[1].spec));
    }

    #[test]
    fn heterogeneous_specs_are_always_valid_and_reproducible() {
        let mut a = HeterogeneousSpecs::new(7);
        let mut b = HeterogeneousSpecs::new(7);
        for _ in 0..500 {
            let s = a.next_spec();
            assert!(s.validate().is_ok());
            assert_eq!(s, b.next_spec());
        }
    }
}
