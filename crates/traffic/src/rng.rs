//! Seeded, reproducible randomness.
//!
//! All stochastic workload generation in the repository goes through
//! [`SeededRng`], a thin wrapper over the workspace's dependency-free
//! deterministic generator ([`rt_types::rng::Xoshiro256`]) keyed by a `u64`
//! seed, so that every experiment is exactly reproducible and independent
//! generators can be derived from a master seed without correlation.

use rt_types::rng::Xoshiro256;

/// A deterministic random number generator.
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: Xoshiro256,
}

impl SeededRng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SeededRng {
            inner: Xoshiro256::new(seed),
        }
    }

    /// Derive an independent generator for a named sub-stream.  Deriving
    /// with the same `stream` always yields the same generator.
    pub fn derive(&self, stream: u64) -> SeededRng {
        let mut base = self.inner.clone();
        let mix = base.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SeededRng::new(mix)
    }

    /// A uniformly distributed integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.below(bound)
    }

    /// A uniformly distributed integer in `[lo, hi]` (inclusive).
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range");
        self.inner.range_inclusive(lo, hi)
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.unit()
    }

    /// An exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive");
        let u: f64 = 1.0 - self.unit(); // in (0, 1]
        -mean * u.ln()
    }

    /// A Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        let xs: Vec<u64> = (0..32).map(|_| a.below(1000)).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.below(1000)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let xs: Vec<u64> = (0..32).map(|_| a.below(1_000_000)).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.below(1_000_000)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derive_is_deterministic_and_independent() {
        let master = SeededRng::new(7);
        let mut a1 = master.derive(1);
        let mut a2 = master.derive(1);
        let mut b = master.derive(2);
        let x1: Vec<u64> = (0..16).map(|_| a1.below(100)).collect();
        let x2: Vec<u64> = (0..16).map(|_| a2.below(100)).collect();
        let y: Vec<u64> = (0..16).map(|_| b.below(100)).collect();
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SeededRng::new(3);
        for _ in 0..1000 {
            let v = rng.below(10);
            assert!(v < 10);
            let w = rng.range_inclusive(5, 8);
            assert!((5..=8).contains(&w));
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_has_positive_values_and_plausible_mean() {
        let mut rng = SeededRng::new(11);
        let n = 20_000;
        let mean_target = 250.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean_target)).sum();
        let mean = sum / n as f64;
        assert!(
            mean > 0.9 * mean_target && mean < 1.1 * mean_target,
            "mean {mean}"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SeededRng::new(5);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }
}
