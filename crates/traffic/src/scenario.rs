//! Network scenarios: which nodes exist and what their roles are.
//!
//! The paper's evaluation (Figure 18.5) uses a master/slave configuration —
//! 10 master nodes and 50 slave nodes around one switch — which is typical
//! of industrial control systems where a few controllers talk to many
//! sensors and actuators.

use rt_types::NodeId;

/// A star-network scenario: masters and slaves attached to one switch.
///
/// Node ids are allocated contiguously: masters get `0..masters`, slaves get
/// `masters..masters+slaves`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    masters: u32,
    slaves: u32,
}

impl Scenario {
    /// Build a scenario with the given number of masters and slaves.
    pub fn new(masters: u32, slaves: u32) -> Self {
        Scenario { masters, slaves }
    }

    /// The paper's Figure 18.5 configuration: 10 masters, 50 slaves.
    pub fn paper_master_slave() -> Self {
        Scenario::new(10, 50)
    }

    /// Number of master nodes.
    pub fn master_count(&self) -> u32 {
        self.masters
    }

    /// Number of slave nodes.
    pub fn slave_count(&self) -> u32 {
        self.slaves
    }

    /// Total number of end nodes.
    pub fn node_count(&self) -> u32 {
        self.masters + self.slaves
    }

    /// All node ids, masters first.
    pub fn nodes(&self) -> Vec<NodeId> {
        (0..self.node_count()).map(NodeId::new).collect()
    }

    /// The master node ids.
    pub fn masters(&self) -> Vec<NodeId> {
        (0..self.masters).map(NodeId::new).collect()
    }

    /// The slave node ids.
    pub fn slaves(&self) -> Vec<NodeId> {
        (self.masters..self.node_count()).map(NodeId::new).collect()
    }

    /// The `i`-th master (wrapping).
    pub fn master(&self, i: u64) -> NodeId {
        assert!(self.masters > 0, "scenario has no masters");
        NodeId::new((i % u64::from(self.masters)) as u32)
    }

    /// The `i`-th slave (wrapping).
    pub fn slave(&self, i: u64) -> NodeId {
        assert!(self.slaves > 0, "scenario has no slaves");
        NodeId::new(self.masters + (i % u64::from(self.slaves)) as u32)
    }

    /// `true` if `node` is a master in this scenario.
    pub fn is_master(&self, node: NodeId) -> bool {
        node.get() < self.masters
    }

    /// `true` if `node` is a slave in this scenario.
    pub fn is_slave(&self, node: NodeId) -> bool {
        node.get() >= self.masters && node.get() < self.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_dimensions() {
        let s = Scenario::paper_master_slave();
        assert_eq!(s.master_count(), 10);
        assert_eq!(s.slave_count(), 50);
        assert_eq!(s.node_count(), 60);
        assert_eq!(s.nodes().len(), 60);
        assert_eq!(s.masters().len(), 10);
        assert_eq!(s.slaves().len(), 50);
    }

    #[test]
    fn id_allocation_is_contiguous_and_disjoint() {
        let s = Scenario::new(3, 4);
        assert_eq!(
            s.masters(),
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]
        );
        assert_eq!(
            s.slaves(),
            vec![
                NodeId::new(3),
                NodeId::new(4),
                NodeId::new(5),
                NodeId::new(6)
            ]
        );
        for m in s.masters() {
            assert!(s.is_master(m));
            assert!(!s.is_slave(m));
        }
        for sl in s.slaves() {
            assert!(s.is_slave(sl));
            assert!(!s.is_master(sl));
        }
        assert!(!s.is_master(NodeId::new(7)));
        assert!(!s.is_slave(NodeId::new(7)));
    }

    #[test]
    fn indexed_access_wraps() {
        let s = Scenario::new(2, 3);
        assert_eq!(s.master(0), NodeId::new(0));
        assert_eq!(s.master(1), NodeId::new(1));
        assert_eq!(s.master(2), NodeId::new(0));
        assert_eq!(s.slave(0), NodeId::new(2));
        assert_eq!(s.slave(3), NodeId::new(2));
        assert_eq!(s.slave(4), NodeId::new(3));
    }

    #[test]
    #[should_panic(expected = "no masters")]
    fn master_access_panics_without_masters() {
        Scenario::new(0, 5).master(0);
    }
}
