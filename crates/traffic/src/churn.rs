//! Long-running churn workloads: a seeded arrival/departure process that
//! drives a [`ChannelManager`] through millions of establish/release
//! cycles.
//!
//! A [`ChurnProcess`] models an admission service under load: channel
//! requests arrive as a Poisson-style process (exponential inter-arrival
//! times), each admitted channel stays up for an exponentially distributed
//! holding time and is then torn down, and the request mix reuses the
//! [`HeterogeneousSpecs`] period/capacity/deadline sweep over uniformly
//! random endpoint pairs.  The process runs a warm-up window (the fabric
//! fills to steady state) followed by a measurement window, and can
//! interleave scripted trunk cut/repair events mid-churn.
//!
//! The driver speaks the real control protocol — request, forwarded
//! request, response, tear-down, and (under distributed placement) the
//! two-phase reservation frames — but pumps the frames synchronously
//! instead of through the wire simulator, so a single soak run can push
//! millions of cumulative requests through the exact production admission
//! code.  The same pump drives the central [`FabricChannelManager`] and the
//! [`DistributedChannelManager`]: byte-identical traces across placements
//! are a checkable invariant, not an assumption.
//!
//! Every random choice derives from the seed, so a churn trace is
//! reproducible: same seed, same topology, same manager kind → the same
//! [`ChurnEvent`] sequence, every run.
//!
//! [`FabricChannelManager`]: rt_core::FabricChannelManager
//! [`DistributedChannelManager`]: rt_core::DistributedChannelManager

use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

use rt_core::manager::SwitchAction;
use rt_core::protocol::ChannelRequest as ProtocolRequest;
use rt_core::{ChannelManager, RtChannelSpec};
use rt_frames::codec::TeardownFrame;
use rt_frames::rt_response::ResponseVerdict;
use rt_frames::{Frame, ResponseFrame};
use rt_types::{
    ChannelId, ConnectionRequestId, MacAddr, NodeId, RtError, RtResult, SimTime, SwitchId, Topology,
};

use crate::pattern::HeterogeneousSpecs;
use crate::rng::SeededRng;

/// A scripted fault action, pinned to an arrival index so it lands at the
/// same point of the request sequence on every run (the churn analogue of
/// the simulator's time-pinned `FaultScript`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnFaultKind {
    /// Fail the trunk: affected channels fail over to surviving routes.
    Cut,
    /// Repair the trunk: detoured channels re-optimise back to primaries.
    Repair,
}

/// One scripted trunk event inside a churn run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnFault {
    /// The arrival index (0-based) *before* which the fault fires.
    pub at_arrival: u64,
    /// The trunk to cut or repair.
    pub trunk: (SwitchId, SwitchId),
    /// Cut or repair.
    pub kind: ChurnFaultKind,
}

/// Configuration of a churn run: arrival process, holding times, window
/// sizes and the optional fault script.
///
/// Times are abstract ticks on the process's virtual clock — only their
/// ratio matters.  With mean inter-arrival `a` and mean holding `h`, the
/// steady-state offered load is `h / a` concurrent channels (Little's law),
/// so `holding / interarrival` picks how full the fabric runs.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Seed for every random stream (arrivals, holding times, endpoints,
    /// specs all derive from it).
    pub seed: u64,
    /// Arrivals before the measurement window opens (fabric fill).
    pub warmup: u64,
    /// Arrivals inside the measurement window.
    pub measured: u64,
    /// Mean inter-arrival time in virtual ticks (exponential).
    pub mean_interarrival: f64,
    /// Mean channel holding time in virtual ticks (exponential).
    pub mean_holding: f64,
    /// Scripted trunk cut/repair events, applied in order.
    pub faults: Vec<ChurnFault>,
    /// Record the full [`ChurnEvent`] trace (determinism tests).  The FNV
    /// trace hash is always computed; soak runs switch the trace off to
    /// keep millions of arrivals cheap.
    pub record_trace: bool,
    /// Record one [`ChannelWindow`] per admitted channel (endpoints, spec
    /// and admit/release ticks) so the run can be replayed on the wire by
    /// [`ChurnFrameSource`].  Off by default — soak runs at millions of
    /// arrivals do not want the extra vector.
    ///
    /// [`ChurnFrameSource`]: crate::source::ChurnFrameSource
    pub record_windows: bool,
}

impl ChurnConfig {
    /// A config with sensible defaults: 1 000 warm-up arrivals, 10 000
    /// measured arrivals, offered load of 50 concurrent channels, full
    /// trace recording, no faults.
    pub fn new(seed: u64) -> Self {
        ChurnConfig {
            seed,
            warmup: 1_000,
            measured: 10_000,
            mean_interarrival: 1.0,
            mean_holding: 50.0,
            faults: Vec::new(),
            record_trace: true,
            record_windows: false,
        }
    }

    /// Set the warm-up / measured window sizes.
    pub fn windows(mut self, warmup: u64, measured: u64) -> Self {
        self.warmup = warmup;
        self.measured = measured;
        self
    }

    /// Set the offered load: mean inter-arrival and mean holding ticks.
    pub fn load(mut self, mean_interarrival: f64, mean_holding: f64) -> Self {
        self.mean_interarrival = mean_interarrival;
        self.mean_holding = mean_holding;
        self
    }

    /// Cut a trunk just before arrival `at_arrival`.
    pub fn cut_at(mut self, at_arrival: u64, a: SwitchId, b: SwitchId) -> Self {
        self.faults.push(ChurnFault {
            at_arrival,
            trunk: (a, b),
            kind: ChurnFaultKind::Cut,
        });
        self
    }

    /// Repair a trunk just before arrival `at_arrival`.
    pub fn repair_at(mut self, at_arrival: u64, a: SwitchId, b: SwitchId) -> Self {
        self.faults.push(ChurnFault {
            at_arrival,
            trunk: (a, b),
            kind: ChurnFaultKind::Repair,
        });
        self
    }

    /// Disable full trace recording (the hash is still computed).
    pub fn without_trace(mut self) -> Self {
        self.record_trace = false;
        self
    }

    /// Record per-channel admission windows for wire-level replay.
    pub fn with_windows(mut self) -> Self {
        self.record_windows = true;
        self
    }
}

/// The lifetime of one admitted channel inside a churn run, on the
/// process's virtual clock: who talked to whom, under what contract, from
/// which tick to which tick.  A recorded window set is the bridge between
/// the synchronous admission soak and the wire simulator — feed it to
/// [`ChurnFrameSource`] to replay the same population as deadline-stamped
/// Ethernet frames.
///
/// [`ChurnFrameSource`]: crate::source::ChurnFrameSource
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelWindow {
    /// The admitted channel id (raw; placement-dependent).
    pub channel: ChannelId,
    /// Sending node.
    pub source: NodeId,
    /// Receiving node.
    pub destination: NodeId,
    /// The admitted traffic contract.
    pub spec: RtChannelSpec,
    /// Virtual tick at which the channel was admitted.
    pub admitted_at_tick: u64,
    /// Virtual tick at which the channel was released (holding-time expiry
    /// or a fault drop); `None` if it was still up when the run ended.
    pub released_at_tick: Option<u64>,
}

/// One observable event of a churn run, in process order.  The sequence is
/// a complete, deterministic account of the admission history — two runs
/// (or two manager placements) agree iff their traces are identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// An arrival was admitted as this channel.
    Admitted(ChannelId),
    /// An arrival was rejected by admission control.
    Rejected,
    /// An admitted channel's holding time expired and it was torn down.
    Released(ChannelId),
    /// A scripted trunk cut fired: so many channels re-routed, so many
    /// dropped for lack of a surviving feasible route.
    TrunkCut {
        /// Channels re-admitted over surviving routes.
        rerouted: u16,
        /// Channels released without a surviving feasible route.
        dropped: u16,
    },
    /// A scripted trunk repair fired: so many detoured channels migrated
    /// back to their primary routes (a repair never drops).
    TrunkRepaired {
        /// Channels re-admitted onto the repaired primary routes.
        rerouted: u16,
    },
}

impl ChurnEvent {
    /// Fold this event into a running FNV-1a hash.
    fn fold(&self, hash: &mut u64) {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut mix = |byte: u64| {
            *hash ^= byte;
            *hash = hash.wrapping_mul(PRIME);
        };
        match *self {
            ChurnEvent::Admitted(id) => {
                mix(1);
                mix(u64::from(id.get()));
            }
            ChurnEvent::Rejected => mix(2),
            ChurnEvent::Released(id) => {
                mix(3);
                mix(u64::from(id.get()));
            }
            ChurnEvent::TrunkCut { rerouted, dropped } => {
                mix(4);
                mix(u64::from(rerouted));
                mix(u64::from(dropped));
            }
            ChurnEvent::TrunkRepaired { rerouted } => {
                mix(5);
                mix(u64::from(rerouted));
            }
        }
    }
}

/// What a churn run measured.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Total arrivals driven (warm-up + measured).
    pub attempts: u64,
    /// Total arrivals admitted.
    pub admitted: u64,
    /// Arrivals inside the measurement window.
    pub measured_attempts: u64,
    /// Admitted arrivals inside the measurement window.
    pub measured_admitted: u64,
    /// Wall-clock nanoseconds per measured establishment attempt
    /// (request → final verdict through the full control protocol).
    pub measured_latencies: Vec<u64>,
    /// Wall-clock span of the measurement window.
    pub measured_elapsed: Duration,
    /// Most channels concurrently established at any point.
    pub peak_active: usize,
    /// Channels still established when the run ended.
    pub active_at_end: usize,
    /// Channels dropped by scripted trunk cuts.
    pub dropped_by_faults: u64,
    /// The deterministic event trace (empty when recording is off).
    pub trace: Vec<ChurnEvent>,
    /// FNV-1a hash over the full event sequence — always computed, equal
    /// iff the traces are equal.
    pub trace_hash: u64,
    /// FNV-1a hash over the event sequence with channel ids renumbered by
    /// admission order (the first `Admitted` becomes 1, the second 2, …;
    /// `Released` follows the remapping).  Two placements that admit and
    /// release the *same channels in the same order* agree on this hash
    /// even when their id allocators differ — the parity invariant under
    /// the distributed manager's per-switch id blocks.
    pub normalized_trace_hash: u64,
    /// One window per admitted channel, in admission order (empty unless
    /// [`ChurnConfig::record_windows`] is set).
    pub windows: Vec<ChannelWindow>,
    /// The virtual clock at the end of the run — the open end of every
    /// window whose channel was still up.
    pub end_tick: u64,
}

impl ChurnReport {
    /// Fraction of measured arrivals that were admitted.
    pub fn acceptance_ratio(&self) -> f64 {
        if self.measured_attempts == 0 {
            return 0.0;
        }
        self.measured_admitted as f64 / self.measured_attempts as f64
    }

    /// Admission decisions per wall-clock second over the measurement
    /// window (each decision is a full establishment handshake).
    pub fn admissions_per_second(&self) -> f64 {
        let secs = self.measured_elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.measured_attempts as f64 / secs
    }
}

/// An established channel the process will eventually tear down.
#[derive(Debug, Clone, Copy)]
struct ActiveChannel {
    source: NodeId,
    /// The source's access switch — where the tear-down frame enters the
    /// fabric (the coordinator under distributed placement).
    access: SwitchId,
    departs_at: u64,
    /// Admission sequence number — the placement-invariant departure
    /// tie-break (raw ids differ across placements by construction).
    admit_order: u64,
    /// Index into `ChurnReport::windows` when window recording is on.
    window: Option<usize>,
}

/// The seeded arrival/departure process.  Construct once per run; `run`
/// consumes the configured number of arrivals against one manager.
#[derive(Debug)]
pub struct ChurnProcess {
    config: ChurnConfig,
    /// Attached nodes with their access switches, in ascending node order.
    endpoints: Vec<(NodeId, SwitchId)>,
}

impl ChurnProcess {
    /// Build a churn process over the fabric's attached nodes.  Fails if
    /// the topology has fewer than two nodes (no channel has distinct
    /// endpoints) or the fault script names an arrival outside the run.
    pub fn new(config: ChurnConfig, topology: &Topology) -> RtResult<Self> {
        let endpoints: Vec<(NodeId, SwitchId)> = topology
            .nodes()
            .map(|n| {
                let access = topology
                    .switch_of(n)
                    .ok_or_else(|| RtError::Config(format!("node {n} has no access switch")))?;
                Ok((n, access))
            })
            .collect::<RtResult<_>>()?;
        if endpoints.len() < 2 {
            return Err(RtError::Config(format!(
                "churn needs at least two attached nodes, topology has {}",
                endpoints.len()
            )));
        }
        let total = config.warmup + config.measured;
        if let Some(fault) = config.faults.iter().find(|f| f.at_arrival >= total) {
            return Err(RtError::Config(format!(
                "churn fault at arrival {} is outside the run ({} arrivals)",
                fault.at_arrival, total
            )));
        }
        Ok(ChurnProcess { config, endpoints })
    }

    /// The configuration this process runs.
    pub fn config(&self) -> &ChurnConfig {
        &self.config
    }

    /// Drive the full arrival/departure process against `manager`.
    ///
    /// The manager must have been built over the same topology the process
    /// was constructed with (the process addresses control frames to the
    /// nodes' access switches).  Works against any [`ChannelManager`] —
    /// central or distributed — through the synchronous protocol pump.
    pub fn run<M: ChannelManager + ?Sized>(&self, manager: &mut M) -> RtResult<ChurnReport> {
        let cfg = &self.config;
        let mut arrivals_rng = SeededRng::new(cfg.seed).derive(1);
        let mut holding_rng = SeededRng::new(cfg.seed).derive(2);
        let mut endpoint_rng = SeededRng::new(cfg.seed).derive(3);
        let mut specs = HeterogeneousSpecs::new(cfg.seed ^ 0x6368_7572_6e21_0000);

        let mut faults = cfg.faults.clone();
        faults.sort_by_key(|f| f.at_arrival);
        let mut next_fault = 0usize;

        let total = cfg.warmup + cfg.measured;
        let mut report = ChurnReport {
            attempts: 0,
            admitted: 0,
            measured_attempts: 0,
            measured_admitted: 0,
            measured_latencies: Vec::with_capacity(cfg.measured as usize),
            measured_elapsed: Duration::ZERO,
            peak_active: 0,
            active_at_end: 0,
            dropped_by_faults: 0,
            trace: Vec::new(),
            trace_hash: 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
            normalized_trace_hash: 0xcbf2_9ce4_8422_2325,
            windows: Vec::new(),
            end_tick: 0,
        };
        // Admission-order id renumbering for the normalized hash: raw id →
        // its admission sequence number.  A raw id reused after release gets
        // a *fresh* normalized id, so allocator wrap-around never aliases
        // two distinct channels.
        let mut admit_seq = 0u64;
        let mut norm_ids: BTreeMap<u16, u64> = BTreeMap::new();
        let mut record = |report: &mut ChurnReport, event: ChurnEvent| {
            event.fold(&mut report.trace_hash);
            const PRIME: u64 = 0x0000_0100_0000_01b3;
            let mix = |hash: &mut u64, byte: u64| {
                *hash ^= byte;
                *hash = hash.wrapping_mul(PRIME);
            };
            match event {
                ChurnEvent::Admitted(id) => {
                    admit_seq += 1;
                    norm_ids.insert(id.get(), admit_seq);
                    mix(&mut report.normalized_trace_hash, 1);
                    mix(&mut report.normalized_trace_hash, admit_seq);
                }
                ChurnEvent::Released(id) => {
                    let n = norm_ids.get(&id.get()).copied().unwrap_or(0);
                    mix(&mut report.normalized_trace_hash, 3);
                    mix(&mut report.normalized_trace_hash, n);
                }
                other => other.fold(&mut report.normalized_trace_hash),
            }
            if cfg.record_trace {
                report.trace.push(event);
            }
        };

        // Virtual clock state: the active channel set and its departure
        // queue, both keyed deterministically.
        let mut clock = 0u64;
        let mut active: BTreeMap<u16, ActiveChannel> = BTreeMap::new();
        // Departure queue keyed by (tick, admission order): raw ids are
        // placement-dependent under per-switch id blocks, so same-tick
        // departures must tie-break on something both placements share.
        let mut departures: BTreeMap<(u64, u64), u16> = BTreeMap::new();
        let mut pump = ProtocolPump::new();
        let mut window_started = None;

        for arrival in 0..total {
            if arrival == cfg.warmup {
                window_started = Some(Instant::now());
            }
            // Scripted faults pinned to this arrival fire first.
            while faults
                .get(next_fault)
                .is_some_and(|f| f.at_arrival == arrival)
            {
                let fault = faults[next_fault];
                next_fault += 1;
                let (a, b) = fault.trunk;
                match fault.kind {
                    ChurnFaultKind::Cut => {
                        let outcome = manager.handle_link_failure(a, b)?;
                        pump.flood(manager)?;
                        for dropped in &outcome.dropped {
                            let id = dropped.id.get();
                            if let Some(gone) = active.remove(&id) {
                                departures.remove(&(gone.departs_at, gone.admit_order));
                                if let Some(w) = gone.window {
                                    report.windows[w].released_at_tick = Some(clock);
                                }
                            }
                        }
                        report.dropped_by_faults += outcome.dropped.len() as u64;
                        record(
                            &mut report,
                            ChurnEvent::TrunkCut {
                                rerouted: outcome.rerouted.len() as u16,
                                dropped: outcome.dropped.len() as u16,
                            },
                        );
                    }
                    ChurnFaultKind::Repair => {
                        let outcome = manager.handle_link_repair(a, b)?;
                        pump.flood(manager)?;
                        record(
                            &mut report,
                            ChurnEvent::TrunkRepaired {
                                rerouted: outcome.rerouted.len() as u16,
                            },
                        );
                    }
                }
            }

            // Advance the clock to this arrival, tearing down every channel
            // whose holding time expired on the way.
            let step = arrivals_rng.exponential(cfg.mean_interarrival).round() as u64;
            clock += step.max(1);
            while let Some((&(when, order), &id)) = departures.first_key_value() {
                if when > clock {
                    break;
                }
                departures.remove(&(when, order));
                let channel = active.remove(&id).expect("departure queue tracks active");
                pump.release(manager, channel.access, channel.source, ChannelId::new(id))?;
                if let Some(w) = channel.window {
                    report.windows[w].released_at_tick = Some(when);
                }
                record(&mut report, ChurnEvent::Released(ChannelId::new(id)));
            }

            // The arrival itself: uniform distinct endpoint pair, a spec
            // from the heterogeneous sweep, one full establishment
            // handshake.
            let (source, src_switch) =
                self.endpoints[endpoint_rng.below(self.endpoints.len() as u64) as usize];
            let mut di = endpoint_rng.below(self.endpoints.len() as u64) as usize;
            if self.endpoints[di].0 == source {
                di = (di + 1) % self.endpoints.len();
            }
            let (destination, dst_switch) = self.endpoints[di];
            let spec = specs.next_spec();
            let request_id = ConnectionRequestId::new((arrival & 0xff) as u8);

            let started = Instant::now();
            let verdict = pump.establish(
                manager,
                src_switch,
                dst_switch,
                source,
                destination,
                spec,
                request_id,
            )?;
            let latency = started.elapsed().as_nanos() as u64;

            report.attempts += 1;
            let measured = arrival >= cfg.warmup;
            if measured {
                report.measured_attempts += 1;
                report.measured_latencies.push(latency);
            }
            match verdict {
                Some(id) => {
                    report.admitted += 1;
                    if measured {
                        report.measured_admitted += 1;
                    }
                    let holding = holding_rng.exponential(cfg.mean_holding).round() as u64;
                    let departs_at = clock + holding.max(1);
                    let admit_order = report.admitted;
                    let window = cfg.record_windows.then(|| {
                        report.windows.push(ChannelWindow {
                            channel: id,
                            source,
                            destination,
                            spec,
                            admitted_at_tick: clock,
                            released_at_tick: None,
                        });
                        report.windows.len() - 1
                    });
                    active.insert(
                        id.get(),
                        ActiveChannel {
                            source,
                            access: src_switch,
                            departs_at,
                            admit_order,
                            window,
                        },
                    );
                    departures.insert((departs_at, admit_order), id.get());
                    report.peak_active = report.peak_active.max(active.len());
                    record(&mut report, ChurnEvent::Admitted(id));
                }
                None => record(&mut report, ChurnEvent::Rejected),
            }
        }

        report.measured_elapsed = window_started
            .map(|t| t.elapsed())
            .unwrap_or(Duration::ZERO);
        report.active_at_end = active.len();
        report.end_tick = clock;
        Ok(report)
    }
}

/// The synchronous control-protocol pump: delivers control frames to the
/// manager switch by switch, exactly as the wire would, but without the
/// simulator in between.  Destinations always accept (the node-side RT
/// layer rejects only on an incoming-channel cap, which churn does not
/// configure).
#[derive(Debug)]
struct ProtocolPump {
    queue: VecDeque<(SwitchId, NodeId, Frame)>,
}

impl ProtocolPump {
    fn new() -> Self {
        ProtocolPump {
            queue: VecDeque::new(),
        }
    }

    /// One full establishment handshake; returns the admitted channel id or
    /// `None` on rejection.
    #[allow(clippy::too_many_arguments)]
    fn establish<M: ChannelManager + ?Sized>(
        &mut self,
        manager: &mut M,
        src_switch: SwitchId,
        dst_switch: SwitchId,
        source: NodeId,
        destination: NodeId,
        spec: RtChannelSpec,
        request_id: ConnectionRequestId,
    ) -> RtResult<Option<ChannelId>> {
        let request = ProtocolRequest {
            source,
            destination,
            spec,
            request_id,
        }
        .to_frame();
        self.queue.clear();
        self.queue
            .push_back((src_switch, source, Frame::Request(request)));
        let mut verdict = None;
        while let Some((at, from, frame)) = self.queue.pop_front() {
            // The pump is synchronous: every frame is delivered in zero
            // simulated time, so reservation leases never expire mid-pump.
            let outcome = manager.handle_frame_at(at, from, &frame, SimTime::ZERO)?;
            for (_, action) in outcome.emissions {
                match action {
                    SwitchAction::ForwardRequest { to, frame } => {
                        // The destination node accepts and answers through
                        // its own access switch, like the RT layer would.
                        debug_assert_eq!(to, destination);
                        let response = ResponseFrame {
                            rt_channel_id: frame.rt_channel_id,
                            switch_mac: MacAddr::for_switch(),
                            verdict: ResponseVerdict::Accepted,
                            connection_request_id: frame.connection_request_id,
                        };
                        self.queue
                            .push_back((dst_switch, to, Frame::Response(response)));
                    }
                    SwitchAction::SendResponse { frame, .. } => {
                        verdict = Some(match frame.verdict {
                            ResponseVerdict::Accepted => frame.rt_channel_id,
                            ResponseVerdict::Rejected => None,
                        });
                    }
                    SwitchAction::SendControl { to, frame } => {
                        self.queue
                            .push_back((to, NodeId::SWITCH, Frame::Reservation(frame)));
                    }
                }
            }
        }
        verdict.ok_or_else(|| {
            RtError::ProtocolViolation("establishment pump drained without a verdict".into())
        })
    }

    /// Tear a channel down from its source's access switch (the coordinator
    /// under distributed placement), draining any follow-up reservation
    /// traffic (the distributed release fan-out along the route).
    fn release<M: ChannelManager + ?Sized>(
        &mut self,
        manager: &mut M,
        access: SwitchId,
        source: NodeId,
        id: ChannelId,
    ) -> RtResult<()> {
        let teardown = Frame::Teardown(TeardownFrame { rt_channel_id: id });
        self.queue.clear();
        self.queue.push_back((access, source, teardown));
        while let Some((at, from, frame)) = self.queue.pop_front() {
            let outcome = manager.handle_frame_at(at, from, &frame, SimTime::ZERO)?;
            for (_, action) in outcome.emissions {
                if let SwitchAction::SendControl { to, frame } = action {
                    self.queue
                        .push_back((to, NodeId::SWITCH, Frame::Reservation(frame)));
                }
            }
        }
        Ok(())
    }

    /// Propagate a topology event's link-state flood to convergence: drain
    /// the control frames the fault origins queued (empty under central
    /// placement) and pump them — and every re-flood they trigger — switch
    /// to switch until the fabric is quiet.  Churn's faults are applied
    /// between arrivals, so the flood always converges before the next
    /// admission: traces stay placement-identical.
    fn flood<M: ChannelManager + ?Sized>(&mut self, manager: &mut M) -> RtResult<()> {
        self.queue.clear();
        for (_, action) in manager.drain_control() {
            if let SwitchAction::SendControl { to, frame } = action {
                self.queue
                    .push_back((to, NodeId::SWITCH, Frame::Reservation(frame)));
            }
        }
        while let Some((at, from, frame)) = self.queue.pop_front() {
            let outcome = manager.handle_frame_at(at, from, &frame, SimTime::ZERO)?;
            for (_, action) in outcome.emissions {
                if let SwitchAction::SendControl { to, frame } = action {
                    self.queue
                        .push_back((to, NodeId::SWITCH, Frame::Reservation(frame)));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_core::{
        DistributedChannelManager, FabricChannelManager, MultiHopAdmission, MultiHopDps,
    };
    use rt_types::ShortestPathRouter;
    use std::sync::Arc;

    fn central(topology: &Topology) -> FabricChannelManager {
        FabricChannelManager::new(MultiHopAdmission::with_router(
            topology.clone(),
            MultiHopDps::Symmetric,
            Arc::new(ShortestPathRouter::new()),
        ))
    }

    fn distributed(topology: &Topology) -> DistributedChannelManager {
        DistributedChannelManager::new(
            topology.clone(),
            MultiHopDps::Symmetric,
            Arc::new(ShortestPathRouter::new()),
        )
    }

    #[test]
    fn churn_reaches_steady_state_and_is_deterministic() {
        let topology = Topology::fat_tree(4).unwrap();
        let config = ChurnConfig::new(7).windows(200, 800).load(1.0, 40.0);
        let process = ChurnProcess::new(config, &topology).unwrap();

        let run = |process: &ChurnProcess| {
            let mut manager = central(&topology);
            process.run(&mut manager).unwrap()
        };
        let first = run(&process);
        let second = run(&process);

        assert_eq!(first.attempts, 1_000);
        assert_eq!(first.measured_attempts, 800);
        assert!(first.admitted > 0, "some arrivals must be admitted");
        assert!(
            first
                .trace
                .iter()
                .any(|e| matches!(e, ChurnEvent::Released(_))),
            "holding times must expire mid-run"
        );
        assert!(first.peak_active > 0 && first.active_at_end > 0);
        // Same seed, same fabric, same manager → byte-identical trace.
        assert_eq!(first.trace, second.trace);
        assert_eq!(first.trace_hash, second.trace_hash);
        assert_eq!(first.measured_admitted, second.measured_admitted);
    }

    #[test]
    fn central_and_distributed_churn_traces_agree() {
        let topology = Topology::fat_tree(4).unwrap();
        let config = ChurnConfig::new(11).windows(100, 400).load(1.0, 30.0);
        let process = ChurnProcess::new(config, &topology).unwrap();

        let mut c = central(&topology);
        let mut d = distributed(&topology);
        let central_report = process.run(&mut c).unwrap();
        let distributed_report = process.run(&mut d).unwrap();

        // Raw ids differ by construction (the distributed manager allocates
        // from per-switch blocks), so parity is checked on the
        // admission-order-normalized hash and an explicit id remapping.
        assert_eq!(central_report.trace.len(), distributed_report.trace.len());
        let mut remap: BTreeMap<ChannelId, ChannelId> = BTreeMap::new();
        for (i, (ce, de)) in central_report
            .trace
            .iter()
            .zip(distributed_report.trace.iter())
            .enumerate()
        {
            match (ce, de) {
                (ChurnEvent::Admitted(a), ChurnEvent::Admitted(b)) => {
                    remap.insert(*a, *b);
                }
                (ChurnEvent::Released(a), ChurnEvent::Released(b)) => {
                    assert_eq!(remap.get(a), Some(b), "release order must agree at {i}");
                }
                (x, y) => assert_eq!(x, y, "non-admission events must be identical at {i}"),
            }
        }
        assert_eq!(
            central_report.normalized_trace_hash,
            distributed_report.normalized_trace_hash
        );
        assert_eq!(c.channel_count(), d.channel_count());
        let mapped: std::collections::BTreeSet<ChannelId> = c
            .channel_ids()
            .into_iter()
            .map(|id| *remap.get(&id).expect("surviving channel was admitted"))
            .collect();
        let d_ids: std::collections::BTreeSet<ChannelId> = d.channel_ids().into_iter().collect();
        assert_eq!(mapped, d_ids);
    }

    #[test]
    fn scripted_faults_interleave_with_churn() {
        // A 3×3 torus has redundant paths, so a cut re-routes rather than
        // drops and the repair migrates detours back.
        let topology = Topology::torus_nd(&[3, 3], 2).unwrap();
        let (a, b) = topology.trunks().next().unwrap();
        let config = ChurnConfig::new(3)
            .windows(100, 300)
            .load(1.0, 60.0)
            .cut_at(150, a, b)
            .repair_at(250, a, b);
        let process = ChurnProcess::new(config, &topology).unwrap();
        let mut manager = central(&topology);
        let report = process.run(&mut manager).unwrap();

        let cut = report
            .trace
            .iter()
            .find(|e| matches!(e, ChurnEvent::TrunkCut { .. }))
            .expect("cut event recorded");
        assert!(matches!(cut, ChurnEvent::TrunkCut { .. }));
        assert!(
            report
                .trace
                .iter()
                .any(|e| matches!(e, ChurnEvent::TrunkRepaired { .. })),
            "repair event recorded"
        );
        // Churn continues past the faults.
        assert_eq!(report.attempts, 400);
    }

    #[test]
    fn windows_record_every_admission_lifetime() {
        let topology = Topology::torus_nd(&[3, 3], 2).unwrap();
        let (a, b) = topology.trunks().next().unwrap();
        let config = ChurnConfig::new(9)
            .windows(100, 300)
            .load(1.0, 60.0)
            .cut_at(200, a, b)
            .with_windows();
        let process = ChurnProcess::new(config, &topology).unwrap();
        let mut manager = central(&topology);
        let report = process.run(&mut manager).unwrap();

        assert_eq!(report.windows.len() as u64, report.admitted);
        assert!(report.end_tick > 0);
        let released = report
            .windows
            .iter()
            .filter(|w| w.released_at_tick.is_some())
            .count();
        let release_events = report
            .trace
            .iter()
            .filter(|e| matches!(e, ChurnEvent::Released(_)))
            .count() as u64;
        // Every trace release and every fault drop closes a window; the
        // rest stay open until the end of the run.
        assert_eq!(
            released as u64,
            release_events + report.dropped_by_faults,
            "windows close exactly on release or fault drop"
        );
        assert_eq!(
            report.windows.len() - released,
            report.active_at_end,
            "open windows are the channels still up at the end"
        );
        for w in &report.windows {
            assert_ne!(w.source, w.destination);
            assert!(w.released_at_tick.unwrap_or(report.end_tick) >= w.admitted_at_tick);
        }

        // Recording off (the default) keeps the report lean.
        let quiet = ChurnProcess::new(
            ChurnConfig::new(9).windows(100, 300).load(1.0, 60.0),
            &topology,
        )
        .unwrap();
        let mut m2 = central(&topology);
        assert!(m2.channel_count() == 0);
        let lean = quiet.run(&mut m2).unwrap();
        assert!(lean.windows.is_empty());
        assert_eq!(lean.end_tick, report.end_tick, "same seed, same clock");
    }

    #[test]
    fn config_validation_rejects_bad_setups() {
        let topology = Topology::fat_tree(4).unwrap();
        let late_fault =
            ChurnConfig::new(1)
                .windows(10, 10)
                .cut_at(20, SwitchId::new(0), SwitchId::new(1));
        assert!(ChurnProcess::new(late_fault, &topology).is_err());

        let mut lonely = Topology::new();
        lonely.add_switch(SwitchId::new(0));
        lonely
            .attach_node(NodeId::new(0), SwitchId::new(0))
            .unwrap();
        assert!(ChurnProcess::new(ChurnConfig::new(1), &lonely).is_err());
    }

    #[test]
    fn trace_hash_matches_trace_equality() {
        let topology = Topology::fat_tree(4).unwrap();
        let process_a = ChurnProcess::new(ChurnConfig::new(5).windows(50, 150), &topology).unwrap();
        let process_b = ChurnProcess::new(ChurnConfig::new(6).windows(50, 150), &topology).unwrap();
        let mut m1 = central(&topology);
        let mut m2 = central(&topology);
        let r1 = process_a.run(&mut m1).unwrap();
        let r2 = process_b.run(&mut m2).unwrap();
        assert_ne!(r1.trace, r2.trace, "different seeds diverge");
        assert_ne!(r1.trace_hash, r2.trace_hash);

        // Trace recording off still hashes identically.
        let quiet = ChurnProcess::new(
            ChurnConfig::new(5).windows(50, 150).without_trace(),
            &topology,
        )
        .unwrap();
        let mut m3 = central(&topology);
        let r3 = quiet.run(&mut m3).unwrap();
        assert!(r3.trace.is_empty());
        assert_eq!(r3.trace_hash, r1.trace_hash);
    }
}
