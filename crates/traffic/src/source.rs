//! Wire-level workload generation: turning a [`FabricScenario`] into the
//! actual deadline-stamped Ethernet frames the simulator transports.
//!
//! [`ScenarioFrameSource`] is both a bulk generator (everything up front,
//! via [`ScenarioFrameSource::drain_all`] + `Simulator::inject_batch`) and a
//! pull-driven [`TrafficSource`] for `Simulator::run_with_source`, which
//! keeps the pending-event population proportional to one injection window
//! instead of the whole experiment.  Both modes produce the *identical*
//! frame sequence, so they are interchangeable in equivalence tests.

use rt_frames::rt_data::{DeadlineStamp, RtDataFrame};
use rt_netsim::{FrameInjection, TrafficSource};
use rt_types::{ChannelId, Duration, MacAddr, NodeId, SimTime};

use crate::fabric::FabricScenario;

/// A deterministic cross-switch RT frame workload over a fabric scenario:
/// frame `k` travels from a master on access switch `k mod S` to a slave on
/// a different switch (rotating over the others, the same walk as
/// [`FabricScenario::cross_switch_requests`]), injected `spacing` apart.
#[derive(Debug, Clone)]
pub struct ScenarioFrameSource {
    scenario: FabricScenario,
    total: u64,
    emitted: u64,
    start: SimTime,
    spacing: Duration,
    relative_deadline: Duration,
    payload_len: usize,
}

impl ScenarioFrameSource {
    /// A source of `total` frames, one every `spacing`, starting at time
    /// zero, with a 10 ms relative deadline and 1000-byte payloads.
    /// Requires a scenario with at least one master and one slave per
    /// switch.
    pub fn new(scenario: FabricScenario, total: u64, spacing: Duration) -> Self {
        ScenarioFrameSource {
            scenario,
            total,
            emitted: 0,
            start: SimTime::ZERO,
            spacing,
            relative_deadline: Duration::from_millis(10),
            payload_len: 1000,
        }
    }

    /// Override the payload length.
    pub fn payload_len(mut self, payload_len: usize) -> Self {
        self.payload_len = payload_len;
        self
    }

    /// Override the relative deadline stamped on every frame.
    pub fn relative_deadline(mut self, deadline: Duration) -> Self {
        self.relative_deadline = deadline;
        self
    }

    /// Override the injection time of the first frame.
    pub fn starting_at(mut self, start: SimTime) -> Self {
        self.start = start;
        self
    }

    /// Total frames this source produces.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `(source, destination)` of frame `k`: exactly
    /// [`FabricScenario::cross_switch_pair`], so the wire workload matches
    /// the admission workload request for request.
    pub fn pair(&self, k: u64) -> (NodeId, NodeId) {
        self.scenario.cross_switch_pair(k)
    }

    fn frame(&self, k: u64) -> FrameInjection {
        let (source, destination) = self.pair(k);
        let at = self.start + self.spacing.saturating_mul(k);
        let deadline = at + self.relative_deadline;
        // A bounded pool of channel ids keeps the per-channel statistics
        // maps small at any workload size.
        let channel = ChannelId::new((k % 1024) as u16 + 1);
        let eth = RtDataFrame {
            eth_src: MacAddr::for_node(source),
            eth_dst: MacAddr::for_node(destination),
            stamp: DeadlineStamp::new(deadline.as_nanos(), channel)
                .expect("nonzero channel id is always valid"),
            src_port: 0x4000,
            dst_port: 0x4001,
            payload: vec![0u8; self.payload_len],
        }
        .into_ethernet()
        .expect("generated RT frames are well-formed");
        FrameInjection {
            node: source,
            eth,
            at,
        }
    }

    /// Every remaining frame at once — feed to `Simulator::inject_batch`
    /// for the scheduler-stress (deep pending queue) workloads.
    pub fn drain_all(&mut self) -> Vec<FrameInjection> {
        let batch = (self.emitted..self.total).map(|k| self.frame(k)).collect();
        self.emitted = self.total;
        batch
    }
}

impl TrafficSource for ScenarioFrameSource {
    fn next_batch(&mut self, horizon: SimTime) -> Vec<FrameInjection> {
        let mut out = Vec::new();
        while self.emitted < self.total {
            let at = self.start + self.spacing.saturating_mul(self.emitted);
            if at >= horizon {
                break;
            }
            out.push(self.frame(self.emitted));
            self.emitted += 1;
        }
        out
    }

    fn is_exhausted(&self) -> bool {
        self.emitted >= self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_netsim::{SimConfig, Simulator};

    fn small_source(total: u64) -> ScenarioFrameSource {
        ScenarioFrameSource::new(
            FabricScenario::ring(4, 1, 1),
            total,
            Duration::from_micros(50),
        )
    }

    #[test]
    fn frames_cross_switches_and_are_time_ordered() {
        let mut source = small_source(32);
        let topology = FabricScenario::ring(4, 1, 1).topology();
        let frames = source.drain_all();
        assert_eq!(frames.len(), 32);
        let mut prev = SimTime::ZERO;
        for (k, f) in frames.iter().enumerate() {
            assert!(f.at >= prev, "frame {k} out of order");
            prev = f.at;
            let (src, dst) = small_source(32).pair(k as u64);
            assert_eq!(f.node, src);
            assert_ne!(topology.switch_of(src), topology.switch_of(dst));
        }
        assert!(source.is_exhausted());
        assert!(source.next_batch(SimTime::MAX).is_empty());
    }

    #[test]
    fn pull_mode_emits_the_same_sequence_as_drain_all() {
        let all = small_source(40).drain_all();
        let mut pulled = Vec::new();
        let mut source = small_source(40);
        let mut horizon = SimTime::from_micros(333);
        while !source.is_exhausted() {
            pulled.extend(source.next_batch(horizon));
            horizon += Duration::from_micros(333);
        }
        assert_eq!(all.len(), pulled.len());
        for (a, b) in all.iter().zip(&pulled) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.at, b.at);
            assert_eq!(a.eth.encode(), b.eth.encode());
        }
        // Respect the horizon strictly.
        let mut source = small_source(40);
        for f in source.next_batch(SimTime::from_micros(100)) {
            assert!(f.at < SimTime::from_micros(100));
        }
    }

    #[test]
    fn source_drives_a_simulation_end_to_end() {
        let scenario = FabricScenario::ring(4, 1, 1);
        let mut sim = Simulator::with_topology(SimConfig::default(), scenario.topology()).unwrap();
        let mut source = ScenarioFrameSource::new(scenario, 60, Duration::from_micros(100));
        sim.run_with_source(&mut source, Duration::from_millis(1))
            .unwrap();
        assert_eq!(sim.poll_deliveries().len(), 60);
        assert_eq!(sim.stats().rt_delivered, 60);
    }

    #[test]
    fn upfront_and_pull_driven_runs_deliver_identically() {
        let scenario = FabricScenario::torus(2, 2, 1, 1);
        let run_upfront = || {
            let mut sim =
                Simulator::with_topology(SimConfig::default(), scenario.topology()).unwrap();
            let mut source =
                ScenarioFrameSource::new(scenario.clone(), 50, Duration::from_micros(80));
            sim.inject_batch(source.drain_all()).unwrap();
            sim.run_to_idle();
            sim.poll_deliveries()
                .iter()
                .map(|d| (d.frame, d.receiver, d.delivered_at))
                .collect::<Vec<_>>()
        };
        let run_pulled = || {
            let mut sim =
                Simulator::with_topology(SimConfig::default(), scenario.topology()).unwrap();
            let mut source =
                ScenarioFrameSource::new(scenario.clone(), 50, Duration::from_micros(80));
            sim.run_with_source(&mut source, Duration::from_micros(500))
                .unwrap();
            sim.poll_deliveries()
                .iter()
                .map(|d| (d.frame, d.receiver, d.delivered_at))
                .collect::<Vec<_>>()
        };
        assert_eq!(run_upfront(), run_pulled());
    }
}
