//! Wire-level workload generation: turning a [`FabricScenario`] into the
//! actual deadline-stamped Ethernet frames the simulator transports.
//!
//! [`ScenarioFrameSource`] is both a bulk generator (everything up front,
//! via [`ScenarioFrameSource::drain_all`] + `Simulator::inject_batch`) and a
//! pull-driven [`TrafficSource`] for `Simulator::run_with_source`, which
//! keeps the pending-event population proportional to one injection window
//! instead of the whole experiment.  Both modes produce the *identical*
//! frame sequence, so they are interchangeable in equivalence tests.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rt_frames::rt_data::{DeadlineStamp, RtDataFrame};
use rt_netsim::{FrameInjection, TrafficSource};
use rt_types::{ChannelId, Duration, LinkSpeed, MacAddr, NodeId, SimTime};

use crate::churn::{ChannelWindow, ChurnReport};
use crate::fabric::FabricScenario;

/// A deterministic cross-switch RT frame workload over a fabric scenario:
/// frame `k` travels from a master on access switch `k mod S` to a slave on
/// a different switch (rotating over the others, the same walk as
/// [`FabricScenario::cross_switch_requests`]), injected `spacing` apart.
#[derive(Debug, Clone)]
pub struct ScenarioFrameSource {
    scenario: FabricScenario,
    total: u64,
    emitted: u64,
    start: SimTime,
    spacing: Duration,
    relative_deadline: Duration,
    payload_len: usize,
}

impl ScenarioFrameSource {
    /// A source of `total` frames, one every `spacing`, starting at time
    /// zero, with a 10 ms relative deadline and 1000-byte payloads.
    /// Requires a scenario with at least one master and one slave per
    /// switch.
    pub fn new(scenario: FabricScenario, total: u64, spacing: Duration) -> Self {
        ScenarioFrameSource {
            scenario,
            total,
            emitted: 0,
            start: SimTime::ZERO,
            spacing,
            relative_deadline: Duration::from_millis(10),
            payload_len: 1000,
        }
    }

    /// Override the payload length.
    pub fn payload_len(mut self, payload_len: usize) -> Self {
        self.payload_len = payload_len;
        self
    }

    /// Override the relative deadline stamped on every frame.
    pub fn relative_deadline(mut self, deadline: Duration) -> Self {
        self.relative_deadline = deadline;
        self
    }

    /// Override the injection time of the first frame.
    pub fn starting_at(mut self, start: SimTime) -> Self {
        self.start = start;
        self
    }

    /// Total frames this source produces.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `(source, destination)` of frame `k`: exactly
    /// [`FabricScenario::cross_switch_pair`], so the wire workload matches
    /// the admission workload request for request.
    pub fn pair(&self, k: u64) -> (NodeId, NodeId) {
        self.scenario.cross_switch_pair(k)
    }

    fn frame(&self, k: u64) -> FrameInjection {
        let (source, destination) = self.pair(k);
        let at = self.start + self.spacing.saturating_mul(k);
        let deadline = at + self.relative_deadline;
        // A bounded pool of channel ids keeps the per-channel statistics
        // maps small at any workload size.
        let channel = ChannelId::new((k % 1024) as u16 + 1);
        let eth = RtDataFrame {
            eth_src: MacAddr::for_node(source),
            eth_dst: MacAddr::for_node(destination),
            stamp: DeadlineStamp::new(deadline.as_nanos(), channel)
                .expect("nonzero channel id is always valid"),
            src_port: 0x4000,
            dst_port: 0x4001,
            payload: vec![0u8; self.payload_len],
        }
        .into_ethernet()
        .expect("generated RT frames are well-formed");
        FrameInjection {
            node: source,
            eth,
            at,
        }
    }

    /// Every remaining frame at once — feed to `Simulator::inject_batch`
    /// for the scheduler-stress (deep pending queue) workloads.
    pub fn drain_all(&mut self) -> Vec<FrameInjection> {
        let batch = (self.emitted..self.total).map(|k| self.frame(k)).collect();
        self.emitted = self.total;
        batch
    }
}

/// The wire-level twin of a churn run: replays the recorded
/// [`ChannelWindow`]s as periodic, deadline-stamped RT frame streams, so
/// the exact channel population the admission soak established can be
/// driven through the frame simulator.
///
/// Each admitted window becomes a stream of messages, one every `P_i`
/// slots, each message `C_i` back-to-back frames stamped with the
/// channel's id and a `d_i`-slot relative deadline — the admitted
/// `{P_i, C_i, d_i}` contract on the wire.  The churn process's virtual
/// ticks map to simulated time through a configurable tick duration;
/// windows still open at run end emit until the final tick.
///
/// Emission order is deterministic: frames sort by injection time with the
/// admission order as tie-break, so a replay is reproducible run over run
/// exactly like the churn trace it came from.
#[derive(Debug, Clone)]
pub struct ChurnFrameSource {
    windows: Vec<ChannelWindow>,
    end_tick: u64,
    tick: Duration,
    start: SimTime,
    speed: LinkSpeed,
    payload_len: usize,
    /// Min-heap of `(injection time, window index, message seq)`.
    pending: BinaryHeap<Reverse<(SimTime, usize, u64)>>,
}

impl ChurnFrameSource {
    /// Replay the windows recorded in `report` (run the churn with
    /// [`ChurnConfig::with_windows`]), mapping one virtual churn tick to
    /// `tick` of simulated time.  Defaults: time zero start, Fast Ethernet
    /// slot timing, 1000-byte payloads.
    ///
    /// [`ChurnConfig::with_windows`]: crate::churn::ChurnConfig::with_windows
    pub fn new(report: &ChurnReport, tick: Duration) -> Self {
        let mut source = ChurnFrameSource {
            windows: report.windows.clone(),
            end_tick: report.end_tick,
            tick,
            start: SimTime::ZERO,
            speed: LinkSpeed::default(),
            payload_len: 1000,
            pending: BinaryHeap::new(),
        };
        source.reset();
        source
    }

    /// Override the injection time of the first tick.
    pub fn starting_at(mut self, start: SimTime) -> Self {
        self.start = start;
        self.reset();
        self
    }

    /// Override the link speed used to convert slot counts (periods and
    /// deadlines) into simulated time.
    pub fn link_speed(mut self, speed: LinkSpeed) -> Self {
        self.speed = speed;
        self
    }

    /// Override the payload length.
    pub fn payload_len(mut self, payload_len: usize) -> Self {
        self.payload_len = payload_len;
        self
    }

    /// Number of channel windows this source replays.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// When window `i` closes on the simulated clock (its release tick, or
    /// the end of the run for channels still up).
    fn closes_at(&self, window: &ChannelWindow) -> SimTime {
        let tick = window.released_at_tick.unwrap_or(self.end_tick);
        self.start + self.tick.saturating_mul(tick)
    }

    /// Seed the heap with every window's first message.
    fn reset(&mut self) {
        self.pending.clear();
        for (i, window) in self.windows.iter().enumerate() {
            let opens = self.start + self.tick.saturating_mul(window.admitted_at_tick);
            if opens < self.closes_at(window) {
                self.pending.push(Reverse((opens, i, 0)));
            }
        }
    }

    /// The `C_i` frames of message `seq` on window `i`, injected at `at`.
    fn message(&self, at: SimTime, i: usize) -> Vec<FrameInjection> {
        let window = &self.windows[i];
        let deadline = at + self.speed.slots_to_duration(window.spec.deadline);
        let eth = RtDataFrame {
            eth_src: MacAddr::for_node(window.source),
            eth_dst: MacAddr::for_node(window.destination),
            stamp: DeadlineStamp::new(deadline.as_nanos(), window.channel)
                .expect("admitted channel ids are nonzero"),
            src_port: 0x4000,
            dst_port: 0x4001,
            payload: vec![0u8; self.payload_len],
        }
        .into_ethernet()
        .expect("generated RT frames are well-formed");
        (0..window.spec.capacity.get())
            .map(|_| FrameInjection {
                node: window.source,
                eth: eth.clone(),
                at,
            })
            .collect()
    }
}

impl TrafficSource for ChurnFrameSource {
    fn next_batch(&mut self, horizon: SimTime) -> Vec<FrameInjection> {
        let mut out = Vec::new();
        while let Some(&Reverse((at, i, seq))) = self.pending.peek() {
            if at >= horizon {
                break;
            }
            self.pending.pop();
            out.extend(self.message(at, i));
            let next = at + self.speed.slots_to_duration(self.windows[i].spec.period);
            if next < self.closes_at(&self.windows[i]) {
                self.pending.push(Reverse((next, i, seq + 1)));
            }
        }
        out
    }

    fn is_exhausted(&self) -> bool {
        self.pending.is_empty()
    }
}

impl TrafficSource for ScenarioFrameSource {
    fn next_batch(&mut self, horizon: SimTime) -> Vec<FrameInjection> {
        let mut out = Vec::new();
        while self.emitted < self.total {
            let at = self.start + self.spacing.saturating_mul(self.emitted);
            if at >= horizon {
                break;
            }
            out.push(self.frame(self.emitted));
            self.emitted += 1;
        }
        out
    }

    fn is_exhausted(&self) -> bool {
        self.emitted >= self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_netsim::{SimConfig, Simulator};

    fn small_source(total: u64) -> ScenarioFrameSource {
        ScenarioFrameSource::new(
            FabricScenario::ring(4, 1, 1),
            total,
            Duration::from_micros(50),
        )
    }

    #[test]
    fn frames_cross_switches_and_are_time_ordered() {
        let mut source = small_source(32);
        let topology = FabricScenario::ring(4, 1, 1).topology();
        let frames = source.drain_all();
        assert_eq!(frames.len(), 32);
        let mut prev = SimTime::ZERO;
        for (k, f) in frames.iter().enumerate() {
            assert!(f.at >= prev, "frame {k} out of order");
            prev = f.at;
            let (src, dst) = small_source(32).pair(k as u64);
            assert_eq!(f.node, src);
            assert_ne!(topology.switch_of(src), topology.switch_of(dst));
        }
        assert!(source.is_exhausted());
        assert!(source.next_batch(SimTime::MAX).is_empty());
    }

    #[test]
    fn pull_mode_emits_the_same_sequence_as_drain_all() {
        let all = small_source(40).drain_all();
        let mut pulled = Vec::new();
        let mut source = small_source(40);
        let mut horizon = SimTime::from_micros(333);
        while !source.is_exhausted() {
            pulled.extend(source.next_batch(horizon));
            horizon += Duration::from_micros(333);
        }
        assert_eq!(all.len(), pulled.len());
        for (a, b) in all.iter().zip(&pulled) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.at, b.at);
            assert_eq!(a.eth.encode(), b.eth.encode());
        }
        // Respect the horizon strictly.
        let mut source = small_source(40);
        for f in source.next_batch(SimTime::from_micros(100)) {
            assert!(f.at < SimTime::from_micros(100));
        }
    }

    #[test]
    fn source_drives_a_simulation_end_to_end() {
        let scenario = FabricScenario::ring(4, 1, 1);
        let mut sim = Simulator::with_topology(SimConfig::default(), scenario.topology()).unwrap();
        let mut source = ScenarioFrameSource::new(scenario, 60, Duration::from_micros(100));
        sim.run_with_source(&mut source, Duration::from_millis(1))
            .unwrap();
        assert_eq!(sim.poll_deliveries().len(), 60);
        assert_eq!(sim.stats().rt_delivered, 60);
    }

    #[test]
    fn churn_windows_replay_on_the_wire() {
        use crate::churn::{ChurnConfig, ChurnProcess};
        use rt_core::{FabricChannelManager, MultiHopAdmission, MultiHopDps};
        use rt_types::{ShortestPathRouter, Topology};
        use std::sync::Arc;

        let topology = Topology::fat_tree(4).unwrap();
        let config = ChurnConfig::new(21)
            .windows(20, 60)
            .load(1.0, 20.0)
            .with_windows();
        let process = ChurnProcess::new(config, &topology).unwrap();
        let mut manager = FabricChannelManager::new(MultiHopAdmission::with_router(
            topology.clone(),
            MultiHopDps::Symmetric,
            Arc::new(ShortestPathRouter::new()),
        ));
        let report = process.run(&mut manager).unwrap();
        assert!(report.admitted > 0);

        let tick = Duration::from_millis(2);
        let mut source = ChurnFrameSource::new(&report, tick);
        assert_eq!(source.window_count(), report.admitted as usize);

        // The replay is deterministic and time-ordered, and every frame
        // falls inside its channel's admission window.
        let mut expected = 0u64;
        let mut probe = source.clone();
        let mut prev = SimTime::ZERO;
        while !probe.is_exhausted() {
            for f in probe.next_batch(SimTime::MAX) {
                assert!(f.at >= prev, "frames are time-ordered");
                prev = f.at;
                expected += 1;
            }
        }
        assert!(
            expected >= report.admitted,
            "every window emits at least once"
        );

        // Driving the simulator with the twin delivers the whole workload.
        let mut sim = Simulator::with_topology(SimConfig::default(), topology).unwrap();
        sim.run_with_source(&mut source, Duration::from_millis(1))
            .unwrap();
        assert!(source.is_exhausted());
        assert_eq!(sim.stats().rt_delivered, expected);
        let deliveries = sim.poll_deliveries();
        assert_eq!(deliveries.len() as u64, expected);
    }

    #[test]
    fn upfront_and_pull_driven_runs_deliver_identically() {
        let scenario = FabricScenario::torus(2, 2, 1, 1);
        let run_upfront = || {
            let mut sim =
                Simulator::with_topology(SimConfig::default(), scenario.topology()).unwrap();
            let mut source =
                ScenarioFrameSource::new(scenario.clone(), 50, Duration::from_micros(80));
            sim.inject_batch(source.drain_all()).unwrap();
            sim.run_to_idle();
            sim.poll_deliveries()
                .iter()
                .map(|d| (d.frame, d.receiver, d.delivered_at))
                .collect::<Vec<_>>()
        };
        let run_pulled = || {
            let mut sim =
                Simulator::with_topology(SimConfig::default(), scenario.topology()).unwrap();
            let mut source =
                ScenarioFrameSource::new(scenario.clone(), 50, Duration::from_micros(80));
            sim.run_with_source(&mut source, Duration::from_micros(500))
                .unwrap();
            sim.poll_deliveries()
                .iter()
                .map(|d| (d.frame, d.receiver, d.delivered_at))
                .collect::<Vec<_>>()
        };
        assert_eq!(run_upfront(), run_pulled());
    }
}
