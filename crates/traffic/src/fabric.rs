//! Multi-switch fabric scenarios: which switches exist, which nodes attach
//! where, and request patterns that exercise the trunks.
//!
//! The star [`crate::scenario::Scenario`] covers the paper's evaluation; the
//! fabric scenario covers its stated future work — trees of interconnected
//! switches — by building a line of access switches, each carrying its own
//! masters and slaves, and generating channel requests that deliberately
//! cross switch boundaries so the trunks become the shared resource.

use rt_core::RtChannelSpec;
use rt_types::{NodeId, Topology};

use crate::pattern::ChannelRequest;

/// A line-of-switches scenario: `switches` access switches connected in a
/// chain, each with `masters_per_switch` masters and `slaves_per_switch`
/// slaves attached.
///
/// Node ids are allocated switch-major, masters first: switch `s` owns ids
/// `s·k .. (s+1)·k` with `k = masters_per_switch + slaves_per_switch`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricScenario {
    switches: u32,
    masters_per_switch: u32,
    slaves_per_switch: u32,
}

impl FabricScenario {
    /// Build a line scenario.  Requires at least one switch and at least one
    /// node per switch.
    pub fn line(switches: u32, masters_per_switch: u32, slaves_per_switch: u32) -> Self {
        assert!(switches > 0, "a fabric needs at least one switch");
        assert!(
            masters_per_switch + slaves_per_switch > 0,
            "each switch needs at least one node"
        );
        FabricScenario {
            switches,
            masters_per_switch,
            slaves_per_switch,
        }
    }

    /// Number of switches.
    pub fn switch_count(&self) -> u32 {
        self.switches
    }

    /// Nodes per switch.
    pub fn nodes_per_switch(&self) -> u32 {
        self.masters_per_switch + self.slaves_per_switch
    }

    /// Total number of end nodes.
    pub fn node_count(&self) -> u32 {
        self.switches * self.nodes_per_switch()
    }

    /// The `i`-th master on switch `s` (wrapping over that switch's
    /// masters).
    pub fn master(&self, switch: u32, i: u64) -> NodeId {
        assert!(self.masters_per_switch > 0, "scenario has no masters");
        let s = switch % self.switches;
        NodeId::new(s * self.nodes_per_switch() + (i % u64::from(self.masters_per_switch)) as u32)
    }

    /// The `i`-th slave on switch `s` (wrapping over that switch's slaves).
    pub fn slave(&self, switch: u32, i: u64) -> NodeId {
        assert!(self.slaves_per_switch > 0, "scenario has no slaves");
        let s = switch % self.switches;
        NodeId::new(
            s * self.nodes_per_switch()
                + self.masters_per_switch
                + (i % u64::from(self.slaves_per_switch)) as u32,
        )
    }

    /// Build the [`Topology`]: a chain of switches with every node attached
    /// to its home switch.  The node-id allocation is exactly
    /// [`Topology::line`]'s (switch-major), which is what
    /// [`FabricScenario::master`] / [`FabricScenario::slave`] index into.
    pub fn topology(&self) -> Topology {
        Topology::line(self.switches, self.nodes_per_switch())
    }

    /// Generate `count` channel requests that all cross at least one trunk:
    /// request `i` goes from a master on switch `i mod S` to a slave on a
    /// *different* switch, rotating over the other switches so every trunk
    /// direction carries load.  With a single switch this degenerates to
    /// same-switch master→slave requests.
    pub fn cross_switch_requests(&self, count: u64, spec: RtChannelSpec) -> Vec<ChannelRequest> {
        let mut out = Vec::with_capacity(count as usize);
        for i in 0..count {
            let src_switch = (i % u64::from(self.switches)) as u32;
            let dst_switch = if self.switches == 1 {
                0
            } else {
                let offset = 1 + (i / u64::from(self.switches)) % u64::from(self.switches - 1);
                ((u64::from(src_switch) + offset) % u64::from(self.switches)) as u32
            };
            out.push(ChannelRequest {
                source: self.master(src_switch, i),
                destination: self.slave(dst_switch, i),
                spec,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_types::{HopLink, SwitchId};

    #[test]
    fn node_allocation_is_switch_major() {
        let f = FabricScenario::line(3, 2, 3);
        assert_eq!(f.node_count(), 15);
        assert_eq!(f.nodes_per_switch(), 5);
        assert_eq!(f.master(0, 0), NodeId::new(0));
        assert_eq!(f.master(0, 1), NodeId::new(1));
        assert_eq!(f.master(0, 2), NodeId::new(0)); // wraps
        assert_eq!(f.slave(0, 0), NodeId::new(2));
        assert_eq!(f.master(1, 0), NodeId::new(5));
        assert_eq!(f.slave(2, 2), NodeId::new(14));
    }

    #[test]
    fn topology_matches_the_scenario() {
        let f = FabricScenario::line(3, 1, 2);
        let t = f.topology();
        assert_eq!(t.switch_count(), 3);
        assert_eq!(t.node_count(), 9);
        assert!(t.is_connected());
        assert_eq!(t.trunks().count(), 2);
        assert_eq!(t.switch_of(NodeId::new(4)), Some(SwitchId::new(1)));
        // A cross-fabric route exists and uses the trunks.
        let route = t.route(f.master(0, 0), f.slave(2, 0)).unwrap();
        assert_eq!(route.len(), 4);
        assert!(matches!(route[1], HopLink::Trunk { .. }));
    }

    #[test]
    fn cross_switch_requests_always_cross_a_trunk() {
        let f = FabricScenario::line(4, 2, 2);
        let t = f.topology();
        let reqs = f.cross_switch_requests(64, RtChannelSpec::paper_default());
        assert_eq!(reqs.len(), 64);
        for r in &reqs {
            assert_ne!(
                t.switch_of(r.source).unwrap(),
                t.switch_of(r.destination).unwrap(),
                "request {r:?} does not cross switches"
            );
        }
        // Every switch appears as a source.
        for s in 0..4u32 {
            assert!(reqs
                .iter()
                .any(|r| t.switch_of(r.source) == Some(SwitchId::new(s))));
        }
    }

    #[test]
    fn single_switch_degenerates_to_local_requests() {
        let f = FabricScenario::line(1, 2, 2);
        let reqs = f.cross_switch_requests(8, RtChannelSpec::paper_default());
        let t = f.topology();
        for r in &reqs {
            assert_eq!(t.switch_of(r.source), t.switch_of(r.destination));
            assert_ne!(r.source, r.destination);
        }
    }
}
