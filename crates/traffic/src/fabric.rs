//! Multi-switch fabric scenarios: which switches exist, which nodes attach
//! where, and request patterns that exercise the trunks.
//!
//! The star [`crate::scenario::Scenario`] covers the paper's evaluation; the
//! fabric scenario covers its stated future work — interconnected switches —
//! in three shapes:
//!
//! * [`FabricScenario::line`] — a chain of access switches (a tree: unique
//!   paths, servable by every router),
//! * [`FabricScenario::ring`] — the line plus a closing trunk: the smallest
//!   *cyclic* mesh, needing shortest-path or ECMP routing,
//! * [`FabricScenario::leaf_spine`] — a 2-connected fat-tree-ish fabric:
//!   every access (leaf) switch is trunked to two node-less spine switches,
//!   so every leaf pair has two disjoint 2-trunk paths.
//!
//! Each access switch carries its own masters and slaves; the request
//! generators deliberately cross switch boundaries so the trunks become the
//! shared resource.

use rt_core::RtChannelSpec;
use rt_types::{NodeId, SwitchId, Topology};

use crate::pattern::ChannelRequest;

/// The trunk-graph shape of a [`FabricScenario`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricShape {
    /// A chain of access switches (tree).
    Line,
    /// A closed chain of access switches (cyclic mesh).
    Ring,
    /// Access leaves, each trunked to two node-less spines (2-connected).
    LeafSpine,
    /// A 2D torus of access switches (wrap-around grid): the
    /// thousand-node-scale shape — an `8 × 8` torus with 16 nodes per
    /// switch is 64 switches and 1024 end nodes.
    Torus {
        /// Grid rows.
        rows: u32,
        /// Grid columns.
        cols: u32,
    },
}

/// A multi-switch scenario: `switches` *access* switches in the given
/// [`FabricShape`], each with `masters_per_switch` masters and
/// `slaves_per_switch` slaves attached.
///
/// Node ids are allocated access-switch-major, masters first: access switch
/// `s` owns ids `s·k .. (s+1)·k` with `k = masters_per_switch +
/// slaves_per_switch`.  Leaf-spine spines carry no nodes and take the switch
/// ids after the leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricScenario {
    shape: FabricShape,
    switches: u32,
    masters_per_switch: u32,
    slaves_per_switch: u32,
}

impl FabricScenario {
    fn build(
        shape: FabricShape,
        switches: u32,
        masters_per_switch: u32,
        slaves_per_switch: u32,
    ) -> Self {
        assert!(switches > 0, "a fabric needs at least one switch");
        assert!(
            masters_per_switch + slaves_per_switch > 0,
            "each switch needs at least one node"
        );
        FabricScenario {
            shape,
            switches,
            masters_per_switch,
            slaves_per_switch,
        }
    }

    /// Build a line scenario.  Requires at least one switch and at least one
    /// node per switch.
    pub fn line(switches: u32, masters_per_switch: u32, slaves_per_switch: u32) -> Self {
        Self::build(
            FabricShape::Line,
            switches,
            masters_per_switch,
            slaves_per_switch,
        )
    }

    /// Build a ring scenario: the line plus a closing trunk (a cyclic mesh
    /// for three or more switches).
    pub fn ring(switches: u32, masters_per_switch: u32, slaves_per_switch: u32) -> Self {
        Self::build(
            FabricShape::Ring,
            switches,
            masters_per_switch,
            slaves_per_switch,
        )
    }

    /// Build a leaf-spine scenario: `leaves` access switches, each trunked
    /// to two node-less spine switches (ids `leaves` and `leaves + 1`).
    /// Every leaf pair has two disjoint 2-trunk paths — the fabric survives
    /// a spine loss and gives ECMP routing something to spread over.
    pub fn leaf_spine(leaves: u32, masters_per_switch: u32, slaves_per_switch: u32) -> Self {
        Self::build(
            FabricShape::LeafSpine,
            leaves,
            masters_per_switch,
            slaves_per_switch,
        )
    }

    /// Build a torus scenario: a `rows × cols` wrap-around grid of access
    /// switches ([`Topology::torus`]), each carrying its own masters and
    /// slaves.  `FabricScenario::torus(8, 8, 8, 8)` is the 64-switch /
    /// 1024-node fabric of the scaling benchmarks.
    pub fn torus(rows: u32, cols: u32, masters_per_switch: u32, slaves_per_switch: u32) -> Self {
        assert!(rows > 0 && cols > 0, "a torus needs at least one switch");
        Self::build(
            FabricShape::Torus { rows, cols },
            rows * cols,
            masters_per_switch,
            slaves_per_switch,
        )
    }

    /// The trunk-graph shape.
    pub fn shape(&self) -> FabricShape {
        self.shape
    }

    /// Number of *access* (node-bearing) switches.
    pub fn switch_count(&self) -> u32 {
        self.switches
    }

    /// Total number of switches, including leaf-spine spines.
    pub fn total_switch_count(&self) -> u32 {
        match self.shape {
            FabricShape::Line | FabricShape::Ring | FabricShape::Torus { .. } => self.switches,
            FabricShape::LeafSpine => self.switches + 2,
        }
    }

    /// Nodes per switch.
    pub fn nodes_per_switch(&self) -> u32 {
        self.masters_per_switch + self.slaves_per_switch
    }

    /// Total number of end nodes.
    pub fn node_count(&self) -> u32 {
        self.switches * self.nodes_per_switch()
    }

    /// The `i`-th master on switch `s` (wrapping over that switch's
    /// masters).
    pub fn master(&self, switch: u32, i: u64) -> NodeId {
        assert!(self.masters_per_switch > 0, "scenario has no masters");
        let s = switch % self.switches;
        NodeId::new(s * self.nodes_per_switch() + (i % u64::from(self.masters_per_switch)) as u32)
    }

    /// The `i`-th slave on switch `s` (wrapping over that switch's slaves).
    pub fn slave(&self, switch: u32, i: u64) -> NodeId {
        assert!(self.slaves_per_switch > 0, "scenario has no slaves");
        let s = switch % self.switches;
        NodeId::new(
            s * self.nodes_per_switch()
                + self.masters_per_switch
                + (i % u64::from(self.slaves_per_switch)) as u32,
        )
    }

    /// Build the [`Topology`] for the scenario's shape, with every node
    /// attached to its home access switch.  The node-id allocation is
    /// exactly [`Topology::line`]'s (access-switch-major), which is what
    /// [`FabricScenario::master`] / [`FabricScenario::slave`] index into.
    pub fn topology(&self) -> Topology {
        match self.shape {
            FabricShape::Line => Topology::line(self.switches, self.nodes_per_switch()),
            FabricShape::Ring => Topology::ring(self.switches, self.nodes_per_switch()),
            FabricShape::Torus { rows, cols } => {
                Topology::torus(rows, cols, self.nodes_per_switch())
            }
            FabricShape::LeafSpine => {
                let mut t = Topology::new();
                for leaf in 0..self.switches {
                    t.add_switch(SwitchId::new(leaf));
                }
                let spines = [
                    SwitchId::new(self.switches),
                    SwitchId::new(self.switches + 1),
                ];
                for spine in spines {
                    t.add_switch(spine);
                }
                for leaf in 0..self.switches {
                    for spine in spines {
                        t.add_trunk(SwitchId::new(leaf), spine)
                            .expect("leaf-spine trunks are fresh");
                    }
                }
                for leaf in 0..self.switches {
                    for k in 0..self.nodes_per_switch() {
                        t.attach_node(
                            NodeId::new(leaf * self.nodes_per_switch() + k),
                            SwitchId::new(leaf),
                        )
                        .expect("fresh node");
                    }
                }
                t
            }
        }
    }

    /// The `i`-th cross-switch `(master, slave)` pair: the source sits on
    /// access switch `i mod S`, the destination on a *different* switch,
    /// rotating over the others so every trunk direction carries load.
    /// With a single switch this degenerates to same-switch master→slave
    /// pairs.  This one walk feeds both the admission-side request
    /// generator ([`FabricScenario::cross_switch_requests`]) and the
    /// wire-side frame generator (`ScenarioFrameSource`), so the two
    /// workloads always correspond.
    pub fn cross_switch_pair(&self, i: u64) -> (NodeId, NodeId) {
        let src_switch = (i % u64::from(self.switches)) as u32;
        let dst_switch = if self.switches == 1 {
            0
        } else {
            let offset = 1 + (i / u64::from(self.switches)) % u64::from(self.switches - 1);
            ((u64::from(src_switch) + offset) % u64::from(self.switches)) as u32
        };
        (self.master(src_switch, i), self.slave(dst_switch, i))
    }

    /// Generate `count` channel requests over the
    /// [`FabricScenario::cross_switch_pair`] walk.
    pub fn cross_switch_requests(&self, count: u64, spec: RtChannelSpec) -> Vec<ChannelRequest> {
        (0..count)
            .map(|i| {
                let (source, destination) = self.cross_switch_pair(i);
                ChannelRequest {
                    source,
                    destination,
                    spec,
                }
            })
            .collect()
    }

    /// The `i`-th `(master, slave)` pair of the *hot-trunk* walk: every
    /// pair runs from a master on switch 0 to a slave on switch 1, so every
    /// requested channel competes for the slack of the same `sw0 <-> sw1`
    /// trunk.  This is the contention workload the two-phase reservation
    /// protocol is sized against: size `count` beyond the trunk's capacity
    /// and the later requests must be turned away with their partial
    /// reservations rolled back — under either control-plane placement,
    /// with the identical accepted prefix.
    pub fn hot_trunk_pair(&self, i: u64) -> (NodeId, NodeId) {
        assert!(self.switches >= 2, "a hot trunk needs two switches");
        (self.master(0, i), self.slave(1, i))
    }

    /// Generate `count` channel requests over the
    /// [`FabricScenario::hot_trunk_pair`] walk — all contending for the
    /// same trunk's slack.
    pub fn hot_trunk_requests(&self, count: u64, spec: RtChannelSpec) -> Vec<ChannelRequest> {
        (0..count)
            .map(|i| {
                let (source, destination) = self.hot_trunk_pair(i);
                ChannelRequest {
                    source,
                    destination,
                    spec,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_types::{HopLink, SwitchId};

    #[test]
    fn node_allocation_is_switch_major() {
        let f = FabricScenario::line(3, 2, 3);
        assert_eq!(f.node_count(), 15);
        assert_eq!(f.nodes_per_switch(), 5);
        assert_eq!(f.master(0, 0), NodeId::new(0));
        assert_eq!(f.master(0, 1), NodeId::new(1));
        assert_eq!(f.master(0, 2), NodeId::new(0)); // wraps
        assert_eq!(f.slave(0, 0), NodeId::new(2));
        assert_eq!(f.master(1, 0), NodeId::new(5));
        assert_eq!(f.slave(2, 2), NodeId::new(14));
    }

    #[test]
    fn topology_matches_the_scenario() {
        let f = FabricScenario::line(3, 1, 2);
        let t = f.topology();
        assert_eq!(t.switch_count(), 3);
        assert_eq!(t.node_count(), 9);
        assert!(t.is_connected());
        assert_eq!(t.trunks().count(), 2);
        assert_eq!(t.switch_of(NodeId::new(4)), Some(SwitchId::new(1)));
        // A cross-fabric route exists and uses the trunks.
        let route = t.route(f.master(0, 0), f.slave(2, 0)).unwrap();
        assert_eq!(route.len(), 4);
        assert!(matches!(route[1], HopLink::Trunk { .. }));
    }

    #[test]
    fn cross_switch_requests_always_cross_a_trunk() {
        let f = FabricScenario::line(4, 2, 2);
        let t = f.topology();
        let reqs = f.cross_switch_requests(64, RtChannelSpec::paper_default());
        assert_eq!(reqs.len(), 64);
        for r in &reqs {
            assert_ne!(
                t.switch_of(r.source).unwrap(),
                t.switch_of(r.destination).unwrap(),
                "request {r:?} does not cross switches"
            );
        }
        // Every switch appears as a source.
        for s in 0..4u32 {
            assert!(reqs
                .iter()
                .any(|r| t.switch_of(r.source) == Some(SwitchId::new(s))));
        }
    }

    #[test]
    fn hot_trunk_requests_all_contend_for_one_trunk() {
        let f = FabricScenario::ring(4, 2, 2);
        let t = f.topology();
        let reqs = f.hot_trunk_requests(16, RtChannelSpec::paper_default());
        assert_eq!(reqs.len(), 16);
        for r in &reqs {
            assert_eq!(t.switch_of(r.source), Some(SwitchId::new(0)));
            assert_eq!(t.switch_of(r.destination), Some(SwitchId::new(1)));
            // The shortest route is the direct sw0 -> sw1 trunk.
            let route = t.route(r.source, r.destination).unwrap();
            assert!(route.contains(&HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(1)
            }));
        }
    }

    #[test]
    fn ring_scenario_closes_the_cycle() {
        let f = FabricScenario::ring(4, 1, 1);
        assert_eq!(f.shape(), FabricShape::Ring);
        let t = f.topology();
        assert_eq!(t.switch_count(), 4);
        assert_eq!(f.total_switch_count(), 4);
        assert_eq!(t.trunk_count(), 4);
        assert!(t.is_connected());
        assert!(!t.is_tree());
        // Same node allocation as the line.
        assert_eq!(f.master(3, 0), NodeId::new(6));
        assert_eq!(f.slave(3, 0), NodeId::new(7));
        // The shortest route between adjacent-via-closing-trunk switches is
        // a single trunk hop.
        let route = t.route(f.master(0, 0), f.slave(3, 0)).unwrap();
        assert_eq!(route.len(), 3);
    }

    #[test]
    fn leaf_spine_scenario_is_two_connected() {
        let f = FabricScenario::leaf_spine(3, 1, 1);
        assert_eq!(f.shape(), FabricShape::LeafSpine);
        assert_eq!(f.switch_count(), 3);
        assert_eq!(f.total_switch_count(), 5);
        let t = f.topology();
        assert_eq!(t.switch_count(), 5);
        assert_eq!(t.trunk_count(), 6, "every leaf reaches both spines");
        assert!(t.is_connected());
        assert!(!t.is_tree());
        // Spines carry no nodes.
        assert_eq!(t.nodes_of(SwitchId::new(3)).count(), 0);
        assert_eq!(t.nodes_of(SwitchId::new(4)).count(), 0);
        assert_eq!(t.node_count(), 6);
        // Leaf-to-leaf routes cross exactly one spine (2 trunk hops).
        let route = t.route(f.master(0, 0), f.slave(2, 0)).unwrap();
        assert_eq!(route.len(), 4);
        // Requests still cross access switches.
        let reqs = f.cross_switch_requests(12, RtChannelSpec::paper_default());
        for r in &reqs {
            assert_ne!(t.switch_of(r.source), t.switch_of(r.destination));
        }
    }

    #[test]
    fn torus_scenario_scales_to_a_thousand_nodes() {
        let f = FabricScenario::torus(8, 8, 8, 8);
        assert_eq!(f.shape(), FabricShape::Torus { rows: 8, cols: 8 });
        assert_eq!(f.switch_count(), 64);
        assert_eq!(f.total_switch_count(), 64);
        assert_eq!(f.node_count(), 1024);
        let t = f.topology();
        assert_eq!(t.switch_count(), 64);
        assert_eq!(t.node_count(), 1024);
        assert!(t.is_connected());
        assert!(!t.is_tree());
        // Each switch has 4 trunk neighbours on an 8x8 torus.
        assert_eq!(t.trunk_count(), 2 * 64);
        // Node allocation stays switch-major, so master()/slave() index
        // straight into the topology.
        assert_eq!(t.switch_of(f.master(63, 0)), Some(SwitchId::new(63)));
        assert_eq!(t.switch_of(f.slave(0, 0)), Some(SwitchId::new(0)));
        // Cross-switch requests cross switches, as on every other shape.
        let reqs = f.cross_switch_requests(128, RtChannelSpec::paper_default());
        for r in &reqs {
            assert_ne!(t.switch_of(r.source), t.switch_of(r.destination));
        }
    }

    #[test]
    fn single_switch_degenerates_to_local_requests() {
        let f = FabricScenario::line(1, 2, 2);
        let reqs = f.cross_switch_requests(8, RtChannelSpec::paper_default());
        let t = f.topology();
        for r in &reqs {
            assert_eq!(t.switch_of(r.source), t.switch_of(r.destination));
            assert_ne!(r.source, r.destination);
        }
    }
}
