//! Fail-over scenarios: a [`FabricScenario`] plus a deterministic trunk to
//! cut (and the [`rt_netsim::FaultScript`] that cuts it), so tests, the
//! property harness and the survivability experiment all break the *same*
//! link in the *same* way.
//!
//! The two stock shapes mirror the redundancy spectrum:
//!
//! * [`FailoverScenario::ring_trunk_cut`] — cut the ring's closing trunk:
//!   the fabric degrades to a line, every affected channel has exactly one
//!   surviving route (the long way around),
//! * [`FailoverScenario::torus_link_cut`] — cut one grid trunk of a torus:
//!   a richly redundant fabric where k-shortest re-routing has many
//!   detours to choose from.

use rt_netsim::FaultScript;
use rt_types::{SimTime, SwitchId};

use crate::fabric::FabricScenario;

/// A fabric scenario with one scripted trunk cut.
///
/// The cut trunk is chosen so the scenario's cross-switch workload is
/// guaranteed to have channels crossing it (both shapes cut a trunk
/// adjacent to switch 0, where the walk of
/// [`FabricScenario::cross_switch_pair`] always places sources).
#[derive(Debug, Clone)]
pub struct FailoverScenario {
    fabric: FabricScenario,
    cut: (SwitchId, SwitchId),
}

impl FailoverScenario {
    /// A ring of `switches` access switches where the *closing* trunk
    /// (`switches − 1 ↔ 0`) is cut.  Requires at least three switches —
    /// smaller rings have no closing trunk to lose.
    pub fn ring_trunk_cut(switches: u32, masters_per_switch: u32, slaves_per_switch: u32) -> Self {
        assert!(
            switches >= 3,
            "a ring needs >= 3 switches to have a closing trunk"
        );
        FailoverScenario {
            fabric: FabricScenario::ring(switches, masters_per_switch, slaves_per_switch),
            cut: (SwitchId::new(switches - 1), SwitchId::new(0)),
        }
    }

    /// A `rows × cols` torus where the trunk between switch `(0,0)` and its
    /// right neighbour `(0,1)` is cut.  Requires at least two columns.
    pub fn torus_link_cut(
        rows: u32,
        cols: u32,
        masters_per_switch: u32,
        slaves_per_switch: u32,
    ) -> Self {
        assert!(cols >= 2, "a torus needs >= 2 columns to have a row trunk");
        FailoverScenario {
            fabric: FabricScenario::torus(rows, cols, masters_per_switch, slaves_per_switch),
            cut: (SwitchId::new(0), SwitchId::new(1)),
        }
    }

    /// The underlying fabric scenario (topology, node allocation, request
    /// walks).
    pub fn fabric(&self) -> &FabricScenario {
        &self.fabric
    }

    /// The trunk this scenario cuts.
    pub fn cut_trunk(&self) -> (SwitchId, SwitchId) {
        self.cut
    }

    /// The cut as a single-event [`FaultScript`] firing at `at`, for
    /// simulator-level workloads.
    pub fn fault_script(&self, at: SimTime) -> FaultScript {
        FaultScript::new().fail_at(at, self.cut.0, self.cut.1)
    }

    /// A cut-then-repair script: fail at `at`, splice back at `repair_at`.
    pub fn fault_and_repair_script(&self, at: SimTime, repair_at: SimTime) -> FaultScript {
        self.fault_script(at)
            .repair_at(repair_at, self.cut.0, self.cut.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_netsim::LinkFault;

    #[test]
    fn ring_cut_targets_the_closing_trunk() {
        let s = FailoverScenario::ring_trunk_cut(4, 1, 1);
        assert_eq!(s.cut_trunk(), (SwitchId::new(3), SwitchId::new(0)));
        let topology = s.fabric().topology();
        assert!(topology.has_trunk(SwitchId::new(3), SwitchId::new(0)));
        // The scripted cut degrades the ring to a (still connected) line.
        let mut degraded = topology.clone();
        degraded
            .fail_trunk(SwitchId::new(3), SwitchId::new(0))
            .unwrap();
        assert!(degraded.is_connected());
        assert!(degraded.is_tree());
    }

    #[test]
    fn torus_cut_keeps_the_fabric_redundant() {
        let s = FailoverScenario::torus_link_cut(3, 3, 1, 1);
        assert_eq!(s.cut_trunk(), (SwitchId::new(0), SwitchId::new(1)));
        let mut degraded = s.fabric().topology();
        degraded
            .fail_trunk(SwitchId::new(0), SwitchId::new(1))
            .unwrap();
        assert!(degraded.is_connected());
        assert!(!degraded.is_tree(), "a torus survives one cut redundantly");
    }

    #[test]
    fn scripts_carry_the_cut_and_the_repair() {
        let s = FailoverScenario::ring_trunk_cut(3, 1, 1);
        let script = s.fault_and_repair_script(SimTime::from_millis(1), SimTime::from_millis(2));
        assert_eq!(script.len(), 2);
        assert_eq!(
            script.events()[0],
            (
                SimTime::from_millis(1),
                LinkFault::Fail {
                    from: SwitchId::new(2),
                    to: SwitchId::new(0)
                }
            )
        );
        assert_eq!(
            script.events()[1],
            (
                SimTime::from_millis(2),
                LinkFault::Repair {
                    from: SwitchId::new(2),
                    to: SwitchId::new(0)
                }
            )
        );
    }
}
