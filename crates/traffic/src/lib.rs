//! # rt-traffic
//!
//! Workload and scenario generation for the experiments:
//!
//! * [`scenario`] — network scenarios (which nodes exist, which are masters
//!   and which are slaves), including the paper's 10-master / 50-slave
//!   configuration,
//! * [`fabric`] — multi-switch fabric scenarios (lines, rings and
//!   2-connected leaf-spine fabrics of access switches with masters and
//!   slaves on each) and request patterns that exercise the trunks,
//! * [`pattern`] — channel-request patterns: the paper's master→slave
//!   pattern plus uniform and hotspot patterns used by the ablations, and a
//!   generator of heterogeneous channel specs,
//! * [`background`] — best-effort background traffic generators (Poisson and
//!   bursty on/off) for the coexistence experiment,
//! * [`rng`] — seeded, reproducible random number helpers.
//!
//! Everything is deterministic given a seed, so every experiment run is
//! exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod background;
pub mod fabric;
pub mod pattern;
pub mod rng;
pub mod scenario;

pub use background::{BackgroundTraffic, BurstyConfig, PoissonConfig};
pub use fabric::{FabricScenario, FabricShape};
pub use pattern::{ChannelRequest, HeterogeneousSpecs, RequestPattern};
pub use scenario::Scenario;
