//! # rt-traffic
//!
//! Workload and scenario generation for the experiments:
//!
//! * [`scenario`] — network scenarios (which nodes exist, which are masters
//!   and which are slaves), including the paper's 10-master / 50-slave
//!   configuration,
//! * [`fabric`] — multi-switch fabric scenarios (lines, rings, 2-connected
//!   leaf-spine fabrics and thousand-node tori of access switches with
//!   masters and slaves on each) and request patterns that exercise the
//!   trunks,
//! * [`source`] — wire-level frame generation: deadline-stamped cross-switch
//!   workloads as bulk batches or as a pull-driven
//!   [`rt_netsim::TrafficSource`],
//! * [`pattern`] — channel-request patterns: the paper's master→slave
//!   pattern plus uniform and hotspot patterns used by the ablations, and a
//!   generator of heterogeneous channel specs,
//! * [`background`] — best-effort background traffic generators (Poisson and
//!   bursty on/off) for the coexistence experiment,
//! * [`failover`] — fail-over scenarios: a fabric scenario plus the
//!   deterministic trunk cut (ring closing trunk, torus grid trunk) and the
//!   fault script that performs it,
//! * [`churn`] — long-running admission churn: a seeded arrival/departure
//!   process that drives a channel manager through millions of cumulative
//!   establish/release cycles with warm-up and measurement windows, and can
//!   interleave scripted trunk cut/repair events,
//! * [`rng`] — seeded, reproducible random number helpers.
//!
//! Everything is deterministic given a seed, so every experiment run is
//! exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod background;
pub mod churn;
pub mod fabric;
pub mod failover;
pub mod pattern;
pub mod rng;
pub mod scenario;
pub mod source;

pub use background::{BackgroundTraffic, BurstyConfig, PoissonConfig};
pub use churn::{
    ChannelWindow, ChurnConfig, ChurnEvent, ChurnFault, ChurnFaultKind, ChurnProcess, ChurnReport,
};
pub use fabric::{FabricScenario, FabricShape};
pub use failover::FailoverScenario;
pub use pattern::{ChannelRequest, HeterogeneousSpecs, RequestPattern};
pub use scenario::Scenario;
pub use source::{ChurnFrameSource, ScenarioFrameSource};
