//! Best-effort background traffic generators for the coexistence experiment.
//!
//! The paper's network carries ordinary TCP/IP traffic alongside the RT
//! channels, queued FCFS behind all real-time frames.  For the coexistence
//! experiment we do not need a full TCP implementation — what matters for
//! the real-time guarantees is *how much* best-effort load is offered and in
//! what arrival pattern — so two generators are provided: Poisson arrivals
//! and a bursty on/off source.

use rt_types::{Duration, NodeId, SimTime};

use crate::rng::SeededRng;
use crate::scenario::Scenario;

/// One best-effort frame to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackgroundFrame {
    /// Sending node.
    pub source: NodeId,
    /// Receiving node.
    pub destination: NodeId,
    /// UDP payload size in bytes.
    pub payload_len: usize,
    /// Injection time.
    pub at: SimTime,
}

/// Configuration of a Poisson background source.
#[derive(Debug, Clone, Copy)]
pub struct PoissonConfig {
    /// Mean inter-arrival time between frames.
    pub mean_interarrival: Duration,
    /// Payload size of every frame.
    pub payload_len: usize,
}

/// Configuration of a bursty on/off background source.
#[derive(Debug, Clone, Copy)]
pub struct BurstyConfig {
    /// Number of frames per burst.
    pub burst_len: u32,
    /// Gap between frames inside a burst.
    pub intra_burst_gap: Duration,
    /// Mean gap between bursts (exponentially distributed).
    pub mean_burst_gap: Duration,
    /// Payload size of every frame.
    pub payload_len: usize,
}

/// A generator of best-effort background traffic over a scenario.
#[derive(Debug, Clone)]
pub struct BackgroundTraffic {
    rng: SeededRng,
}

impl BackgroundTraffic {
    /// Create a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        BackgroundTraffic {
            rng: SeededRng::new(seed),
        }
    }

    fn random_pair(&mut self, scenario: &Scenario) -> (NodeId, NodeId) {
        let n = u64::from(scenario.node_count());
        let src = self.rng.below(n);
        let mut dst = self.rng.below(n);
        while dst == src {
            dst = self.rng.below(n);
        }
        (NodeId::new(src as u32), NodeId::new(dst as u32))
    }

    /// Generate Poisson traffic between random node pairs over
    /// `[start, start + window)`.
    pub fn poisson(
        &mut self,
        scenario: &Scenario,
        config: PoissonConfig,
        start: SimTime,
        window: Duration,
    ) -> Vec<BackgroundFrame> {
        let mut frames = Vec::new();
        let end = start + window;
        let mut t = start;
        loop {
            let gap = self
                .rng
                .exponential(config.mean_interarrival.as_nanos() as f64)
                .round() as u64;
            t += Duration::from_nanos(gap.max(1));
            if t >= end {
                break;
            }
            let (source, destination) = self.random_pair(scenario);
            frames.push(BackgroundFrame {
                source,
                destination,
                payload_len: config.payload_len,
                at: t,
            });
        }
        frames
    }

    /// Generate bursty on/off traffic from one fixed source to one fixed
    /// destination over `[start, start + window)`.
    pub fn bursty(
        &mut self,
        source: NodeId,
        destination: NodeId,
        config: BurstyConfig,
        start: SimTime,
        window: Duration,
    ) -> Vec<BackgroundFrame> {
        let mut frames = Vec::new();
        let end = start + window;
        let mut t = start;
        while t < end {
            for k in 0..config.burst_len {
                let at = t + config.intra_burst_gap.saturating_mul(u64::from(k));
                if at >= end {
                    break;
                }
                frames.push(BackgroundFrame {
                    source,
                    destination,
                    payload_len: config.payload_len,
                    at,
                });
            }
            let gap = self
                .rng
                .exponential(config.mean_burst_gap.as_nanos() as f64)
                .round() as u64;
            t = t
                + config
                    .intra_burst_gap
                    .saturating_mul(u64::from(config.burst_len))
                + Duration::from_nanos(gap.max(1));
        }
        frames
    }

    /// The total offered load (payload bytes per second) of a frame list
    /// over a window — useful for labelling experiment axes.
    pub fn offered_load_bps(frames: &[BackgroundFrame], window: Duration) -> f64 {
        if window.as_nanos() == 0 {
            return 0.0;
        }
        let bytes: u64 = frames.iter().map(|f| f.payload_len as u64).sum();
        (bytes * 8) as f64 / window.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario::new(2, 4)
    }

    #[test]
    fn poisson_traffic_is_reproducible_and_in_window() {
        let config = PoissonConfig {
            mean_interarrival: Duration::from_micros(100),
            payload_len: 800,
        };
        let start = SimTime::from_millis(1);
        let window = Duration::from_millis(20);
        let a = BackgroundTraffic::new(3).poisson(&scenario(), config, start, window);
        let b = BackgroundTraffic::new(3).poisson(&scenario(), config, start, window);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for f in &a {
            assert!(f.at >= start && f.at < start + window);
            assert_ne!(f.source, f.destination);
            assert!(f.source.get() < 6 && f.destination.get() < 6);
        }
        // Roughly window/mean frames expected; allow a wide margin.
        let expected = 200.0;
        assert!((a.len() as f64) > expected * 0.6 && (a.len() as f64) < expected * 1.4);
    }

    #[test]
    fn poisson_arrival_times_are_increasing() {
        let config = PoissonConfig {
            mean_interarrival: Duration::from_micros(50),
            payload_len: 100,
        };
        let frames = BackgroundTraffic::new(8).poisson(
            &scenario(),
            config,
            SimTime::ZERO,
            Duration::from_millis(5),
        );
        assert!(frames.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn bursty_traffic_shape() {
        let config = BurstyConfig {
            burst_len: 5,
            intra_burst_gap: Duration::from_micros(10),
            mean_burst_gap: Duration::from_millis(1),
            payload_len: 1400,
        };
        let frames = BackgroundTraffic::new(4).bursty(
            NodeId::new(0),
            NodeId::new(3),
            config,
            SimTime::ZERO,
            Duration::from_millis(10),
        );
        assert!(!frames.is_empty());
        assert!(frames.iter().all(|f| f.source == NodeId::new(0)));
        assert!(frames.iter().all(|f| f.destination == NodeId::new(3)));
        assert!(frames.iter().all(|f| f.at < SimTime::from_millis(10)));
        // Bursts of 5: at least one run of 5 frames spaced by 10 us.
        let tight_gaps = frames
            .windows(2)
            .filter(|w| w[1].at.saturating_duration_since(w[0].at) == Duration::from_micros(10))
            .count();
        assert!(tight_gaps >= 4);
    }

    #[test]
    fn offered_load_computation() {
        let frames = vec![
            BackgroundFrame {
                source: NodeId::new(0),
                destination: NodeId::new(1),
                payload_len: 1000,
                at: SimTime::ZERO,
            };
            10
        ];
        let load = BackgroundTraffic::offered_load_bps(&frames, Duration::from_secs(1));
        assert!((load - 80_000.0).abs() < 1e-6);
        assert_eq!(
            BackgroundTraffic::offered_load_bps(&frames, Duration::ZERO),
            0.0
        );
    }
}
