//! The node-side RT layer (Figure 18.2): the thin layer between the TCP/IP
//! suite and the Ethernet MAC that turns ordinary UDP datagrams into
//! deadline-scheduled real-time traffic.
//!
//! Responsibilities, following §18.2:
//!
//! * **channel establishment** — build RequestFrames for the applications'
//!   channel requests, match ResponseFrames back to the outstanding requests
//!   (via the source-node-unique connection request ID) and keep the table
//!   of established channels (both outgoing and incoming),
//! * **data path, sending** — for every outgoing real-time datagram compute
//!   the absolute deadline (generation time + `d_i` converted to wall-clock
//!   time + `T_latency`, the Eq. 18.1 bound), write it together with the
//!   channel ID over the IP addresses, set ToS = 255, and hand the frame to
//!   the deadline-sorted NIC queue,
//! * **data path, receiving** — recognise deadline-stamped frames, restore
//!   the original IP header fields from the channel table and deliver the
//!   payload to the application,
//! * **tear-down** — emit TeardownFrames so the switch can release reserved
//!   capacity (an extension beyond the paper).

use std::collections::HashMap;

use rt_frames::codec::TeardownFrame;
use rt_frames::rt_data::{DeadlineStamp, RtDataFrame};
use rt_frames::rt_response::ResponseVerdict;
use rt_frames::{EthernetFrame, RequestFrame, ResponseFrame};
use rt_types::constants::ETHERTYPE_RT_CONTROL;
use rt_types::{
    ChannelId, ConnectionRequestId, Duration, LinkSpeed, MacAddr, NodeId, RtError, RtResult,
    SimTime,
};

use crate::channel::{Endpoint, RtChannelSpec};
use crate::protocol::ChannelRequest;

/// Static configuration of an RT layer instance.
#[derive(Debug, Clone, Copy)]
pub struct RtLayerConfig {
    /// Link speed, used to convert slot-denominated deadlines to wall-clock
    /// time when stamping frames.
    pub link_speed: LinkSpeed,
    /// The constant latency term of Eq. 18.1 added on top of `d_i` when
    /// computing the absolute delivery deadline of a frame.
    pub t_latency: Duration,
    /// Maximum number of incoming channels this node accepts as a
    /// destination (`None` = unlimited).
    pub max_incoming_channels: Option<usize>,
}

impl Default for RtLayerConfig {
    fn default() -> Self {
        RtLayerConfig {
            link_speed: LinkSpeed::FAST_ETHERNET,
            t_latency: Duration::ZERO,
            max_incoming_channels: None,
        }
    }
}

/// An outgoing (source-side) established channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxChannel {
    /// The network-unique channel id.
    pub id: ChannelId,
    /// The destination endpoint.
    pub destination: Endpoint,
    /// The traffic contract.
    pub spec: RtChannelSpec,
}

/// An incoming (destination-side) established channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxChannel {
    /// The network-unique channel id.
    pub id: ChannelId,
    /// The source endpoint.
    pub source: Endpoint,
    /// The traffic contract.
    pub spec: RtChannelSpec,
}

/// The outcome of a ResponseFrame as seen by the requesting node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstablishmentOutcome {
    /// The channel is established and ready for data.
    Established(TxChannel),
    /// The request was rejected (by the switch or by the destination).
    Rejected {
        /// The request that was answered.
        request_id: ConnectionRequestId,
    },
}

/// A real-time message delivered to the application on the receiving side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceivedMessage {
    /// The channel it arrived on.
    pub channel: ChannelId,
    /// The UDP payload.
    pub payload: Vec<u8>,
    /// The absolute deadline the frame carried.
    pub absolute_deadline: SimTime,
    /// The restored original source IP (from the channel table).
    pub source: Endpoint,
}

/// The node-side RT layer.
#[derive(Debug)]
pub struct RtLayer {
    node: NodeId,
    endpoint: Endpoint,
    config: RtLayerConfig,
    next_request_id: u8,
    outstanding: HashMap<u8, (NodeId, RtChannelSpec)>,
    tx_channels: HashMap<u16, TxChannel>,
    rx_channels: HashMap<u16, RxChannel>,
    /// Per-channel `T_latency` overrides for channels whose path is longer
    /// than the star's two hops (multi-switch fabrics).
    tx_latency_overrides: HashMap<u16, Duration>,
    frames_sent: u64,
    frames_received: u64,
}

impl RtLayer {
    /// Create the RT layer of `node`.
    pub fn new(node: NodeId, config: RtLayerConfig) -> Self {
        RtLayer {
            node,
            endpoint: Endpoint::for_node(node),
            config,
            next_request_id: 0,
            outstanding: HashMap::new(),
            tx_channels: HashMap::new(),
            rx_channels: HashMap::new(),
            tx_latency_overrides: HashMap::new(),
            frames_sent: 0,
            frames_received: 0,
        }
    }

    /// The node this layer belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The configuration in use.
    pub fn config(&self) -> RtLayerConfig {
        self.config
    }

    /// Established outgoing channels.
    pub fn tx_channels(&self) -> impl Iterator<Item = &TxChannel> {
        self.tx_channels.values()
    }

    /// Established incoming channels.
    pub fn rx_channels(&self) -> impl Iterator<Item = &RxChannel> {
        self.rx_channels.values()
    }

    /// Look up an outgoing channel.
    pub fn tx_channel(&self, id: ChannelId) -> Option<&TxChannel> {
        self.tx_channels.get(&id.get())
    }

    /// Number of requests still waiting for a response.
    pub fn outstanding_requests(&self) -> usize {
        self.outstanding.len()
    }

    /// Data frames sent / received so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.frames_sent, self.frames_received)
    }

    // --- establishment: source side ----------------------------------------

    /// Start establishing a channel to `destination`.  Returns the request id
    /// and the RequestFrame wrapped in Ethernet, addressed to the switch.
    pub fn request_channel(
        &mut self,
        destination: NodeId,
        spec: RtChannelSpec,
    ) -> RtResult<(ConnectionRequestId, EthernetFrame)> {
        spec.validate()?;
        if destination == self.node {
            return Err(RtError::InvalidChannelSpec(
                "cannot open an RT channel to oneself".into(),
            ));
        }
        if self.outstanding.len() >= 256 {
            return Err(RtError::RequestIdsExhausted);
        }
        // Find a free request id (8-bit, source-node unique).
        let mut id = self.next_request_id;
        while self.outstanding.contains_key(&id) {
            id = id.wrapping_add(1);
        }
        self.next_request_id = id.wrapping_add(1);
        let request_id = ConnectionRequestId::new(id);
        self.outstanding.insert(id, (destination, spec));

        let frame = ChannelRequest {
            source: self.node,
            destination,
            spec,
            request_id,
        }
        .to_frame();
        let eth = frame.into_ethernet(self.endpoint.mac, MacAddr::for_switch())?;
        Ok((request_id, eth))
    }

    /// Handle a ResponseFrame forwarded by the switch.
    pub fn handle_response(&mut self, frame: &ResponseFrame) -> RtResult<EstablishmentOutcome> {
        let key = frame.connection_request_id.get();
        let (destination, spec) = self.outstanding.remove(&key).ok_or_else(|| {
            RtError::UnknownRequest(format!(
                "node {} has no outstanding request {}",
                self.node, frame.connection_request_id
            ))
        })?;
        match (frame.verdict, frame.rt_channel_id) {
            (ResponseVerdict::Accepted, Some(id)) => {
                let tx = TxChannel {
                    id,
                    destination: Endpoint::for_node(destination),
                    spec,
                };
                self.tx_channels.insert(id.get(), tx);
                Ok(EstablishmentOutcome::Established(tx))
            }
            (ResponseVerdict::Accepted, None) => Err(RtError::ProtocolViolation(
                "accepting response carries no channel id".into(),
            )),
            (ResponseVerdict::Rejected, _) => Ok(EstablishmentOutcome::Rejected {
                request_id: frame.connection_request_id,
            }),
        }
    }

    // --- establishment: destination side ------------------------------------

    /// Handle a RequestFrame the switch forwarded to this node as the
    /// destination of a new channel.  Returns the ResponseFrame (wrapped in
    /// Ethernet, addressed to the switch) and whether the channel was
    /// accepted.
    pub fn handle_forwarded_request(
        &mut self,
        frame: &RequestFrame,
    ) -> RtResult<(EthernetFrame, bool)> {
        let request = ChannelRequest::from_frame(frame)?;
        let channel_id = frame.rt_channel_id.ok_or_else(|| {
            RtError::ProtocolViolation("forwarded request carries no RT channel id".into())
        })?;
        if request.destination != self.node {
            return Err(RtError::ProtocolViolation(format!(
                "request for {} delivered to {}",
                request.destination, self.node
            )));
        }
        let accept = self
            .config
            .max_incoming_channels
            .is_none_or(|max| self.rx_channels.len() < max);
        if accept {
            self.rx_channels.insert(
                channel_id.get(),
                RxChannel {
                    id: channel_id,
                    source: Endpoint::for_node(request.source),
                    spec: request.spec,
                },
            );
        }
        let response = ResponseFrame {
            rt_channel_id: Some(channel_id),
            switch_mac: MacAddr::for_switch(),
            verdict: if accept {
                ResponseVerdict::Accepted
            } else {
                ResponseVerdict::Rejected
            },
            connection_request_id: request.request_id,
        };
        let eth = response.into_ethernet(self.endpoint.mac, MacAddr::for_switch())?;
        Ok((eth, accept))
    }

    // --- data path -----------------------------------------------------------

    /// The absolute delivery deadline (Eq. 18.1) of a message generated at
    /// `generation_time` on a channel with contract `spec`, using the
    /// layer-wide `T_latency` constant (the two-hop star path).  For an
    /// *established* channel prefer [`RtLayer::absolute_deadline_for`],
    /// which honours per-channel multi-hop overrides.
    pub fn absolute_deadline(&self, spec: &RtChannelSpec, generation_time: SimTime) -> SimTime {
        self.stamp_deadline(self.config.t_latency, spec, generation_time)
    }

    /// Override the constant `T_latency` term for one established outgoing
    /// channel.  On a multi-switch fabric the constant depends on the hop
    /// count of the channel's route, which only the managing switch knows;
    /// the network glue calls this once establishment completes.
    pub fn set_channel_t_latency(&mut self, channel: ChannelId, t_latency: Duration) {
        self.tx_latency_overrides.insert(channel.get(), t_latency);
    }

    /// The absolute delivery deadline of a message on an established
    /// channel, honouring any per-channel `T_latency` override — this is
    /// the stamp [`RtLayer::prepare_data`] writes on the wire.
    pub fn absolute_deadline_for(
        &self,
        channel: ChannelId,
        spec: &RtChannelSpec,
        generation_time: SimTime,
    ) -> SimTime {
        let t_latency = self
            .tx_latency_overrides
            .get(&channel.get())
            .copied()
            .unwrap_or(self.config.t_latency);
        self.stamp_deadline(t_latency, spec, generation_time)
    }

    /// `generation_time + d_i·slot + t_latency` — the single place the
    /// Eq. 18.1 stamp is computed.
    fn stamp_deadline(
        &self,
        t_latency: Duration,
        spec: &RtChannelSpec,
        generation_time: SimTime,
    ) -> SimTime {
        let d = self.config.link_speed.slots_to_duration(spec.deadline);
        generation_time + d + t_latency
    }

    /// Prepare an outgoing real-time datagram on an established channel:
    /// stamp the deadline and channel id into the IP header (§18.2.2) and
    /// wrap it for transmission.
    pub fn prepare_data(
        &mut self,
        channel: ChannelId,
        payload: Vec<u8>,
        generation_time: SimTime,
    ) -> RtResult<EthernetFrame> {
        let tx = self
            .tx_channels
            .get(&channel.get())
            .ok_or(RtError::UnknownChannel(channel))?;
        let deadline = self.absolute_deadline_for(channel, &tx.spec, generation_time);
        let frame = RtDataFrame {
            eth_src: self.endpoint.mac,
            eth_dst: tx.destination.mac,
            stamp: DeadlineStamp::new(deadline.as_nanos(), channel)?,
            src_port: 0x4000 | (self.node.get() & 0x3fff) as u16,
            dst_port: 0x4000,
            payload,
        };
        self.frames_sent += 1;
        frame.into_ethernet()
    }

    /// Handle an incoming deadline-stamped data frame: restore the original
    /// addressing from the channel table and deliver the payload.
    pub fn handle_data(&mut self, frame: &RtDataFrame) -> RtResult<ReceivedMessage> {
        let rx = self
            .rx_channels
            .get(&frame.stamp.channel.get())
            .ok_or(RtError::UnknownChannel(frame.stamp.channel))?;
        self.frames_received += 1;
        Ok(ReceivedMessage {
            channel: rx.id,
            payload: frame.payload.clone(),
            absolute_deadline: SimTime::from_nanos(frame.stamp.absolute_deadline),
            source: rx.source,
        })
    }

    // --- tear-down -----------------------------------------------------------

    /// Build a TeardownFrame for an established outgoing channel and forget
    /// it locally.
    pub fn teardown_channel(&mut self, channel: ChannelId) -> RtResult<EthernetFrame> {
        if self.tx_channels.remove(&channel.get()).is_none() {
            return Err(RtError::UnknownChannel(channel));
        }
        self.tx_latency_overrides.remove(&channel.get());
        let frame = TeardownFrame {
            rt_channel_id: channel,
        };
        EthernetFrame::new(
            MacAddr::for_switch(),
            self.endpoint.mac,
            ETHERTYPE_RT_CONTROL,
            frame.encode(),
        )
    }

    /// Forget an incoming channel (destination side of a tear-down).
    pub fn forget_rx_channel(&mut self, channel: ChannelId) {
        self.rx_channels.remove(&channel.get());
    }

    /// Forget an outgoing channel *without* emitting a TeardownFrame — the
    /// network side of a fail-over drop: the fabric already released the
    /// channel because no surviving route could re-admit it, so the source
    /// merely stops believing it can transmit on it.  Like
    /// [`RtLayer::teardown_channel`], the per-channel `T_latency` override
    /// goes with it — a recycled channel id must not inherit a dead
    /// channel's constant.
    pub fn forget_tx_channel(&mut self, channel: ChannelId) {
        self.tx_channels.remove(&channel.get());
        self.tx_latency_overrides.remove(&channel.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_frames::Frame;
    use rt_types::Slots;

    fn layer(node: u32) -> RtLayer {
        RtLayer::new(NodeId::new(node), RtLayerConfig::default())
    }

    fn spec() -> RtChannelSpec {
        RtChannelSpec::paper_default()
    }

    #[test]
    fn request_channel_builds_a_connect_frame_to_the_switch() {
        let mut l = layer(3);
        let (req_id, eth) = l.request_channel(NodeId::new(9), spec()).unwrap();
        assert_eq!(eth.dst, MacAddr::for_switch());
        assert_eq!(eth.src, MacAddr::for_node(NodeId::new(3)));
        assert_eq!(l.outstanding_requests(), 1);
        match Frame::classify(eth).unwrap() {
            Frame::Request(r) => {
                assert_eq!(r.connection_request_id, req_id);
                assert_eq!(r.period, Slots::new(100));
                assert_eq!(r.rt_channel_id, None);
            }
            other => panic!("expected Request, got {other:?}"),
        }
    }

    #[test]
    fn request_ids_are_unique_across_outstanding_requests() {
        let mut l = layer(0);
        let mut ids = std::collections::HashSet::new();
        for i in 0..100u32 {
            let (id, _) = l.request_channel(NodeId::new(i + 1), spec()).unwrap();
            assert!(ids.insert(id.get()));
        }
        assert_eq!(l.outstanding_requests(), 100);
    }

    #[test]
    fn request_to_self_is_rejected() {
        let mut l = layer(5);
        assert!(l.request_channel(NodeId::new(5), spec()).is_err());
    }

    #[test]
    fn accepted_response_establishes_a_tx_channel() {
        let mut l = layer(0);
        let (req_id, _) = l.request_channel(NodeId::new(1), spec()).unwrap();
        let resp = ResponseFrame {
            rt_channel_id: Some(ChannelId::new(12)),
            switch_mac: MacAddr::for_switch(),
            verdict: ResponseVerdict::Accepted,
            connection_request_id: req_id,
        };
        match l.handle_response(&resp).unwrap() {
            EstablishmentOutcome::Established(tx) => {
                assert_eq!(tx.id, ChannelId::new(12));
                assert_eq!(tx.destination.node, NodeId::new(1));
            }
            other => panic!("expected Established, got {other:?}"),
        }
        assert_eq!(l.outstanding_requests(), 0);
        assert!(l.tx_channel(ChannelId::new(12)).is_some());
        // A second response for the same request is a protocol error.
        assert!(l.handle_response(&resp).is_err());
    }

    #[test]
    fn rejected_response_leaves_no_channel() {
        let mut l = layer(0);
        let (req_id, _) = l.request_channel(NodeId::new(1), spec()).unwrap();
        let resp = ResponseFrame {
            rt_channel_id: None,
            switch_mac: MacAddr::for_switch(),
            verdict: ResponseVerdict::Rejected,
            connection_request_id: req_id,
        };
        assert_eq!(
            l.handle_response(&resp).unwrap(),
            EstablishmentOutcome::Rejected { request_id: req_id }
        );
        assert_eq!(l.tx_channels().count(), 0);
    }

    #[test]
    fn destination_accepts_and_registers_rx_channel() {
        let mut destination = layer(7);
        let mut frame = ChannelRequest {
            source: NodeId::new(1),
            destination: NodeId::new(7),
            spec: spec(),
            request_id: ConnectionRequestId::new(4),
        }
        .to_frame();
        frame.rt_channel_id = Some(ChannelId::new(33));
        let (eth, accepted) = destination.handle_forwarded_request(&frame).unwrap();
        assert!(accepted);
        assert_eq!(destination.rx_channels().count(), 1);
        assert_eq!(eth.dst, MacAddr::for_switch());
        match Frame::classify(eth).unwrap() {
            Frame::Response(r) => {
                assert!(r.verdict.is_accepted());
                assert_eq!(r.rt_channel_id, Some(ChannelId::new(33)));
            }
            other => panic!("expected Response, got {other:?}"),
        }
    }

    #[test]
    fn destination_enforces_incoming_limit() {
        let mut destination = RtLayer::new(
            NodeId::new(7),
            RtLayerConfig {
                max_incoming_channels: Some(1),
                ..RtLayerConfig::default()
            },
        );
        for (i, expect_accept) in [(1u16, true), (2, false)] {
            let mut frame = ChannelRequest {
                source: NodeId::new(0),
                destination: NodeId::new(7),
                spec: spec(),
                request_id: ConnectionRequestId::new(i as u8),
            }
            .to_frame();
            frame.rt_channel_id = Some(ChannelId::new(i));
            let (_, accepted) = destination.handle_forwarded_request(&frame).unwrap();
            assert_eq!(accepted, expect_accept);
        }
        assert_eq!(destination.rx_channels().count(), 1);
    }

    #[test]
    fn forwarded_request_validation() {
        let mut destination = layer(7);
        // Missing channel id.
        let frame = ChannelRequest {
            source: NodeId::new(0),
            destination: NodeId::new(7),
            spec: spec(),
            request_id: ConnectionRequestId::new(1),
        }
        .to_frame();
        assert!(destination.handle_forwarded_request(&frame).is_err());
        // Wrong destination.
        let mut frame = ChannelRequest {
            source: NodeId::new(0),
            destination: NodeId::new(8),
            spec: spec(),
            request_id: ConnectionRequestId::new(1),
        }
        .to_frame();
        frame.rt_channel_id = Some(ChannelId::new(2));
        assert!(destination.handle_forwarded_request(&frame).is_err());
    }

    #[test]
    fn data_round_trip_between_source_and_destination() {
        let mut source = layer(0);
        let mut destination = layer(1);
        // Establish on the source side.
        let (req_id, _) = source.request_channel(NodeId::new(1), spec()).unwrap();
        source
            .handle_response(&ResponseFrame {
                rt_channel_id: Some(ChannelId::new(5)),
                switch_mac: MacAddr::for_switch(),
                verdict: ResponseVerdict::Accepted,
                connection_request_id: req_id,
            })
            .unwrap();
        // Register on the destination side.
        let mut fwd = ChannelRequest {
            source: NodeId::new(0),
            destination: NodeId::new(1),
            spec: spec(),
            request_id: req_id,
        }
        .to_frame();
        fwd.rt_channel_id = Some(ChannelId::new(5));
        destination.handle_forwarded_request(&fwd).unwrap();

        // Send a message.
        let gen = SimTime::from_millis(10);
        let eth = source
            .prepare_data(ChannelId::new(5), b"position=42".to_vec(), gen)
            .unwrap();
        assert_eq!(eth.dst, MacAddr::for_node(NodeId::new(1)));
        let data = match Frame::classify(eth).unwrap() {
            Frame::RtData(d) => d,
            other => panic!("expected RtData, got {other:?}"),
        };
        // The stamped deadline is gen + 40 slots (no T_latency configured).
        let expected = gen + LinkSpeed::FAST_ETHERNET.slots_to_duration(Slots::new(40));
        assert_eq!(data.stamp.absolute_deadline, expected.as_nanos());

        let msg = destination.handle_data(&data).unwrap();
        assert_eq!(msg.channel, ChannelId::new(5));
        assert_eq!(msg.payload, b"position=42");
        assert_eq!(msg.source.node, NodeId::new(0));
        assert_eq!(source.counters().0, 1);
        assert_eq!(destination.counters().1, 1);
    }

    #[test]
    fn data_on_unknown_channels_is_rejected() {
        let mut l = layer(0);
        assert!(l
            .prepare_data(ChannelId::new(9), vec![], SimTime::ZERO)
            .is_err());
        let frame = RtDataFrame {
            eth_src: MacAddr::for_node(NodeId::new(1)),
            eth_dst: MacAddr::for_node(NodeId::new(0)),
            stamp: DeadlineStamp::new(100, ChannelId::new(9)).unwrap(),
            src_port: 1,
            dst_port: 2,
            payload: vec![],
        };
        assert!(l.handle_data(&frame).is_err());
    }

    #[test]
    fn absolute_deadline_includes_t_latency() {
        let l = RtLayer::new(
            NodeId::new(0),
            RtLayerConfig {
                t_latency: Duration::from_micros(11),
                ..RtLayerConfig::default()
            },
        );
        let s = spec();
        let gen = SimTime::from_millis(1);
        let expected = gen
            + LinkSpeed::FAST_ETHERNET.slots_to_duration(s.deadline)
            + Duration::from_micros(11);
        assert_eq!(l.absolute_deadline(&s, gen), expected);
    }

    #[test]
    fn per_channel_t_latency_override_changes_the_stamp() {
        let mut l = RtLayer::new(
            NodeId::new(0),
            RtLayerConfig {
                t_latency: Duration::from_micros(10),
                ..RtLayerConfig::default()
            },
        );
        let (req_id, _) = l.request_channel(NodeId::new(1), spec()).unwrap();
        l.handle_response(&ResponseFrame {
            rt_channel_id: Some(ChannelId::new(4)),
            switch_mac: MacAddr::for_switch(),
            verdict: ResponseVerdict::Accepted,
            connection_request_id: req_id,
        })
        .unwrap();
        let gen = SimTime::from_millis(2);
        let base = LinkSpeed::FAST_ETHERNET.slots_to_duration(spec().deadline);

        let eth = l.prepare_data(ChannelId::new(4), vec![1], gen).unwrap();
        let data = match Frame::classify(eth).unwrap() {
            Frame::RtData(d) => d,
            other => panic!("expected RtData, got {other:?}"),
        };
        assert_eq!(
            data.stamp.absolute_deadline,
            (gen + base + Duration::from_micros(10)).as_nanos()
        );

        // A longer multi-hop path gets a larger constant term.
        l.set_channel_t_latency(ChannelId::new(4), Duration::from_micros(55));
        let eth = l.prepare_data(ChannelId::new(4), vec![1], gen).unwrap();
        let data = match Frame::classify(eth).unwrap() {
            Frame::RtData(d) => d,
            other => panic!("expected RtData, got {other:?}"),
        };
        assert_eq!(
            data.stamp.absolute_deadline,
            (gen + base + Duration::from_micros(55)).as_nanos()
        );
    }

    #[test]
    fn teardown_removes_the_channel_and_builds_a_control_frame() {
        let mut l = layer(0);
        let (req_id, _) = l.request_channel(NodeId::new(1), spec()).unwrap();
        l.handle_response(&ResponseFrame {
            rt_channel_id: Some(ChannelId::new(8)),
            switch_mac: MacAddr::for_switch(),
            verdict: ResponseVerdict::Accepted,
            connection_request_id: req_id,
        })
        .unwrap();
        let eth = l.teardown_channel(ChannelId::new(8)).unwrap();
        assert_eq!(eth.dst, MacAddr::for_switch());
        assert!(matches!(
            Frame::classify(eth).unwrap(),
            Frame::Teardown(t) if t.rt_channel_id == ChannelId::new(8)
        ));
        assert!(l.tx_channel(ChannelId::new(8)).is_none());
        assert!(l.teardown_channel(ChannelId::new(8)).is_err());

        let mut rx = layer(1);
        rx.forget_rx_channel(ChannelId::new(8)); // no-op, must not panic
    }
}
