//! The slack ledger: the per-link reservation book-keeping that admission
//! control is built on, split out of [`crate::multihop::MultiHopAdmission`]
//! so one ledger can serve *either* shape of control plane:
//!
//! * the **central** manager keeps one ledger covering every link of the
//!   fabric (the paper's model — and the oracle the distributed manager is
//!   property-tested against),
//! * the **distributed** manager gives every switch its own ledger covering
//!   only the links that switch owns (its outgoing trunk ports, plus the
//!   uplinks and downlinks of its attached nodes), and slack moves only
//!   through reservation frames that traverse the fabric.
//!
//! A ledger entry is keyed by a [`ReservationKey`] — a committed channel id,
//! or a `(coordinator, token)` pair for a two-phase reservation that has not
//! been assigned a channel id yet — so a rollback can release exactly what a
//! reserve put in, whether or not the admission ever completed.

use std::collections::BTreeMap;

use rt_edf::{FeasibilityOutcome, FeasibilityTester, PeriodicTask, TaskSet};
use rt_types::{ChannelId, HopLink, SimTime, SwitchId};

/// What a ledger entry belongs to: an established channel, or an in-flight
/// two-phase reservation identified by its coordinator switch and token.
///
/// The ordering is total and deterministic (channels sort before tokens), so
/// ledger iteration — and therefore every derived task set — is reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReservationKey {
    /// A committed channel.
    Channel(u16),
    /// An in-flight reservation: `(coordinator switch id, token)`.
    Token(u32, u16),
}

impl ReservationKey {
    /// The key of a committed channel.
    pub fn channel(id: ChannelId) -> Self {
        ReservationKey::Channel(id.get())
    }

    /// The key of an in-flight two-phase reservation.
    pub fn token(coordinator: SwitchId, token: u16) -> Self {
        ReservationKey::Token(coordinator.get(), token)
    }
}

/// Per-link reservation state plus the feasibility tester that guards it.
///
/// The ledger itself never decides admission policy — it answers "is this
/// task feasible on this link given what I hold?" and records reserves and
/// releases.  Deadline partitioning, candidate routes and the commit /
/// rollback protocol live in its callers.
#[derive(Debug, Default)]
pub struct SlackLedger {
    tester: FeasibilityTester,
    links: BTreeMap<HopLink, BTreeMap<ReservationKey, PeriodicTask>>,
    /// Expiry deadline per *leased* key: an in-flight two-phase reservation
    /// holds its slack only until this instant.  A sweep at or past the
    /// deadline reclaims everything the key holds — the backstop that keeps
    /// a handshake stranded by a fault from leaking slack forever.
    /// Committed channels hold no lease.
    leases: BTreeMap<ReservationKey, SimTime>,
}

impl SlackLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        SlackLedger {
            tester: FeasibilityTester::new(),
            links: BTreeMap::new(),
            leases: BTreeMap::new(),
        }
    }

    /// Number of reservations currently held on `link`.
    pub fn link_load(&self, link: HopLink) -> usize {
        self.links.get(&link).map_or(0, |m| m.len())
    }

    /// The task set currently reserved on `link`, in deterministic
    /// (reservation-key) order.
    pub fn taskset(&self, link: HopLink) -> TaskSet {
        match self.links.get(&link) {
            Some(m) => TaskSet::from_tasks(m.values().copied().collect()),
            None => TaskSet::default(),
        }
    }

    /// Links that currently hold at least one reservation.
    pub fn loaded_links(&self) -> impl Iterator<Item = (HopLink, usize)> + '_ {
        self.links.iter().map(|(l, m)| (*l, m.len()))
    }

    /// Run the per-link EDF feasibility test with `task` added to the
    /// link's current reservations, committing nothing.
    pub fn feasible_with(&self, link: HopLink, task: &PeriodicTask) -> FeasibilityOutcome {
        self.tester.test_with_candidate(&self.taskset(link), task)
    }

    /// Reserve `task` on `link` under `key` (replacing any prior entry for
    /// the same key — a key holds at most one task per link).
    pub fn reserve(&mut self, link: HopLink, key: ReservationKey, task: PeriodicTask) {
        self.links.entry(link).or_default().insert(key, task);
    }

    /// Release the reservation `key` holds on `link`.  Returns `false` if
    /// there was none (a rollback may race a release; releasing twice must
    /// be harmless, never double-free someone else's slack).
    pub fn release(&mut self, link: HopLink, key: ReservationKey) -> bool {
        let Some(entries) = self.links.get_mut(&link) else {
            return false;
        };
        let removed = entries.remove(&key).is_some();
        if entries.is_empty() {
            self.links.remove(&link);
        }
        removed
    }

    /// Release everything `key` holds, on every link of this ledger, and
    /// drop its lease if one exists.  Returns the number of link
    /// reservations freed.
    pub fn release_key(&mut self, key: ReservationKey) -> usize {
        self.leases.remove(&key);
        let mut freed = 0;
        self.links.retain(|_, entries| {
            if entries.remove(&key).is_some() {
                freed += 1;
            }
            !entries.is_empty()
        });
        freed
    }

    // --- leases -----------------------------------------------------------

    /// Put (or move) `key`'s lease deadline: every reservation the key holds
    /// on this ledger expires — and is reclaimed by the next sweep — unless
    /// the lease is cleared (commit) or the key released (rollback) first.
    pub fn lease(&mut self, key: ReservationKey, expires: SimTime) {
        self.leases.insert(key, expires);
    }

    /// Clear `key`'s lease, making its reservations permanent (the commit
    /// path).  Returns `false` if no lease was held — the caller must treat
    /// that as "the lease already expired", not resurrect the slack.
    pub fn clear_lease(&mut self, key: ReservationKey) -> bool {
        self.leases.remove(&key).is_some()
    }

    /// The expiry deadline `key`'s lease currently carries, if any.
    pub fn lease_of(&self, key: ReservationKey) -> Option<SimTime> {
        self.leases.get(&key).copied()
    }

    /// The earliest lease deadline held, if any — the next instant a sweep
    /// could reclaim something.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.leases.values().min().copied()
    }

    /// Reclaim every key whose lease deadline is at or before `now`:
    /// release all its reservations and return the expired keys (ascending).
    /// A lease expiring *exactly* at the sweep tick is reclaimed.
    pub fn sweep_expired(&mut self, now: SimTime) -> Vec<ReservationKey> {
        let expired: Vec<ReservationKey> = self
            .leases
            .iter()
            .filter(|(_, &deadline)| deadline <= now)
            .map(|(&key, _)| key)
            .collect();
        for &key in &expired {
            self.release_key(key);
        }
        expired
    }

    /// The reservation keys currently holding slack on `link`, ascending.
    pub fn keys_on(&self, link: HopLink) -> Vec<ReservationKey> {
        self.links
            .get(&link)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    /// `true` if `key` holds a reservation on `link`.
    pub fn holds(&self, link: HopLink, key: ReservationKey) -> bool {
        self.links.get(&link).is_some_and(|m| m.contains_key(&key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_types::{NodeId, Slots};

    fn task(period: u64, capacity: u64, deadline: u64) -> PeriodicTask {
        PeriodicTask::new(
            Slots::new(period),
            Slots::new(capacity),
            Slots::new(deadline),
        )
        .unwrap()
    }

    #[test]
    fn reserve_release_round_trip() {
        let mut ledger = SlackLedger::new();
        let link = HopLink::Uplink(NodeId::new(0));
        let key = ReservationKey::channel(ChannelId::new(1));
        assert_eq!(ledger.link_load(link), 0);
        ledger.reserve(link, key, task(100, 3, 20));
        assert_eq!(ledger.link_load(link), 1);
        assert!(ledger.holds(link, key));
        assert_eq!(ledger.keys_on(link), vec![key]);
        assert!(ledger.release(link, key));
        assert!(!ledger.release(link, key), "double release is a no-op");
        assert_eq!(ledger.link_load(link), 0);
        assert_eq!(ledger.loaded_links().count(), 0);
    }

    #[test]
    fn release_key_frees_every_link() {
        let mut ledger = SlackLedger::new();
        let key = ReservationKey::token(SwitchId::new(2), 7);
        let links = [
            HopLink::Uplink(NodeId::new(0)),
            HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(1),
            },
            HopLink::Downlink(NodeId::new(3)),
        ];
        for link in links {
            ledger.reserve(link, key, task(100, 3, 13));
        }
        assert_eq!(ledger.loaded_links().count(), 3);
        assert_eq!(ledger.release_key(key), 3);
        assert_eq!(ledger.loaded_links().count(), 0);
        assert_eq!(ledger.release_key(key), 0);
    }

    #[test]
    fn feasibility_respects_held_reservations() {
        let mut ledger = SlackLedger::new();
        let link = HopLink::Downlink(NodeId::new(1));
        // Fill the link with six paper-default channels (d split 20/20):
        // the uplink share of 20 slots holds 6 × C=3.
        for i in 0..6u16 {
            let key = ReservationKey::channel(ChannelId::new(i + 1));
            let t = task(100, 3, 20);
            assert!(ledger.feasible_with(link, &t).is_feasible(), "channel {i}");
            ledger.reserve(link, key, t);
        }
        assert!(!ledger.feasible_with(link, &task(100, 3, 20)).is_feasible());
        // Tokens and channels share the same book.
        ledger.release(link, ReservationKey::channel(ChannelId::new(1)));
        assert!(ledger.feasible_with(link, &task(100, 3, 20)).is_feasible());
    }

    #[test]
    fn lease_sweep_reclaims_exactly_at_the_deadline() {
        let mut ledger = SlackLedger::new();
        let link = HopLink::Uplink(NodeId::new(0));
        let key = ReservationKey::token(SwitchId::new(1), 3);
        ledger.reserve(link, key, task(100, 3, 20));
        ledger.lease(key, SimTime::from_micros(50));
        assert_eq!(ledger.next_expiry(), Some(SimTime::from_micros(50)));
        // One tick early: nothing is reclaimed.
        assert!(ledger.sweep_expired(SimTime::from_nanos(49_999)).is_empty());
        assert!(ledger.holds(link, key));
        // Exactly at the deadline: the key is reclaimed.
        assert_eq!(ledger.sweep_expired(SimTime::from_micros(50)), vec![key]);
        assert!(!ledger.holds(link, key));
        assert_eq!(ledger.next_expiry(), None);
        // Sweeping again is a no-op.
        assert!(ledger.sweep_expired(SimTime::MAX).is_empty());
    }

    #[test]
    fn clear_lease_commits_and_reports_expiry() {
        let mut ledger = SlackLedger::new();
        let link = HopLink::Downlink(NodeId::new(2));
        let key = ReservationKey::token(SwitchId::new(0), 7);
        ledger.reserve(link, key, task(100, 3, 20));
        ledger.lease(key, SimTime::from_micros(10));
        assert_eq!(ledger.lease_of(key), Some(SimTime::from_micros(10)));
        // Commit in time: the lease clears and the slack survives any sweep.
        assert!(ledger.clear_lease(key));
        assert!(ledger.sweep_expired(SimTime::MAX).is_empty());
        assert!(ledger.holds(link, key));
        // Clearing an expired (absent) lease reports failure — a late
        // Confirm must not resurrect reclaimed slack.
        assert!(!ledger.clear_lease(key));
    }

    #[test]
    fn release_key_drops_the_lease() {
        let mut ledger = SlackLedger::new();
        let link = HopLink::Uplink(NodeId::new(4));
        let key = ReservationKey::token(SwitchId::new(2), 9);
        ledger.reserve(link, key, task(100, 3, 20));
        ledger.lease(key, SimTime::from_micros(5));
        assert_eq!(ledger.release_key(key), 1);
        assert_eq!(ledger.next_expiry(), None, "rollback must drop the lease");
    }

    #[test]
    fn next_expiry_is_the_earliest_deadline() {
        let mut ledger = SlackLedger::new();
        let link = HopLink::Uplink(NodeId::new(0));
        let early = ReservationKey::token(SwitchId::new(0), 1);
        let late = ReservationKey::token(SwitchId::new(0), 2);
        ledger.reserve(link, early, task(100, 1, 50));
        ledger.reserve(link, late, task(100, 1, 50));
        ledger.lease(late, SimTime::from_micros(90));
        ledger.lease(early, SimTime::from_micros(30));
        assert_eq!(ledger.next_expiry(), Some(SimTime::from_micros(30)));
        // Only the early key expires at its deadline.
        assert_eq!(ledger.sweep_expired(SimTime::from_micros(30)), vec![early]);
        assert_eq!(ledger.next_expiry(), Some(SimTime::from_micros(90)));
        assert!(ledger.holds(link, late));
    }

    #[test]
    fn keys_order_deterministically() {
        let mut ledger = SlackLedger::new();
        let link = HopLink::Uplink(NodeId::new(9));
        let token = ReservationKey::token(SwitchId::new(0), 1);
        let channel = ReservationKey::channel(ChannelId::new(500));
        ledger.reserve(link, token, task(100, 1, 50));
        ledger.reserve(link, channel, task(100, 1, 50));
        // Channels sort before tokens, whatever the insertion order.
        assert_eq!(ledger.keys_on(link), vec![channel, token]);
        assert_eq!(ledger.taskset(link).len(), 2);
    }
}
